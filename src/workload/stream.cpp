#include "workload/stream.h"

#include "common/error.h"

namespace funnel::workload {

KpiStream::KpiStream(std::unique_ptr<KpiGenerator> generator)
    : generator_(std::move(generator)) {
  FUNNEL_REQUIRE(generator_ != nullptr, "KpiStream needs a generator");
}

void KpiStream::add_shock(SharedShock shock) {
  FUNNEL_REQUIRE(shock != nullptr, "null shock");
  shocks_.push_back(std::move(shock));
}

double KpiStream::sample(MinuteTime t) {
  double v = generator_->sample(t);
  v += effects_.value_at(t);
  for (const SharedShock& s : shocks_) v += s->value_at(t);
  return v;
}

void materialize(KpiStream& stream, tsdb::MetricStore& store,
                 const tsdb::MetricId& id, MinuteTime t0, MinuteTime t1) {
  FUNNEL_REQUIRE(t1 >= t0, "materialize over negative range");
  for (MinuteTime t = t0; t < t1; ++t) {
    store.append(id, t, stream.sample(t));
  }
}

std::vector<double> render(KpiStream& stream, MinuteTime t0, MinuteTime t1) {
  FUNNEL_REQUIRE(t1 >= t0, "render over negative range");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(t1 - t0));
  for (MinuteTime t = t0; t < t1; ++t) out.push_back(stream.sample(t));
  return out;
}

}  // namespace funnel::workload
