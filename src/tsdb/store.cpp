#include "tsdb/store.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/error.h"
#include "obs/timer.h"

namespace funnel::tsdb {

MetricStore::MetricStore(const StoreOptions& options) {
  FUNNEL_REQUIRE(options.num_shards >= 1, "store needs at least one shard");
  shards_.reserve(options.num_shards);
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    shards_.push_back(std::make_unique<StoreShard>());
  }
  if (options.ingest_queue_capacity > 0) {
    dispatcher_ = std::make_unique<IngestDispatcher>(
        options.ingest_queue_capacity, options.backpressure,
        [this](const Sample& s) { deliver(s); });
  }
}

MetricStore::~MetricStore() {
  // Stop delivering before the shards (and their subscription lists) die.
  dispatcher_.reset();
}

std::size_t MetricStore::shard_index(const MetricId& id) const {
  if (shards_.size() == 1) return 0;
  std::size_t h = std::hash<std::string>{}(id.entity);
  h ^= std::hash<std::string>{}(id.kpi) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  h ^= static_cast<std::size_t>(id.kind) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  return h % shards_.size();
}

void MetricStore::create(const MetricId& id, MinuteTime start) {
  StoreShard& sh = shard(id);
  const std::unique_lock<std::shared_mutex> lock(sh.data_mutex);
  const auto [it, inserted] = sh.series.emplace(id, TimeSeries(start));
  FUNNEL_REQUIRE(inserted, "metric already exists: " + id.to_string());
  (void)it;
}

bool MetricStore::has(const MetricId& id) const {
  const StoreShard& sh = shard(id);
  const std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
  return sh.series.contains(id);
}

void MetricStore::append(const MetricId& id, MinuteTime t, double value) {
  StoreShard& sh = shard(id);
  TimeSeries::Upsert outcome;
  {
    const std::unique_lock<std::shared_mutex> lock(sh.data_mutex);
    auto it = sh.series.find(id);
    if (it == sh.series.end()) {
      it = sh.series.emplace(id, TimeSeries(t)).first;
    }
    outcome = it->second.upsert_at(t, value);
  }
  const obs::Registry* stats = stats_.load(std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->add("tsdb.store.appends");
    switch (outcome) {
      case TimeSeries::Upsert::kAppended:
        break;
      case TimeSeries::Upsert::kFilled:
        stats->add("tsdb.store.late_fills");
        break;
      case TimeSeries::Upsert::kDuplicate:
        stats->add("tsdb.store.duplicates_ignored");
        break;
      case TimeSeries::Upsert::kTooOld:
        stats->add("tsdb.store.too_old_dropped");
        break;
    }
  }
  // A too-old sample never landed in the store; notifying subscribers about
  // data they can't read back would break the visibility guarantee below.
  if (outcome == TimeSeries::Upsert::kTooOld) return;
  // The sample is visible in the shard before any notification is queued or
  // delivered, so a callback reading the store always sees its sample.
  if (sub_count_.load(std::memory_order_acquire) == 0) return;
  if (dispatcher_ != nullptr) {
    dispatcher_->submit(Sample{id, t, value, {}});
  } else {
    deliver(Sample{id, t, value, {}});
  }
}

void MetricStore::insert(const MetricId& id, TimeSeries series) {
  StoreShard& sh = shard(id);
  const std::unique_lock<std::shared_mutex> lock(sh.data_mutex);
  const auto [it, inserted] = sh.series.emplace(id, std::move(series));
  FUNNEL_REQUIRE(inserted, "metric already exists: " + id.to_string());
  (void)it;
}

const TimeSeries& MetricStore::series(const MetricId& id) const {
  const StoreShard& sh = shard(id);
  const std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
  const auto it = sh.series.find(id);
  if (it == sh.series.end()) {
    throw NotFound("no such metric: " + id.to_string());
  }
  return it->second;
}

std::size_t MetricStore::metric_count() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    const std::shared_lock<std::shared_mutex> lock(sh->data_mutex);
    n += sh->series.size();
  }
  return n;
}

std::vector<MetricId> MetricStore::metrics() const {
  std::vector<MetricId> out;
  for (const auto& sh : shards_) {
    const std::shared_lock<std::shared_mutex> lock(sh->data_mutex);
    for (const auto& [id, s] : sh->series) {
      (void)s;
      out.push_back(id);
    }
  }
  // Each shard map is ordered; the concatenation is not. Global order keeps
  // downstream iteration (impact_metrics, report items) shard-count
  // independent.
  if (shards_.size() > 1) std::sort(out.begin(), out.end());
  return out;
}

std::vector<MetricId> MetricStore::metrics_of(EntityKind kind,
                                              const std::string& entity) const {
  std::vector<MetricId> out;
  for (const auto& sh : shards_) {
    const std::shared_lock<std::shared_mutex> lock(sh->data_mutex);
    for (const auto& [id, s] : sh->series) {
      (void)s;
      if (id.kind == kind && id.entity == entity) out.push_back(id);
    }
  }
  if (shards_.size() > 1) std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> MetricStore::query(const MetricId& id, MinuteTime t0,
                                       MinuteTime t1) const {
  return read(id,
              [&](const TimeSeries& s) { return s.slice(t0, t1); });
}

TimeSeries MetricStore::aggregate(std::span<const MetricId> ids, MinuteTime t0,
                                  MinuteTime t1) const {
  // Copy each covering window under its shard lock, then aggregate the
  // local snapshots — aggregate_mean drops non-covering series anyway, so
  // trimming to [t0, t1) here changes nothing in the result.
  std::vector<TimeSeries> local;
  local.reserve(ids.size());
  for (const MetricId& id : ids) {
    read_if(id, [&](const TimeSeries& s) {
      if (s.covers(t0, t1)) local.emplace_back(t0, s.slice(t0, t1));
    });
  }
  std::vector<const TimeSeries*> ptrs;
  ptrs.reserve(local.size());
  for (const TimeSeries& s : local) ptrs.push_back(&s);
  return aggregate_mean(ptrs, t0, t1);
}

SubscriptionId MetricStore::subscribe(std::vector<MetricId> filter,
                                      Callback cb) {
  FUNNEL_REQUIRE(static_cast<bool>(cb), "subscription needs a callback");
  std::sort(filter.begin(), filter.end());
  filter.erase(std::unique(filter.begin(), filter.end()), filter.end());

  auto sub = std::make_shared<Subscription>();
  sub->filter = std::move(filter);
  sub->callback = std::move(cb);

  // Register on every shard that can own a matching metric, so dispatch
  // scans only the owning shard's list.
  std::vector<std::size_t> targets;
  if (sub->filter.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) targets.push_back(i);
  } else {
    for (const MetricId& id : sub->filter) {
      targets.push_back(shard_index(id));
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  }
  for (const std::size_t i : targets) {
    const std::lock_guard<std::mutex> lock(shards_[i]->subs_mutex);
    shards_[i]->subs.push_back(sub);
  }

  SubscriptionId id = 0;
  {
    const std::lock_guard<std::mutex> lock(sub_index_mutex_);
    id = next_sub_++;
    sub_index_.emplace(id, std::move(sub));
  }
  sub_count_.fetch_add(1, std::memory_order_release);
  return id;
}

void MetricStore::unsubscribe(SubscriptionId id) {
  std::shared_ptr<Subscription> sub;
  {
    const std::lock_guard<std::mutex> lock(sub_index_mutex_);
    const auto it = sub_index_.find(id);
    if (it == sub_index_.end()) return;
    sub = std::move(it->second);
    sub_index_.erase(it);
  }
  sub->active.store(false, std::memory_order_release);
  for (const auto& sh : shards_) {
    const std::lock_guard<std::mutex> lock(sh->subs_mutex);
    std::erase(sh->subs, sub);
  }
  sub_count_.fetch_sub(1, std::memory_order_release);
  // A delivery snapshot taken before the removal may still hold this
  // subscription; wait out the in-flight callback so that after return the
  // callback is guaranteed dead (FunnelOnline's destructor relies on this).
  if (dispatcher_ != nullptr) dispatcher_->await_inflight();
}

void MetricStore::flush() {
  if (dispatcher_ != nullptr) dispatcher_->flush();
}

void MetricStore::set_stats(const obs::Registry* stats) {
  stats_.store(stats, std::memory_order_relaxed);
  if (dispatcher_ != nullptr) dispatcher_->set_stats(stats);
}

void MetricStore::deliver(const Sample& s) const {
  const StoreShard& sh = shard(s.id);
  std::vector<std::shared_ptr<Subscription>> hit;
  {
    const std::lock_guard<std::mutex> lock(sh.subs_mutex);
    for (const auto& sub : sh.subs) {
      if (!sub->active.load(std::memory_order_acquire)) continue;
      if (sub->filter.empty() ||
          std::binary_search(sub->filter.begin(), sub->filter.end(), s.id)) {
        hit.push_back(sub);
      }
    }
  }
  if (hit.empty()) return;
  const obs::Registry* stats = stats_.load(std::memory_order_relaxed);
  // Time the dispatch as one span per sample: synchronously this is the
  // latency a producing agent pays for slow consumers; on the dispatcher
  // thread it is the per-sample consumer cost the queue absorbs.
  const obs::ScopedTimer dispatch(stats, "tsdb.store.dispatch_us");
  std::uint64_t notified = 0;
  for (const auto& sub : hit) {
    if (!sub->active.load(std::memory_order_acquire)) continue;
    sub->callback(s.id, s.t, s.value);
    ++notified;
  }
  if (stats != nullptr && notified > 0) {
    stats->add("tsdb.store.notifications", notified);
  }
}

}  // namespace funnel::tsdb
