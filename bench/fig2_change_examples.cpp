// Fig. 2 — example level shift and ramp up in a KPI, with the boundaries
// FUNNEL's detector finds.
//
// The paper's figure shows a normalized KPI exhibiting a ramp up and a
// level shift. This bench synthesizes an equivalent series, prints it as
// gnuplot-ready columns (minute, normalized value) and marks the injected
// and detected change points.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "detect/sliding.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

int main(int, char**) {
  bench::print_header("Fig. 2: level shift and ramp up/down examples");

  // A stationary KPI with a ramp up at minute 300 (over 60 minutes) and a
  // level shift down at minute 800 — mirroring the figure's two archetypes.
  workload::StationaryParams p;
  p.level = 0.8;
  p.noise_sigma = 0.02;
  workload::KpiStream stream(workload::make_stationary(p, Rng(7)));
  stream.add_effect(workload::Ramp{300, 360, 0.12});
  stream.add_effect(workload::LevelShift{800, -0.35});
  const std::vector<double> series = workload::render(stream, 0, 1200);

  detect::IkaSst scorer(detect::SstGeometry{.omega = 9, .eta = 3});
  const auto scores = detect::score_series(scorer, series);
  const auto alarms = detect::all_alarms(
      scores, scorer.window_size(), 0, bench::funnel_config().alarm);

  std::printf("# injected: ramp start=300 end=360 (+0.12), "
              "level shift at 800 (-0.35)\n");
  std::printf("# minute  normalized_kpi\n");
  for (std::size_t i = 0; i < series.size(); i += 2) {
    std::printf("%zu %.4f\n", i, series[i]);
  }

  std::printf("\ndetected change alarms (minute, peak score):\n");
  MinuteTime last = -100;
  int episodes = 0;
  for (const detect::Alarm& a : alarms) {
    if (a.minute - last > 30) {
      std::printf("  alarm at minute %lld (peak %.2f)\n",
                  static_cast<long long>(a.minute), a.peak_score);
      ++episodes;
    }
    last = a.minute;
  }
  std::printf("\nexpected: two episodes, one within ~25 min of the ramp "
              "start (300), one within ~25 min of the shift (800); got %d\n",
              episodes);
  return 0;
}
