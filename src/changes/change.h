// Software change records (§2.1).
//
// FUNNEL assesses two controllable, log-observable change types: software
// upgrades and configuration changes. Each record captures the change's
// deployment log entry: which service, which servers (the tservers), when,
// and whether it was rolled out with Dark Launching (a strict subset of the
// service's servers) or Full Launching (all of them at once).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/minute_time.h"

namespace funnel::changes {

using ChangeId = std::uint64_t;

enum class ChangeType { kSoftwareUpgrade, kConfigChange };

const char* to_string(ChangeType t);

enum class LaunchMode { kDark, kFull };

const char* to_string(LaunchMode m);

/// One deployment-log entry.
struct SoftwareChange {
  ChangeId id = 0;
  ChangeType type = ChangeType::kSoftwareUpgrade;
  std::string service;               ///< the changed service
  std::vector<std::string> servers;  ///< tservers: where it was deployed
  MinuteTime time = 0;               ///< deployment minute
  LaunchMode mode = LaunchMode::kDark;
  std::string description;

  bool dark_launched() const { return mode == LaunchMode::kDark; }
};

}  // namespace funnel::changes
