#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace funnel::obs {
namespace {

// Stat names follow the dotted convention and never need escaping beyond
// this (no quotes/backslashes/control characters); values are numbers.
void key_to(std::ostringstream& os, const std::string& s) {
  os << '"' << s << '"';
}

void finite_to(std::ostringstream& os, double v) {
  // %.17g round-trips doubles; trim the default ostream precision issues.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

// JSON has no literal for non-finite numbers; null is the conventional
// stand-in.
void number_to(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  finite_to(os, v);
}

// Prometheus exposition DOES have non-finite literals — "NaN", "+Inf",
// "-Inf" — and a bare "null" sample value fails the scrape parser, so the
// text format must never borrow the JSON rendering. (A NaN gauge is
// reachable: Registry::set stores whatever the caller computed, e.g. a
// mean over zero samples.)
void prom_number_to(std::ostringstream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  finite_to(os, v);
}

// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. Stat keys
// follow the dotted house convention, so dots (and dashes) are expected;
// anything else that slips in — unicode bytes, spaces, quotes — would
// corrupt the exposition format line, so every non-conforming byte is
// mapped to '_' and a leading digit gets a '_' prefix. Validation by
// construction: the output always parses, whatever the input.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

std::string snapshot_json(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\"enabled\":" << (snap.enabled ? "true" : "false");
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ',';
    first = false;
    key_to(os, name);
    os << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ',';
    first = false;
    key_to(os, name);
    os << ':';
    number_to(os, value);
  }
  os << "},\"histograms\":{";
  first = true;
  const std::span<const double> bounds = bucket_bounds();
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ',';
    first = false;
    key_to(os, name);
    os << ":{\"count\":" << h.count << ",\"sum\":";
    number_to(os, h.sum);
    os << ",\"min\":";
    number_to(os, h.min);
    os << ",\"max\":";
    number_to(os, h.max);
    os << ",\"mean\":";
    number_to(os, h.mean());
    os << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) os << ',';
      os << "{\"le\":";
      if (b < bounds.size()) {
        number_to(os, bounds[b]);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << h.buckets[b] << '}';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string prometheus_text(const Snapshot& snap) {
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ';
    prom_number_to(os, value);
    os << '\n';
  }
  const std::span<const double> bounds = bucket_bounds();
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      os << n << "_bucket{le=\"";
      if (b < bounds.size()) {
        prom_number_to(os, bounds[b]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << '\n';
    }
    os << n << "_sum ";
    prom_number_to(os, h.sum);
    os << '\n' << n << "_count " << h.count << '\n';
  }
  return os.str();
}

}  // namespace funnel::obs
