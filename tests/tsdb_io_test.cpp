// Tests for the CSV / snapshot serialization of series and stores.
#include "tsdb/io.h"

#include <cmath>
#include <gtest/gtest.h>
#include <sstream>

#include "common/error.h"

namespace funnel::tsdb {
namespace {

TEST(SeriesCsv, RoundTrip) {
  TimeSeries s(100, {1.5, 2.5, 3.5});
  std::ostringstream out;
  write_series_csv(out, s);
  std::istringstream in(out.str());
  const TimeSeries back = read_series_csv(in);
  EXPECT_EQ(back.start_time(), 100);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_DOUBLE_EQ(back.at(101), 2.5);
}

TEST(SeriesCsv, GapsRoundTripAsNan) {
  TimeSeries s(0, {1.0, std::nan(""), 3.0});
  std::ostringstream out;
  write_series_csv(out, s);
  std::istringstream in(out.str());
  const TimeSeries back = read_series_csv(in);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(std::isnan(back.at(1)));
  EXPECT_DOUBLE_EQ(back.at(2), 3.0);
}

TEST(SeriesCsv, ParsesWithoutHeaderAndWithComments) {
  std::istringstream in("# exported KPI\n5,1.0\n6,2.0\n\n8,4.0\n");
  const TimeSeries s = read_series_csv(in);
  EXPECT_EQ(s.start_time(), 5);
  EXPECT_EQ(s.size(), 4u);      // minute 7 filled as a gap
  EXPECT_TRUE(std::isnan(s.at(7)));
  EXPECT_DOUBLE_EQ(s.at(8), 4.0);
}

TEST(SeriesCsv, AcceptsNanLiteralAndCrLf) {
  std::istringstream in("minute,value\r\n0,1.0\r\n1,nan\r\n");
  const TimeSeries s = read_series_csv(in);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_TRUE(std::isnan(s.at(1)));
}

TEST(SeriesCsv, RejectsMalformedRows) {
  {
    std::istringstream in("0,1.0,extra\n");
    EXPECT_THROW((void)read_series_csv(in), InvalidArgument);
  }
  {
    std::istringstream in("zero,1.0\n");
    EXPECT_THROW((void)read_series_csv(in), InvalidArgument);
  }
  {
    std::istringstream in("0,not-a-number\n");
    EXPECT_THROW((void)read_series_csv(in), InvalidArgument);
  }
  {
    std::istringstream in("5,1.0\n4,1.0\n");  // decreasing minutes
    EXPECT_THROW((void)read_series_csv(in), InvalidArgument);
  }
}

TEST(SeriesCsv, RejectsDuplicateMinuteWithLineDiagnostic) {
  // A serialized series re-visiting a minute is a corrupt export, and the
  // diagnostic must name the exact line and failure mode — "fix row 3"
  // beats "something is wrong somewhere in 40k rows".
  std::istringstream in("minute,value\n0,1.0\n1,2.0\n1,2.5\n");
  try {
    (void)read_series_csv(in);
    FAIL() << "duplicate minute must throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate minute 1"), std::string::npos) << what;
  }
}

TEST(SeriesCsv, RejectsBackwardsMinuteWithLineDiagnostic) {
  std::istringstream in("10,1.0\n11,2.0\n7,3.0\n");
  try {
    (void)read_series_csv(in);
    FAIL() << "backwards minute must throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("backwards to 7"), std::string::npos) << what;
    EXPECT_NE(what.find("last was 11"), std::string::npos) << what;
  }
}

TEST(SeriesCsv, EmptyInputGivesEmptySeries) {
  std::istringstream in("minute,value\n");
  EXPECT_TRUE(read_series_csv(in).empty());
}

TEST(SeriesCsv, FileErrorsThrowNotFound) {
  EXPECT_THROW((void)load_series_csv("/no/such/dir/x.csv"), NotFound);
  EXPECT_THROW(save_series_csv("/no/such/dir/x.csv", TimeSeries(0)),
               NotFound);
}

TEST(StoreSnapshot, RoundTripsAllKindsAndGaps) {
  MetricStore store;
  store.insert(server_metric("web-1", "cpu"), TimeSeries(10, {1.0, 2.0}));
  store.insert(instance_metric("svc@web-1", "pvc"),
               TimeSeries(0, {5.0, std::nan(""), 7.0}));
  store.insert(service_metric("svc", "pvc"), TimeSeries(3, {9.0}));

  std::ostringstream out;
  write_store(out, store);

  MetricStore back;
  std::istringstream in(out.str());
  read_store(in, back);
  EXPECT_EQ(back.metric_count(), 3u);
  EXPECT_EQ(back.series(server_metric("web-1", "cpu")).start_time(), 10);
  EXPECT_TRUE(
      std::isnan(back.series(instance_metric("svc@web-1", "pvc")).at(1)));
  EXPECT_DOUBLE_EQ(back.series(service_metric("svc", "pvc")).at(3), 9.0);
}

TEST(StoreSnapshot, RejectsWrongMagicAndTruncation) {
  {
    MetricStore store;
    std::istringstream in("not a snapshot\n");
    EXPECT_THROW(read_store(in, store), InvalidArgument);
  }
  {
    MetricStore store;
    std::istringstream in(
        "# funnel-store-v1\n# metric server web cpu 0 3\n1.0\n2.0\n");
    EXPECT_THROW(read_store(in, store), InvalidArgument);
  }
  {
    MetricStore store;
    std::istringstream in("# funnel-store-v1\n# metric gizmo web cpu 0 0\n");
    EXPECT_THROW(read_store(in, store), InvalidArgument);
  }
}

}  // namespace
}  // namespace funnel::tsdb
