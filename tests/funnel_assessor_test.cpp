// End-to-end tests of the Fig. 3 decision flow: detection, dark-launch DiD,
// historical DiD, and the verdict taxonomy.
#include "funnel/assessor.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/generators.h"
#include "workload/shock.h"
#include "workload/stream.h"

namespace funnel::core {
namespace {

constexpr MinuteTime kDay = kMinutesPerDay;

FunnelConfig test_config() {
  FunnelConfig cfg;
  cfg.baseline_days = 3;
  return cfg;
}

// One service, five servers with a stationary "mem" KPI; optional effect on
// the treated servers and optional service-wide confounder shock.
struct Scenario {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;
  MinuteTime tc = 4 * kDay + 300;
  changes::ChangeId change_id = 0;

  /// dead_controls: control servers ship all-NaN telemetry (dead agents).
  /// short_treated: treated KPIs only exist from tc-120 on (fresh metrics).
  Scenario(bool dark, double effect, double confounder,
           bool seasonal = false, bool transient_only = false,
           bool dead_controls = false, bool short_treated = false) {
    const std::vector<std::string> servers{"s1", "s2", "s3", "s4", "s5"};
    for (const auto& s : servers) topo.add_server("svc", s);

    changes::SoftwareChange ch;
    ch.service = "svc";
    ch.time = tc;
    if (dark) {
      ch.mode = changes::LaunchMode::kDark;
      ch.servers = {"s1", "s2"};
    } else {
      ch.mode = changes::LaunchMode::kFull;
      ch.servers = servers;
    }
    change_id = log.record(ch, topo);

    Rng rng(42);
    workload::SharedShock shock;
    if (confounder != 0.0) {
      shock = workload::make_attack_shock(tc, 50, confounder, rng.split());
    }
    const bool treated_all = !dark;
    for (const auto& s : servers) {
      std::unique_ptr<workload::KpiGenerator> gen;
      if (seasonal) {
        workload::SeasonalParams p;
        p.noise_sigma = 1.0;
        p.weekly_amplitude = 0.0;
        gen = workload::make_seasonal(p, rng.split());
      } else {
        workload::StationaryParams p;
        p.level = 50.0;
        gen = workload::make_stationary(p, rng.split());
      }
      workload::KpiStream stream(std::move(gen));
      const bool treated = treated_all || s == "s1" || s == "s2";
      if (treated && effect != 0.0) {
        if (transient_only) {
          stream.add_effect(workload::TransientSpike{tc + 3, 2, effect});
        } else {
          stream.add_effect(workload::LevelShift{tc, effect});
        }
      }
      if (shock) stream.add_shock(shock);
      if (dead_controls && !treated) {
        store.insert(tsdb::server_metric(s, "mem"),
                     tsdb::TimeSeries(
                         0, std::vector<double>(
                                static_cast<std::size_t>(tc + 120),
                                std::numeric_limits<double>::quiet_NaN())));
        continue;
      }
      const MinuteTime lo = short_treated && treated ? tc - 120 : 0;
      workload::materialize(stream, store, tsdb::server_metric(s, "mem"), lo,
                            tc + 120);
    }
  }

  AssessmentReport assess() const {
    const Funnel funnel(test_config(), topo, log, store);
    return funnel.assess(change_id);
  }
};

const ItemVerdict& verdict_for(const AssessmentReport& r,
                               const tsdb::MetricId& id) {
  for (const auto& v : r.items) {
    if (v.metric == id) return v;
  }
  throw std::runtime_error("no verdict for " + id.to_string());
}

TEST(Assessor, DarkLaunchEffectAttributedToChange) {
  const Scenario sc(/*dark=*/true, /*effect=*/8.0, /*confounder=*/0.0);
  const AssessmentReport r = sc.assess();
  EXPECT_EQ(r.change_id, sc.change_id);
  // Only treated-server KPIs are items; both should be flagged as caused.
  const auto& v1 = verdict_for(r, tsdb::server_metric("s1", "mem"));
  EXPECT_TRUE(v1.kpi_change_detected);
  EXPECT_EQ(v1.cause, Cause::kSoftwareChange);
  EXPECT_FALSE(v1.used_historical_control);
  ASSERT_TRUE(v1.did_fit.has_value());
  EXPECT_NEAR(v1.did_fit->alpha, 8.0, 2.0);
  ASSERT_TRUE(v1.alarm.has_value());
  EXPECT_GE(v1.alarm->minute, sc.tc);
  EXPECT_TRUE(r.change_has_impact());
  EXPECT_GE(r.kpi_changes_caused(), 2u);
}

TEST(Assessor, ConfounderRejectedByControlGroup) {
  const Scenario sc(/*dark=*/true, /*effect=*/0.0, /*confounder=*/7.0);
  const AssessmentReport r = sc.assess();
  // The shock hits treated and control alike: any detected change must be
  // labelled other-factors, never software-change.
  std::size_t detected = 0;
  for (const auto& v : r.items) {
    if (!v.kpi_change_detected) continue;
    ++detected;
    EXPECT_EQ(v.cause, Cause::kOtherFactors) << v.metric.to_string();
  }
  EXPECT_GE(detected, 1u);  // the shock is a real behavior change
  EXPECT_FALSE(r.change_has_impact());
  EXPECT_EQ(r.kpi_changes_caused(), 0u);
}

TEST(Assessor, FullLaunchUsesHistoricalControl) {
  const Scenario sc(/*dark=*/false, /*effect=*/8.0, /*confounder=*/0.0);
  const AssessmentReport r = sc.assess();
  const auto& v = verdict_for(r, tsdb::server_metric("s3", "mem"));
  EXPECT_TRUE(v.kpi_change_detected);
  EXPECT_TRUE(v.used_historical_control);
  EXPECT_EQ(v.cause, Cause::kSoftwareChange);
}

TEST(Assessor, SeasonalPatternExcludedViaHistory) {
  const Scenario sc(/*dark=*/false, /*effect=*/0.0, /*confounder=*/0.0,
                    /*seasonal=*/true);
  const AssessmentReport r = sc.assess();
  for (const auto& v : r.items) {
    EXPECT_NE(v.cause, Cause::kSoftwareChange) << v.metric.to_string();
    if (v.kpi_change_detected) {
      EXPECT_EQ(v.cause, Cause::kSeasonality);
      EXPECT_TRUE(v.used_historical_control);
    }
  }
  EXPECT_FALSE(r.change_has_impact());
}

TEST(Assessor, TransientSpikeNotReported) {
  const Scenario sc(/*dark=*/true, /*effect=*/10.0, /*confounder=*/0.0,
                    /*seasonal=*/false, /*transient_only=*/true);
  const AssessmentReport r = sc.assess();
  for (const auto& v : r.items) {
    EXPECT_FALSE(v.kpi_change_detected) << v.metric.to_string();
    EXPECT_EQ(v.cause, Cause::kNoKpiChange);
  }
}

TEST(Assessor, NegativeShiftAlsoAttributed) {
  const Scenario sc(/*dark=*/true, /*effect=*/-8.0, /*confounder=*/0.0);
  const AssessmentReport r = sc.assess();
  const auto& v = verdict_for(r, tsdb::server_metric("s2", "mem"));
  EXPECT_EQ(v.cause, Cause::kSoftwareChange);
  ASSERT_TRUE(v.did_fit.has_value());
  EXPECT_LT(v.did_fit->alpha, -5.0);
}

TEST(Assessor, AssessWindowCoversRecordedChanges) {
  Scenario sc(/*dark=*/true, /*effect=*/8.0, /*confounder=*/0.0);
  const Funnel funnel(test_config(), sc.topo, sc.log, sc.store);
  EXPECT_EQ(funnel.assess_window(0, sc.tc + 1).size(), 1u);
  EXPECT_TRUE(funnel.assess_window(0, sc.tc).empty());
}

TEST(Assessor, ReportSummaryMentionsKeyFacts) {
  const Scenario sc(/*dark=*/true, /*effect=*/8.0, /*confounder=*/0.0);
  const std::string s = sc.assess().summary();
  EXPECT_NE(s.find("svc"), std::string::npos);
  EXPECT_NE(s.find("dark"), std::string::npos);
  EXPECT_NE(s.find("software-change"), std::string::npos);
}

TEST(Assessor, ShortSeriesYieldsNoChange) {
  // A KPI created just before the change cannot fill one SST window: it
  // cannot be cleared either, so the item degrades to an inconclusive
  // verdict (insufficient pre-window) rather than crashing or delivering a
  // silent "no change".
  Scenario sc(/*dark=*/true, /*effect=*/8.0, /*confounder=*/0.0);
  sc.store.insert(tsdb::server_metric("s1", "fresh_kpi"),
                  tsdb::TimeSeries(sc.tc - 5, std::vector<double>(10, 1.0)));
  const AssessmentReport r = sc.assess();
  const auto& v = verdict_for(r, tsdb::server_metric("s1", "fresh_kpi"));
  EXPECT_FALSE(v.kpi_change_detected);
  EXPECT_EQ(v.cause, Cause::kInconclusive);
  EXPECT_EQ(v.inconclusive_reason, InconclusiveReason::kInsufficientPreWindow);
  EXPECT_GE(r.kpis_inconclusive(), 1u);
}

TEST(Assessor, GapInQuietWindowIsInconclusiveNotClean) {
  // Quality gate: a quiet verdict on a window that is mostly missing is no
  // verdict at all — a gap can hide exactly the shift FUNNEL looks for.
  Scenario sc(/*dark=*/true, /*effect=*/0.0, /*confounder=*/0.0);
  const tsdb::MetricId id = tsdb::server_metric("s1", "gappy");
  Rng noise(99);
  std::vector<double> data(static_cast<std::size_t>(sc.tc + 120));
  for (double& v : data) v = noise.gaussian(5.0, 1.0);
  // Blow a 40-minute hole right after the change (max_gap_run default 15).
  for (std::size_t i = 0; i < 40; ++i) {
    data[static_cast<std::size_t>(sc.tc) + 5 + i] = std::nan("");
  }
  sc.store.insert(id, tsdb::TimeSeries(0, std::move(data)));
  const AssessmentReport r = sc.assess();
  const auto& v = verdict_for(r, id);
  EXPECT_FALSE(v.kpi_change_detected);
  EXPECT_EQ(v.cause, Cause::kInconclusive);
  EXPECT_EQ(v.inconclusive_reason, InconclusiveReason::kGapInDetectionWindow);
  ASSERT_TRUE(v.quality.has_value());
  EXPECT_GE(v.quality->longest_gap_run, 40u);
  EXPECT_LT(v.quality->coverage, 1.0);
}

TEST(Assessor, EmptyControlGroupFallsBackToHistory) {
  // Dark launch whose every control sibling is telemetry-dead: the §3.2.4
  // DiD cannot run, so the chain falls back to the §3.2.5 historical
  // control and still attributes the (strong) effect.
  const Scenario sc(/*dark=*/true, /*effect=*/8.0, /*confounder=*/0.0,
                    /*seasonal=*/false, /*transient_only=*/false,
                    /*dead_controls=*/true);
  const AssessmentReport r = sc.assess();
  const auto& v = verdict_for(r, tsdb::server_metric("s1", "mem"));
  EXPECT_TRUE(v.kpi_change_detected);
  EXPECT_TRUE(v.used_fallback_control);
  EXPECT_TRUE(v.used_historical_control);
  EXPECT_EQ(v.cause, Cause::kSoftwareChange);
}

TEST(Assessor, FallbackWithoutHistoryIsControlGroupEmpty) {
  // Both ends of the degradation chain fail: the control group is empty AND
  // the treated KPI has no usable history — the reason names the primary
  // defect (the empty §3.2.4 control group).
  const Scenario sc(/*dark=*/true, /*effect=*/8.0, /*confounder=*/0.0,
                    /*seasonal=*/false, /*transient_only=*/false,
                    /*dead_controls=*/true, /*short_treated=*/true);
  const AssessmentReport r = sc.assess();
  const auto& v = verdict_for(r, tsdb::server_metric("s1", "mem"));
  EXPECT_TRUE(v.kpi_change_detected);
  EXPECT_TRUE(v.used_fallback_control);
  EXPECT_EQ(v.cause, Cause::kInconclusive);
  EXPECT_EQ(v.inconclusive_reason, InconclusiveReason::kControlGroupEmpty);
}

TEST(Assessor, HistoricalQuorumGatesFullLaunchVerdict) {
  // With a quorum above the available baseline days, the full-launch path
  // reports quorum-unmet instead of trusting a thin history.
  Scenario sc(/*dark=*/false, /*effect=*/8.0, /*confounder=*/0.0);
  FunnelConfig cfg = test_config();
  cfg.quality.historical_quorum = 10;  // only 3-4 days of history exist
  const Funnel funnel(cfg, sc.topo, sc.log, sc.store);
  const AssessmentReport r = funnel.assess(sc.change_id);
  const auto& v = verdict_for(r, tsdb::server_metric("s3", "mem"));
  EXPECT_TRUE(v.kpi_change_detected);
  EXPECT_EQ(v.cause, Cause::kInconclusive);
  EXPECT_EQ(v.inconclusive_reason,
            InconclusiveReason::kHistoricalQuorumUnmet);
  EXPECT_FALSE(r.change_has_impact());
}

TEST(Assessor, CauseNames) {
  EXPECT_STREQ(to_string(Cause::kNoKpiChange), "no-kpi-change");
  EXPECT_STREQ(to_string(Cause::kSoftwareChange), "software-change");
  EXPECT_STREQ(to_string(Cause::kOtherFactors), "other-factors");
  EXPECT_STREQ(to_string(Cause::kSeasonality), "seasonality");
  EXPECT_STREQ(to_string(Cause::kInconclusive), "inconclusive");
}

TEST(Assessor, InconclusiveReasonNames) {
  EXPECT_STREQ(to_string(InconclusiveReason::kNone), "none");
  EXPECT_STREQ(to_string(InconclusiveReason::kInsufficientPreWindow),
               "insufficient-pre-window");
  EXPECT_STREQ(to_string(InconclusiveReason::kGapInDetectionWindow),
               "gap-in-detection-window");
  EXPECT_STREQ(to_string(InconclusiveReason::kControlGroupEmpty),
               "control-group-empty");
  EXPECT_STREQ(to_string(InconclusiveReason::kHistoricalQuorumUnmet),
               "historical-quorum-unmet");
  EXPECT_STREQ(to_string(InconclusiveReason::kWatchTimedOut),
               "watch-timed-out");
}

}  // namespace
}  // namespace funnel::core
