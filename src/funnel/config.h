// FUNNEL configuration.
//
// Defaults follow the paper's evaluation settings (§4.1): omega = 9 (so
// W = 34), eta = 3, the 7-minute persistence rule, a 1-hour assessment
// horizon ("operators think 1 hour is enough"), and a 30-day historical
// baseline for the seasonality-exclusion path.
#pragma once

#include "common/minute_time.h"
#include "detect/cascade.h"
#include "detect/sliding.h"
#include "detect/sst_common.h"
#include "did/did.h"

namespace funnel::obs {
class Journal;
class Registry;
class Tracer;
}  // namespace funnel::obs

namespace funnel::core {

struct FunnelConfig {
  /// SST window geometry: omega = 5 for fast mitigation, 9 for the paper's
  /// evaluation setting, 15 for more precise assessment (§3.2.3).
  detect::SstGeometry geometry{.omega = 9, .eta = 3};

  /// Detection alarm policy. The threshold applies to the IKA-SST score
  /// (robust-sigma units, slightly below the exact improved-SST threshold
  /// because the Krylov approximation is mildly conservative); persistence
  /// is the 7-minute rule, counted within a 10-window patience.
  /// The detection stage is deliberately permissive (lower threshold than a
  /// stand-alone detector would use): DiD rejects the false candidates, so
  /// FUNNEL buys recall on small KPI changes at no precision cost — the
  /// paper's FUNNEL shows the same profile (Table 1: near-total recall,
  /// with precision carried by the DiD stage).
  detect::AlarmPolicy alarm{
      .threshold = 0.22, .persistence = 7, .patience = 10};

  /// SST hot-path switches (docs/DESIGN.md, "SST hot path"). Both are
  /// opt-in; with both false the detection stage is bit-identical to the
  /// original scorer, golden reports included.
  ///
  /// `sst_fast` turns on IkaParams::warm_past: the past eigen-subspace is
  /// persisted across consecutive windows like the future one already is,
  /// with a deterministic cold restart every `sst_restart_period` scored
  /// windows. Scores are approximations of the exact path (the fidelity
  /// guard-rail ctest holds them at ≥ 0.92 correlation vs exact SVD).
  bool sst_fast = false;
  /// `sst_cascade` puts the pre-filter cascade in front of the scorer:
  /// windows whose Eq. 11 factor already bounds the score under the alarm
  /// threshold (sound), or whose raw max-CUSUM stays under a small floor,
  /// score 0 without running IKA. `cascade.sst_threshold` is overwritten
  /// with `alarm.threshold` by the assessor so the gates always respect the
  /// live policy.
  bool sst_cascade = false;
  detect::CascadeConfig cascade{};
  /// Cold-restart period of the fast path (scored windows between
  /// deterministic basis rebuilds). Ignored unless sst_fast.
  int sst_restart_period = 64;

  /// Causality determination (§3.2.4-§3.2.5).
  did::DiDConfig did{};

  /// Days of history building the seasonality-exclusion control group.
  int baseline_days = 30;

  /// Telemetry-quality thresholds gating the graceful-degradation chain
  /// (docs/ROBUSTNESS.md). When a KPI's assessed window violates them and
  /// no alarm fired, the verdict degrades to Cause::kInconclusive instead
  /// of a silent "no change" — a gap can hide exactly the shift FUNNEL is
  /// looking for. A fired alarm always proceeds to DiD: real evidence of a
  /// change outranks missing evidence of quiet.
  struct QualityThresholds {
    /// Minimum finite-sample fraction of the assessed window.
    double min_coverage = 0.5;
    /// Longest tolerated run of consecutive missing minutes.
    std::size_t max_gap_run = 15;
    /// Longest tolerated run of *identical* finite values (stuck-at
    /// collector signature). 0 (the default) disables the flatline gate —
    /// a genuinely constant KPI is legal.
    std::size_t max_flat_run = 0;
    /// Clean baseline days the §3.2.5 historical DiD must find. 1 keeps
    /// the paper's behavior (any clean day suffices); production deploys
    /// should raise it so a verdict never rests on a single day's mood.
    int historical_quorum = 1;
  };
  QualityThresholds quality{};

  /// Online mode: extra minutes past a watch's deadline before expire()
  /// force-finalizes it. A gap-starved watch (feed died, so no sample ever
  /// crosses the deadline) would otherwise hang forever; its undetermined
  /// alarms finalize as kInconclusive / kWatchTimedOut.
  MinuteTime watch_timeout = 0;

  /// Length of the DiD pre/post comparison periods in minutes. The paper's
  /// evaluation builds the groups from 1 h before/after the change (§4.1).
  MinuteTime did_window = 60;

  /// Online mode: the shortest post-change period DiD may run on — enables
  /// verdicts minutes after the change (the §5.2 incident was confirmed
  /// ~10 minutes in) instead of waiting the full did_window.
  MinuteTime min_did_window = 9;

  /// Assessment window around the change: KPI data in
  /// [change - lookback, change + horizon] is examined and only alarms at or
  /// after the change minute count.
  MinuteTime lookback = 60;
  MinuteTime horizon = 60;

  /// Self-telemetry sink (see obs/registry.h): stage-duration histograms,
  /// pipeline counters and — online — time-to-verdict are recorded here.
  /// Null (the default) disables telemetry at zero cost. Telemetry is a
  /// side channel only: assessment reports are byte-identical with it on or
  /// off. The registry must outlive every Funnel/FunnelOnline using it.
  const obs::Registry* stats = nullptr;

  /// Decision-provenance tracer (see obs/trace.h): every assessment emits a
  /// causally-linked span tree — per-KPI SST scores (raw and damped), DiD
  /// alpha/t-stat, thresholds, control-group kind — exportable as Chrome
  /// trace-event JSON or an "explain" report section. Null (the default)
  /// disables tracing at zero cost; like `stats`, it is a side channel only
  /// and reports stay byte-identical either way. The tracer must outlive
  /// every Funnel/FunnelOnline using it.
  const obs::Tracer* tracer = nullptr;

  /// Verdict-event journal (see obs/journal.h): every determination —
  /// batch or online — is appended as one schema-versioned JSONL event
  /// carrying its full decision provenance, for the triage layer
  /// (src/triage, docs/TRIAGE.md) to score, blame and mine. Null (the
  /// default) disables journaling at zero cost; like `stats` and `tracer`
  /// it is a side channel only — reports stay byte-identical either way.
  /// The journal must outlive every Funnel/FunnelOnline using it.
  const obs::Journal* journal = nullptr;

  /// Metric-store construction knobs, consumed by the entry points that own
  /// their store (funnel_detect_csv, scenario builders): hash-shard count
  /// and the async ingest-queue capacity (0 = synchronous subscriber
  /// dispatch on the producer thread). Reports are byte-identical for every
  /// combination; see tsdb::StoreOptions and docs/CONCURRENCY.md.
  std::size_t num_shards = 1;
  std::size_t ingest_queue_capacity = 0;

  /// Worker threads for the batch fan-outs (per-KPI scoring in assess, and
  /// per-change distribution in assess_window). 0 = hardware concurrency,
  /// 1 = strictly serial (no pool). Reports are byte-identical for every
  /// value: tasks write into pre-sized slots indexed by KPI/change order
  /// and each KPI is scored by a freshly reset()-ed scorer, so scheduling
  /// never shows in the output.
  std::size_t num_threads = 0;

  /// Live telemetry plane (obs/plane.h, docs/OBSERVABILITY.md "Live
  /// endpoints"), consumed by the entry points that host the pipeline
  /// (funnel_detect_csv --http-port, the ROADMAP service-mode daemon):
  /// TCP port of the embedded HTTP exposition server on 127.0.0.1.
  /// 0 (the default) = no server — and, like every obs knob, byte-identical
  /// reports and journals; -1 = bind an ephemeral port (announced by the
  /// host). Under FUNNEL_OBS=OFF the server is compiled out and any
  /// non-zero value fails fast at plane start.
  int obs_http_port = 0;

  /// Self-surveillance (obs/selfmon.h): sample the pipeline's own KPIs
  /// (dispatch lag, queue backlogs, SST µs/window, WAL commit latency,
  /// time-to-verdict) every `selfmon_tick_ms` under the reserved
  /// `__funnel_self/` topology and run the online detectors over them;
  /// degradation flips /healthz and journals a "pipeline-degradation"
  /// verdict. Side channel only — off by default, reports byte-identical
  /// either way.
  bool selfmon = false;
  std::size_t selfmon_tick_ms = 1000;
};

/// Scorer parameters implied by the config's SST hot-path switches.
inline detect::IkaParams sst_params(const FunnelConfig& config) {
  detect::IkaParams p;
  p.warm_past = config.sst_fast;
  p.restart_period = config.sst_restart_period;
  return p;
}

}  // namespace funnel::core
