// Self-surveillance overhead benchmark — µs/verdict for the batch
// assessment window with the SelfMonitor detached vs sampling aggressively.
//
// Selfmon's contract is that watching the pipeline costs the pipeline
// (almost) nothing: the monitor runs on its own thread and its only input
// is Registry::snapshot(), which merges the per-thread shards on the
// *reader* side. This bench puts a number on that claim: the same
// assess_window run with telemetry attached, measured with no monitor and
// with a monitor ticking every 25 ms — 40x faster than the production
// default (1 s), so the measured ratio is an upper bound even on a
// single-core machine where the sampler and the pipeline share one CPU.
// Reps are
// interleaved off/on/off/on so machine drift hits both sides alike, the
// reported ratio is the median of per-pair on/off ratios, and the
// µs/verdict numbers are per-side minima (the quiet-machine cost).
//
// Writes BENCH_selfmon.json (--json FILE to relocate): off/on µs/verdict,
// the overhead ratio, and the monitor's own accounting (ticks, alarms —
// alarms should be 0; a steady benchmark workload is not a degradation).
// tests/selfmon_bench_smoke.cmake runs --quick and enforces the < 2%
// acceptance bar from docs/OBSERVABILITY.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "evalkit/dataset.h"
#include "funnel/assessor.h"
#include "obs/registry.h"
#include "obs/selfmon.h"

using namespace funnel;

// Sanitizer instrumentation slows and jitters every KPI the monitor watches
// (10-20x on timings), so both the < 2% bar and the no-false-alarms bar are
// meaningless there. The JSON says so and the smoke gate skips.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FUNNEL_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FUNNEL_BENCH_SANITIZED 1
#endif
#endif

namespace {

#if defined(FUNNEL_BENCH_SANITIZED)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunCost {
  double us_per_verdict = 0.0;
  std::size_t verdicts = 0;
  std::uint64_t ticks = 0;
  std::uint64_t alarms = 0;
};

RunCost run_once(const evalkit::EvalDataset& ds, MinuteTime window_end,
                 std::size_t threads, bool quick, bool with_selfmon) {
  obs::Registry reg;
  core::FunnelConfig cfg;
  cfg.num_threads = threads;
  if (quick) cfg.baseline_days = 3;  // matches the short quick history
  cfg.stats = &reg;  // both sides pay for telemetry; selfmon is the delta
  const core::Funnel funnel(cfg, ds.topo, ds.log, ds.store);

  obs::SelfMonitorOptions smopt;
  smopt.tick_period = std::chrono::milliseconds(25);
  obs::SelfMonitor monitor(with_selfmon ? &reg : nullptr, smopt);
  if (with_selfmon) monitor.start();

  const double start = now_us();
  const auto reports = funnel.assess_window(0, window_end);
  const double elapsed = now_us() - start;
  monitor.stop();

  RunCost cost;
  for (const auto& r : reports) cost.verdicts += r.items.size();
  cost.us_per_verdict = elapsed / static_cast<double>(cost.verdicts);
  cost.ticks = monitor.ticks();
  cost.alarms = monitor.alarms_raised();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t threads = bench::threads_arg(argc, argv);
  const char* json_path = "BENCH_selfmon.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  bench::print_header("Self-surveillance overhead on assess_window");
  evalkit::DatasetParams params = bench::paper_dataset_params(quick);
  if (quick) {
    // Short runs, many reps: a robust median needs samples more than bulk.
    params.services = 4;
    params.positive_changes = 8;
    params.negative_changes = 8;
    params.history_days = 4;
  }
  const auto ds = evalkit::build_dataset(params);
  MinuteTime window_end = 0;
  for (const auto& ch : ds->log.all()) {
    window_end = std::max(window_end, ch.time);
  }
  ++window_end;

  const std::size_t reps = quick ? 15 : 9;
  std::vector<double> pair_ratios;
  double off_us = 0.0, on_us = 0.0;
  std::size_t verdicts = 0;
  std::uint64_t ticks = 0, alarms = 0;
  // Warm-up rep on each side (page cache, allocator), then interleave.
  run_once(*ds, window_end, threads, quick, false);
  run_once(*ds, window_end, threads, quick, true);
  for (std::size_t r = 0; r < reps; ++r) {
    const RunCost off = run_once(*ds, window_end, threads, quick, false);
    const RunCost on = run_once(*ds, window_end, threads, quick, true);
    pair_ratios.push_back(on.us_per_verdict / off.us_per_verdict);
    off_us = (r == 0) ? off.us_per_verdict
                      : std::min(off_us, off.us_per_verdict);
    on_us = (r == 0) ? on.us_per_verdict
                     : std::min(on_us, on.us_per_verdict);
    verdicts = off.verdicts;
    ticks += on.ticks;
    alarms += on.alarms;
  }

  std::sort(pair_ratios.begin(), pair_ratios.end());
  const double ratio = pair_ratios[pair_ratios.size() / 2];
  std::printf("verdicts/run        %zu\n", verdicts);
  std::printf("selfmon off         %.2f us/verdict (min of %zu)\n", off_us,
              reps);
  std::printf("selfmon on (25ms)   %.2f us/verdict (min of %zu)\n", on_us,
              reps);
  std::printf("overhead            %.2f%% (median of %zu pair ratios)\n",
              (ratio - 1.0) * 100.0, pair_ratios.size());
  std::printf("selfmon             %llu ticks, %llu alarms across %zu runs\n",
              static_cast<unsigned long long>(ticks),
              static_cast<unsigned long long>(alarms), reps);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  out << "{\"workload\":{\"quick\":" << (quick ? "true" : "false")
      << ",\"sanitized\":" << (kSanitized ? "true" : "false")
      << ",\"verdicts_per_run\":" << verdicts << ",\"reps\":" << reps
      << "},\"off_us_per_verdict\":" << off_us
      << ",\"on_us_per_verdict\":" << on_us
      << ",\"overhead_ratio\":" << ratio
      << ",\"selfmon\":{\"ticks\":" << ticks << ",\"alarms\":" << alarms
      << "}}\n";
  out.close();
  std::fprintf(stderr, "# wrote %s\n", json_path);
  return 0;
}
