// Assessment reports — what FUNNEL delivers to the operations team
// (Fig. 3 step 12).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "changes/change.h"
#include "detect/sliding.h"
#include "did/did.h"
#include "funnel/impact_set.h"
#include "tsdb/metric.h"
#include "tsdb/quality.h"

namespace funnel::core {

/// Outcome of the Fig. 3 decision flow for one KPI.
enum class Cause {
  kNoKpiChange,      ///< no behavior change detected at all
  kSoftwareChange,   ///< change detected and attributed to the software change
  kOtherFactors,     ///< change detected, DiD against control group rejected it
  kSeasonality,      ///< change detected, historical DiD rejected it
  kInconclusive,     ///< telemetry too dirty to decide (see InconclusiveReason)
};

const char* to_string(Cause c);

/// Machine-readable reason a verdict degraded to Cause::kInconclusive —
/// the end of the graceful-degradation chain (docs/ROBUSTNESS.md). Every
/// reason names the telemetry defect an operator must fix to get a real
/// verdict, and round-trips through report_json and the trace spans.
enum class InconclusiveReason {
  kNone,                  ///< verdict is not inconclusive
  kInsufficientPreWindow, ///< too little data before the change to score/fit
  kGapInDetectionWindow,  ///< coverage/gap thresholds violated around the change
  kControlGroupEmpty,     ///< no control siblings and the fallback failed too
  kHistoricalQuorumUnmet, ///< fewer clean baseline days than the quorum
  kWatchTimedOut,         ///< online watch expired before DiD became possible
};

const char* to_string(InconclusiveReason r);

/// Verdict for one item (S_i, c_i, k_i).
struct ItemVerdict {
  tsdb::MetricId metric;
  bool kpi_change_detected = false;
  std::optional<detect::Alarm> alarm;  ///< set when detected
  Cause cause = Cause::kNoKpiChange;
  /// Set iff cause == kInconclusive.
  InconclusiveReason inconclusive_reason = InconclusiveReason::kNone;
  std::optional<did::DiDResult> did_fit;  ///< set when DiD ran
  bool used_historical_control = false;   ///< §3.2.5 path vs §3.2.4 path
  /// The §3.2.4 control group was empty and the verdict fell back to the
  /// §3.2.5 historical control (implies used_historical_control).
  bool used_fallback_control = false;
  /// Telemetry quality of the assessed window, when the assessor measured
  /// it (batch and finalized online verdicts).
  std::optional<tsdb::QualityReport> quality;

  /// Online path only: the minute causality determination ran — the
  /// paper's rapidity metric is `determined_at - change time` (the §5.2
  /// incident: ~10 minutes). Unset for retrospective batch assessment,
  /// where the verdict has no meaningful wall-clock anchor.
  std::optional<MinuteTime> determined_at;

  bool caused_by_software_change() const {
    return cause == Cause::kSoftwareChange;
  }

  /// Minutes from change deployment to this verdict (online path only).
  std::optional<MinuteTime> time_to_verdict(MinuteTime change_time) const {
    if (!determined_at) return std::nullopt;
    return *determined_at - change_time;
  }
};

/// Full assessment of one software change.
struct AssessmentReport {
  changes::ChangeId change_id = 0;
  MinuteTime change_time = 0;
  ImpactSet impact_set;
  std::vector<ItemVerdict> items;

  std::size_t kpis_examined() const { return items.size(); }
  std::size_t kpi_changes_detected() const;
  std::size_t kpi_changes_caused() const;

  /// KPIs whose verdict degraded to kInconclusive — telemetry the
  /// operations team must repair before the change can be fully assessed.
  std::size_t kpis_inconclusive() const;

  /// True when at least one KPI change is attributed to the change — the
  /// signal that should page the operations team for a possible roll-back.
  bool change_has_impact() const { return kpi_changes_caused() > 0; }

  /// Human-readable multi-line summary.
  std::string summary() const;
};

}  // namespace funnel::core
