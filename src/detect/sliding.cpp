#include "detect/sliding.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace funnel::detect {

std::vector<double> score_series(ChangeScorer& scorer,
                                 std::span<const double> series) {
  const std::size_t w = scorer.window_size();
  std::vector<double> out;
  if (series.size() < w) return out;
  out.reserve(series.size() - w + 1);
  for (std::size_t i = 0; i + w <= series.size(); ++i) {
    out.push_back(scorer.score(series.subspan(i, w)));
  }
  return out;
}

namespace {

// Incremental k-of-n exceedance tracker shared by the batch scan and the
// online detector: alarm when at least `persistence` of the last
// `patience` windows exceeded the threshold AND the current window does.
class ExceedanceRun {
 public:
  explicit ExceedanceRun(const AlarmPolicy& policy) : policy_(policy) {
    FUNNEL_REQUIRE(policy.persistence >= 1, "persistence must be >= 1");
    FUNNEL_REQUIRE(policy.effective_patience() >= policy.persistence,
                   "patience must be >= persistence");
  }

  /// Feed the score of window index `i`; true when the alarm condition is
  /// met at this window.
  bool push(std::size_t i, double score) {
    const bool hit = std::isfinite(score) && score > policy_.threshold;
    if (hit) hits_.push_back({i, score});
    const std::size_t n = policy_.effective_patience();
    while (!hits_.empty() && hits_.front().index + n <= i) {
      hits_.erase(hits_.begin());
    }
    return hit && hits_.size() >= policy_.persistence;
  }

  std::size_t first_window() const { return hits_.front().index; }

  double peak() const {
    double p = 0.0;
    for (const auto& h : hits_) p = std::max(p, h.score);
    return p;
  }

  void reset() { hits_.clear(); }

 private:
  struct Hit {
    std::size_t index;
    double score;
  };
  AlarmPolicy policy_;
  std::vector<Hit> hits_;  // at most `patience` entries
};

// Scan for the first qualifying exceedance group starting at or after
// `from`; `resume` receives the index one past the alarming window.
std::optional<Alarm> scan(std::span<const double> scores, std::size_t window,
                          MinuteTime series_start, const AlarmPolicy& policy,
                          std::size_t from, std::size_t* resume) {
  ExceedanceRun run(policy);
  for (std::size_t i = from; i < scores.size(); ++i) {
    if (run.push(i, scores[i])) {
      Alarm a;
      a.first_window = run.first_window();
      a.peak_score = run.peak();
      a.minute = series_start + static_cast<MinuteTime>(i + window - 1);
      if (resume != nullptr) *resume = i + 1;
      return a;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Alarm> first_alarm(std::span<const double> scores,
                                 std::size_t window, MinuteTime series_start,
                                 const AlarmPolicy& policy) {
  return scan(scores, window, series_start, policy, 0, nullptr);
}

std::vector<Alarm> all_alarms(std::span<const double> scores,
                              std::size_t window, MinuteTime series_start,
                              const AlarmPolicy& policy) {
  std::vector<Alarm> out;
  std::size_t pos = 0;
  while (pos < scores.size()) {
    std::size_t resume = pos;
    const auto alarm =
        scan(scores, window, series_start, policy, pos, &resume);
    if (!alarm) break;
    out.push_back(*alarm);
    // Re-arm immediately: a sustained exceedance keeps firing every
    // `persistence` windows. This matters for attribution — a false-positive
    // run that merges into a genuine post-change response must not swallow
    // the post-change alarm.
    pos = resume;
  }
  return out;
}

std::vector<Alarm> alarm_episodes(std::span<const Alarm> alarms,
                                  MinuteTime gap) {
  FUNNEL_REQUIRE(gap >= 1, "episode gap must be positive");
  std::vector<Alarm> out;
  MinuteTime episode_end = 0;
  for (const Alarm& a : alarms) {
    // Chain on the episode's most recent member: a sustained run re-fires
    // every `persistence` windows and must stay one episode however long
    // it lasts.
    if (!out.empty() && a.minute - episode_end < gap) {
      out.back().peak_score = std::max(out.back().peak_score, a.peak_score);
      episode_end = a.minute;
      continue;
    }
    out.push_back(a);
    episode_end = a.minute;
  }
  return out;
}

std::optional<Alarm> detect_first(ChangeScorer& scorer,
                                  std::span<const double> series,
                                  MinuteTime series_start,
                                  const AlarmPolicy& policy) {
  const std::vector<double> scores = score_series(scorer, series);
  return first_alarm(scores, scorer.window_size(), series_start, policy);
}

OnlineDetector::OnlineDetector(ChangeScorer& scorer, AlarmPolicy policy,
                               MinuteTime start_minute)
    : scorer_(scorer), policy_(policy), next_minute_(start_minute) {
  FUNNEL_REQUIRE(policy_.persistence >= 1, "persistence must be >= 1");
  FUNNEL_REQUIRE(policy_.effective_patience() >= policy_.persistence,
                 "patience must be >= persistence");
  buffer_.reserve(scorer.window_size());
}

std::optional<Alarm> OnlineDetector::push(double value) {
  const std::size_t w = scorer_.window_size();
  ++next_minute_;
  buffer_.push_back(value);
  if (buffer_.size() > w) buffer_.erase(buffer_.begin());
  if (alarmed_ || buffer_.size() < w) return std::nullopt;

  const double s = scorer_.score(buffer_);
  const std::size_t i = windows_scored_++;
  const bool hit = std::isfinite(s) && s > policy_.threshold;
  if (hit) hits_.push_back({i, s});
  const std::size_t n = policy_.effective_patience();
  while (!hits_.empty() && hits_.front().index + n <= i) {
    hits_.erase(hits_.begin());
  }
  if (hit && hits_.size() >= policy_.persistence) {
    alarmed_ = true;
    Alarm a;
    a.minute = next_minute_ - 1;
    a.first_window = hits_.front().index;
    for (const Hit& h : hits_) a.peak_score = std::max(a.peak_score, h.score);
    return a;
  }
  return std::nullopt;
}

}  // namespace funnel::detect
