// Fig. 6 — the Redis load-balancing case study (§5.1).
//
// A configuration change rebalances query traffic between two classes of
// Redis servers: class A (previously saturated) sees a negative level shift
// in NIC throughput, class B (previously idle) a positive one. Although NIC
// throughput is strongly variable by nature, FUNNEL must attribute exactly
// the NIC-throughput changes to the configuration change and nothing else.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "funnel/assessor.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

int main(int, char**) {
  bench::print_header("Fig. 6: Redis query-service load-balancing change");

  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;

  const std::string svc = "redis.query";
  const int per_class = 6;
  std::vector<std::string> servers;
  for (int i = 0; i < per_class; ++i) {
    servers.push_back("redis-a" + std::to_string(i));
    servers.push_back("redis-b" + std::to_string(i));
  }
  for (const auto& s : servers) topo.add_server(svc, s);

  const int history_days = 31;
  const MinuteTime tc = history_days * kMinutesPerDay + 420;
  const MinuteTime end = tc + 120;

  // The change is deployed to every server at once (a balancing rule is
  // global): Full Launching, so determination uses the 30-day history.
  changes::SoftwareChange ch;
  ch.service = svc;
  ch.servers = servers;
  ch.time = tc;
  ch.mode = changes::LaunchMode::kFull;
  ch.type = changes::ChangeType::kConfigChange;
  ch.description = "balance query traffic between class A and class B";
  const changes::ChangeId id = log.record(ch, topo);

  // NIC throughput: bursty/variable KPI. Class A runs near capacity (~0.9
  // normalized), class B nearly idle (~0.2). The change moves both toward
  // ~0.55.
  Rng rng(61);
  std::vector<double> class_a_example, class_b_example;
  for (const auto& s : servers) {
    const bool class_a = s[6] == 'a';
    workload::VariableParams p;
    p.level = class_a ? 0.90 : 0.20;
    p.ar_coefficient = 0.6;
    p.burst_sigma = 0.02;
    p.spike_rate = 0.01;
    p.spike_scale = 0.08;
    workload::KpiStream nic(workload::make_variable(p, rng.split()));
    nic.add_effect(workload::LevelShift{tc, class_a ? -0.35 : 0.35});
    const tsdb::MetricId nic_id = tsdb::server_metric(s, "nic_throughput");
    store.insert(nic_id, tsdb::TimeSeries(0, workload::render(nic, 0, end)));

    // Unaffected companion KPIs (the rest of the impact set's 118 KPIs in
    // the paper's case).
    workload::StationaryParams mem;
    mem.level = 55.0;
    workload::KpiStream mem_stream(workload::make_stationary(mem, rng.split()));
    store.insert(tsdb::server_metric(s, "memory_utilization"),
                 tsdb::TimeSeries(0, workload::render(mem_stream, 0, end)));
    workload::VariableParams cpu;
    workload::KpiStream cpu_stream(workload::make_variable(cpu, rng.split()));
    store.insert(tsdb::server_metric(s, "cpu_context_switch"),
                 tsdb::TimeSeries(0, workload::render(cpu_stream, 0, end)));

    if (class_a && class_a_example.empty()) {
      class_a_example = store.series(nic_id).slice(tc - 720, tc + 120);
    }
    if (!class_a && class_b_example.empty()) {
      class_b_example = store.series(nic_id).slice(tc - 720, tc + 120);
    }
  }

  const core::Funnel funnel(bench::funnel_config(), topo, log, store);
  const core::AssessmentReport report = funnel.assess(id);

  std::printf("\n%s\n", report.summary().c_str());

  std::size_t nic_caused = 0, other_caused = 0;
  for (const auto& v : report.items) {
    if (!v.caused_by_software_change()) continue;
    if (v.metric.kpi == "nic_throughput") {
      ++nic_caused;
    } else {
      ++other_caused;
    }
  }
  std::printf("KPIs in impact set: %zu (paper case: 118)\n",
              report.kpis_examined());
  std::printf("KPI changes attributed to the config change: %zu "
              "(paper case: 16)\n",
              report.kpi_changes_caused());
  std::printf("  nic_throughput: %zu of %d  |  other KPIs: %zu (want 0)\n",
              nic_caused, 2 * per_class, other_caused);

  std::printf("\n# Fig. 6(a)/(b): normalized NIC throughput, minute offset "
              "vs change at 720\n");
  std::printf("# offset  class_A  class_B\n");
  for (std::size_t i = 0; i < class_a_example.size(); i += 4) {
    std::printf("%4zu %.3f %.3f\n", i, class_a_example[i],
                class_b_example[i]);
  }
  return 0;
}
