// Tests for the CUSUM (MERCURY) and MRLS (PRISM) baselines.
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

#include "common/rng.h"
#include "common/stats.h"
#include "detect/cusum.h"
#include "detect/mrls.h"
#include "detect/sliding.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::detect {
namespace {

std::vector<double> stationary_series(std::uint64_t seed, MinuteTime len,
                                      double shift = 0.0, MinuteTime tc = 0) {
  workload::StationaryParams p;
  workload::KpiStream s(workload::make_stationary(p, Rng(seed)));
  if (shift != 0.0) s.add_effect(workload::LevelShift{tc, shift});
  return workload::render(s, 0, len);
}

std::vector<double> seasonal_series(std::uint64_t seed, MinuteTime len) {
  workload::KpiStream s(
      workload::make_default(tsdb::KpiClass::kSeasonal, Rng(seed)));
  return workload::render(s, 0, len);
}

bool detects_after(ChangeScorer& scorer, std::span<const double> series,
                   MinuteTime tc, const AlarmPolicy& policy,
                   double* delay = nullptr) {
  const auto scores = score_series(scorer, series);
  for (const Alarm& a :
       all_alarms(scores, scorer.window_size(), 0, policy)) {
    if (a.minute >= tc) {
      if (delay != nullptr) *delay = static_cast<double>(a.minute - tc);
      return true;
    }
  }
  return false;
}

TEST(Cusum, MaxCusumStatistic) {
  // All-zero input accumulates nothing; a sustained +1 deviation with slack
  // 0.5 accumulates 0.5 per sample.
  EXPECT_DOUBLE_EQ(Cusum::max_cusum(std::vector<double>(10, 0.0), 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Cusum::max_cusum(std::vector<double>(10, 1.0), 0.5), 5.0);
  // Two-sided: a negative shift accumulates on the mirror side.
  EXPECT_DOUBLE_EQ(Cusum::max_cusum(std::vector<double>(10, -1.0), 0.5), 5.0);
}

TEST(Cusum, ValidatesParameters) {
  CusumParams bad;
  bad.window = 4;
  EXPECT_THROW(Cusum{bad}, InvalidArgument);
  CusumParams neg;
  neg.slack = -1.0;
  EXPECT_THROW(Cusum{neg}, InvalidArgument);
  Cusum ok{CusumParams{}};
  EXPECT_EQ(ok.window_size(), 60u);
  std::vector<double> too_short(10, 1.0);
  EXPECT_THROW((void)ok.score(too_short), InvalidArgument);
}

TEST(Cusum, NanWindowScoresNan) {
  Cusum c{CusumParams{}};
  std::vector<double> w(60, 1.0);
  w[30] = std::nan("");
  EXPECT_TRUE(std::isnan(c.score(w)));
}

TEST(Cusum, QuietWindowScoresLow) {
  Cusum c{CusumParams{}};
  std::vector<double> quiet_max;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto series = stationary_series(seed + 10, 60);
    quiet_max.push_back(c.score(series));
  }
  // Bootstrap gate zeroes most quiet windows.
  EXPECT_LT(median(quiet_max), 10.0);
}

TEST(Cusum, DetectsShiftsButSlowly) {
  const AlarmPolicy policy{.threshold = 25.0, .persistence = 1};
  int hits = 0;
  std::vector<double> delays;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Cusum c{CusumParams{}};
    const auto series = stationary_series(seed + 30, 240, 4.0, 120);
    double d = 0.0;
    if (detects_after(c, series, 120, policy, &d)) {
      ++hits;
      delays.push_back(d);
    }
  }
  EXPECT_GE(hits, 7);
  // The cumulative statistic needs threshold/(shift - slack) minutes: with
  // threshold 25 and a 4-sigma shift that is ~7+ minutes.
  EXPECT_GE(median(delays), 5.0);
}

TEST(Cusum, SeasonalTrendCausesFalseAlarms) {
  // Table 1: CUSUM precision collapses on seasonal KPIs because the
  // within-window trend reads as a mean shift.
  const AlarmPolicy policy{.threshold = 25.0, .persistence = 1};
  int fa = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Cusum c{CusumParams{}};
    const auto series = seasonal_series(seed + 50, 240);
    const auto scores = score_series(c, series);
    if (!all_alarms(scores, c.window_size(), 0, policy).empty()) ++fa;
  }
  EXPECT_GE(fa, 4);
}

TEST(Cusum, BootstrapGateSuppressesInsignificantStatistics) {
  CusumParams strict;
  strict.significance = 1.01;  // impossible rank -> every score gated to 0
  Cusum c{strict};
  const auto series = stationary_series(3, 60, 8.0, 30);
  EXPECT_DOUBLE_EQ(c.score(series), 0.0);
}

TEST(Mrls, ValidatesParameters) {
  MrlsParams bad;
  bad.window = 4;
  EXPECT_THROW(Mrls{bad}, InvalidArgument);
  MrlsParams lag;
  lag.lag = 20;
  lag.window = 32;
  EXPECT_THROW(Mrls{lag}, InvalidArgument);
  MrlsParams noscale;
  noscale.scales.clear();
  EXPECT_THROW(Mrls{noscale}, InvalidArgument);
  Mrls ok{MrlsParams{}};
  EXPECT_EQ(ok.window_size(), 32u);
  EXPECT_EQ(ok.change_offset(), 16u);
}

TEST(Mrls, NanWindowScoresNan) {
  Mrls m{MrlsParams{}};
  std::vector<double> w(32, 1.0);
  w[5] = std::nan("");
  EXPECT_TRUE(std::isnan(m.score(w)));
}

TEST(Mrls, DetectsLevelShiftQuickly) {
  const AlarmPolicy policy{.threshold = 5.0, .persistence = 3};
  int hits = 0;
  std::vector<double> delays;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Mrls m{MrlsParams{}};
    const auto series = stationary_series(seed + 70, 240, 6.0, 120);
    double d = 0.0;
    if (detects_after(m, series, 120, policy, &d)) {
      ++hits;
      delays.push_back(d);
    }
  }
  EXPECT_GE(hits, 6);
}

TEST(Mrls, SpikeSensitiveOnVariableKpis) {
  // Table 1: MRLS precision on variable KPIs is ~0.6% — single spikes
  // produce large fine-scale residuals.
  const AlarmPolicy policy{.threshold = 5.0, .persistence = 3};
  int fa = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    workload::VariableParams p;
    p.spike_rate = 0.05;
    p.spike_scale = 120.0;
    workload::KpiStream s(workload::make_variable(p, Rng(seed + 90)));
    const auto series = workload::render(s, 0, 240);
    Mrls m{MrlsParams{}};
    const auto scores = score_series(m, series);
    if (!all_alarms(scores, m.window_size(), 0, policy).empty()) ++fa;
  }
  EXPECT_GE(fa, 4);
}

TEST(Mrls, DetrendSuppressesSeasonalTrendAlarms) {
  const AlarmPolicy policy{.threshold = 7.0, .persistence = 3};
  int fa_detrended = 0, fa_raw = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto series = seasonal_series(seed + 110, 240);
    Mrls with{MrlsParams{}};
    MrlsParams p;
    p.detrend = false;
    Mrls without{p};
    if (!all_alarms(score_series(with, series), with.window_size(), 0,
                    policy)
             .empty()) {
      ++fa_detrended;
    }
    if (!all_alarms(score_series(without, series), without.window_size(), 0,
                    policy)
             .empty()) {
      ++fa_raw;
    }
  }
  EXPECT_LE(fa_detrended, fa_raw);
  EXPECT_LE(fa_detrended, 4);
}

TEST(Mrls, RobustToBaselineContamination) {
  // A contaminated baseline (transient excursion in the past half) must not
  // stop MRLS from modelling the dominant level: the IRLS downweights the
  // contaminated columns.
  const AlarmPolicy policy{.threshold = 5.0, .persistence = 3};
  int fa = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    workload::StationaryParams p;
    workload::KpiStream s(workload::make_stationary(p, Rng(seed + 130)));
    s.add_effect(workload::TransientSpike{100, 2, 8.0});
    const auto series = workload::render(s, 0, 200);
    Mrls m{MrlsParams{}};
    const auto scores = score_series(m, series);
    // Count alarms persisting beyond the spike neighbourhood.
    for (const Alarm& a :
         all_alarms(scores, m.window_size(), 0, policy)) {
      if (a.minute > 140) {
        ++fa;
        break;
      }
    }
  }
  EXPECT_LE(fa, 1);
}

}  // namespace
}  // namespace funnel::detect
