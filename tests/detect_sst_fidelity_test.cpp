// Guard-rail for the SST fast path: the warm-started IKA scorer must stay
// highly correlated with the exact-SVD ImprovedSst reference on every KPI
// class. The acceptance bar is Pearson correlation >= 0.92 — the same
// fidelity standard the ablation bench (ablation_ika_fidelity) reports for
// the default IKA path. A regression here means the warm-start recurrence
// or the restart policy drifted from the Eq. 13 subspace it approximates.
#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "detect/ika_sst.h"
#include "detect/improved_sst.h"
#include "detect/sliding.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::detect {
namespace {

constexpr SstGeometry kGeom{.omega = 9, .eta = 3};
constexpr double kMinCorrelation = 0.92;

// Finite-pair correlation: windows either scorer NaNs are excluded (both
// NaN the same windows — asserted by detect_sst_warmstart_test).
double finite_correlation(std::span<const double> a,
                          std::span<const double> b) {
  std::vector<double> fa, fb;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isfinite(a[i]) && std::isfinite(b[i])) {
      fa.push_back(a[i]);
      fb.push_back(b[i]);
    }
  }
  return correlation(fa, fb);
}

class FastPathFidelity : public ::testing::TestWithParam<tsdb::KpiClass> {};

TEST_P(FastPathFidelity, CorrelatesWithExactSvdAboveBar) {
  const tsdb::KpiClass cls = GetParam();
  const int c = static_cast<int>(cls);

  // The ablation workload: a KPI with a level shift and a later ramp, so
  // the score trajectory has structure to correlate over (a flat all-zero
  // score vector has no defined correlation).
  workload::KpiStream s(
      workload::make_default(cls, Rng(10 + static_cast<std::uint64_t>(c))));
  s.add_effect(workload::LevelShift{200, 8.0});
  s.add_effect(workload::Ramp{400, 430, -6.0});
  const std::vector<double> series = workload::render(s, 0, 520);

  ImprovedSst exact(kGeom);
  IkaParams p;
  p.warm_past = true;
  IkaSst fast(kGeom, p);

  const auto se = score_series(exact, series);
  const auto sf = score_series(fast, series);
  ASSERT_EQ(se.size(), sf.size());

  const double corr = finite_correlation(se, sf);
  EXPECT_GE(corr, kMinCorrelation)
      << "fast-path fidelity regressed on " << tsdb::to_string(cls);
}

INSTANTIATE_TEST_SUITE_P(AllKpiClasses, FastPathFidelity,
                         ::testing::Values(tsdb::KpiClass::kSeasonal,
                                           tsdb::KpiClass::kStationary,
                                           tsdb::KpiClass::kVariable));

}  // namespace
}  // namespace funnel::detect
