// Plain-text import/export for KPI series and whole metric stores.
//
// Two formats:
//   * CSV series: `minute,value` rows (header optional; NaN/empty value =
//     collection gap). This is the interchange format of the command-line
//     tools — export a KPI from any monitoring system and run FUNNEL's
//     detectors on it.
//   * Store snapshot: a line-oriented text format bundling many metrics
//     ("# metric <kind> <entity> <kpi> <start> <n>" followed by n sample
//     lines), used to persist or ship synthetic scenarios.
#pragma once

#include <iosfwd>
#include <string>

#include "tsdb/series.h"
#include "tsdb/store.h"

namespace funnel::tsdb {

/// Write `series` as CSV (`minute,value` with a header row).
void write_series_csv(std::ostream& out, const TimeSeries& series);

/// Parse a CSV series. Accepts an optional header row, blank lines and
/// `#` comments; minutes must be strictly increasing (skipped minutes
/// become NaN gaps; duplicate or backwards timestamps are rejected with a
/// line-numbered diagnostic). Empty value fields and the literals nan/NaN
/// parse as gaps. Throws InvalidArgument on malformed rows.
TimeSeries read_series_csv(std::istream& in);

/// Convenience file wrappers (throw NotFound when the file cannot be
/// opened).
void save_series_csv(const std::string& path, const TimeSeries& series);
TimeSeries load_series_csv(const std::string& path);

/// Write every metric of the store in the snapshot format.
void write_store(std::ostream& out, const MetricStore& store);

/// Read a snapshot into a store (which must not already contain any of the
/// snapshot's metrics). Throws InvalidArgument on malformed input.
void read_store(std::istream& in, MetricStore& store);

void save_store(const std::string& path, const MetricStore& store);
void load_store(const std::string& path, MetricStore& store);

}  // namespace funnel::tsdb
