#!/usr/bin/env bash
# Build and run the concurrency test suite under ThreadSanitizer.
#
# This is the FUNNEL_SANITIZE=thread ctest job: it configures a dedicated
# build tree with -DFUNNEL_SANITIZE=thread and runs the tests that exercise
# shared state across threads — the sharded store + ingest dispatcher, the
# thread pool, the parallel assessment engine (including the SST hot path:
# per-slot warm-started scorers reset between KPI streams), the online
# assessor, the telemetry registry, the tracer's cross-thread span
# propagation, the chaos fault grid (dirty feeds through both pipelines,
# docs/ROBUSTNESS.md), and the warm-start differential suite (stateful
# scorer lifecycle + batched Hankel kernels), the verdict journal's
# MPSC writer thread plus its live triage-observer tap, the persistent
# segment store (WAL writer thread, background compaction, crash-replay
# recovery — docs/STORAGE.md), and the live telemetry plane (HTTP worker
# pool serving Registry snapshots while hot-path recorders run, the selfmon
# background sampler — docs/OBSERVABILITY.md "Live endpoints"), and the
# multi-tenant service plane (HTTP workers racing ingest/changes/report
# against per-tenant locks, quotas and quarantine — docs/SERVICE.md).
# docs/CONCURRENCY.md describes the model these tests pin down; a TSan
# report here means that model has been violated.
#
# Usage: scripts/tsan_concurrency.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

TARGETS=(
  tsdb_sharded_store_test
  common_thread_pool_test
  funnel_parallel_test
  funnel_online_test
  obs_registry_test
  obs_trace_test
  funnel_trace_test
  funnel_chaos_test
  detect_sst_warmstart_test
  funnel_journal_test
  tsdb_persist_test
  funnel_persist_replay_test
  obs_server_test
  obs_selfmon_test
  service_test
)

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFUNNEL_SANITIZE=thread
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${TARGETS[@]}"

# halt_on_error: a single race fails the job instead of scrolling past.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
FILTER="$(IFS='|'; echo "${TARGETS[*]}")"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -R "^(${FILTER})$"

echo "tsan concurrency suite: OK"
