#include "workload/generators.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace funnel::workload {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

class SeasonalKpi final : public KpiGenerator {
 public:
  SeasonalKpi(SeasonalParams p, Rng rng) : p_(p), rng_(rng) {}

  double sample(MinuteTime t) override {
    const double day_pos =
        static_cast<double>(minute_of_day(t + static_cast<MinuteTime>(p_.phase_minutes))) /
        static_cast<double>(kMinutesPerDay);
    // Continuous week position — the weekly swell must not step at
    // midnight, or every midnight would read as a level shift.
    const MinuteTime week_minute =
        ((t % kMinutesPerWeek) + kMinutesPerWeek) % kMinutesPerWeek;
    const double week_pos =
        static_cast<double>(week_minute) / static_cast<double>(kMinutesPerWeek);
    double v = p_.base;
    v += p_.daily_amplitude * std::sin(kTwoPi * day_pos);
    v += p_.second_harmonic * std::sin(2.0 * kTwoPi * day_pos + 0.8);
    v += p_.weekly_amplitude * std::sin(kTwoPi * week_pos);
    v += rng_.gaussian(0.0, p_.noise_sigma);
    return v;
  }

  tsdb::KpiClass kpi_class() const override {
    return tsdb::KpiClass::kSeasonal;
  }

 private:
  SeasonalParams p_;
  Rng rng_;
};

class StationaryKpi final : public KpiGenerator {
 public:
  StationaryKpi(StationaryParams p, Rng rng) : p_(p), rng_(rng) {}

  double sample(MinuteTime) override {
    return p_.level + rng_.gaussian(0.0, p_.noise_sigma);
  }

  tsdb::KpiClass kpi_class() const override {
    return tsdb::KpiClass::kStationary;
  }

 private:
  StationaryParams p_;
  Rng rng_;
};

class VariableKpi final : public KpiGenerator {
 public:
  VariableKpi(VariableParams p, Rng rng) : p_(p), rng_(rng) {
    FUNNEL_REQUIRE(p_.ar_coefficient >= 0.0 && p_.ar_coefficient < 1.0,
                   "AR coefficient must be in [0, 1)");
  }

  double sample(MinuteTime) override {
    state_ = p_.ar_coefficient * state_ + rng_.gaussian(0.0, p_.burst_sigma);
    double v = p_.level + state_;
    if (rng_.bernoulli(p_.spike_rate)) {
      const double magnitude = rng_.exponential(1.0 / p_.spike_scale);
      v += rng_.bernoulli(0.5) ? magnitude : -magnitude;
    }
    return v;
  }

  tsdb::KpiClass kpi_class() const override {
    return tsdb::KpiClass::kVariable;
  }

 private:
  VariableParams p_;
  Rng rng_;
  double state_ = 0.0;
};

}  // namespace

std::unique_ptr<KpiGenerator> make_seasonal(SeasonalParams p, Rng rng) {
  return std::make_unique<SeasonalKpi>(p, rng);
}

std::unique_ptr<KpiGenerator> make_stationary(StationaryParams p, Rng rng) {
  return std::make_unique<StationaryKpi>(p, rng);
}

std::unique_ptr<KpiGenerator> make_variable(VariableParams p, Rng rng) {
  return std::make_unique<VariableKpi>(p, rng);
}

std::unique_ptr<KpiGenerator> make_default(tsdb::KpiClass c, Rng rng) {
  switch (c) {
    case tsdb::KpiClass::kSeasonal:
      return make_seasonal({}, rng);
    case tsdb::KpiClass::kStationary:
      return make_stationary({}, rng);
    case tsdb::KpiClass::kVariable:
      return make_variable({}, rng);
  }
  throw InvalidArgument("unknown KPI class");
}

}  // namespace funnel::workload
