// Symmetric tridiagonal eigensolver: QL iteration with implicit shifts.
//
// This is the "QL iteration" step of §3.2.3 (citing Numerical Recipes): the
// Lanczos process reduces C = B·Bᵀ to a k x k tridiagonal T_k, whose
// eigenpairs the QL iteration extracts "extremely fast" — k is 5 or 6 in
// FUNNEL, so this is a handful of 2x2 rotations per window.
#pragma once

#include "linalg/matrix.h"
#include "linalg/sym_eigen.h"

namespace funnel::linalg {

/// A symmetric tridiagonal matrix: `diag` has n entries, `subdiag` n-1.
struct Tridiagonal {
  Vector diag;
  Vector subdiag;

  std::size_t size() const { return diag.size(); }

  /// Materialize as a dense matrix (testing helper).
  Matrix to_dense() const;
};

/// Eigendecomposition of a symmetric tridiagonal matrix by implicit-shift QL
/// (the classic `tqli` routine). Eigenvalues are returned in non-increasing
/// order, eigenvectors as columns of `vectors` (expressed in the basis the
/// tridiagonal matrix is given in).
///
/// Throws NumericalError if an eigenvalue fails to converge in 50 iterations.
SymEigen tridiag_eigen(const Tridiagonal& t);

/// Eigenvalues only (same algorithm without eigenvector accumulation —
/// used where only Ritz values are needed).
Vector tridiag_eigenvalues(const Tridiagonal& t);

}  // namespace funnel::linalg
