#include "common/rng.h"

#include <cmath>

namespace funnel {

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::exponential(double rate) {
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::heavy_tailed(double dof) {
  const double z = gaussian();
  double chi2 = 0.0;
  for (int i = 0; i < static_cast<int>(dof); ++i) {
    const double g = gaussian();
    chi2 += g * g;
  }
  if (chi2 <= 0.0) return z;
  return z / std::sqrt(chi2 / dof);
}

Rng Rng::split() {
  // Derive a fresh seed from this stream; mix so that consecutive splits do
  // not produce nearby mt19937 states.
  const std::uint64_t raw = engine_();
  const std::uint64_t mixed = raw * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  return Rng(mixed);
}

}  // namespace funnel
