// Batch assessment — the Fig. 3 decision flow.
//
// For a recorded software change, Funnel::assess:
//   1. identifies the impact set (§3.1);
//   2. runs the improved+IKA SST detector over every impact-set KPI around
//      the change (step 2), applying the 7-minute persistence rule;
//   3. for each detected KPI change, determines causality (steps 4-11):
//      affected-service KPIs and Full-Launching changes compare against the
//      KPI's own 30-day history (seasonality exclusion, §3.2.5); everything
//      else compares treated vs control entities via DiD (§3.2.4);
//   4. assembles the AssessmentReport delivered to the operations team.
#pragma once

#include "changes/change_log.h"
#include "funnel/config.h"
#include "funnel/impact_set.h"
#include "funnel/report.h"
#include "topology/topology.h"
#include "tsdb/store.h"

namespace funnel::core {

class Funnel {
 public:
  Funnel(FunnelConfig config, const topology::ServiceTopology& topo,
         const changes::ChangeLog& log, const tsdb::MetricStore& store);

  /// Assess one recorded change against the data currently in the store.
  AssessmentReport assess(changes::ChangeId id) const;

  /// Assess every change recorded in [t0, t1) — the daily batch the
  /// operations team reviews (Table 3's workload).
  std::vector<AssessmentReport> assess_window(MinuteTime t0,
                                              MinuteTime t1) const;

  /// The Fig. 3 flow for a single KPI (exposed for tests and the online
  /// assessor).
  ItemVerdict assess_metric(const changes::SoftwareChange& change,
                            const ImpactSet& set,
                            const tsdb::MetricId& metric) const;

  const FunnelConfig& config() const { return config_; }

  /// Causality determination given a raised alarm (Fig. 3 steps 4-11).
  /// `post_window` caps the post-change period (the online assessor passes
  /// the data observed so far). Also used by FunnelOnline.
  void determine_cause(const changes::SoftwareChange& change,
                       const ImpactSet& set, const tsdb::MetricId& metric,
                       MinuteTime post_window, ItemVerdict& verdict) const;

 private:
  FunnelConfig config_;
  const topology::ServiceTopology& topo_;
  const changes::ChangeLog& log_;
  const tsdb::MetricStore& store_;
};

}  // namespace funnel::core
