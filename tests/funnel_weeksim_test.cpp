// Integration smoke test: a multi-day, multi-service deployment simulation
// driven end-to-end through the public API — the Table-3 workload in
// miniature. Exercises dataset construction, batch assessment of every
// change, JSON export, and the aggregate quality bars FUNNEL must clear.
#include <gtest/gtest.h>

#include <map>

#include "common/stats.h"
#include "evalkit/dataset.h"
#include "evalkit/evaluate.h"
#include "funnel/assessor.h"
#include "funnel/report_json.h"

namespace funnel {
namespace {

class WeekSim : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    evalkit::DatasetParams p;
    p.seed = 99;
    p.services = 4;
    p.servers_per_service = 5;
    p.treated_servers = 2;
    p.positive_changes = 6;
    p.negative_changes = 10;
    p.history_days = 31;  // full 30-day baseline
    p.confounder_probability = 0.4;
    ds_ = evalkit::build_dataset(p).release();
  }

  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static evalkit::EvalDataset* ds_;
};

evalkit::EvalDataset* WeekSim::ds_ = nullptr;

TEST_F(WeekSim, EveryChangeAssessesWithoutError) {
  const core::Funnel funnel(core::FunnelConfig{}, ds_->topo, ds_->log,
                            ds_->store);
  std::size_t items = 0;
  for (const auto& ch : ds_->log.all()) {
    const core::AssessmentReport r = funnel.assess(ch.id);
    EXPECT_EQ(r.change_id, ch.id);
    EXPECT_GT(r.kpis_examined(), 0u);
    items += r.kpis_examined();
    // JSON export never throws and is non-trivial.
    EXPECT_GT(core::to_json(r).size(), 50u);
  }
  EXPECT_EQ(items, ds_->items.size());
}

TEST_F(WeekSim, QualityBars) {
  const evalkit::MethodResult r =
      evalkit::evaluate_funnel(*ds_, core::FunnelConfig{});
  const evalkit::ConfusionMatrix cm = r.total();
  // The paper reports >99.8% accuracy and ~98% deployment precision; the
  // miniature simulation must clear slightly relaxed bars.
  EXPECT_GT(cm.accuracy(), 0.97) << cm.to_string();
  EXPECT_GT(cm.recall(), 0.75) << cm.to_string();
  EXPECT_GT(cm.precision(), 0.75) << cm.to_string();
  // And delays live in the paper's regime (median 13.2 min).
  ASSERT_FALSE(r.delays.empty());
  EXPECT_LT(median(r.delays), 25.0);
}

TEST_F(WeekSim, NegativeChangesStayQuietUnderHigherThreshold) {
  core::FunnelConfig cfg;
  cfg.did.alpha_threshold = 1.0;  // the non-sensitive-service setting
  const core::Funnel funnel(cfg, ds_->topo, ds_->log, ds_->store);
  std::size_t spurious_changes = 0;
  for (changes::ChangeId id : ds_->negative_change_ids) {
    if (funnel.assess(id).change_has_impact()) ++spurious_changes;
  }
  // At most a small fraction of no-op changes may be flagged at all.
  EXPECT_LE(spurious_changes, ds_->negative_change_ids.size() / 3);
}

TEST_F(WeekSim, AssessWindowCoversTheWholePeriod) {
  const core::Funnel funnel(core::FunnelConfig{}, ds_->topo, ds_->log,
                            ds_->store);
  const auto reports = funnel.assess_window(
      ds_->change_day_start, ds_->change_day_start + 7 * kMinutesPerDay);
  EXPECT_EQ(reports.size(), ds_->log.size());
}

}  // namespace
}  // namespace funnel
