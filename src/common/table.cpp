#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace funnel {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FUNNEL_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  FUNNEL_REQUIRE(row.size() == header_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << '|' << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace funnel
