// Bounded MPSC ingest queue + dispatcher thread — the MetricStore's async
// notification path (see docs/CONCURRENCY.md, "Ingest queue").
//
// In the paper's deployment the KPI database pushes samples to FUNNEL
// "within one second" (§2.2) while thousands of agents keep writing; the
// producing agents must never stall on a slow consumer. The store therefore
// hands each appended sample to this dispatcher: producers enqueue under a
// backpressure policy (block until space, or shed the oldest queued sample)
// and a single dispatcher thread drains the queue in FIFO order and runs the
// subscriber callbacks. One consumer thread means delivery order equals
// enqueue order — per-metric in-order delivery falls out for any
// single-writer-per-metric producer layout.
//
// Guarantees (regression-tested in tsdb_sharded_store_test):
//   * flush() returns only after every sample submitted before the call has
//     been delivered or dropped — the barrier batch tests use to make async
//     runs byte-identical to synchronous ones.
//   * await_inflight() returns only after the callback the dispatcher is
//     currently running (if any) has completed — the teeth behind the
//     store's "after unsubscribe() returns, the callback never runs again"
//     contract.
//   * The destructor drains the queue, then joins the thread.
//   * A throwing callback never kills the dispatcher; the exception is
//     swallowed (and counted as `tsdb.store.callback_exceptions` when a
//     registry is attached). Async consumers have no frame to propagate to.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "common/minute_time.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tsdb/metric.h"

namespace funnel::tsdb {

/// What submit() does when the queue is full.
enum class Backpressure {
  kBlock,      ///< producer waits for space — lossless, applies backpressure
  kDropOldest  ///< shed the oldest queued sample — lossy, producers never wait
};

/// One queued notification. `enqueued` is stamped only while a telemetry
/// registry is attached (the uninstrumented path never reads the clock).
/// `trace_ctx` is the producer's ambient trace context at submit() time
/// (obs/trace.h) — the dispatcher re-installs it around the sink call, so
/// spans opened inside subscriber callbacks attach under the producing
/// append's span. Empty (and costless) when no span was open.
struct Sample {
  MetricId id;
  MinuteTime t = 0;
  double value = 0.0;
  std::chrono::steady_clock::time_point enqueued{};
  obs::SpanContext trace_ctx{};
};

class IngestDispatcher {
 public:
  using Sink = std::function<void(const Sample&)>;

  /// Starts the dispatcher thread. `capacity` >= 1; `sink` is invoked once
  /// per delivered sample, on the dispatcher thread, with no locks held.
  IngestDispatcher(std::size_t capacity, Backpressure policy, Sink sink);

  /// Drains everything already queued, then joins the thread.
  ~IngestDispatcher();

  IngestDispatcher(const IngestDispatcher&) = delete;
  IngestDispatcher& operator=(const IngestDispatcher&) = delete;

  /// Enqueue one sample (any thread). Blocks or sheds per the policy.
  void submit(Sample s);

  /// Barrier: returns once every sample submitted before this call has been
  /// delivered or dropped. Called from the sink itself it is a no-op (it
  /// could never finish — the dispatcher is busy running the caller).
  void flush();

  /// Returns once the sink call in flight at entry (if any) has completed.
  /// No-op on the dispatcher thread.
  void await_inflight();

  bool on_dispatcher_thread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

  /// Samples shed by kDropOldest so far.
  std::uint64_t dropped() const;

  std::size_t depth() const;

  /// Configured queue capacity (the admission-control denominator the
  /// service layer's queue-share caps divide by).
  std::size_t capacity() const { return capacity_; }

  /// Attach a telemetry registry (null detaches): queue-depth and
  /// queue-capacity gauges (`tsdb.store.queue_depth` /
  /// `tsdb.store.queue_capacity` — the pair the selfmon backlog fraction
  /// and the /healthz dispatcher check divide), enqueue-to-dispatch lag
  /// histogram (`tsdb.store.dispatch_lag_us`), shed-sample counter
  /// (`tsdb.store.dropped_samples`). The registry must outlive this object.
  void set_stats(const obs::Registry* stats) {
    stats_.store(stats, std::memory_order_relaxed);
    if (stats != nullptr) {
      stats->set("tsdb.store.queue_capacity", static_cast<double>(capacity_));
      stats->declare_gauge("tsdb.store.queue_depth");
      stats->declare_histogram("tsdb.store.dispatch_lag_us");
      stats->declare_counter("tsdb.store.dropped_samples");
    }
  }

 private:
  void run();

  const std::size_t capacity_;
  const Backpressure policy_;
  const Sink sink_;

  mutable std::mutex mutex_;
  std::condition_variable space_cv_;    ///< producers waiting for room
  std::condition_variable arrival_cv_;  ///< dispatcher waiting for work
  std::condition_variable settled_cv_;  ///< flush/await waiters
  std::deque<Sample> queue_;
  std::uint64_t submitted_ = 0;  ///< accepted into the queue
  std::uint64_t settled_ = 0;    ///< delivered + dropped
  std::uint64_t dropped_ = 0;
  bool in_sink_ = false;
  bool stop_ = false;

  std::atomic<const obs::Registry*> stats_{nullptr};
  std::thread thread_;  ///< last member: started after everything above
};

}  // namespace funnel::tsdb
