// Deterministic equivalence of the parallel batch assessment engine: over a
// seeded multi-service workload, assess_window must produce byte-identical
// serialized reports for num_threads 1 (today's serial path), 2 and 8 —
// scheduling must never show in the output. Also pins down the engine-level
// guarantees the equivalence rests on: per-slot scorers are reset between
// KPI streams, and single-change assess matches the public assess_metric.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "evalkit/dataset.h"
#include "funnel/assessor.h"
#include "funnel/report_json.h"

namespace funnel {
namespace {

class ParallelEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    evalkit::DatasetParams p;
    p.seed = 2718;
    p.services = 3;
    p.servers_per_service = 4;
    p.treated_servers = 2;
    p.positive_changes = 4;
    p.negative_changes = 6;
    p.history_days = 4;
    p.confounder_probability = 0.4;
    ds_ = evalkit::build_dataset(p).release();
  }

  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static core::FunnelConfig config(std::size_t threads, bool fast = false,
                                   bool cascade = false) {
    core::FunnelConfig cfg;
    cfg.baseline_days = 3;  // the short history has no 30-day baseline
    cfg.num_threads = threads;
    cfg.sst_fast = fast;
    cfg.sst_cascade = cascade;
    return cfg;
  }

  static MinuteTime window_end() {
    MinuteTime last = 0;
    for (const auto& ch : ds_->log.all()) last = std::max(last, ch.time);
    return last + 1;
  }

  /// The full window's reports, serialized — the byte-level artifact the
  /// operations team (and this test) compares.
  static std::string rendered_reports(std::size_t threads, bool fast = false,
                                      bool cascade = false) {
    const core::Funnel funnel(config(threads, fast, cascade), ds_->topo,
                              ds_->log, ds_->store);
    std::string out;
    for (const core::AssessmentReport& r :
         funnel.assess_window(0, window_end())) {
      out += core::to_json(r);
      out += '\n';
    }
    return out;
  }

  static evalkit::EvalDataset* ds_;
};

evalkit::EvalDataset* ParallelEquivalence::ds_ = nullptr;

TEST_F(ParallelEquivalence, AssessWindowIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = rendered_reports(1);
  ASSERT_FALSE(serial.empty());
  // A real workload, not a degenerate one: some change must carry impact.
  EXPECT_NE(serial.find("\"change_has_impact\":true"), std::string::npos);
  EXPECT_EQ(serial, rendered_reports(2)) << "2 threads diverged from serial";
  EXPECT_EQ(serial, rendered_reports(8)) << "8 threads diverged from serial";
}

TEST_F(ParallelEquivalence, RepeatedParallelRunsAreStable) {
  // Scheduling varies run to run; the bytes must not.
  EXPECT_EQ(rendered_reports(8), rendered_reports(8));
}

// The fast path is the one with warm-start state to leak: each slot's
// scorer persists both eigen-bases, its warm flags, and the restart
// counter across KPI streams, so byte-identity across thread counts is
// exactly the per-slot reset() contract under load. Which KPIs land on
// which slot varies with the thread count — only a complete reset makes
// that invisible.
TEST_F(ParallelEquivalence, FastPathIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = rendered_reports(1, /*fast=*/true);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("\"change_has_impact\":true"), std::string::npos);
  EXPECT_EQ(serial, rendered_reports(2, true)) << "2 threads diverged";
  EXPECT_EQ(serial, rendered_reports(8, true)) << "8 threads diverged";
}

// Same, with the pre-filter cascade in front: gate decisions are
// window-local and the scorer only runs on surviving windows, so the
// reports must still be byte-identical regardless of scheduling.
TEST_F(ParallelEquivalence, CascadedFastPathIsByteIdenticalAcrossThreadCounts) {
  const std::string serial =
      rendered_reports(1, /*fast=*/true, /*cascade=*/true);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, rendered_reports(2, true, true)) << "2 threads diverged";
  EXPECT_EQ(serial, rendered_reports(8, true, true)) << "8 threads diverged";
}

TEST_F(ParallelEquivalence, SingleChangeAssessMatchesAcrossThreadCounts) {
  const core::Funnel serial(config(1), ds_->topo, ds_->log, ds_->store);
  const core::Funnel parallel(config(4), ds_->topo, ds_->log, ds_->store);
  for (const auto& ch : ds_->log.all()) {
    EXPECT_EQ(core::to_json(serial.assess(ch.id)),
              core::to_json(parallel.assess(ch.id)))
        << "change " << ch.id;
  }
}

TEST_F(ParallelEquivalence, ParallelItemsStayInImpactMetricOrder) {
  // Slot-indexed writes: item order must equal impact_metrics order, never
  // completion order.
  const core::Funnel parallel(config(8), ds_->topo, ds_->log, ds_->store);
  for (const auto& ch : ds_->log.all()) {
    const core::AssessmentReport r = parallel.assess(ch.id);
    const std::vector<tsdb::MetricId> expected =
        core::impact_metrics(r.impact_set, ds_->store);
    ASSERT_EQ(r.items.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(r.items[i].metric, expected[i]);
    }
  }
}

}  // namespace
}  // namespace funnel
