// A 1-minute-binned KPI time series.
//
// Time is an absolute minute index (MinuteTime); the series stores one
// sample per minute starting at `start_time()`. Missing samples (collection
// gaps) are stored as NaN — the detectors treat NaN-containing windows as
// not scoreable rather than producing bogus scores.
#pragma once

#include <span>
#include <vector>

#include "common/minute_time.h"

namespace funnel::tsdb {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(MinuteTime start) : start_(start) {}
  TimeSeries(MinuteTime start, std::vector<double> values)
      : start_(start), values_(std::move(values)) {}

  /// First minute with a sample.
  MinuteTime start_time() const { return start_; }

  /// One past the last minute with a sample.
  MinuteTime end_time() const {
    return start_ + static_cast<MinuteTime>(values_.size());
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Append the sample for minute end_time().
  void append(double value) { values_.push_back(value); }

  /// Append a sample at an explicit minute. Appending at end_time() extends
  /// the series by one; appending beyond it fills the gap with NaN; appending
  /// before start or into the past throws.
  void append_at(MinuteTime t, double value);

  /// What upsert_at did with a sample.
  enum class Upsert {
    kAppended,   ///< extended the series (possibly NaN-filling a gap first)
    kFilled,     ///< landed in a past NaN hole (late delivery)
    kDuplicate,  ///< past minute already held a finite sample; kept the old
    kTooOld,     ///< before start_time(); dropped
  };

  /// Order-tolerant append for dirty ingest feeds: at/after end_time() this
  /// is append_at; inside the covered range it fills NaN holes first-write-
  /// wins (a duplicate or conflicting re-delivery never overwrites data, so
  /// any delivery order converges to the same series); before start_time()
  /// the sample is dropped. Never throws. NaN deliveries for an unseen
  /// minute are stored as the gap they are.
  Upsert upsert_at(MinuteTime t, double value);

  /// Sample at minute t. Throws InvalidArgument when t is out of range.
  double at(MinuteTime t) const;

  bool contains(MinuteTime t) const { return t >= start_ && t < end_time(); }

  /// True when [t0, t1) is fully inside the series.
  bool covers(MinuteTime t0, MinuteTime t1) const {
    return t0 >= start_ && t1 <= end_time() && t0 <= t1;
  }

  std::span<const double> values() const { return values_; }

  /// Zero-copy view of [t0, t1). Throws when not covered.
  std::span<const double> view(MinuteTime t0, MinuteTime t1) const;

  /// Copy of [t0, t1). Throws when not covered.
  std::vector<double> slice(MinuteTime t0, MinuteTime t1) const;

  /// True when [t0, t1) is covered and contains no NaN.
  bool clean(MinuteTime t0, MinuteTime t1) const;

 private:
  MinuteTime start_ = 0;
  std::vector<double> values_;
};

/// Pointwise mean of several series over [t0, t1); series that do not cover
/// the range or hold NaN at a minute are excluded from that minute's mean.
/// Minutes with no contributing series become NaN.
TimeSeries aggregate_mean(std::span<const TimeSeries* const> series,
                          MinuteTime t0, MinuteTime t1);

}  // namespace funnel::tsdb
