// Tests for Robust PCA via inexact ALM (the paper's reference [17]).
#include "linalg/robust_pca.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/svd.h"

namespace funnel::linalg {
namespace {

Matrix low_rank_matrix(std::size_t m, std::size_t n, std::size_t rank,
                       Rng& rng) {
  Matrix out(m, n);
  for (std::size_t r = 0; r < rank; ++r) {
    Vector u(m), v(n);
    for (double& x : u) x = rng.gaussian();
    for (double& x : v) x = rng.gaussian();
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) out(i, j) += u[i] * v[j];
    }
  }
  return out;
}

std::size_t numerical_rank(const Matrix& m, double tol) {
  const Svd svd = jacobi_svd(m);
  std::size_t rank = 0;
  for (double s : svd.singular_values) {
    if (s > tol * svd.singular_values[0]) ++rank;
  }
  return rank;
}

TEST(RobustPca, RecoversLowRankPlusSparse) {
  Rng rng(5);
  const Matrix l0 = low_rank_matrix(12, 10, 2, rng);
  Matrix s0(12, 10);
  // ~8% sparse large corruptions.
  for (int k = 0; k < 10; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, 11));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, 9));
    s0(i, j) = rng.bernoulli(0.5) ? 8.0 : -8.0;
  }
  Matrix m(12, 10);
  for (std::size_t i = 0; i < m.data().size(); ++i) {
    m.data()[i] = l0.data()[i] + s0.data()[i];
  }

  const RobustPcaResult r = robust_pca(m);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 3);
  // Exact decomposition: L + S == M.
  Matrix sum(12, 10);
  for (std::size_t i = 0; i < sum.data().size(); ++i) {
    sum.data()[i] = r.low_rank.data()[i] + r.sparse.data()[i];
  }
  EXPECT_LT(max_abs_difference(sum, m), 1e-4);
  // Recovered L close to the truth and genuinely low-rank.
  // Matrices this small sit at the edge of RPCA's incoherence conditions,
  // so recovery is good-but-not-exact.
  EXPECT_LT(frobenius_distance(r.low_rank, l0),
            0.25 * frobenius_distance(Matrix(12, 10), l0));
  EXPECT_LE(numerical_rank(r.low_rank, 1e-3), 5u);
}

TEST(RobustPca, CleanLowRankInputHasSmallSparsePart) {
  Rng rng(6);
  const Matrix l0 = low_rank_matrix(9, 9, 2, rng);
  const RobustPcaResult r = robust_pca(l0);
  EXPECT_TRUE(r.converged);
  double sparse_energy = 0.0, total = 0.0;
  for (double v : r.sparse.data()) sparse_energy += v * v;
  for (double v : l0.data()) total += v * v;
  EXPECT_LT(sparse_energy, 0.15 * total);
}

TEST(RobustPca, ZeroMatrixReturnsImmediately) {
  const RobustPcaResult r = robust_pca(Matrix(4, 4));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  for (double v : r.low_rank.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RobustPca, ValidatesInput) {
  EXPECT_THROW((void)robust_pca(Matrix{}), InvalidArgument);
}

TEST(RobustPca, IterationCapRespected) {
  Rng rng(7);
  Matrix m(10, 8);
  for (double& v : m.data()) v = rng.gaussian();
  RobustPcaOptions opt;
  opt.max_iterations = 3;
  const RobustPcaResult r = robust_pca(m, opt);
  EXPECT_LE(r.iterations, 3);
}

TEST(RobustPca, SparseSpikeDoesNotTiltTheSubspace) {
  // The property MRLS relies on: a handful of hugely corrupted entries
  // (the entrywise-sparse model; a fully corrupted column would need
  // outlier pursuit instead) must not rotate the low-rank subspace.
  Rng rng(8);
  const Matrix l0 = low_rank_matrix(8, 6, 2, rng);
  Matrix corrupted = l0;
  corrupted(1, 3) += 25.0;
  corrupted(4, 0) -= 25.0;
  corrupted(6, 5) += 25.0;

  const RobustPcaResult r = robust_pca(corrupted);
  const Svd clean = jacobi_svd(l0);
  const Svd recovered = jacobi_svd(r.low_rank);
  const Svd naive = jacobi_svd(corrupted);
  // Principal directions align (up to sign) — and far better than a
  // non-robust SVD of the corrupted matrix manages.
  const double align = std::abs(dot(clean.u.col(0), recovered.u.col(0)));
  const double naive_align = std::abs(dot(clean.u.col(0), naive.u.col(0)));
  EXPECT_GT(align, 0.8);
  EXPECT_GT(align, naive_align);
}

}  // namespace
}  // namespace funnel::linalg
