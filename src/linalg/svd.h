// Singular value decomposition via one-sided Jacobi rotations.
//
// Classic SST (§3.2.1) and the MRLS baseline both need a full SVD of small
// trajectory matrices. One-sided Jacobi is simple, numerically robust and —
// at the omega x delta sizes FUNNEL uses — fast enough to serve as the exact
// reference that the Krylov-approximated detector (IkaSst) is validated
// against.
#pragma once

#include "linalg/matrix.h"

namespace funnel::linalg {

/// Thin SVD of an m x n matrix A = U S Vᵀ.
///
/// With p = min(m, n): U is m x p with orthonormal columns, V is n x p with
/// orthonormal columns and `singular_values` holds the p values in
/// non-increasing order.
struct Svd {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

/// Compute the thin SVD of `a` by one-sided Jacobi iteration.
///
/// Converges when every pair of columns is numerically orthogonal
/// (relative inner product below `tol`). Throws NumericalError if the sweep
/// limit is exceeded, which for well-scaled inputs does not happen.
Svd jacobi_svd(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

/// Reconstruct U S Vᵀ (testing helper).
Matrix reconstruct(const Svd& svd);

}  // namespace funnel::linalg
