// Multi-tenant service-plane benchmark (docs/SERVICE.md, "Capacity"):
// what one funnel_serve-shaped process sustains through the full HTTP
// ingest path, and how fast a verdict comes back out.
//
//   1. Ingest grid: tenants x concurrent producers, each producer POSTing
//      minute-batches of samples to its tenant over a real loopback socket
//      (admission, parsing, WAL-less store append, dispatcher hand-off all
//      included). Reported as samples/s plus the p95 per-request wall time.
//   2. Ingest-to-verdict: one tenant, repeated watch cycles; the clock runs
//      from the POST of the deadline-crossing batch to the /v1/report
//      response that carries the finalized verdict. This is the service
//      analogue of the paper's "2.5 minutes instead of 1.5 hours" claim —
//      the pipeline tax on top of the detector's own horizon.
//
// The feed is deterministic (seeded Rng per producer) so runs are
// comparable. Writes BENCH_service.json (--json FILE to relocate);
// tests/service_bench_smoke.cmake runs --quick and validates the shape.
// FUNNEL_OBS=OFF compiles the HTTP server out: exits 77 (the smoke skips).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/registry.h"
#include "service/service.h"

using namespace funnel;
using service::FunnelService;
using service::ServiceOptions;
using service::TenantOptions;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One blocking request against the loopback listener; returns the raw
/// response bytes (empty on connect/send failure).
std::string http(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string post(int port, const std::string& path, const std::string& body) {
  return http(port, "POST " + path + " HTTP/1.1\r\nHost: b\r\n"
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n\r\n" + body);
}

bool ok200(const std::string& response) {
  return response.compare(0, 12, "HTTP/1.1 200") == 0;
}

double p95(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(0.95 * static_cast<double>(v.size() - 1))];
}

/// One minute-batch for `server` of tenant feed `seed`: every producer owns
/// a disjoint server so concurrent batches never interleave one metric.
std::string batch_lines(const std::string& server, MinuteTime from,
                        MinuteTime to, Rng& rng) {
  std::ostringstream out;
  for (MinuteTime t = from; t < to; ++t) {
    out << "svc," << server << ",cpu," << t << ","
        << 10.0 + rng.uniform(-0.5, 0.5) << "\n";
  }
  return out.str();
}

struct GridPoint {
  std::size_t tenants = 0;
  std::size_t producers = 0;
  double samples_per_s = 0.0;
  double p95_request_ms = 0.0;
};

GridPoint run_grid_point(std::size_t tenants, std::size_t producers,
                         MinuteTime minutes) {
  ServiceOptions sopts;
  sopts.tenant_defaults.funnel.horizon = 20;
  sopts.tenant_defaults.funnel.lookback = 30;
  sopts.tenant_defaults.funnel.min_did_window = 6;
  FunnelService service(std::move(sopts));
  for (std::size_t t = 0; t < tenants; ++t) {
    service.add_tenant("tenant" + std::to_string(t));
  }
  std::string error;
  if (!service.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(1);
  }
  const int port = service.port();

  constexpr MinuteTime kBatch = 30;  // minutes per POST
  std::vector<std::vector<double>> request_ms(producers);
  std::vector<std::thread> threads;
  const double t0 = now_ms();
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::string path =
          "/v1/ingest/tenant" + std::to_string(p % tenants);
      const std::string server = "s" + std::to_string(p);
      Rng rng(1000 + static_cast<unsigned>(p));
      for (MinuteTime from = 0; from < minutes; from += kBatch) {
        const MinuteTime to = std::min(minutes, from + kBatch);
        const std::string body = batch_lines(server, from, to, rng);
        const double r0 = now_ms();
        // 429 busy (tenant mutex contention) is part of the contract:
        // retry like a well-behaved client, count the total wall time.
        while (!ok200(post(port, path, body))) {
        }
        request_ms[p].push_back(now_ms() - r0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s = (now_ms() - t0) / 1000.0;
  service.stop();

  std::vector<double> all;
  for (const auto& v : request_ms) all.insert(all.end(), v.begin(), v.end());
  GridPoint point;
  point.tenants = tenants;
  point.producers = producers;
  point.samples_per_s =
      static_cast<double>(producers * static_cast<std::size_t>(minutes)) /
      wall_s;
  point.p95_request_ms = p95(std::move(all));
  return point;
}

struct VerdictCost {
  std::size_t watches = 0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

/// Repeated watch cycles on one tenant: feed to the change minute, watch,
/// then clock POST(deadline-crossing batch) -> report carrying the verdict.
VerdictCost run_verdict_cycles(std::size_t cycles) {
  ServiceOptions sopts;
  sopts.tenant_defaults.funnel.horizon = 20;
  sopts.tenant_defaults.funnel.lookback = 30;
  sopts.tenant_defaults.funnel.min_did_window = 6;
  FunnelService service(std::move(sopts));
  service.add_tenant("t");
  std::string error;
  if (!service.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(1);
  }
  const int port = service.port();

  Rng rng(7);
  std::vector<double> latencies;
  MinuteTime minute = 0;
  const auto feed = [&](MinuteTime to) {
    std::ostringstream out;
    for (; minute < to; ++minute) {
      for (const char* srv : {"s0", "s1"}) {
        out << "svc," << srv << ",cpu," << minute << ","
            << 10.0 + rng.uniform(-0.5, 0.5) << "\n";
      }
    }
    post(port, "/v1/ingest/t", out.str());
  };

  feed(45);  // lookback warm-up
  for (std::size_t c = 0; c < cycles; ++c) {
    const MinuteTime change = minute;
    std::ostringstream chg;
    chg << change << ",svc,dark,s0,chg-" << c << "\n";
    post(port, "/v1/changes/t", chg.str());
    feed(change + 19);  // everything up to (not past) the horizon

    // The measured section: the deadline-crossing batch, then the report.
    const double t0 = now_ms();
    feed(change + 55);
    const std::string marker = "\"change_id\":" + std::to_string(c) + ",";
    const std::string report =
        http(port, "GET /v1/report/t HTTP/1.1\r\nHost: b\r\n\r\n");
    const double elapsed = now_ms() - t0;
    if (report.find(marker) == std::string::npos) {
      std::fprintf(stderr, "error: verdict %zu missing from report\n", c);
      std::exit(1);
    }
    latencies.push_back(elapsed);
    feed(minute + 10);  // spacing so cycles never overlap
  }
  service.stop();

  VerdictCost cost;
  cost.watches = cycles;
  cost.p95_ms = p95(latencies);
  cost.max_ms = *std::max_element(latencies.begin(), latencies.end());
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  if (!obs::kEnabled) {
    std::fprintf(stderr,
                 "skip: FUNNEL_OBS=OFF compiles the HTTP server out\n");
    return 77;  // ctest SKIP_RETURN_CODE
  }

  const MinuteTime minutes = quick ? 2'000 : 20'000;
  const std::size_t cycles = quick ? 8 : 32;
  std::vector<std::pair<std::size_t, std::size_t>> grid =
      quick ? std::vector<std::pair<std::size_t, std::size_t>>{{1, 1}, {2, 4}}
            : std::vector<std::pair<std::size_t, std::size_t>>{
                  {1, 1}, {1, 4}, {4, 4}, {4, 8}, {8, 8}};

  std::printf("\n================================================================\n");
  std::printf("Service plane: HTTP ingest throughput and time-to-verdict\n");
  std::printf("================================================================\n");

  std::vector<GridPoint> points;
  for (const auto& [tenants, producers] : grid) {
    const GridPoint point = run_grid_point(tenants, producers, minutes);
    std::printf(
        "ingest %zu tenant(s) x %zu producer(s)   %.0f samples/s, "
        "p95 request %.2f ms\n",
        point.tenants, point.producers, point.samples_per_s,
        point.p95_request_ms);
    points.push_back(point);
  }

  const VerdictCost verdict = run_verdict_cycles(cycles);
  std::printf(
      "ingest-to-verdict   p95 %.2f ms, max %.2f ms over %zu watch cycles\n",
      verdict.p95_ms, verdict.max_ms, verdict.watches);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  out << "{\"workload\":{\"quick\":" << (quick ? "true" : "false")
      << ",\"minutes_per_producer\":" << minutes << "},\"grid\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"tenants\":" << points[i].tenants
        << ",\"producers\":" << points[i].producers
        << ",\"samples_per_s\":" << points[i].samples_per_s
        << ",\"p95_request_ms\":" << points[i].p95_request_ms << "}";
  }
  out << "],\"verdict\":{\"watches\":" << verdict.watches
      << ",\"p95_ms\":" << verdict.p95_ms << ",\"max_ms\":" << verdict.max_ms
      << "}}\n";
  out.close();
  std::fprintf(stderr, "# wrote %s\n", json_path);
  return 0;
}
