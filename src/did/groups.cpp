#include "did/groups.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "obs/trace.h"

namespace funnel::did {

std::optional<double> window_mean(const tsdb::TimeSeries& series,
                                  MinuteTime t0, MinuteTime t1) {
  if (!series.covers(t0, t1) || t0 == t1) return std::nullopt;
  double acc = 0.0;
  std::size_t n = 0;
  for (double v : series.view(t0, t1)) {
    if (!std::isfinite(v)) continue;
    acc += v;
    ++n;
  }
  if (n == 0) return std::nullopt;
  return acc / static_cast<double>(n);
}

namespace {

double pooled_robust_sigma(const std::vector<std::vector<double>>& windows) {
  std::vector<double> centered;
  for (const auto& w : windows) {
    if (w.empty()) continue;
    std::vector<double> clean;
    for (double v : w) {
      if (std::isfinite(v)) clean.push_back(v);
    }
    if (clean.size() < 2) continue;
    const double med = median(clean);
    for (double v : clean) centered.push_back(v - med);
  }
  if (centered.size() < 2) return 0.0;
  double s = mad_sigma(centered);
  if (s <= 0.0) s = stddev(centered);
  return s;
}

}  // namespace

GroupMeans collect_group(const tsdb::MetricStore& store,
                         std::span<const tsdb::MetricId> metrics,
                         MinuteTime change_time, std::size_t omega) {
  const auto w = static_cast<MinuteTime>(omega);
  GroupMeans out;
  std::vector<std::vector<double>> pre_windows;
  for (const tsdb::MetricId& id : metrics) {
    // read_if takes the shard's reader lock: the online assessor builds
    // groups on the dispatcher thread while agents keep appending.
    store.read_if(id, [&](const tsdb::TimeSeries& s) {
      const auto pre = window_mean(s, change_time - w, change_time);
      const auto post = window_mean(s, change_time, change_time + w);
      if (!pre || !post) return;
      out.pre.push_back(*pre);
      out.post.push_back(*post);
      pre_windows.push_back(s.slice(change_time - w, change_time));
    });
  }
  out.pooled_scale = pooled_robust_sigma(pre_windows);
  return out;
}

GroupMeans collect_historical_control(const tsdb::TimeSeries& series,
                                      MinuteTime change_time,
                                      std::size_t omega, int baseline_days) {
  FUNNEL_REQUIRE(baseline_days >= 1, "need at least one baseline day");
  const auto w = static_cast<MinuteTime>(omega);
  GroupMeans out;
  std::vector<std::vector<double>> pre_windows;
  for (int d = 1; d <= baseline_days; ++d) {
    const MinuteTime shifted = change_time - d * kMinutesPerDay;
    const auto pre = window_mean(series, shifted - w, shifted);
    const auto post = window_mean(series, shifted, shifted + w);
    if (!pre || !post) continue;
    out.pre.push_back(*pre);
    out.post.push_back(*post);
    pre_windows.push_back(series.slice(shifted - w, shifted));
  }
  out.pooled_scale = pooled_robust_sigma(pre_windows);
  return out;
}

const char* to_string(DiDStatus s) {
  switch (s) {
    case DiDStatus::kOk:
      return "ok";
    case DiDStatus::kEmptyTreatedGroup:
      return "empty-treated-group";
    case DiDStatus::kEmptyControlGroup:
      return "empty-control-group";
    case DiDStatus::kNoPreWindow:
      return "no-pre-window";
    case DiDStatus::kNoPostWindow:
      return "no-post-window";
    case DiDStatus::kQuorumUnmet:
      return "quorum-unmet";
  }
  return "?";
}

DiDOutcome did_dark_launch(const tsdb::MetricStore& store,
                           std::span<const tsdb::MetricId> treated,
                           std::span<const tsdb::MetricId> control,
                           MinuteTime change_time, std::size_t omega) {
  // Ambient-context span: no tracer is plumbed this deep — when the
  // assessor's determination span is open on this thread the group sizes
  // and noise scale land under it, otherwise this is a no-op.
  obs::Span trace_span("did.dark_launch");
  DiDOutcome out;
  const GroupMeans t = collect_group(store, treated, change_time, omega);
  const GroupMeans c = collect_group(store, control, change_time, omega);
  if (trace_span.active()) {
    trace_span.attr("did.treated_kpis", t.pre.size());
    trace_span.attr("did.control_kpis", c.pre.size());
    trace_span.attr("did.pooled_scale", c.pooled_scale);
  }
  if (t.pre.empty()) {
    out.status = DiDStatus::kEmptyTreatedGroup;
  } else if (c.pre.empty()) {
    out.status = DiDStatus::kEmptyControlGroup;
  } else {
    out.fit = did_from_groups(t.pre, t.post, c.pre, c.post, c.pooled_scale);
  }
  if (trace_span.active() && !out.ok()) {
    trace_span.attr("did.status", to_string(out.status));
  }
  return out;
}

DiDOutcome did_historical(const tsdb::TimeSeries& series,
                          MinuteTime change_time, std::size_t omega,
                          int baseline_days, int quorum) {
  FUNNEL_REQUIRE(quorum >= 1, "historical DiD quorum must be >= 1");
  obs::Span trace_span("did.historical");
  if (trace_span.active()) {
    trace_span.attr("did.baseline_days", baseline_days);
    trace_span.attr("did.quorum", quorum);
  }
  DiDOutcome out;
  const auto w = static_cast<MinuteTime>(omega);
  const auto pre = window_mean(series, change_time - w, change_time);
  const auto post = window_mean(series, change_time, change_time + w);
  if (!pre) {
    out.status = DiDStatus::kNoPreWindow;
  } else if (!post) {
    out.status = DiDStatus::kNoPostWindow;
  } else {
    const GroupMeans c =
        collect_historical_control(series, change_time, omega, baseline_days);
    out.clean_days = c.pre.size();
    if (trace_span.active()) {
      trace_span.attr("did.clean_baseline_days", c.pre.size());
      trace_span.attr("did.pooled_scale", c.pooled_scale);
    }
    if (out.clean_days < static_cast<std::size_t>(quorum)) {
      out.status = DiDStatus::kQuorumUnmet;
    } else {
      const std::vector<double> tp{*pre};
      const std::vector<double> to{*post};
      out.fit = did_from_groups(tp, to, c.pre, c.post, c.pooled_scale);
    }
  }
  if (trace_span.active() && !out.ok()) {
    trace_span.attr("did.status", to_string(out.status));
  }
  return out;
}

}  // namespace funnel::did
