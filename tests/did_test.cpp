// Tests for the difference-in-difference estimator (Eq. 15-16) and the
// group-construction helpers of both DiD paths.
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

#include "common/rng.h"
#include "did/did.h"
#include "did/groups.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::did {
namespace {

TEST(DidPanel, ExactTwoByTwoRecovery) {
  // Treated goes 10 -> 17, control 20 -> 22: alpha = (17-10) - (22-20) = 5.
  const std::vector<PanelObservation> obs{
      {true, false, 10.0}, {true, true, 17.0},
      {false, false, 20.0}, {false, true, 22.0}};
  const DiDResult r = did_panel(obs);
  EXPECT_NEAR(r.alpha, 5.0, 1e-9);
  EXPECT_EQ(r.n_treated, 1u);
  EXPECT_EQ(r.n_control, 1u);
}

TEST(DidPanel, RequiresAllFourCells) {
  const std::vector<PanelObservation> missing{
      {true, false, 1.0}, {true, true, 2.0}, {false, false, 3.0}};
  EXPECT_THROW((void)did_panel(missing), InvalidArgument);
  EXPECT_THROW((void)did_panel(std::vector<PanelObservation>{}),
               InvalidArgument);
}

TEST(DidFromGroups, MatchesCellMeanFormula) {
  // Eq. 16 with multiple KPIs per group.
  const std::vector<double> tp{10.0, 12.0};  // mean 11
  const std::vector<double> to{20.0, 24.0};  // mean 22
  const std::vector<double> cp{5.0, 7.0};    // mean 6
  const std::vector<double> co{6.0, 8.0};    // mean 7
  const DiDResult r = did_from_groups(tp, to, cp, co);
  EXPECT_NEAR(r.alpha, (22.0 - 11.0) - (7.0 - 6.0), 1e-9);
  EXPECT_EQ(r.n_treated, 2u);
  EXPECT_EQ(r.n_control, 2u);
}

TEST(DidFromGroups, ValidatesPairedLengths) {
  EXPECT_THROW((void)did_from_groups(std::vector<double>{1.0},
                                     std::vector<double>{1.0, 2.0},
                                     std::vector<double>{1.0},
                                     std::vector<double>{1.0}),
               InvalidArgument);
}

TEST(DidPanel, CommonShockCancels) {
  // Both groups jump by +50 (a confounder): alpha stays ~0, so the change
  // is correctly not attributed (the core DiD property, §3.2.4).
  Rng rng(1);
  std::vector<double> tp, to, cp, co;
  for (int i = 0; i < 20; ++i) {
    const double base_t = 100.0 + rng.gaussian();
    const double base_c = 100.0 + rng.gaussian();
    tp.push_back(base_t);
    to.push_back(base_t + 50.0 + rng.gaussian());
    cp.push_back(base_c);
    co.push_back(base_c + 50.0 + rng.gaussian());
  }
  const DiDResult r = did_from_groups(tp, to, cp, co);
  EXPECT_LT(std::abs(r.alpha_scaled), 0.5);
  EXPECT_FALSE(caused_by_change(r, DiDConfig{}));
}

TEST(DidPanel, TreatedOnlyEffectIsAttributed) {
  Rng rng(2);
  std::vector<double> tp, to, cp, co;
  for (int i = 0; i < 20; ++i) {
    const double base_t = 100.0 + rng.gaussian();
    const double base_c = 100.0 + rng.gaussian();
    tp.push_back(base_t);
    to.push_back(base_t + 10.0 + rng.gaussian());  // effect on treated only
    cp.push_back(base_c);
    co.push_back(base_c + rng.gaussian());
  }
  const DiDResult r = did_from_groups(tp, to, cp, co);
  EXPECT_GT(r.alpha, 7.0);
  EXPECT_GT(std::abs(r.t_stat), 2.0);
  EXPECT_TRUE(caused_by_change(r, DiDConfig{}));
}

TEST(DidPanel, StandardErrorShrinksWithSampleSize) {
  Rng rng(3);
  auto build = [&](int n) {
    std::vector<PanelObservation> obs;
    for (int i = 0; i < n; ++i) {
      obs.push_back({true, false, rng.gaussian(10.0, 1.0)});
      obs.push_back({true, true, rng.gaussian(15.0, 1.0)});
      obs.push_back({false, false, rng.gaussian(10.0, 1.0)});
      obs.push_back({false, true, rng.gaussian(10.0, 1.0)});
    }
    return did_panel(obs).std_error;
  };
  EXPECT_GT(build(8), build(512));
}

TEST(CausedByChange, ThresholdSemantics) {
  DiDResult r;
  r.alpha_scaled = 0.4;
  r.t_stat = 10.0;
  EXPECT_FALSE(caused_by_change(r, DiDConfig{}));  // below alpha threshold
  r.alpha_scaled = 2.0;
  r.t_stat = 1.0;
  EXPECT_FALSE(caused_by_change(r, DiDConfig{}));  // insignificant
  r.t_stat = 5.0;
  EXPECT_TRUE(caused_by_change(r, DiDConfig{}));
  r.alpha_scaled = -2.0;
  r.t_stat = -5.0;
  EXPECT_TRUE(caused_by_change(r, DiDConfig{}));  // negative impacts count
  DiDConfig lax;
  lax.require_significance = false;
  r.t_stat = 0.0;
  EXPECT_TRUE(caused_by_change(r, lax));
}

TEST(WindowMean, SkipsNanAndChecksCoverage) {
  tsdb::TimeSeries s(0, {1.0, std::nan(""), 3.0});
  EXPECT_DOUBLE_EQ(*window_mean(s, 0, 3), 2.0);
  EXPECT_FALSE(window_mean(s, 0, 4).has_value());
  EXPECT_FALSE(window_mean(s, 0, 0).has_value());
  tsdb::TimeSeries all_nan(0, {std::nan(""), std::nan("")});
  EXPECT_FALSE(window_mean(all_nan, 0, 2).has_value());
}

TEST(CollectGroup, SkipsMissingAndUncoveredMetrics) {
  tsdb::MetricStore store;
  store.insert(tsdb::server_metric("a", "cpu"),
               tsdb::TimeSeries(0, std::vector<double>(200, 5.0)));
  store.insert(tsdb::server_metric("b", "cpu"),
               tsdb::TimeSeries(90, std::vector<double>(20, 9.0)));
  const std::vector<tsdb::MetricId> ids{
      tsdb::server_metric("a", "cpu"), tsdb::server_metric("b", "cpu"),
      tsdb::server_metric("missing", "cpu")};
  const GroupMeans g = collect_group(store, ids, 100, 30);
  // "a" covers [70, 130); "b" does not; "missing" absent.
  ASSERT_EQ(g.pre.size(), 1u);
  EXPECT_DOUBLE_EQ(g.pre[0], 5.0);
  EXPECT_DOUBLE_EQ(g.post[0], 5.0);
}

TEST(CollectHistoricalControl, OnePairPerCleanDay) {
  // 5 days of history plus the change day. A single NaN inside day 3's
  // window is tolerated (window_mean skips it); day 2's post window is
  // entirely NaN, so that day contributes no pair.
  const MinuteTime tc = 5 * kMinutesPerDay + 600;
  std::vector<double> data(static_cast<std::size_t>(tc + 100), 10.0);
  data[static_cast<std::size_t>(tc - 3 * kMinutesPerDay) + 2] = std::nan("");
  const auto day2 = static_cast<std::size_t>(tc - 2 * kMinutesPerDay);
  for (std::size_t i = 0; i < 30; ++i) data[day2 + i] = std::nan("");
  const tsdb::TimeSeries s(0, std::move(data));
  const GroupMeans g = collect_historical_control(s, tc, 30, 5);
  EXPECT_EQ(g.pre.size(), 4u);  // day 2 skipped, day 3 kept
  for (double v : g.pre) EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_THROW((void)collect_historical_control(s, tc, 30, 0),
               InvalidArgument);
}

TEST(DidDarkLaunch, EndToEndAttribution) {
  // Two treated and two control servers; treated get a +8 shift at tc.
  tsdb::MetricStore store;
  Rng rng(4);
  const MinuteTime tc = 200;
  for (const char* name : {"t1", "t2", "c1", "c2"}) {
    workload::StationaryParams p;
    p.level = 50.0;
    workload::KpiStream s(workload::make_stationary(p, rng.split()));
    if (name[0] == 't') s.add_effect(workload::LevelShift{tc, 8.0});
    workload::materialize(s, store, tsdb::server_metric(name, "mem"), 0, 400);
  }
  const std::vector<tsdb::MetricId> treated{tsdb::server_metric("t1", "mem"),
                                            tsdb::server_metric("t2", "mem")};
  const std::vector<tsdb::MetricId> control{tsdb::server_metric("c1", "mem"),
                                            tsdb::server_metric("c2", "mem")};
  const DiDOutcome r = did_dark_launch(store, treated, control, tc, 60);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.fit.alpha, 8.0, 1.0);
  EXPECT_TRUE(caused_by_change(r.fit, DiDConfig{}));
}

TEST(DidDarkLaunch, EmptyGroupsReportStatusNotThrow) {
  // Regression: empty treated/control groups used to throw; dirty telemetry
  // makes them routine, so they surface as statuses the assessor can map to
  // an inconclusive verdict.
  tsdb::MetricStore store;
  store.insert(tsdb::server_metric("t1", "mem"),
               tsdb::TimeSeries(0, std::vector<double>(400, 5.0)));
  const std::vector<tsdb::MetricId> treated{
      tsdb::server_metric("t1", "mem")};
  const std::vector<tsdb::MetricId> none;
  const DiDOutcome no_treated = did_dark_launch(store, none, treated, 200, 60);
  EXPECT_EQ(no_treated.status, DiDStatus::kEmptyTreatedGroup);
  EXPECT_FALSE(no_treated.ok());
  const DiDOutcome no_control = did_dark_launch(store, treated, none, 200, 60);
  EXPECT_EQ(no_control.status, DiDStatus::kEmptyControlGroup);
  // A control group whose every member is gapped over the windows is just as
  // empty as a missing one.
  const std::vector<tsdb::MetricId> ghost{
      tsdb::server_metric("ghost", "mem")};
  EXPECT_EQ(did_dark_launch(store, treated, ghost, 200, 60).status,
            DiDStatus::kEmptyControlGroup);
  EXPECT_STREQ(to_string(DiDStatus::kEmptyControlGroup),
               "empty-control-group");
}

// Property sweep for the historical path: a true effect of size `delta`
// must be attributed, a seasonal pattern must not.
class HistoricalDid : public ::testing::TestWithParam<double> {};

TEST_P(HistoricalDid, AttributesTrueEffectsOnly) {
  const double delta = GetParam();
  const int days = 10;
  const MinuteTime tc = days * kMinutesPerDay + 700;

  // Seasonal KPI with no change: the same time-of-day pattern repeats, so
  // alpha ~ 0 (seasonality exclusion, §3.2.5).
  workload::SeasonalParams sp;
  sp.noise_sigma = 1.0;
  sp.weekly_amplitude = 0.0;
  workload::KpiStream quiet(workload::make_seasonal(sp, Rng(11)));
  const tsdb::TimeSeries quiet_series(
      0, workload::render(quiet, 0, tc + 120));
  const DiDOutcome rq = did_historical(quiet_series, tc, 60, days - 1);
  ASSERT_TRUE(rq.ok());
  EXPECT_GE(rq.clean_days, static_cast<std::size_t>(days - 1));
  EXPECT_FALSE(caused_by_change(rq.fit, DiDConfig{}))
      << "seasonal pattern misattributed (alpha_scaled="
      << rq.fit.alpha_scaled << ")";

  // Same KPI with an injected shift at tc: attributed.
  workload::KpiStream shifted(workload::make_seasonal(sp, Rng(12)));
  shifted.add_effect(workload::LevelShift{tc, delta});
  const tsdb::TimeSeries shifted_series(
      0, workload::render(shifted, 0, tc + 120));
  const DiDOutcome rs = did_historical(shifted_series, tc, 60, days - 1);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(caused_by_change(rs.fit, DiDConfig{}))
      << "missed a delta=" << delta
      << " effect (alpha_scaled=" << rs.fit.alpha_scaled << ")";
  EXPECT_NEAR(rs.fit.alpha, delta, 0.5 * delta);
}

INSTANTIATE_TEST_SUITE_P(Effects, HistoricalDid,
                         ::testing::Values(6.0, 10.0, 20.0));

TEST(DidHistorical, ReportsStatusWithoutHistory) {
  // Regression: a series too short for any baseline day used to throw; now
  // it reports kNoPreWindow / kQuorumUnmet so the caller can degrade.
  const tsdb::TimeSeries short_series(0, std::vector<double>(300, 1.0));
  const DiDOutcome r = did_historical(short_series, 150, 60, 30);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.clean_days, 0u);
}

TEST(DidHistorical, QuorumGatesTheFit) {
  // 3 clean history days: quorum 3 passes, quorum 4 reports kQuorumUnmet.
  const MinuteTime tc = 3 * kMinutesPerDay + 600;
  const tsdb::TimeSeries s(
      0, std::vector<double>(static_cast<std::size_t>(tc + 120), 10.0));
  const DiDOutcome ok = did_historical(s, tc, 60, 3, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.clean_days, 3u);
  const DiDOutcome unmet = did_historical(s, tc, 60, 3, 4);
  EXPECT_EQ(unmet.status, DiDStatus::kQuorumUnmet);
  EXPECT_EQ(unmet.clean_days, 3u);
  EXPECT_STREQ(to_string(DiDStatus::kQuorumUnmet), "quorum-unmet");
}

}  // namespace
}  // namespace funnel::did
