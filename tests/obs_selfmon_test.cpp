// Tests for self-surveillance (obs/selfmon.h): the instantaneous
// evaluate_health() threshold checks, the SelfMonitor sampling loop
// (KPI extraction from a live registry into the reserved `__funnel_self/`
// store, hold-last semantics for histogram-delta KPIs), and the acceptance
// scenario from docs/OBSERVABILITY.md — an injected dispatcher stall must
// trip the online detector, flip health() unhealthy, and land a
// "pipeline-degradation" verdict with `__funnel_self` provenance in the
// verdict journal.
//
// The stall is fault-injected by writing the pipeline's own stats
// (tsdb.store.queue_depth / queue_capacity gauges, dispatch_lag_us
// observations) straight into a Registry and driving tick() manually, so
// the test is deterministic: no threads, no timing.
//
// Under -DFUNNEL_OBS=OFF selfmon reduces to no-ops; only that contract is
// checked.
#include "obs/selfmon.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.h"
#include "obs/registry.h"
#include "tsdb/metric.h"

namespace funnel::obs {
namespace {

#define SKIP_IF_OBS_OFF()                                      \
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops "     \
                                 "(FUNNEL_OBS=OFF)"

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "funnel_selfmon_" + name;
}

/// Paint a steady-state pipeline into the registry: a mostly-idle
/// dispatcher queue with a small deterministic ripple, and modest dispatch
/// lag. The ripple keeps the detector's robust sigma finite so the later
/// step is scored against real (not degenerate) baseline noise.
void record_baseline(Registry& reg, int t) {
  reg.set("tsdb.store.queue_depth", 40.0 + 8.0 * double(t % 5));
  reg.set("tsdb.store.queue_capacity", 1024.0);
  reg.observe("tsdb.store.dispatch_lag_us", 90.0 + 5.0 * double(t % 3));
}

/// The stall: the queue pinned near capacity, lag two orders up.
void record_stall(Registry& reg, int t) {
  reg.set("tsdb.store.queue_depth", 1000.0 + double(t % 4));
  reg.set("tsdb.store.queue_capacity", 1024.0);
  reg.observe("tsdb.store.dispatch_lag_us", 9000.0 + 40.0 * double(t % 3));
}

TEST(ObsSelfmonHealth, EmptySnapshotIsHealthyWithAbsentSubsystems) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  const HealthReport report = evaluate_health(reg.snapshot());
  EXPECT_TRUE(report.healthy);
  ASSERT_EQ(report.checks.size(), 4u);
  for (const HealthCheck& c : report.checks) {
    EXPECT_TRUE(c.ok) << c.name;
    EXPECT_EQ(c.detail, "n/a") << c.name;
  }
  const std::string text = report.render();
  EXPECT_EQ(text.substr(0, 8), "healthy\n");
  EXPECT_NE(text.find("ok ingest-dispatcher n/a"), std::string::npos);
  EXPECT_NE(text.find("ok wal-writer n/a"), std::string::npos);
  EXPECT_NE(text.find("ok journal-writer n/a"), std::string::npos);
  EXPECT_NE(text.find("ok compaction n/a"), std::string::npos);
}

TEST(ObsSelfmonHealth, SaturatedQueueFailsItsSubsystemCheck) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.set("tsdb.store.queue_depth", 1000.0);
  reg.set("tsdb.store.queue_capacity", 1024.0);
  reg.set("funnel.wal.queue_depth", 3.0);
  reg.set("funnel.wal.queue_capacity", 512.0);
  const HealthReport report = evaluate_health(reg.snapshot());
  EXPECT_FALSE(report.healthy);
  const std::string text = report.render();
  EXPECT_EQ(text.substr(0, 10), "unhealthy\n");
  EXPECT_NE(text.find("FAIL ingest-dispatcher queue 1000/1024"),
            std::string::npos)
      << text;
  // The healthy WAL queue still passes, with its evidence.
  EXPECT_NE(text.find("ok wal-writer queue 3/512"), std::string::npos)
      << text;
}

TEST(ObsSelfmonHealth, CompactionBacklogFailsWhenSegmentsPileUp) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.set("funnel.persist.segments", 40.0);
  SelfMonitorOptions options;
  options.compact_backlog_max = 16;
  EXPECT_FALSE(evaluate_health(reg.snapshot(), options).healthy);
  // Backlog under the limit, or the check disabled, passes.
  options.compact_backlog_max = 64;
  EXPECT_TRUE(evaluate_health(reg.snapshot(), options).healthy);
  options.compact_backlog_max = 0;
  EXPECT_TRUE(evaluate_health(reg.snapshot(), options).healthy);
}

TEST(ObsSelfmon, NullRegistryIsInert) {
  SelfMonitor monitor(nullptr);
  monitor.tick();
  EXPECT_FALSE(monitor.start());
  EXPECT_EQ(monitor.ticks(), 0u);
  EXPECT_TRUE(monitor.health().healthy);
}

TEST(ObsSelfmon, OffBuildIsInert) {
  if (kEnabled) GTEST_SKIP() << "no-op contract only applies to OFF builds";
  Registry reg;
  SelfMonitor monitor(&reg);
  monitor.tick();
  EXPECT_FALSE(monitor.start());
  EXPECT_EQ(monitor.ticks(), 0u);
  EXPECT_TRUE(monitor.health().healthy);
}

TEST(ObsSelfmon, TicksSampleKpisIntoTheReservedStore) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  SelfMonitor monitor(&reg);
  ASSERT_EQ(monitor.kpis().size(), 7u);
  for (int t = 0; t < 3; ++t) {
    record_baseline(reg, t);
    monitor.tick();
  }
  EXPECT_EQ(monitor.ticks(), 3u);

  // Every KPI has a __funnel_self/ series with one sample per tick, minute
  // == tick index.
  for (const std::string& kpi : monitor.kpis()) {
    const tsdb::TimeSeries& series =
        monitor.store().series(tsdb::service_metric(kSelfEntity, kpi));
    EXPECT_EQ(series.size(), 3u) << kpi;
    EXPECT_EQ(series.start_time(), 0) << kpi;
  }

  // The sampled values are mirrored as funnel.selfmon.* gauges and the tick
  // counter advances in the watched registry itself.
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("funnel.selfmon.ticks"), 3u);
  const double frac = snap.gauges.at("funnel.selfmon.dispatch_queue_frac");
  EXPECT_GT(frac, 0.0);
  EXPECT_LT(frac, 0.1);
  EXPECT_GT(snap.gauges.at("funnel.selfmon.dispatch_lag_us"), 0.0);
}

TEST(ObsSelfmon, HistogramKpiHoldsLastValueWhenIdle) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  SelfMonitor monitor(&reg);
  reg.set("tsdb.store.queue_capacity", 0.0);  // frac KPIs stay n/a
  reg.observe("tsdb.store.dispatch_lag_us", 100.0);
  reg.observe("tsdb.store.dispatch_lag_us", 300.0);
  monitor.tick();  // mean of the two new observations = 200
  monitor.tick();  // no new observations: hold, don't drop to 0
  reg.observe("tsdb.store.dispatch_lag_us", 700.0);
  monitor.tick();  // one new observation since last tick = 700

  const tsdb::TimeSeries& series = monitor.store().series(
      tsdb::service_metric(kSelfEntity, "dispatch_lag_us"));
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.values()[0], 200.0);
  EXPECT_DOUBLE_EQ(series.values()[1], 200.0);
  EXPECT_DOUBLE_EQ(series.values()[2], 700.0);
}

// The acceptance scenario: a fault-injected dispatcher stall must (a) trip
// the online detector on the sampled `__funnel_self/` series, (b) flip
// health() unhealthy on both layers — the instantaneous queue check and the
// latched selfmon check — and (c) journal a "pipeline-degradation" verdict
// carrying the reserved-service provenance.
TEST(ObsSelfmon, InjectedDispatcherStallAlarmsAndJournals) {
  SKIP_IF_OBS_OFF();
  const std::string journal_path = temp_path("stall.jsonl");
  Registry reg;
  SelfMonitorOptions options;
  options.omega = 5;  // W = 18 ticks of context before the first score
  SelfMonitor monitor(&reg, options);
  Journal journal(journal_path);
  ASSERT_TRUE(journal.ok());
  monitor.set_journal(&journal);

  // Steady state long enough to fill the detector windows.
  int t = 0;
  for (; t < 40; ++t) {
    record_baseline(reg, t);
    monitor.tick();
  }
  EXPECT_EQ(monitor.alarms_raised(), 0u);
  EXPECT_TRUE(monitor.health().healthy);

  // Stall: queue pinned near capacity, lag steps up. The detector needs
  // W-ish ticks of the new regime plus the persistence rule; 40 is plenty.
  for (int s = 0; s < 40; ++s, ++t) {
    record_stall(reg, s);
    monitor.tick();
  }
  EXPECT_GE(monitor.alarms_raised(), 1u);
  EXPECT_GE(reg.snapshot().counters.at("funnel.selfmon.alarms"), 1u);

  const HealthReport report = monitor.health();
  EXPECT_FALSE(report.healthy);
  const std::string text = report.render();
  // Layer 1: the instantaneous queue check sees 1000+/1024 > 0.95.
  EXPECT_NE(text.find("FAIL ingest-dispatcher"), std::string::npos) << text;
  // Layer 2: the detector alarm is latched on the selfmon check.
  EXPECT_NE(text.find("FAIL selfmon degraded:"), std::string::npos) << text;

  // The verdict journal carries the degradation with full provenance.
  journal.flush();
  const auto events = read_journal(journal_path);
  ASSERT_GE(events.size(), 1u);
  bool found_dispatch_kpi = false;
  for (const JournalEvent& ev : events) {
    EXPECT_EQ(ev.source, "selfmon");
    EXPECT_EQ(ev.service, kSelfEntity);
    EXPECT_EQ(ev.change_type, "pipeline");
    EXPECT_EQ(ev.cause, "pipeline-degradation");
    EXPECT_TRUE(ev.detected);
    EXPECT_TRUE(ev.alarm_minute.has_value());
    EXPECT_TRUE(ev.sst_peak.has_value());
    EXPECT_EQ(ev.metric.find("service:__funnel_self/"), 0u) << ev.metric;
    if (ev.kpi == "dispatch_queue_frac" || ev.kpi == "dispatch_lag_us") {
      found_dispatch_kpi = true;
    }
  }
  EXPECT_TRUE(found_dispatch_kpi)
      << "no alarm on a dispatcher KPI in " << events.size() << " events";
  std::remove(journal_path.c_str());
}

TEST(ObsSelfmon, BackgroundThreadStartsTicksAndStops) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  record_baseline(reg, 0);
  SelfMonitorOptions options;
  options.tick_period = std::chrono::milliseconds(5);
  SelfMonitor monitor(&reg, options);
  ASSERT_TRUE(monitor.start());
  EXPECT_TRUE(monitor.running());
  EXPECT_FALSE(monitor.start());  // already running
  // The first tick runs immediately; wait for a few more.
  for (int i = 0; i < 200 && monitor.ticks() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  monitor.stop();
  EXPECT_FALSE(monitor.running());
  const std::uint64_t ticks = monitor.ticks();
  EXPECT_GE(ticks, 3u);
  // Stopped means stopped: no more ticks accrue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(monitor.ticks(), ticks);
  // Manual ticking still works after stop().
  monitor.tick();
  EXPECT_EQ(monitor.ticks(), ticks + 1);
}

}  // namespace
}  // namespace funnel::obs
