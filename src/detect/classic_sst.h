// Classic Singular Spectrum Transform (§3.2.1, Moskvina & Zhigljavsky).
//
// Per window: full SVD of the past Hankel matrix B gives the normal
// subspace U_eta; the leading left singular vector beta of the future Hankel
// matrix A represents the direction of maximum change; the score is
// 1 - ||U_etaᵀ beta||² (Eq. 6-7 — the squared-cosine discordance between
// beta and the past subspace).
//
// This is the exact, full-SVD reference implementation: accurate and quick
// to alarm, but noise-fragile (no Eq. 11 damping) and O(omega³) per window.
#pragma once

#include "detect/scorer.h"
#include "detect/sst_common.h"

namespace funnel::detect {

class ClassicSst final : public ChangeScorer {
 public:
  explicit ClassicSst(SstGeometry geometry = {});

  std::size_t window_size() const override { return geo_.window(); }
  std::size_t change_offset() const override { return geo_.half(); }
  double score(std::span<const double> window) override;
  const char* name() const override { return "classic-sst"; }

  const SstGeometry& geometry() const { return geo_; }

 private:
  SstGeometry geo_;
};

}  // namespace funnel::detect
