// Change-scorer interface.
//
// Every detection method in the paper's evaluation (§4.1) consumes a sliding
// window of W 1-minute samples and emits one change score per window
// position; the window then moves forward one minute. A ChangeScorer is that
// per-window kernel; `sliding.h` turns a scorer plus an alarm policy
// (threshold + the 7-minute persistence rule) into detections.
#pragma once

#include <cstddef>
#include <span>

namespace funnel::detect {

class ChangeScorer {
 public:
  virtual ~ChangeScorer() = default;

  /// W: number of consecutive samples consumed per score.
  virtual std::size_t window_size() const = 0;

  /// Index (within the window) of the candidate change point the score
  /// refers to — SST places it between the past and future trajectory
  /// matrices; CUSUM/MRLS at their pre/post split.
  virtual std::size_t change_offset() const = 0;

  /// Change score for one window of exactly window_size() samples.
  /// Non-negative; higher = stronger evidence of a behavior change.
  /// Windows containing non-finite samples yield NaN (not scoreable).
  /// Scorers may keep internal scratch state, hence non-const.
  virtual double score(std::span<const double> window) = 0;

  virtual const char* name() const = 0;
};

}  // namespace funnel::detect
