#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace funnel::obs {
namespace {

void json_escape_to(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number_to(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void attr_value_to(std::ostringstream& os, const SpanAttr& a) {
  switch (a.kind) {
    case SpanAttr::Kind::kDouble:
      json_number_to(os, a.num);
      break;
    case SpanAttr::Kind::kInt:
      os << a.inum;
      break;
    case SpanAttr::Kind::kString:
      json_escape_to(os, a.str);
      break;
  }
}

}  // namespace

std::string chrome_trace_json(const TraceDump& dump) {
  std::ostringstream os;
  // Rebase to the earliest span so Perfetto's timeline starts near zero.
  std::uint64_t base = 0;
  if (!dump.spans.empty()) {
    base = dump.spans.front().start_ns;
    for (const SpanRecord& s : dump.spans) base = std::min(base, s.start_ns);
  }
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":"
     << dump.recorded << ",\"dropped\":" << dump.dropped
     << ",\"threads\":" << dump.threads << "},\"traceEvents\":[";
  bool first = true;
  for (std::uint64_t tid = 0; tid < dump.threads; ++tid) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"funnel-thread-"
       << tid << "\"}}";
  }
  for (const SpanRecord& s : dump.spans) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.thread << ",\"name\":";
    json_escape_to(os, s.name);
    os << ",\"ts\":";
    json_number_to(os, static_cast<double>(s.start_ns - base) / 1000.0);
    os << ",\"dur\":";
    json_number_to(os,
                   static_cast<double>(s.end_ns - s.start_ns) / 1000.0);
    os << ",\"args\":{\"trace_id\":" << s.trace_id
       << ",\"span_id\":" << s.span_id << ",\"parent_id\":" << s.parent_id;
    for (const SpanAttr& a : s.attrs) {
      os << ',';
      json_escape_to(os, a.key);
      os << ':';
      attr_value_to(os, a);
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

#ifndef FUNNEL_OBS_OFF

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The ambient causal position of this thread. Carries the tracer pointer,
// so there is no per-tracer keying: at most one context is ambient at a
// time (the innermost open Span / installed ScopedContext).
thread_local SpanContext tls_current{};

// Tracer uid -> ring cache, keyed by a never-reused uid so a dead tracer's
// entry can never be confused with a later tracer reusing the address.
thread_local std::unordered_map<std::uint64_t, Tracer::Ring*> tls_rings;

std::atomic<std::uint64_t> g_next_uid{1};

}  // namespace

/// One thread's private span ring. Only the owning thread writes (slot
/// assignment + head bump); collect() reads at quiesce points, where the
/// pool-join / dispatcher-flush barrier the caller waited on already orders
/// every write before the read.
struct Tracer::Ring {
  explicit Ring(std::size_t cap) : slots(cap) {}
  std::vector<SpanRecord> slots;
  std::uint64_t head = 0;  ///< spans ever recorded by the owner
};

SpanContext current_context() { return tls_current; }

ScopedContext::ScopedContext(const SpanContext& ctx) : saved_(tls_current) {
  tls_current = ctx;
}

ScopedContext::~ScopedContext() { tls_current = saved_; }

Tracer::Tracer(std::size_t ring_capacity)
    : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)),
      capacity_(std::max<std::size_t>(1, ring_capacity)) {}

Tracer::~Tracer() = default;

Tracer::Ring& Tracer::local_ring() const {
  const auto it = tls_rings.find(uid_);
  if (it != tls_rings.end()) return *it->second;
  const std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  Ring* ring = rings_.back().get();
  tls_rings.emplace(uid_, ring);
  return *ring;
}

void Tracer::record(SpanRecord&& rec) const {
  Ring& ring = local_ring();
  ring.slots[ring.head % capacity_] = std::move(rec);
  ++ring.head;
}

std::uint64_t Tracer::new_trace_id() const {
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::new_span_id() const {
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

TraceDump Tracer::collect() const {
  TraceDump dump;
  const std::lock_guard<std::mutex> lock(mutex_);
  dump.threads = rings_.size();
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    const Ring& ring = *rings_[i];
    const std::uint64_t kept =
        std::min<std::uint64_t>(ring.head, capacity_);
    for (std::uint64_t k = ring.head - kept; k < ring.head; ++k) {
      SpanRecord rec = ring.slots[k % capacity_];
      rec.thread = static_cast<std::uint32_t>(i);
      dump.spans.push_back(std::move(rec));
    }
    dump.recorded += ring.head;
    dump.dropped += ring.head - kept;
  }
  std::sort(dump.spans.begin(), dump.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.span_id < b.span_id;
            });
  return dump;
}

namespace internal {

void SpanState::open(const SpanContext& parent, const char* name) {
  if (!parent.active()) return;
  tracer = parent.tracer;
  rec.trace_id = parent.trace_id;
  rec.parent_id = parent.span_id;
  rec.span_id = tracer->new_span_id();
  rec.name = name;
  rec.start_ns = now_ns();
}

void SpanState::open_on(const Tracer* t, const char* name) {
  if (t == nullptr) return;
  const SpanContext ambient = tls_current;
  if (ambient.tracer == t) {
    open(ambient, name);
    return;
  }
  tracer = t;
  rec.trace_id = t->new_trace_id();
  rec.parent_id = 0;
  rec.span_id = t->new_span_id();
  rec.name = name;
  rec.start_ns = now_ns();
}

void SpanState::close() {
  if (tracer == nullptr) return;
  rec.end_ns = now_ns();
  tracer->record(std::move(rec));
  tracer = nullptr;
}

void SpanState::push(const char* key, SpanAttr&& a) {
  a.key = key;
  rec.attrs.push_back(std::move(a));
}

}  // namespace internal

Span::Span(const Tracer* tracer, const char* name) {
  state_.open_on(tracer, name);
  install();
}

Span::Span(const SpanContext& parent, const char* name) {
  state_.open(parent, name);
  install();
}

void Span::install() {
  if (!active()) return;
  saved_ = tls_current;
  tls_current = state_.context();
}

Span::~Span() {
  if (!active()) return;
  tls_current = saved_;
  state_.close();
}

void Span::attr(const char* key, double v) {
  if (!active()) return;
  SpanAttr a;
  a.kind = SpanAttr::Kind::kDouble;
  a.num = v;
  state_.push(key, std::move(a));
}

void Span::attr_int(const char* key, std::int64_t v) {
  if (!active()) return;
  SpanAttr a;
  a.kind = SpanAttr::Kind::kInt;
  a.inum = v;
  state_.push(key, std::move(a));
}

void Span::attr(const char* key, std::string_view v) {
  if (!active()) return;
  SpanAttr a;
  a.kind = SpanAttr::Kind::kString;
  a.str = std::string(v);
  state_.push(key, std::move(a));
}

DetachedSpan::DetachedSpan(const Tracer* tracer, const char* name) {
  state_.open_on(tracer, name);
}

DetachedSpan::DetachedSpan(const SpanContext& parent, const char* name) {
  state_.open(parent, name);
}

DetachedSpan::DetachedSpan(DetachedSpan&& other) noexcept
    : state_(std::move(other.state_)) {
  other.state_.tracer = nullptr;
}

DetachedSpan& DetachedSpan::operator=(DetachedSpan&& other) noexcept {
  if (this != &other) {
    end();
    state_ = std::move(other.state_);
    other.state_.tracer = nullptr;
  }
  return *this;
}

DetachedSpan::~DetachedSpan() { end(); }

void DetachedSpan::end() { state_.close(); }

void DetachedSpan::attr(const char* key, double v) {
  if (!active()) return;
  SpanAttr a;
  a.kind = SpanAttr::Kind::kDouble;
  a.num = v;
  state_.push(key, std::move(a));
}

void DetachedSpan::attr_int(const char* key, std::int64_t v) {
  if (!active()) return;
  SpanAttr a;
  a.kind = SpanAttr::Kind::kInt;
  a.inum = v;
  state_.push(key, std::move(a));
}

void DetachedSpan::attr(const char* key, std::string_view v) {
  if (!active()) return;
  SpanAttr a;
  a.kind = SpanAttr::Kind::kString;
  a.str = std::string(v);
  state_.push(key, std::move(a));
}

#endif  // FUNNEL_OBS_OFF

}  // namespace funnel::obs
