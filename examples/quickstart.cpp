// Quickstart: assess one software change end to end.
//
// Walks through the whole public API in ~80 lines:
//   1. describe the deployment (services, servers, relations);
//   2. feed KPI history into the metric store;
//   3. record a software change in the change log;
//   4. ask Funnel for an assessment report.
//
// The synthetic workload injects a memory regression into the two servers
// the change was dark-launched to, so the report should attribute exactly
// those KPI changes to the change.
#include <cstdio>

#include "changes/change_log.h"
#include "funnel/assessor.h"
#include "topology/topology.h"
#include "tsdb/store.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

int main() {
  // 1. Topology: one web service with five servers.
  topology::ServiceTopology topo;
  for (const char* server : {"web-0", "web-1", "web-2", "web-3", "web-4"}) {
    topo.add_server("shop.web", server);
  }

  // 2. KPI history: a stationary memory-utilization KPI per server, one
  //    sample per minute. The change lands at minute 600; web-0 and web-1
  //    (the treated servers) develop a +8%% memory regression.
  tsdb::MetricStore store;
  const MinuteTime change_minute = 600;
  Rng rng(2024);
  for (const char* server : {"web-0", "web-1", "web-2", "web-3", "web-4"}) {
    workload::StationaryParams params;
    params.level = 55.0;   // percent
    params.noise_sigma = 1.0;
    workload::KpiStream stream(workload::make_stationary(params, rng.split()));
    const bool treated =
        std::string(server) == "web-0" || std::string(server) == "web-1";
    if (treated) {
      stream.add_effect(workload::LevelShift{change_minute, 8.0});
    }
    workload::materialize(stream, store,
                          tsdb::server_metric(server, "memory_utilization"),
                          0, change_minute + 120);
  }

  // 3. The change log entry: a software upgrade dark-launched to two of the
  //    five servers (the rest are the control group).
  changes::ChangeLog log;
  changes::SoftwareChange change;
  change.type = changes::ChangeType::kSoftwareUpgrade;
  change.service = "shop.web";
  change.servers = {"web-0", "web-1"};
  change.time = change_minute;
  change.mode = changes::LaunchMode::kDark;
  change.description = "v2.3.1 rollout candidate";
  const changes::ChangeId id = log.record(change, topo);

  // 4. Assess.
  const core::Funnel funnel(core::FunnelConfig{}, topo, log, store);
  const core::AssessmentReport report = funnel.assess(id);

  std::printf("%s\n", report.summary().c_str());
  if (report.change_has_impact()) {
    std::printf("=> the upgrade changed %zu KPI(s); consider rolling back.\n",
                report.kpi_changes_caused());
  } else {
    std::printf("=> no KPI change attributable to the upgrade; safe to "
                "continue the rollout.\n");
  }
  return report.change_has_impact() ? 0 : 1;
}
