// Concurrency stress tests for the assessment engine's ThreadPool: full
// range coverage, empty/inverted ranges, nested parallel_for (including on
// a single-worker pool, the deadlock-prone case), exception propagation to
// the caller, slot stability, submit futures, and pool reuse across many
// batches.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace funnel {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i, std::size_t) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, NonZeroRangeStart) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t i, std::size_t) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ThreadPool, EmptyAndInvertedRangesAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  const ThreadPool::ForBody count = [&](std::size_t, std::size_t) {
    calls.fetch_add(1);
  };
  pool.parallel_for(5, 5, count);
  pool.parallel_for(7, 3, count);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ExceptionSurfacesOnCaller) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(0, 64,
                        [&](std::size_t i, std::size_t) {
                          if (i == 17) throw std::runtime_error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // Every non-throwing index still ran — no cancellation, no lost work.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ExceptionDoesNotPoisonThePool) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 10, [&](std::size_t i, std::size_t) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, NestedParallelFor) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 32;
  std::atomic<std::size_t> cells{0};
  pool.parallel_for(0, kOuter, [&](std::size_t, std::size_t) {
    pool.parallel_for(0, kInner, [&](std::size_t, std::size_t) {
      cells.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(cells.load(), kOuter * kInner);
}

TEST(ThreadPool, NestedParallelForOnSingleWorkerPool) {
  // The deadlock-prone configuration: every worker busy with an outer body
  // when the nested batch is issued. The initiator drains its own batch, so
  // this must complete.
  ThreadPool pool(1);
  std::atomic<std::size_t> cells{0};
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t) {
    pool.parallel_for(0, 16, [&](std::size_t, std::size_t) {
      cells.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(cells.load(), 64u);
}

TEST(ThreadPool, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](std::size_t, std::size_t) {
                                   pool.parallel_for(
                                       0, 4, [](std::size_t i, std::size_t) {
                                         if (i == 2) {
                                           throw std::runtime_error("inner");
                                         }
                                       });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SlotsAreInRangeAndConcurrentlyDistinct) {
  ThreadPool pool(3);
  const std::size_t slots = pool.slots();
  EXPECT_EQ(slots, 4u);
  // Per-slot counters with no synchronization: TSan (FUNNEL_SANITIZE=thread)
  // would flag any two bodies sharing a slot concurrently.
  std::vector<std::size_t> per_slot(slots, 0);
  std::atomic<bool> out_of_range{false};
  pool.parallel_for(0, 500, [&](std::size_t, std::size_t slot) {
    if (slot >= slots) {
      out_of_range.store(true);
    } else {
      ++per_slot[slot];
    }
  });
  EXPECT_FALSE(out_of_range.load());
  EXPECT_EQ(std::accumulate(per_slot.begin(), per_slot.end(), 0u), 500u);
}

TEST(ThreadPool, ReuseAcrossManyBatches) {
  ThreadPool pool(4);
  for (int batch = 0; batch < 200; ++batch) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(0, 37, [&](std::size_t i, std::size_t) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 37u * 38u / 2u) << "batch " << batch;
  }
}

TEST(ThreadPool, SubmitDeliversResultAndException) {
  ThreadPool pool(2);
  std::future<int> ok = pool.submit([] { return 41 + 1; });
  std::future<void> bad =
      pool.submit([]() -> void { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);  // hardware concurrency
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1u);
  EXPECT_EQ(defaulted.slots(), defaulted.size() + 1);
}

TEST(ThreadPool, ThisSlotOutsidePoolIsCallerSlot) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.this_slot(), pool.size());
}

}  // namespace
}  // namespace funnel
