// A KPI stream: generator + injected effects + shared confounders.
//
// One KpiStream produces the full synthetic series for one (entity, KPI)
// pair. The scenario builder composes: a per-stream generator (independent
// noise), service-wide shared shocks (common mode, cancelled by DiD) and the
// change-induced effects (treated entities only — the signal FUNNEL must
// find).
#pragma once

#include <memory>
#include <vector>

#include "tsdb/store.h"
#include "workload/effects.h"
#include "workload/generators.h"
#include "workload/shock.h"

namespace funnel::workload {

class KpiStream {
 public:
  explicit KpiStream(std::unique_ptr<KpiGenerator> generator);

  /// Layer a change-induced effect onto this stream.
  void add_effect(Effect e) { effects_.add(e); }

  /// Attach a service-wide confounder (shared across sibling streams).
  void add_shock(SharedShock shock);

  /// Next sample (call with non-decreasing minutes).
  double sample(MinuteTime t);

  tsdb::KpiClass kpi_class() const { return generator_->kpi_class(); }
  const EffectTimeline& effects() const { return effects_; }

 private:
  std::unique_ptr<KpiGenerator> generator_;
  EffectTimeline effects_;
  std::vector<SharedShock> shocks_;
};

/// Sample `stream` over [t0, t1) and append every sample into `store` under
/// `id` (creating the series when needed).
void materialize(KpiStream& stream, tsdb::MetricStore& store,
                 const tsdb::MetricId& id, MinuteTime t0, MinuteTime t1);

/// Generate a standalone vector over [t0, t1) (for detector unit tests and
/// figure benches that do not need a store).
std::vector<double> render(KpiStream& stream, MinuteTime t0, MinuteTime t1);

}  // namespace funnel::workload
