#include "changes/change_log.h"

#include <algorithm>

#include "common/error.h"

namespace funnel::changes {

ChangeId ChangeLog::record(SoftwareChange change,
                           const topology::ServiceTopology& topo) {
  FUNNEL_REQUIRE(topo.has_service(change.service),
                 "change references unknown service " + change.service);
  FUNNEL_REQUIRE(!change.servers.empty(),
                 "change must list at least one server");
  const auto& owned = topo.servers_of(change.service);
  for (const std::string& s : change.servers) {
    FUNNEL_REQUIRE(std::find(owned.begin(), owned.end(), s) != owned.end(),
                   "server " + s + " does not belong to " + change.service);
  }
  if (change.mode == LaunchMode::kFull) {
    FUNNEL_REQUIRE(change.servers.size() == owned.size(),
                   "full launching must cover every server of the service");
  } else {
    FUNNEL_REQUIRE(change.servers.size() < owned.size(),
                   "dark launching must leave control servers untreated");
  }
  change.id = static_cast<ChangeId>(changes_.size());
  changes_.push_back(std::move(change));
  return changes_.back().id;
}

const SoftwareChange& ChangeLog::get(ChangeId id) const {
  FUNNEL_REQUIRE(id < changes_.size(), "unknown change id");
  return changes_[id];
}

std::vector<ChangeId> ChangeLog::for_service(const std::string& service) const {
  std::vector<ChangeId> out;
  for (const auto& c : changes_) {
    if (c.service == service) out.push_back(c.id);
  }
  std::stable_sort(out.begin(), out.end(), [&](ChangeId a, ChangeId b) {
    return changes_[a].time < changes_[b].time;
  });
  return out;
}

std::vector<ChangeId> ChangeLog::in_window(MinuteTime t0, MinuteTime t1) const {
  std::vector<ChangeId> out;
  for (const auto& c : changes_) {
    if (c.time >= t0 && c.time < t1) out.push_back(c.id);
  }
  return out;
}

std::optional<ChangeId> ChangeLog::last_before(const std::string& service,
                                               MinuteTime t) const {
  std::optional<ChangeId> best;
  for (const auto& c : changes_) {
    if (c.service != service || c.time >= t) continue;
    if (!best || changes_[*best].time < c.time) best = c.id;
  }
  return best;
}

}  // namespace funnel::changes
