// soak_harness — the time-compressed deployment-week chaos drill
// (docs/SERVICE.md "Soak", docs/ROBUSTNESS.md).
//
//   soak_harness --serve-bin PATH --work-dir DIR [--quick] [--seed S]
//                [--days D] [--change-every M] [--skip-latency]
//
// Drives a real funnel_serve daemon over live HTTP through a synthetic
// deployment week (the paper's operating point: ~24k changes/day across the
// portfolio, §1, compressed to minutes of wall time), with PR 5's
// deterministic FaultInjector dirtying some tenants' feeds and a seeded
// SIGKILL+restart schedule interrupting the daemon mid-stream. Three runs
// of the identical action schedule:
//
//   A golden   clean feeds, no kills
//   B faulted  dirty feeds on the fault tenants, no kills
//   C chaos    same dirty feeds, >= 3 SIGKILL/restart cycles; after each
//              restart every tenant resumes exactly at GET /v1/seq's
//              recovered_seq (the WAL cursor, docs/STORAGE.md §6)
//
// and then the robustness claims are checked mechanically:
//   * C == B per-tenant verdict journals, byte for byte: crashes are
//     invisible in the verdict stream.
//   * B == A byte-identical for every clean tenant: one tenant's dirty
//     feed never alters another tenant's verdict bytes (cross-tenant
//     isolation).
//   * B vs A on the fault tenants: every divergence is confined to a fault
//     tenant and summarised as a cause transition (the documented
//     degradations).
// A final quota/latency phase over-drives one tenant (expecting 429 +
// Retry-After) while a paced in-quota tenant's p95 ingest latency must stay
// within 2x its unloaded baseline (+2ms noise floor), and a quarantine
// drill flips /healthz for one tenant while its neighbour keeps serving.
//
// Exit codes: 0 pass (or FUNNEL_OBS=OFF skip — the HTTP server is
// compiled out), 1 assertion failure, 2 usage, 3 environment.
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "workload/faults.h"

namespace {

namespace fs = std::filesystem;
using funnel::MinuteTime;

// ---------------------------------------------------------------------------
// Options

struct Options {
  std::string serve_bin;
  std::string work_dir;
  bool quick = false;
  std::uint64_t seed = 42;
  int days = 7;
  int change_every = 20;  ///< minutes between changes per tenant
  bool skip_latency = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --serve-bin PATH --work-dir DIR [--quick]\n"
               "          [--seed S] [--days D] [--change-every M]\n"
               "          [--skip-latency]\n",
               argv0);
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;
    if (a == "--serve-bin") {
      if (!next(&opt.serve_bin)) return false;
    } else if (a == "--work-dir") {
      if (!next(&opt.work_dir)) return false;
    } else if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--seed") {
      if (!next(&v)) return false;
      opt.seed = static_cast<std::uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (a == "--days") {
      if (!next(&v)) return false;
      opt.days = std::atoi(v.c_str());
    } else if (a == "--change-every") {
      if (!next(&v)) return false;
      opt.change_every = std::atoi(v.c_str());
    } else if (a == "--skip-latency") {
      opt.skip_latency = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return !opt.serve_bin.empty() && !opt.work_dir.empty();
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.1 client (Connection: close per request)

struct HttpResult {
  bool ok = false;       ///< transport-level success (a response was parsed)
  int status = 0;
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;

  std::string header(const std::string& name) const {
    for (const auto& [k, v] : headers) {
      if (k.size() == name.size() &&
          std::equal(k.begin(), k.end(), name.begin(), [](char a, char b) {
            return std::tolower(static_cast<unsigned char>(a)) ==
                   std::tolower(static_cast<unsigned char>(b));
          })) {
        return v;
      }
    }
    return {};
  }
};

HttpResult http_request(int port, const std::string& method,
                        const std::string& path, const std::string& body) {
  HttpResult res;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return res;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return res;
  }
  std::ostringstream req;
  req << method << ' ' << path << " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      << "Content-Length: " << body.size()
      << "\r\nConnection: close\r\n\r\n"
      << body;
  const std::string out = req.str();
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return res;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return res;
  const std::size_t line_end = raw.find("\r\n");
  const std::string status_line = raw.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) return res;
  res.status = std::atoi(status_line.c_str() + sp + 1);
  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    const std::size_t eol = raw.find("\r\n", pos);
    const std::string line = raw.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    res.headers.emplace_back(line.substr(0, colon), value);
  }
  res.body = raw.substr(head_end + 4);
  res.ok = true;
  return res;
}

/// Retry transport failures briefly (covers the accept race right after a
/// restart announces its port).
HttpResult http_retry(int port, const std::string& method,
                      const std::string& path, const std::string& body,
                      int attempts = 40) {
  for (int i = 0; i < attempts; ++i) {
    HttpResult res = http_request(port, method, path, body);
    if (res.ok) return res;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return {};
}

// ---------------------------------------------------------------------------
// Daemon lifecycle

struct Daemon {
  pid_t pid = -1;
  int port = 0;
};

std::vector<std::string> serve_args(const Options& opt, const std::string& dir,
                                    const std::vector<std::string>& tenants) {
  std::vector<std::string> args = {
      opt.serve_bin,     "--port",          "auto",
      "--port-file",     dir + "/port.txt", "--data-root",
      dir + "/data",     "--num-shards",    "2",
      "--queue-capacity", "256",            "--horizon",
      "20",              "--lookback",      "30",
      "--min-did-window", "6"};
  args.push_back("--tenants");
  std::string joined;
  for (const std::string& t : tenants) {
    if (!joined.empty()) joined += ',';
    joined += t;
  }
  args.push_back(joined);
  return args;
}

bool spawn_daemon(const Options& opt, const std::string& dir,
                  const std::vector<std::string>& tenants, Daemon* daemon,
                  bool* compiled_out) {
  *compiled_out = false;
  const std::string port_file = dir + "/port.txt";
  fs::remove(port_file);
  const std::vector<std::string> args = serve_args(opt, dir, tenants);
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) ::dup2(devnull, 0);
    const int logfd = ::open((dir + "/serve.log").c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (logfd >= 0) {
      ::dup2(logfd, 1);
      ::dup2(logfd, 2);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  // Wait for the port-file handshake; a fast exit 3 is the FUNNEL_OBS=OFF
  // (or bind-failure) signature.
  for (int i = 0; i < 600; ++i) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      if (WIFEXITED(status) && WEXITSTATUS(status) == 3) *compiled_out = true;
      return false;
    }
    std::ifstream pf(port_file);
    int port = 0;
    if (pf >> port && port > 0) {
      HttpResult ready = http_request(port, "GET", "/readyz", "");
      if (ready.ok && ready.status == 200) {
        daemon->pid = pid;
        daemon->port = port;
        return true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return false;
}

void kill_daemon(Daemon* daemon) {
  if (daemon->pid <= 0) return;
  ::kill(daemon->pid, SIGKILL);
  ::waitpid(daemon->pid, nullptr, 0);
  daemon->pid = -1;
}

bool stop_daemon(Daemon* daemon) {
  if (daemon->pid <= 0) return false;
  ::kill(daemon->pid, SIGTERM);
  int status = 0;
  ::waitpid(daemon->pid, &status, 0);
  daemon->pid = -1;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

// ---------------------------------------------------------------------------
// The deployment-week schedule

struct Action {
  bool change = false;
  std::string line;
};

struct TenantPlan {
  std::string name;
  bool faulted = false;                ///< feeds dirtied in runs B/C
  std::vector<Action> clean;           ///< run A's action stream
  std::vector<Action> dirty;           ///< runs B/C (== clean when !faulted)
  std::size_t changes = 0;
};

std::string sample_line(const std::string& server, MinuteTime m, double v) {
  char buf[128];
  if (std::isnan(v)) {
    std::snprintf(buf, sizeof(buf), "svc,%s,cpu,%lld,nan", server.c_str(),
                  static_cast<long long>(m));
  } else {
    std::snprintf(buf, sizeof(buf), "svc,%s,cpu,%lld,%.6f", server.c_str(),
                  static_cast<long long>(m), v);
  }
  return buf;
}

/// One tenant's week: two servers sampled every minute, a change every
/// `change_every` minutes alternating servers, every third change carrying
/// a real +8 step on its treated server (so golden runs detect impact).
/// The dirty stream pushes the same clean values through a seeded
/// FaultInjector per server — the same realized deliveries in runs B and C.
TenantPlan build_plan(const std::string& name, bool faulted, int minutes,
                      int change_every, std::uint64_t seed) {
  TenantPlan plan;
  plan.name = name;
  plan.faulted = faulted;
  funnel::Rng rng(seed);
  const std::vector<std::string> servers = {"srv0", "srv1"};
  const funnel::workload::FaultSpec spec = funnel::workload::parse_fault_spec(
      "drop=0.03,nan=0.01x4,stuck=0.005x6,dup=0.02,reorder=0.02,late=0.01x4");
  std::vector<funnel::workload::FaultInjector> inject;
  for (std::size_t s = 0; s < servers.size(); ++s) {
    inject.emplace_back(spec, seed * 1000003 + s);
  }

  const int first_change = 45;  // > lookback(30): history always primes
  const int horizon = 20;       // must match serve_args
  struct Step {
    std::size_t server;
    MinuteTime from, to;
  };
  std::vector<Step> steps;
  int k = 0;
  for (int m = 0; m < minutes; ++m) {
    // Samples for this minute.
    for (std::size_t s = 0; s < servers.size(); ++s) {
      double v = 10.0 + rng.uniform() - 0.5;
      for (const Step& step : steps) {
        if (step.server == s && m >= step.from && m < step.to) v += 8.0;
      }
      plan.clean.push_back({false, sample_line(servers[s], m, v)});
      if (faulted) {
        for (const funnel::workload::FaultDelivery& d :
             inject[s].push(m, v)) {
          plan.dirty.push_back(
              {false, sample_line(servers[s], d.minute, d.value)});
        }
      }
    }
    // A change, once the feed has history and the horizon still fits.
    if (m >= first_change && (m - first_change) % change_every == 0 &&
        m + horizon + 5 < minutes) {
      const std::size_t srv = static_cast<std::size_t>(k) % servers.size();
      char line[160];
      std::snprintf(line, sizeof(line), "%d,svc,dark,%s,chg-%d", m,
                    servers[srv].c_str(), k);
      if (k % 3 == 0) steps.push_back({srv, m, m + horizon});
      plan.clean.push_back({true, line});
      if (faulted) plan.dirty.push_back({true, line});
      ++k;
      ++plan.changes;
    }
  }
  if (faulted) {
    for (auto& inj : inject) {
      for (const funnel::workload::FaultDelivery& d : inj.drain()) {
        // Drained stragglers belong to whichever server's injector held
        // them; re-derive the server from the injector index.
        const std::size_t s = static_cast<std::size_t>(&inj - inject.data());
        plan.dirty.push_back(
            {false, sample_line(servers[s], d.minute, d.value)});
      }
    }
  } else {
    plan.dirty = plan.clean;
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Driving one run

struct RunResult {
  bool ok = false;
  std::size_t kills = 0;
  std::map<std::string, std::string> journals;  ///< tenant -> bytes
};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Send the schedule through a live daemon, SIGKILLing at the scheduled
/// chunk indices and resuming every tenant from its recovered_seq.
bool drive(const Options& opt, const std::string& dir,
           const std::vector<TenantPlan>& plans, bool use_dirty,
           const std::vector<std::size_t>& kill_at, RunResult* result,
           bool* compiled_out) {
  fs::create_directories(dir);
  std::vector<std::string> tenants;
  for (const TenantPlan& p : plans) tenants.push_back(p.name);

  Daemon daemon;
  if (!spawn_daemon(opt, dir, tenants, &daemon, compiled_out)) return false;

  constexpr std::size_t kChunk = 120;
  std::vector<std::size_t> cursor(plans.size(), 0);
  std::vector<std::size_t> chunks_sent(plans.size(), 0);
  std::size_t chunk_counter = 0;
  std::size_t next_kill = 0;

  const auto actions = [&](std::size_t t) -> const std::vector<Action>& {
    return use_dirty ? plans[t].dirty : plans[t].clean;
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < plans.size(); ++t) {
      const std::vector<Action>& plan = actions(t);
      if (cursor[t] >= plan.size()) continue;
      progressed = true;
      // One chunk: consecutive same-kind actions, <= kChunk.
      const bool change = plan[cursor[t]].change;
      std::string body;
      std::size_t end = cursor[t];
      while (end < plan.size() && end - cursor[t] < kChunk &&
             plan[end].change == change) {
        body += plan[end].line;
        body += '\n';
        ++end;
      }
      const std::string path =
          (change ? "/v1/changes/" : "/v1/ingest/") + plans[t].name;
      const HttpResult res = http_retry(daemon.port, "POST", path, body);
      if (!res.ok || res.status != 200) {
        std::fprintf(stderr, "FAIL: POST %s -> %d %s\n", path.c_str(),
                     res.status, res.body.c_str());
        kill_daemon(&daemon);
        return false;
      }
      cursor[t] = end;
      // The seq-alignment invariant: every action is exactly one WAL
      // record, so the server's cursor must equal ours after every chunk.
      const std::size_t applied = [&] {
        const std::size_t pos = res.body.find("\"applied_seq\":");
        return pos == std::string::npos
                   ? std::size_t(0)
                   : static_cast<std::size_t>(
                         std::atoll(res.body.c_str() + pos + 14));
      }();
      if (applied != cursor[t]) {
        std::fprintf(stderr,
                     "FAIL: %s seq misalignment: applied_seq=%zu cursor=%zu\n",
                     plans[t].name.c_str(), applied, cursor[t]);
        kill_daemon(&daemon);
        return false;
      }
      ++chunks_sent[t];
      ++chunk_counter;
      // Periodic checkpoints (same cadence in every run).
      if (chunks_sent[t] % 8 == 0) {
        http_retry(daemon.port, "POST", "/v1/checkpoint/" + plans[t].name, "");
      }
      // The chaos schedule: SIGKILL, restart, resume from recovered_seq.
      if (next_kill < kill_at.size() && chunk_counter >= kill_at[next_kill]) {
        ++next_kill;
        ++result->kills;
        kill_daemon(&daemon);
        if (!spawn_daemon(opt, dir, tenants, &daemon, compiled_out)) {
          std::fprintf(stderr, "FAIL: restart after SIGKILL\n");
          return false;
        }
        for (std::size_t u = 0; u < plans.size(); ++u) {
          const HttpResult seq = http_retry(
              daemon.port, "GET", "/v1/seq/" + plans[u].name, "");
          if (!seq.ok || seq.status != 200) {
            std::fprintf(stderr, "FAIL: GET /v1/seq/%s after restart\n",
                         plans[u].name.c_str());
            kill_daemon(&daemon);
            return false;
          }
          const std::size_t pos = seq.body.find("\"recovered_seq\":");
          const std::size_t recovered = static_cast<std::size_t>(
              std::atoll(seq.body.c_str() + pos + 16));
          if (recovered > cursor[u]) {
            std::fprintf(stderr,
                         "FAIL: %s recovered_seq %zu beyond sent %zu\n",
                         plans[u].name.c_str(), recovered, cursor[u]);
            kill_daemon(&daemon);
            return false;
          }
          cursor[u] = recovered;  // resume exactly where the WAL ends
        }
      }
    }
  }

  // Final barrier + clean shutdown.
  for (const TenantPlan& p : plans) {
    const HttpResult status =
        http_retry(daemon.port, "GET", "/v1/status/" + p.name, "");
    if (!status.ok || status.body.find("\"quarantined\":false") ==
                          std::string::npos) {
      std::fprintf(stderr, "FAIL: %s unexpectedly quarantined: %s\n",
                   p.name.c_str(), status.body.c_str());
      kill_daemon(&daemon);
      return false;
    }
    http_retry(daemon.port, "POST", "/v1/checkpoint/" + p.name, "");
  }
  if (!stop_daemon(&daemon)) {
    std::fprintf(stderr, "FAIL: daemon did not exit 0 on SIGTERM\n");
    return false;
  }
  for (const TenantPlan& p : plans) {
    result->journals[p.name] =
        read_file(fs::path(dir) / "data" / p.name / "journal.jsonl");
  }
  result->ok = true;
  return true;
}

// ---------------------------------------------------------------------------
// Comparisons

std::size_t diff_events(const std::string& name, const std::string& dir_a,
                        const std::string& dir_b) {
  std::size_t diffs = 0;
  const auto a = funnel::obs::read_journal(
      (fs::path(dir_a) / "data" / name / "journal.jsonl").string());
  const auto b = funnel::obs::read_journal(
      (fs::path(dir_b) / "data" / name / "journal.jsonl").string());
  std::map<std::string, std::vector<std::string>> causes_a;
  for (const auto& ev : a) {
    causes_a[std::to_string(ev.change_id) + "|" + ev.metric].push_back(
        ev.cause);
  }
  std::map<std::string, std::vector<std::string>> causes_b;
  for (const auto& ev : b) {
    causes_b[std::to_string(ev.change_id) + "|" + ev.metric].push_back(
        ev.cause);
  }
  for (const auto& [key, cb] : causes_b) {
    const auto it = causes_a.find(key);
    if (it == causes_a.end() || it->second != cb) {
      ++diffs;
      std::fprintf(stderr, "  degradation %s %s: golden=%s faulted=%s\n",
                   name.c_str(), key.c_str(),
                   it == causes_a.end() || it->second.empty()
                       ? "-"
                       : it->second.back().c_str(),
                   cb.empty() ? "-" : cb.back().c_str());
    }
  }
  for (const auto& [key, ca] : causes_a) {
    if (causes_b.find(key) == causes_b.end()) {
      ++diffs;
      std::fprintf(stderr, "  degradation %s %s: verdict missing\n",
                   name.c_str(), key.c_str());
    }
  }
  return diffs;
}

// ---------------------------------------------------------------------------
// Quota + latency + quarantine phase

double p95(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1,
                    static_cast<std::size_t>(0.95 * (v.size() - 1) + 0.5))];
}

bool quota_latency_phase(const Options& opt, const std::string& dir,
                         bool strict) {
  fs::create_directories(dir);
  // In-memory server (no --data-root): latency reflects admission + queue,
  // not disk. Both tenants share the CLI quota; "steady" stays inside it by
  // pacing, "greedy" slams it.
  std::vector<std::string> args = {
      opt.serve_bin, "--port",      "auto",
      "--port-file", dir + "/port.txt", "--tenants",
      "steady,greedy", "--quota-rate", "4000",
      "--quota-burst", "4000",       "--queue-capacity", "256"};
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    const int logfd = ::open((dir + "/serve.log").c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (logfd >= 0) {
      ::dup2(logfd, 1);
      ::dup2(logfd, 2);
    }
    std::vector<char*> argv;
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  Daemon daemon;
  daemon.pid = pid;
  for (int i = 0; i < 200 && daemon.port == 0; ++i) {
    std::ifstream pf(dir + "/port.txt");
    int port = 0;
    if (pf >> port && port > 0) {
      const HttpResult ready = http_request(port, "GET", "/readyz", "");
      if (ready.ok && ready.status == 200) daemon.port = port;
    }
    if (daemon.port == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (daemon.port == 0) {
    kill_daemon(&daemon);
    return false;
  }

  std::string batch;  // 100 samples, distinct minutes so upserts are cheap
  for (int i = 0; i < 100; ++i) {
    batch += sample_line("s", i, 1.0) + "\n";
  }
  const auto timed_post = [&](const std::string& tenant) {
    const auto start = std::chrono::steady_clock::now();
    const HttpResult res =
        http_request(daemon.port, "POST", "/v1/ingest/" + tenant, batch);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return std::make_pair(res, ms);
  };

  // Unloaded baseline: paced in-quota batches (100 every 50ms = 2000/s).
  std::vector<double> unloaded;
  for (int i = 0; i < 40; ++i) {
    auto [res, ms] = timed_post("steady");
    if (!res.ok || res.status != 200) {
      std::fprintf(stderr, "FAIL: unloaded steady POST -> %d\n", res.status);
      kill_daemon(&daemon);
      return false;
    }
    unloaded.push_back(ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Overload: hammer greedy with oversized batches, no pacing.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<bool> retry_after_seen{false};
  std::string big;
  for (int i = 0; i < 4000; ++i) big += sample_line("g", i, 1.0) + "\n";
  std::thread hammer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HttpResult res =
          http_request(daemon.port, "POST", "/v1/ingest/greedy", big);
      if (!res.ok) continue;
      if (res.status == 429) {
        rejected.fetch_add(1, std::memory_order_relaxed);
        if (!res.header("Retry-After").empty()) {
          retry_after_seen.store(true, std::memory_order_relaxed);
        }
      } else if (res.status == 200) {
        admitted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::vector<double> loaded;
  for (int i = 0; i < 40; ++i) {
    auto [res, ms] = timed_post("steady");
    if (res.ok && res.status == 200) loaded.push_back(ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true);
  hammer.join();

  const double base = p95(unloaded);
  const double under_load = p95(loaded);
  std::fprintf(stderr,
               "quota phase: greedy admitted=%llu rejected(429)=%llu "
               "retry-after=%s; steady p95 unloaded=%.2fms loaded=%.2fms\n",
               static_cast<unsigned long long>(admitted.load()),
               static_cast<unsigned long long>(rejected.load()),
               retry_after_seen.load() ? "yes" : "no", base, under_load);
  bool ok = true;
  if (rejected.load() == 0 || !retry_after_seen.load()) {
    std::fprintf(stderr, "FAIL: over-quota tenant saw no 429/Retry-After\n");
    ok = false;
  }
  const double allowed = 2.0 * base + 2.0;
  if (under_load > allowed) {
    std::fprintf(stderr,
                 "%s: in-quota p95 %.2fms exceeds 2x unloaded %.2fms (+2ms)\n",
                 strict ? "FAIL" : "WARN", under_load, base);
    if (strict) ok = false;
  }

  // Quarantine drill: flip greedy, verify /healthz carries the detail and
  // the neighbour keeps serving.
  http_retry(daemon.port, "POST", "/v1/quarantine/greedy", "drill\n");
  const HttpResult health = http_retry(daemon.port, "GET", "/healthz", "");
  const HttpResult greedy_ingest =
      http_retry(daemon.port, "POST", "/v1/ingest/greedy", batch);
  const HttpResult steady_ok = timed_post("steady").first;
  if (health.status != 503 ||
      health.body.find("tenant:greedy") == std::string::npos) {
    std::fprintf(stderr, "FAIL: /healthz did not flag quarantined tenant\n");
    ok = false;
  }
  if (greedy_ingest.status != 503) {
    std::fprintf(stderr, "FAIL: quarantined tenant not refusing (got %d)\n",
                 greedy_ingest.status);
    ok = false;
  }
  if (!steady_ok.ok || steady_ok.status != 200) {
    std::fprintf(stderr, "FAIL: healthy tenant degraded by quarantine\n");
    ok = false;
  }

  Daemon d = daemon;
  if (!stop_daemon(&d)) {
    std::fprintf(stderr, "FAIL: quota-phase daemon did not exit 0\n");
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  if (!funnel::obs::kEnabled) {
    std::fprintf(stderr,
                 "skip: FUNNEL_OBS=OFF compiles the HTTP server out\n");
    return 77;  // ctest SKIP_RETURN_CODE
  }
  std::signal(SIGPIPE, SIG_IGN);

  const int minutes = opt.quick ? 240 : opt.days * 1440;
  const int change_every = opt.quick ? 30 : opt.change_every;
  const std::size_t num_tenants = opt.quick ? 3 : 4;

  std::vector<TenantPlan> plans;
  std::size_t total_changes = 0, total_actions = 0;
  for (std::size_t t = 0; t < num_tenants; ++t) {
    const bool faulted = opt.quick ? (t == 1) : (t % 2 == 1);
    plans.push_back(build_plan("tenant" + std::to_string(t), faulted, minutes,
                               change_every, opt.seed + t));
    total_changes += plans.back().changes;
    total_actions += plans.back().dirty.size();
  }
  std::fprintf(stderr,
               "soak: %zu tenants, %d synthetic minutes, %zu changes, "
               "%zu actions\n",
               num_tenants, minutes, total_changes, total_actions);

  // Kill schedule: fractions of the estimated chunk count, seeded jitter.
  const std::size_t est_chunks = total_actions / 120 + num_tenants;
  funnel::Rng kill_rng(opt.seed ^ 0x5eed);
  std::vector<std::size_t> kill_at;
  const std::size_t kill_count = opt.quick ? 1 : 3;
  for (std::size_t k = 1; k <= kill_count; ++k) {
    const std::size_t base = est_chunks * k / (kill_count + 1);
    kill_at.push_back(std::max<std::size_t>(
        1, base + static_cast<std::size_t>(kill_rng.uniform_int(0, 7))));
  }

  const fs::path work(opt.work_dir);
  fs::remove_all(work);
  fs::create_directories(work);

  RunResult golden, faulted, chaos;
  bool compiled_out = false;
  std::fprintf(stderr, "run A (golden: clean feeds, no kills)...\n");
  if (!drive(opt, (work / "golden").string(), plans, /*use_dirty=*/false, {},
             &golden, &compiled_out)) {
    if (compiled_out) {
      std::fprintf(stderr, "skip: serve binary reports FUNNEL_OBS=OFF\n");
      return 77;  // ctest SKIP_RETURN_CODE
    }
    return 1;
  }
  std::fprintf(stderr, "run B (faulted feeds, no kills)...\n");
  if (!drive(opt, (work / "faulted").string(), plans, /*use_dirty=*/true, {},
             &faulted, &compiled_out)) {
    return 1;
  }
  std::fprintf(stderr, "run C (faulted feeds, %zu SIGKILL cycles)...\n",
               kill_at.size());
  if (!drive(opt, (work / "chaos").string(), plans, /*use_dirty=*/true,
             kill_at, &chaos, &compiled_out)) {
    return 1;
  }

  bool ok = true;
  if (chaos.kills < kill_count) {
    std::fprintf(stderr, "FAIL: only %zu of %zu scheduled kills fired\n",
                 chaos.kills, kill_count);
    ok = false;
  }
  for (const TenantPlan& p : plans) {
    // Crash-invisibility: the chaos run's journal must be byte-identical
    // to the uninterrupted faulted run's.
    if (chaos.journals[p.name] != faulted.journals[p.name]) {
      std::fprintf(stderr,
                   "FAIL: %s journal differs between chaos and faulted runs "
                   "(%zu vs %zu bytes)\n",
                   p.name.c_str(), chaos.journals[p.name].size(),
                   faulted.journals[p.name].size());
      ok = false;
    }
    if (!p.faulted) {
      // Cross-tenant isolation: a clean tenant's verdict bytes must not
      // change because a neighbour's feed was dirty.
      if (faulted.journals[p.name] != golden.journals[p.name]) {
        std::fprintf(stderr,
                     "FAIL: clean tenant %s journal altered by neighbour "
                     "faults\n",
                     p.name.c_str());
        ok = false;
      }
    } else {
      const std::size_t diffs = diff_events(
          p.name, (work / "golden").string(), (work / "faulted").string());
      std::fprintf(stderr,
                   "%s: %zu degraded verdict keys vs golden (documented, "
                   "fault tenant)\n",
                   p.name.c_str(), diffs);
    }
  }

  if (!opt.skip_latency) {
    if (!quota_latency_phase(opt, (work / "quota").string(),
                             /*strict=*/!opt.quick)) {
      ok = false;
    }
  }

  std::fprintf(stderr, ok ? "SOAK PASS\n" : "SOAK FAIL\n");
  return ok ? 0 : 1;
}
