// Differential suite for the SST hot path: warm-started fast scoring vs
// per-window cold restarts of the same path, batched lanes vs standalone
// scorers, and the bit-exactness contract of the blocked Hankel kernels.
//
// The locked-down invariants:
//   * HankelGramOperator::apply_block is bit-identical to apply() and to
//     apply_block_reference; BatchHankelGram matches per-lane apply_block.
//   * A warm-started fast scorer (IkaParams::warm_past) tracks a scorer
//     cold-restarted before every window within a per-window tolerance
//     (the residual-escalation guarantee), and the final alarm verdicts
//     are byte-identical over the seed corpora and chaos-faulted series.
//     (Fidelity of the fast path against the exact SVD scorer is guarded
//     separately by detect_sst_fidelity_test's correlation floor.)
//   * A deterministic cold restart reproduces the from-scratch score
//     bit-for-bit at the restart boundary.
//   * Retargeting a warm scorer onto an unrelated series (no reset())
//     re-converges instead of poisoning scores — the PR 5 regression.
//   * reset() fully clears warm state: score, reset, re-score is
//     byte-identical (the ThreadPool per-slot reuse contract).
//   * IkaSstBatch is bit-identical to independent fast scorers, including
//     across NaN windows and restart boundaries.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "detect/ika_batch.h"
#include "detect/ika_sst.h"
#include "detect/sliding.h"
#include "detect/sst_common.h"
#include "linalg/hankel.h"
#include "tsdb/series.h"
#include "workload/faults.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::detect {
namespace {

constexpr SstGeometry kGeom{.omega = 9, .eta = 3};

IkaParams fast_params() {
  IkaParams p;
  p.warm_past = true;
  return p;
}

std::vector<double> class_series(tsdb::KpiClass cls, std::uint64_t seed,
                                 MinuteTime len, double shift = 0.0,
                                 MinuteTime tc = 0) {
  workload::KpiStream s(workload::make_default(cls, Rng(seed)));
  if (shift != 0.0) s.add_effect(workload::LevelShift{tc, shift});
  return workload::render(s, 0, len);
}

// ---------------------------------------------------------------------------
// Blocked Hankel kernels: bit-exactness vs the scalar reference.
// ---------------------------------------------------------------------------

TEST(BatchHankelKernels, ApplyBlockBitIdenticalToApply) {
  Rng rng(314);
  const std::size_t omega = 9, count = 9, cols = 3;
  std::vector<double> window(linalg::hankel_span(omega, count));
  for (double& v : window) v = rng.gaussian(0.0, 3.0);
  const linalg::HankelGramOperator op(window, omega, count);

  std::vector<double> x(omega * cols);
  for (double& v : x) v = rng.gaussian(0.0, 1.0);

  // Column-at-a-time apply().
  std::vector<double> expected(omega * cols);
  std::vector<double> xi(omega), yi(omega);
  for (std::size_t b = 0; b < cols; ++b) {
    for (std::size_t i = 0; i < omega; ++i) xi[i] = x[i * cols + b];
    op.apply(xi, yi);
    for (std::size_t i = 0; i < omega; ++i) expected[i * cols + b] = yi[i];
  }

  std::vector<double> y(omega * cols), yref(omega * cols);
  std::vector<double> scratch(op.count() * cols);
  op.apply_block(x, y, cols, scratch);
  op.apply_block_reference(x, yref, cols);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y[i], expected[i]) << "apply_block diverged at " << i;
    EXPECT_EQ(yref[i], expected[i]) << "reference diverged at " << i;
  }
}

TEST(BatchHankelKernels, BatchGramMatchesPerLaneOperators) {
  Rng rng(217);
  const std::size_t omega = 9, count = 9, cols = 3, kpis = 5;
  const std::size_t span = linalg::hankel_span(omega, count);

  std::vector<std::vector<double>> lanes(kpis, std::vector<double>(span));
  std::vector<double> interleaved(kpis * span);
  for (std::size_t k = 0; k < kpis; ++k) {
    for (std::size_t i = 0; i < span; ++i) {
      lanes[k][i] = rng.gaussian(0.0, 2.0);
      interleaved[i * kpis + k] = lanes[k][i];
    }
  }
  std::vector<double> x(omega * cols * kpis);
  for (double& v : x) v = rng.gaussian(0.0, 1.0);

  const linalg::BatchHankelGram batch(interleaved, kpis, omega, count);
  std::vector<double> y(x.size()), scratch(count * cols * kpis);
  batch.apply_block(x, y, cols, scratch);

  std::vector<double> xk(omega * cols), yk(omega * cols);
  std::vector<double> sk(count * cols);
  for (std::size_t k = 0; k < kpis; ++k) {
    const linalg::HankelGramOperator op(lanes[k], omega, count);
    for (std::size_t i = 0; i < omega; ++i) {
      for (std::size_t b = 0; b < cols; ++b) {
        xk[i * cols + b] = x[(i * cols + b) * kpis + k];
      }
    }
    op.apply_block(xk, yk, cols, sk);
    for (std::size_t i = 0; i < omega; ++i) {
      for (std::size_t b = 0; b < cols; ++b) {
        EXPECT_EQ(y[(i * cols + b) * kpis + k], yk[i * cols + b])
            << "lane " << k << " entry (" << i << "," << b << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Warm vs cold fast path: tolerance-bounded scores, byte-identical
// verdicts.
// ---------------------------------------------------------------------------

struct Corpus {
  tsdb::KpiClass cls;
  std::uint64_t seed;
  double shift;  ///< level shift at minute 300 (0 = clean)
};

// Warm-vs-cold differential: the same fast scorer run warm-started across
// the series must match a scorer cold-restarted before every window —
// tolerance-bounded per window (the residual-escalation guarantee) and
// with byte-identical alarm verdicts. Windows where the warm basis loses
// the subspace escalate to a cold re-seed internally, which is what keeps
// this bound tight even on the hardest (variable) class.
//
// The drift scale: score = x̂ · factor (Eq. 11) with x̂ ∈ [0.25, 1] and a
// factor the warm and cold runs share exactly (it depends only on the
// window), so warm-vs-cold drift is x̂-level drift stretched by the
// factor. The bound below is therefore relative to max(1, factor); the
// worst observed across the corpora is ≈ 0.40.
constexpr double kWarmDriftTolerance = 0.45;

// Eq. 11 damping factor of one window, recomputed the way the scorer does.
double window_factor(std::span<const double> window) {
  const std::vector<double> z = standardize_window(window, kGeom.half());
  if (z.empty()) return std::numeric_limits<double>::quiet_NaN();
  const std::span<const double> zs(z);
  return robust_score_factor(zs.subspan(0, kGeom.half()),
                             zs.subspan(kGeom.half(), kGeom.half()));
}

class WarmColdDifferential : public ::testing::TestWithParam<Corpus> {};

TEST_P(WarmColdDifferential, DriftBoundedAndVerdictsByteIdentical) {
  const Corpus c = GetParam();
  const std::vector<double> series =
      class_series(c.cls, c.seed, 520, c.shift, 300);

  IkaSst warm(kGeom, fast_params());
  IkaSst cold(kGeom, fast_params());
  const std::size_t w = kGeom.window();
  const auto span = std::span<const double>(series);
  std::vector<double> sw, sc;
  for (std::size_t i = 0; i + w <= series.size(); ++i) {
    sw.push_back(warm.score(span.subspan(i, w)));
    cold.reset();
    sc.push_back(cold.score(span.subspan(i, w)));
  }

  // Per-window: NaN patterns identical, finite scores within tolerance.
  for (std::size_t i = 0; i < sw.size(); ++i) {
    ASSERT_EQ(std::isnan(sw[i]), std::isnan(sc[i])) << "window " << i;
    if (std::isnan(sw[i])) continue;
    const double factor = window_factor(span.subspan(i, w));
    EXPECT_NEAR(sw[i], sc[i], kWarmDriftTolerance * std::max(1.0, factor))
        << "window " << i;
  }

  // Final verdicts: the alarm sets must be byte-identical under the
  // library alarm policy.
  const AlarmPolicy policy{.threshold = 0.22, .persistence = 7,
                           .patience = 10};
  const auto aw = all_alarms(sw, w, 0, policy);
  const auto ac = all_alarms(sc, w, 0, policy);
  ASSERT_EQ(aw.size(), ac.size());
  for (std::size_t i = 0; i < aw.size(); ++i) {
    EXPECT_EQ(aw[i].minute, ac[i].minute);
    EXPECT_EQ(aw[i].first_window, ac[i].first_window);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedCorpora, WarmColdDifferential,
    ::testing::Values(
        Corpus{tsdb::KpiClass::kStationary, 11, 0.0},
        Corpus{tsdb::KpiClass::kStationary, 11, 8.0},
        Corpus{tsdb::KpiClass::kStationary, 23, 8.0},
        Corpus{tsdb::KpiClass::kSeasonal, 31, 0.0},
        Corpus{tsdb::KpiClass::kSeasonal, 31, 8.0},
        Corpus{tsdb::KpiClass::kVariable, 53, 0.0},
        Corpus{tsdb::KpiClass::kVariable, 53, 8.0},
        Corpus{tsdb::KpiClass::kVariable, 61, 8.0}));

// On some variable-class series warm and cold runs disagree on *re-fire*
// timing: during a sustained exceedance the policy re-alarms every
// `persistence` windows, so one near-threshold score flip shifts every
// later re-fire in that episode by a window or two. The verdicts that
// matter — how many alarm episodes and the byte-exact onset of each —
// must still agree. (Seed 47 is a measured instance of this: 9 alarms on
// both sides, two re-fires shifted, episodes identical.)
TEST(WarmColdDifferential, RefireJitterNeverChangesEpisodes) {
  for (const double shift : {0.0, 8.0}) {
    const std::vector<double> series =
        class_series(tsdb::KpiClass::kVariable, 47, 520, shift, 300);
    IkaSst warm(kGeom, fast_params());
    IkaSst cold(kGeom, fast_params());
    const std::size_t w = kGeom.window();
    const auto span = std::span<const double>(series);
    std::vector<double> sw, sc;
    for (std::size_t i = 0; i + w <= series.size(); ++i) {
      sw.push_back(warm.score(span.subspan(i, w)));
      cold.reset();
      sc.push_back(cold.score(span.subspan(i, w)));
    }
    for (std::size_t i = 0; i < sw.size(); ++i) {
      ASSERT_EQ(std::isnan(sw[i]), std::isnan(sc[i])) << "window " << i;
      if (std::isnan(sw[i])) continue;
      const double factor = window_factor(span.subspan(i, w));
      EXPECT_NEAR(sw[i], sc[i], kWarmDriftTolerance * std::max(1.0, factor))
          << "window " << i;
    }
    const AlarmPolicy policy{.threshold = 0.22, .persistence = 7,
                             .patience = 10};
    const auto aw = all_alarms(sw, w, 0, policy);
    const auto ac = all_alarms(sc, w, 0, policy);
    EXPECT_EQ(aw.size(), ac.size()) << "shift " << shift;
    const auto ew = alarm_episodes(aw, 30);
    const auto ec = alarm_episodes(ac, 30);
    ASSERT_EQ(ew.size(), ec.size()) << "shift " << shift;
    for (std::size_t i = 0; i < ew.size(); ++i) {
      EXPECT_EQ(ew[i].minute, ec[i].minute) << "shift " << shift;
      EXPECT_EQ(ew[i].first_window, ec[i].first_window) << "shift " << shift;
    }
  }
}

// The PR 5 chaos grid, replayed through the fast path: faulted telemetry
// (NaN bursts, stuck-at runs, drops reconciled to NaN gaps) must keep the
// warm-vs-cold drift bound and byte-identical alarm verdicts — NaN gaps
// interrupt the warm recurrence mid-series, which is exactly the state
// the escalation check has to survive.
TEST(FastPathChaos, FaultedSeriesVerdictsByteIdentical) {
  const char* kSpecs[] = {
      "nan=0.02x4",
      "drop=0.05",
      "stuck=0.01x8",
      "drop=0.03,nan=0.01x4,stuck=0.005x8",
  };
  for (const char* spec_str : kSpecs) {
    const workload::FaultSpec spec = workload::parse_fault_spec(spec_str);
    const std::vector<double> clean =
        class_series(tsdb::KpiClass::kStationary, 5, 520, 8.0, 300);
    tsdb::TimeSeries clean_ts(0, clean);
    workload::FaultInjector inj(spec, 99);
    const tsdb::TimeSeries dirty = workload::apply_faults(clean_ts, inj);
    const auto series = dirty.values();

    IkaSst warm(kGeom, fast_params());
    IkaSst cold(kGeom, fast_params());
    const std::size_t w = kGeom.window();
    const auto span = std::span<const double>(series);
    std::vector<double> sw, sc;
    for (std::size_t i = 0; i + w <= series.size(); ++i) {
      sw.push_back(warm.score(span.subspan(i, w)));
      cold.reset();
      sc.push_back(cold.score(span.subspan(i, w)));
    }
    for (std::size_t i = 0; i < sw.size(); ++i) {
      ASSERT_EQ(std::isnan(sw[i]), std::isnan(sc[i]))
          << spec_str << " window " << i;
      if (std::isnan(sw[i])) continue;
      const double factor = window_factor(span.subspan(i, w));
      EXPECT_NEAR(sw[i], sc[i], kWarmDriftTolerance * std::max(1.0, factor))
          << spec_str << " window " << i;
    }

    const AlarmPolicy policy{.threshold = 0.22, .persistence = 7,
                             .patience = 10};
    const auto aw = all_alarms(sw, w, 0, policy);
    const auto ac = all_alarms(sc, w, 0, policy);
    ASSERT_EQ(aw.size(), ac.size()) << spec_str;
    for (std::size_t i = 0; i < aw.size(); ++i) {
      EXPECT_EQ(aw[i].minute, ac[i].minute) << spec_str;
      EXPECT_EQ(aw[i].first_window, ac[i].first_window) << spec_str;
    }
  }
}

// ---------------------------------------------------------------------------
// Restart policy and warm-state lifecycle.
// ---------------------------------------------------------------------------

// At a deterministic restart boundary the fast scorer drops every warm
// basis, so the boundary window's score is bit-identical to a fresh fast
// scorer seeing that window cold.
TEST(WarmStartLifecycle, ColdRestartBoundaryBitExact) {
  IkaParams p = fast_params();
  p.restart_period = 16;  // small period so the test crosses two restarts
  const std::vector<double> series =
      class_series(tsdb::KpiClass::kVariable, 77, 200);

  IkaSst fast(kGeom, p);
  const std::size_t w = kGeom.window();
  const std::size_t positions = series.size() - w + 1;
  const auto span = std::span<const double>(series);
  std::vector<double> scores;
  for (std::size_t i = 0; i < positions; ++i) {
    scores.push_back(fast.score(span.subspan(i, w)));
  }

  // The counter increments once per scored window, so windows at index
  // restart_period, 2*restart_period, ... score from a cold basis.
  for (std::size_t boundary = static_cast<std::size_t>(p.restart_period);
       boundary < positions;
       boundary += static_cast<std::size_t>(p.restart_period)) {
    IkaSst fresh(kGeom, p);
    const double cold = fresh.score(span.subspan(boundary, w));
    EXPECT_EQ(scores[boundary], cold) << "boundary window " << boundary;
  }
}

// Regression: pointing a warm scorer at an unrelated series without
// reset() must re-converge, not poison subsequent scores.
TEST(WarmStartLifecycle, RetargetWithoutResetReconverges) {
  const std::vector<double> a =
      class_series(tsdb::KpiClass::kStationary, 3, 300);
  const std::vector<double> b =
      class_series(tsdb::KpiClass::kVariable, 91, 300, 8.0, 150);

  IkaSst retargeted(kGeom, fast_params());
  const std::size_t w = kGeom.window();
  const auto sa = std::span<const double>(a);
  for (std::size_t i = 0; i + w <= a.size(); ++i) {
    (void)retargeted.score(sa.subspan(i, w));  // warm up on series A
  }

  IkaSst fresh(kGeom, fast_params());
  const auto sb = std::span<const double>(b);
  const std::size_t burn_in = 5;  // warm sweeps re-converge within a few windows
  for (std::size_t i = 0; i + w <= b.size(); ++i) {
    const double stale = retargeted.score(sb.subspan(i, w));
    const double clean = fresh.score(sb.subspan(i, w));
    ASSERT_EQ(std::isnan(stale), std::isnan(clean)) << "window " << i;
    if (std::isnan(stale)) continue;
    EXPECT_TRUE(std::isfinite(stale)) << "window " << i;
    if (i >= burn_in) {
      EXPECT_NEAR(stale, clean, 0.12) << "window " << i;
    }
  }
}

// reset() must clear every piece of warm state: a reset scorer replays the
// series byte-for-byte (the ThreadPool per-slot reuse contract).
TEST(WarmStartLifecycle, ResetReplaysByteIdentical) {
  const std::vector<double> series =
      class_series(tsdb::KpiClass::kVariable, 13, 260, 8.0, 130);
  IkaSst fast(kGeom, fast_params());
  const auto first = score_series(fast, series);
  fast.reset();
  const auto second = score_series(fast, series);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (std::isnan(first[i])) {
      EXPECT_TRUE(std::isnan(second[i])) << "window " << i;
    } else {
      EXPECT_EQ(first[i], second[i]) << "window " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched lanes vs standalone fast scorers.
// ---------------------------------------------------------------------------

TEST(BatchLockstep, BitIdenticalToStandaloneScorers) {
  constexpr std::size_t kLanes = 4;
  IkaParams p = fast_params();
  p.restart_period = 16;  // cross a restart boundary mid-series

  // Heterogeneous lanes, one with NaN gaps so the dirty-window path is
  // exercised (dirty lanes must not perturb their neighbours).
  std::vector<std::vector<double>> lanes;
  lanes.push_back(class_series(tsdb::KpiClass::kStationary, 1, 220));
  lanes.push_back(class_series(tsdb::KpiClass::kSeasonal, 2, 220, 8.0, 110));
  lanes.push_back(class_series(tsdb::KpiClass::kVariable, 3, 220));
  lanes.push_back(class_series(tsdb::KpiClass::kStationary, 4, 220, 6.0, 110));
  for (std::size_t i = 60; i < 66; ++i) lanes[2][i] = std::nan("");

  IkaSstBatch batch(kLanes, kGeom, p);
  std::vector<IkaSst> solo;
  for (std::size_t k = 0; k < kLanes; ++k) solo.emplace_back(kGeom, p);

  const std::size_t w = kGeom.window();
  const std::size_t positions = lanes[0].size() - w + 1;
  std::vector<double> packed(kLanes * w), out(kLanes);
  for (std::size_t i = 0; i < positions; ++i) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      std::memcpy(packed.data() + k * w, lanes[k].data() + i,
                  w * sizeof(double));
    }
    batch.score_all(packed, out);
    for (std::size_t k = 0; k < kLanes; ++k) {
      const double expected = solo[k].score(
          std::span<const double>(lanes[k]).subspan(i, w));
      if (std::isnan(expected)) {
        EXPECT_TRUE(std::isnan(out[k])) << "lane " << k << " window " << i;
      } else {
        EXPECT_EQ(out[k], expected) << "lane " << k << " window " << i;
      }
    }
  }

  // And the batch reset contract mirrors the scalar one.
  batch.reset();
  for (std::size_t k = 0; k < kLanes; ++k) solo[k].reset();
  for (std::size_t k = 0; k < kLanes; ++k) {
    std::memcpy(packed.data() + k * w, lanes[k].data(), w * sizeof(double));
  }
  batch.score_all(packed, out);
  for (std::size_t k = 0; k < kLanes; ++k) {
    const double expected =
        solo[k].score(std::span<const double>(lanes[k]).subspan(0, w));
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(out[k]));
    } else {
      EXPECT_EQ(out[k], expected) << "lane " << k;
    }
  }
}

}  // namespace
}  // namespace funnel::detect
