#include "triage/blame.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

namespace funnel::triage {
namespace {

/// Floor of the linear proximity decay: evidence never vanishes entirely
/// inside the window — the change *was* live when the alarm fired.
constexpr double kProximityFloor = 0.1;

struct Evidence {
  std::string metric;
  MinuteTime alarm_minute = 0;
  double effect = 0.0;
  double proximity = 0.0;

  double contribution() const { return proximity * effect; }
};

struct Candidate {
  BlamedChange change;
  std::vector<Evidence> evidence;
};

double proximity_of(MinuteTime change_time, MinuteTime alarm_minute,
                    MinuteTime window) {
  if (window <= 0) return 1.0;
  const double lag =
      static_cast<double>(alarm_minute - change_time) /
      static_cast<double>(window);
  return std::max(kProximityFloor, 1.0 - std::max(0.0, lag));
}

std::string fmt_score(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::vector<BlameCluster> rank_blame(
    const std::vector<obs::JournalEvent>& events, BlameOptions options) {
  // Fold events per change (map: deterministic iteration regardless of
  // event order).
  std::map<std::uint64_t, Candidate> candidates;
  for (const obs::JournalEvent& e : events) {
    Candidate& cand = candidates[e.change_id];
    BlamedChange& ch = cand.change;
    ch.change_id = e.change_id;
    ch.change_time = e.change_time;
    ch.service = e.service;
    ch.change_type = e.change_type;
    ch.launch_mode = e.launch_mode;
    ++ch.kpis_assessed;
    if (e.cause != "software-change") continue;
    ++ch.regressions;
    Evidence ev;
    ev.metric = e.metric;
    ev.alarm_minute = e.alarm_minute.value_or(e.change_time);
    // DiD effect size in robust-sigma units when a fit landed; the damped
    // SST peak (same order of magnitude by construction — both are
    // robust-scale scores) when causality came from the conservative
    // delivered-anyway path.
    ev.effect = e.did_alpha_scaled ? std::abs(*e.did_alpha_scaled)
                                   : std::abs(e.sst_peak.value_or(0.0));
    ev.proximity =
        proximity_of(e.change_time, ev.alarm_minute, options.overlap_window);
    cand.evidence.push_back(std::move(ev));
  }

  // Score: sort each change's evidence before the fold so the sum is a
  // pure function of the evidence set, not of journal arrival order.
  for (auto& [id, cand] : candidates) {
    std::sort(cand.evidence.begin(), cand.evidence.end(),
              [](const Evidence& a, const Evidence& b) {
                return std::tie(a.metric, a.alarm_minute) <
                       std::tie(b.metric, b.alarm_minute);
              });
    double score = 0.0;
    const Evidence* top = nullptr;
    for (const Evidence& ev : cand.evidence) {
      score += ev.contribution();
      if (top == nullptr || ev.contribution() > top->contribution()) {
        top = &ev;
      }
    }
    cand.change.score = score;
    std::ostringstream os;
    if (cand.evidence.empty()) {
      os << "no regression events attributed";
    } else {
      os << cand.change.regressions << " regression event"
         << (cand.change.regressions == 1 ? "" : "s")
         << "; strongest: " << top->metric << " (effect "
         << fmt_score(top->effect) << ", proximity "
         << fmt_score(top->proximity) << ")";
    }
    cand.change.explanation = os.str();
  }

  // Cluster by chained time overlap: changes sorted by (time, id); a gap
  // larger than the window starts a new cluster.
  std::vector<const Candidate*> ordered;
  ordered.reserve(candidates.size());
  for (const auto& [id, cand] : candidates) ordered.push_back(&cand);
  std::sort(ordered.begin(), ordered.end(),
            [](const Candidate* a, const Candidate* b) {
              return std::tie(a->change.change_time, a->change.change_id) <
                     std::tie(b->change.change_time, b->change.change_id);
            });

  std::vector<BlameCluster> clusters;
  for (const Candidate* cand : ordered) {
    const MinuteTime t = cand->change.change_time;
    if (clusters.empty() || t > clusters.back().end + options.overlap_window) {
      BlameCluster cluster;
      cluster.start = t;
      cluster.end = t;
      clusters.push_back(std::move(cluster));
    }
    clusters.back().end = std::max(clusters.back().end, t);
    clusters.back().ranking.push_back(cand->change);
  }

  // Rank inside each cluster: score desc, exact ties to the earlier
  // deployment (stated, not silent), then id for total order.
  for (BlameCluster& cluster : clusters) {
    std::sort(cluster.ranking.begin(), cluster.ranking.end(),
              [](const BlamedChange& a, const BlamedChange& b) {
                if (a.score != b.score) return a.score > b.score;
                return std::tie(a.change_time, a.change_id) <
                       std::tie(b.change_time, b.change_id);
              });
    for (std::size_t i = 0; i + 1 < cluster.ranking.size(); ++i) {
      BlamedChange& a = cluster.ranking[i];
      const BlamedChange& b = cluster.ranking[i + 1];
      if (a.score == b.score && a.score > 0.0) {
        std::ostringstream os;
        os << a.explanation << "; tied with change " << b.change_id
           << ", earlier deployment ranked first";
        a.explanation = os.str();
      }
    }
  }
  return clusters;
}

}  // namespace funnel::triage
