#include "funnel/report_json.h"

#include <cmath>
#include <sstream>

namespace funnel::core {
namespace {

void escape_to(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void number_to(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

// The per-KPI trace span carrying this metric's SST provenance for this
// report's change, if the caller handed us a dump that has one. The same
// metric is examined by every change whose impact set contains it, so the
// span's parent assess span must match the change id too (a batch dump
// holds the whole window's trees).
const obs::SpanRecord* kpi_span_for(const obs::TraceDump* trace,
                                    changes::ChangeId change_id,
                                    const std::string& metric) {
  if (trace == nullptr) return nullptr;
  for (const obs::SpanRecord& s : trace->spans) {
    if (std::string_view(s.name) != "funnel.assess.kpi") continue;
    const obs::SpanAttr* a = s.find_attr("kpi.metric");
    if (a == nullptr || a->kind != obs::SpanAttr::Kind::kString ||
        a->str != metric) {
      continue;
    }
    for (const obs::SpanRecord& p : trace->spans) {
      if (p.span_id != s.parent_id) continue;
      const obs::SpanAttr* cid = p.find_attr("change.id");
      if (std::string_view(p.name) == "funnel.assess" && cid != nullptr &&
          cid->inum == static_cast<std::int64_t>(change_id)) {
        return &s;
      }
      break;
    }
  }
  return nullptr;
}

// One-line decision rationale: why this cause, in the rule's own terms.
std::string decision_line(const ItemVerdict& v) {
  switch (v.cause) {
    case Cause::kSoftwareChange:
      if (!v.did_fit) {
        return "DiD unavailable; delivered as software-change "
               "(conservative)";
      }
      return v.used_historical_control
                 ? "scaled DiD alpha cleared the threshold against the "
                   "KPI's own seasonal baseline: attributed to the change"
                 : "scaled DiD alpha cleared the threshold against the "
                   "untouched siblings: attributed to the change";
    case Cause::kSeasonality:
      return "historical DiD found the same movement in the seasonal "
             "baseline: not the change";
    case Cause::kOtherFactors:
      return "control-group DiD saw the untouched siblings move alike: "
             "not the change";
    case Cause::kInconclusive:
      return std::string("telemetry too dirty to decide (") +
             to_string(v.inconclusive_reason) +
             "); repair the feed and re-assess";
    case Cause::kNoKpiChange:
      break;
  }
  return "no KPI change detected";
}

void quality_to(std::ostringstream& os, const tsdb::QualityReport& q) {
  os << "{\"coverage\":";
  number_to(os, q.coverage);
  os << ",\"clean_samples\":" << q.clean_samples
     << ",\"window_minutes\":" << q.window_minutes
     << ",\"longest_gap_run\":" << q.longest_gap_run
     << ",\"longest_flat_run\":" << q.longest_flat_run << "}";
}

void explain_item_to(std::ostringstream& os, const ItemVerdict& v,
                     changes::ChangeId change_id, const FunnelConfig& config,
                     const obs::TraceDump* trace) {
  os << "{\"metric\":";
  escape_to(os, v.metric.to_string());
  os << ",\"cause\":";
  escape_to(os, to_string(v.cause));
  if (v.cause == Cause::kInconclusive) {
    os << ",\"inconclusive_reason\":";
    escape_to(os, to_string(v.inconclusive_reason));
  }
  os << ",\"control_kind\":";
  escape_to(os, v.used_historical_control ? "seasonal-window"
                                          : "dark-launch-siblings");
  if (v.used_fallback_control) os << ",\"fallback_control\":true";
  if (v.quality) {
    os << ",\"quality\":";
    quality_to(os, *v.quality);
  }
  if (v.alarm) os << ",\"alarm_minute\":" << v.alarm->minute;

  os << ",\"sst\":{\"peak_score\":";
  number_to(os, v.alarm ? v.alarm->peak_score : 0.0);
  if (const obs::SpanRecord* span =
          kpi_span_for(trace, change_id, v.metric.to_string())) {
    if (const obs::SpanAttr* raw = span->find_attr("sst.raw_score")) {
      os << ",\"raw_score\":";
      number_to(os, raw->num);
    }
    if (const obs::SpanAttr* damp = span->find_attr("sst.damp_factor")) {
      os << ",\"damp_factor\":";
      number_to(os, damp->num);
    }
  }
  os << ",\"threshold\":";
  number_to(os, config.alarm.threshold);
  os << ",\"persistence\":" << config.alarm.persistence
     << ",\"omega\":" << config.geometry.omega
     << ",\"eta\":" << config.geometry.eta
     << ",\"krylov_k\":" << config.geometry.krylov_k() << "}";

  os << ",\"did\":{";
  if (v.did_fit) {
    os << "\"alpha\":";
    number_to(os, v.did_fit->alpha);
    os << ",\"alpha_scaled\":";
    number_to(os, v.did_fit->alpha_scaled);
    os << ",\"t_stat\":";
    number_to(os, v.did_fit->t_stat);
    os << ",\"n_treated\":" << v.did_fit->n_treated
       << ",\"n_control\":" << v.did_fit->n_control << ",";
  }
  os << "\"alpha_threshold\":";
  number_to(os, config.did.alpha_threshold);
  os << ",\"t_threshold\":";
  number_to(os, config.did.t_threshold);
  os << ",\"require_significance\":"
     << (config.did.require_significance ? "true" : "false") << "}";

  os << ",\"decision\":";
  escape_to(os, decision_line(v));
  os << "}";
}

}  // namespace

std::string to_json(const ItemVerdict& verdict) {
  std::ostringstream os;
  os << "{\"metric\":";
  escape_to(os, verdict.metric.to_string());
  os << ",\"kpi_change_detected\":"
     << (verdict.kpi_change_detected ? "true" : "false");
  os << ",\"cause\":";
  escape_to(os, to_string(verdict.cause));
  if (verdict.cause == Cause::kInconclusive) {
    os << ",\"inconclusive_reason\":";
    escape_to(os, to_string(verdict.inconclusive_reason));
  }
  if (verdict.used_fallback_control) {
    os << ",\"fallback_control\":true";
  }
  if (verdict.determined_at) {
    os << ",\"determined_at\":" << *verdict.determined_at;
  }
  if (verdict.alarm) {
    os << ",\"alarm\":{\"minute\":" << verdict.alarm->minute
       << ",\"peak_score\":";
    number_to(os, verdict.alarm->peak_score);
    os << "}";
  }
  if (verdict.did_fit) {
    os << ",\"did\":{\"alpha\":";
    number_to(os, verdict.did_fit->alpha);
    os << ",\"alpha_scaled\":";
    number_to(os, verdict.did_fit->alpha_scaled);
    os << ",\"t_stat\":";
    number_to(os, verdict.did_fit->t_stat);
    os << ",\"n_treated\":" << verdict.did_fit->n_treated
       << ",\"n_control\":" << verdict.did_fit->n_control
       << ",\"historical_control\":"
       << (verdict.used_historical_control ? "true" : "false") << "}";
  }
  if (verdict.quality) {
    os << ",\"quality\":";
    quality_to(os, *verdict.quality);
  }
  os << "}";
  return os.str();
}

std::string to_json(const AssessmentReport& report) {
  std::ostringstream os;
  os << "{\"change_id\":" << report.change_id
     << ",\"change_time\":" << report.change_time << ",\"changed_service\":";
  escape_to(os, report.impact_set.changed_service);
  os << ",\"dark_launched\":"
     << (report.impact_set.dark_launched ? "true" : "false")
     << ",\"kpis_examined\":" << report.kpis_examined()
     << ",\"kpi_changes_detected\":" << report.kpi_changes_detected()
     << ",\"kpi_changes_caused\":" << report.kpi_changes_caused();
  if (report.kpis_inconclusive() > 0) {
    os << ",\"kpis_inconclusive\":" << report.kpis_inconclusive();
  }
  os << ",\"change_has_impact\":"
     << (report.change_has_impact() ? "true" : "false") << ",\"items\":[";
  bool first = true;
  for (const ItemVerdict& v : report.items) {
    if (!first) os << ',';
    first = false;
    os << to_json(v);
  }
  os << "]}";
  return os.str();
}

std::string to_json_explained(const AssessmentReport& report,
                              const FunnelConfig& config,
                              const obs::TraceDump* trace,
                              const std::string* triage_json) {
  // Splice the explain array into the base report right before its closing
  // brace: the prefix stays byte-identical to to_json(report), so consumers
  // of the plain report parse the explained one unchanged.
  std::string base = to_json(report);
  base.pop_back();  // trailing '}'
  std::ostringstream os;
  os << ",\"explain\":[";
  bool first = true;
  for (const ItemVerdict& v : report.items) {
    // Explain every verdict an operator must act on: detected changes, and
    // degraded (inconclusive) telemetry that blocked a verdict.
    if (!v.kpi_change_detected && v.cause != Cause::kInconclusive) continue;
    if (!first) os << ',';
    first = false;
    explain_item_to(os, v, report.change_id, config, trace);
  }
  os << ']';
  if (triage_json != nullptr) os << ",\"triage\":" << *triage_json;
  os << '}';
  return base + os.str();
}

}  // namespace funnel::core
