#include "tsdb/persist/backend.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#ifdef __unix__
#include <unistd.h>
#endif

namespace funnel::tsdb::persist {

namespace fs = std::filesystem;

namespace {

constexpr char kCheckpointMagic[8] = {'F', 'N', 'L', 'C', 'K', 'P', '1', '\0'};
constexpr std::uint8_t kCheckpointVersion = 1;
constexpr char kCheckpointName[] = "checkpoint";

struct CheckpointState {
  std::uint64_t next_epoch = 1;
  std::uint64_t wal_counter = 1;
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t journal_events = 0;
  std::string wal_file;
  std::vector<std::string> segment_files;  ///< overlay order
  std::string watch_state;
};

std::string encode_checkpoint(const CheckpointState& s) {
  std::string payload;
  put_u8(payload, kCheckpointVersion);
  put_u64(payload, s.next_epoch);
  put_u64(payload, s.wal_counter);
  put_u64(payload, s.checkpoint_seq);
  put_u64(payload, s.journal_events);
  put_str(payload, s.wal_file);
  put_u32(payload, static_cast<std::uint32_t>(s.segment_files.size()));
  for (const std::string& f : s.segment_files) put_str(payload, f);
  put_u32(payload, static_cast<std::uint32_t>(s.watch_state.size()));
  payload += s.watch_state;

  std::string out;
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32c(payload));
  out += payload;
  return out;
}

bool decode_checkpoint(const std::string& bytes, CheckpointState& out) {
  constexpr std::size_t kHeader = sizeof(kCheckpointMagic) + 8;
  if (bytes.size() < kHeader) return false;
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return false;
  }
  ByteReader hdr(bytes.data() + sizeof(kCheckpointMagic), 8);
  const std::uint32_t len = hdr.get_u32();
  const std::uint32_t crc = hdr.get_u32();
  if (kHeader + len != bytes.size()) return false;
  const std::string_view payload(bytes.data() + kHeader, len);
  if (crc32c(payload) != crc) return false;

  ByteReader r(payload);
  if (r.get_u8() != kCheckpointVersion) return false;
  CheckpointState s;
  s.next_epoch = r.get_u64();
  s.wal_counter = r.get_u64();
  s.checkpoint_seq = r.get_u64();
  s.journal_events = r.get_u64();
  s.wal_file = r.get_str();
  const std::uint32_t n_segments = r.get_u32();
  for (std::uint32_t i = 0; r.ok() && i < n_segments; ++i) {
    s.segment_files.push_back(r.get_str());
  }
  const std::uint32_t watch_len = r.get_u32();
  if (!r.ok() || r.remaining() != watch_len) return false;
  s.watch_state.resize(watch_len);
  for (std::uint32_t i = 0; i < watch_len; ++i) {
    s.watch_state[i] = static_cast<char>(r.get_u8());
  }
  if (!r.ok()) return false;
  out = std::move(s);
  return true;
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw StorageError("cannot write: " + tmp);
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    throw StorageError("short write: " + tmp);
  }
  std::fflush(f);
#ifdef __unix__
  ::fsync(::fileno(f));
#endif
  std::fclose(f);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) throw StorageError("cannot publish: " + path);
}

}  // namespace

PersistBackend::PersistBackend(const BackendOptions& options)
    : dir_(options.dir), compact_threshold_(options.compact_threshold) {
  recover(options);
  compact_thread_ = std::thread([this] { compaction_main(); });
}

PersistBackend::~PersistBackend() {
  {
    std::lock_guard lock(compact_mutex_);
    compact_stop_ = true;
    compact_cv_.notify_all();
  }
  if (compact_thread_.joinable()) compact_thread_.join();
  // An unadopted compaction output is a stray; recovery would delete it
  // anyway, but be tidy.
  if (compact_result_.has_value()) {
    std::error_code ec;
    fs::remove(compact_result_->path, ec);
  }
  wal_.reset();
}

std::string PersistBackend::wal_path(std::uint64_t counter) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(counter));
  return dir_ + "/" + name;
}

std::string PersistBackend::segment_path(std::uint64_t epoch) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.seg",
                static_cast<unsigned long long>(epoch));
  return dir_ + "/" + name;
}

void PersistBackend::recover(const BackendOptions& options) {
  // The dir must exist (or be creatable) and actually be a directory — a
  // file in the way is the "unopenable" half of the exit-3 contract.
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw StorageError("cannot open data dir: " + dir_);
  }

  CheckpointState ckpt;
  const std::string ckpt_path = dir_ + "/" + kCheckpointName;
  if (fs::exists(ckpt_path)) {
    std::ifstream in(ckpt_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
      throw StorageError("cannot read checkpoint: " + ckpt_path);
    }
    if (!decode_checkpoint(bytes, ckpt)) {
      // Unlike a torn WAL tail this is not a survivable crash signature:
      // the checkpoint is written tmp+rename, so a damaged one means real
      // corruption and silently starting fresh would discard data.
      throw StorageError("corrupt checkpoint: " + ckpt_path);
    }
  } else {
    ckpt.wal_file =
        fs::path(wal_path(ckpt.wal_counter)).filename().string();
  }
  next_epoch_ = ckpt.next_epoch;
  wal_counter_ = ckpt.wal_counter;
  checkpoint_seq_ = ckpt.checkpoint_seq;
  journal_events_ = ckpt.journal_events;
  watch_state_ = std::move(ckpt.watch_state);

  // Open the referenced segments in checkpoint (overlay) order; the reader
  // ctor throws StorageError on any damage, which is fatal here.
  for (const std::string& name : ckpt.segment_files) {
    segments_.push_back(std::make_unique<SegmentReader>(dir_ + "/" + name));
    for (const auto& e : segments_.back()->entries()) {
      auto [it, fresh] = flushed_hi_.try_emplace(e.metric, e.hi);
      if (!fresh) it->second = std::max(it->second, e.hi);
    }
  }

  // Read the referenced WAL, tolerate (and truncate) a torn tail. A missing
  // file is the crash-between-checkpoint-and-rotate window: empty tail.
  const std::string wal_file = dir_ + "/" + ckpt.wal_file;
  WalReadResult wal = read_wal(wal_file);
  wal_skipped_ = wal.skipped_bytes;
  if (wal.ok && wal.skipped_bytes > 0) {
    fs::resize_file(wal_file, wal.valid_bytes, ec);
    if (ec) throw StorageError("cannot truncate torn WAL: " + wal_file);
  }
  std::uint64_t last_seq = checkpoint_seq_;
  for (WalRecord& rec : wal.records) {
    // Defensive: a record at or below the checkpoint seq is already in the
    // segments (cannot happen with the rotation protocol, but replaying it
    // would be harmless anyway — upsert_at is first-write-wins).
    if (rec.seq <= checkpoint_seq_) continue;
    last_seq = std::max(last_seq, rec.seq);
    tail_.push_back(std::move(rec));
  }

  // Delete strays: anything with our prefixes that the checkpoint does not
  // reference. Half-published tmp files, pre-crash WAL generations, written-
  // but-never-adopted segments — none of them is current state.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const bool ours = name.ends_with(".tmp") ||
                      (name.starts_with("wal-") && name.ends_with(".log")) ||
                      (name.starts_with("seg-") && name.ends_with(".seg"));
    if (!ours) continue;
    const bool referenced =
        name == ckpt.wal_file ||
        std::find(ckpt.segment_files.begin(), ckpt.segment_files.end(),
                  name) != ckpt.segment_files.end();
    if (!referenced) fs::remove(entry.path(), ec);
  }

  WalWriterOptions wopts;
  wopts.queue_capacity = options.wal_queue_capacity;
  wopts.durability = options.durability;
  wal_ = std::make_unique<WalWriter>(wal_file, last_seq + 1, wopts);
  if (!wal_->ok()) throw StorageError("cannot open WAL: " + wal_file);
}

// ---------------------------------------------------------------------------
// Cold reads.

bool PersistBackend::has_cold(const MetricId& id) const {
  std::shared_lock lock(segments_mutex_);
  for (const auto& seg : segments_) {
    if (seg->find(id) != nullptr) return true;
  }
  return false;
}

std::vector<MetricId> PersistBackend::cold_metrics() const {
  std::vector<MetricId> out;
  {
    std::shared_lock lock(segments_mutex_);
    for (const auto& seg : segments_) {
      for (const auto& e : seg->entries()) out.push_back(e.metric);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<std::pair<MinuteTime, MinuteTime>> PersistBackend::cold_bounds(
    const MetricId& id) const {
  std::shared_lock lock(segments_mutex_);
  std::optional<std::pair<MinuteTime, MinuteTime>> bounds;
  for (const auto& seg : segments_) {
    if (const auto* e = seg->find(id)) {
      if (!bounds.has_value()) {
        bounds = {e->lo, e->hi};
      } else {
        bounds->first = std::min(bounds->first, e->lo);
        bounds->second = std::max(bounds->second, e->hi);
      }
    }
  }
  return bounds;
}

void PersistBackend::fill_window(const MetricId& id, MinuteTime t0,
                                 MinuteTime t1, std::span<double> out) const {
  std::shared_lock lock(segments_mutex_);
  for (const auto& seg : segments_) {
    if (const auto* e = seg->find(id)) {
      const MinuteTime lo = std::max(t0, e->lo);
      const MinuteTime hi = std::min(t1, e->hi);
      if (lo < hi) seg->read_into(*e, t0, t1, out);
    }
  }
}

TimeSeries PersistBackend::materialize(const MetricId& id,
                                       const TimeSeries* hot) const {
  const auto bounds = cold_bounds(id);
  const bool have_hot = hot != nullptr && !hot->empty();
  if (!bounds.has_value() && !have_hot) return TimeSeries{};

  MinuteTime lo = bounds ? bounds->first
                         : hot->start_time();
  MinuteTime hi = bounds ? bounds->second : hot->end_time();
  if (have_hot) {
    lo = std::min(lo, hot->start_time());
    hi = std::max(hi, hot->end_time());
  }

  std::vector<double> dense(static_cast<std::size_t>(hi - lo),
                            std::numeric_limits<double>::quiet_NaN());
  if (bounds.has_value()) fill_window(id, lo, hi, dense);
  if (have_hot) {
    // Finite hot samples overlay the segments (they are newer); hot NaN
    // holes keep whatever the segments hold — a hole means "no tail record
    // for this minute", not "tail recorded a gap over flushed data"
    // (upsert_at never turns a finite sample back into NaN).
    const std::span<const double> hv = hot->values();
    const auto off = static_cast<std::size_t>(hot->start_time() - lo);
    for (std::size_t i = 0; i < hv.size(); ++i) {
      if (!std::isnan(hv[i])) dense[off + i] = hv[i];
    }
  }
  return TimeSeries(lo, std::move(dense));
}

// ---------------------------------------------------------------------------
// Runtime.

std::uint64_t PersistBackend::log_sample(const MetricId& id, MinuteTime t,
                                         double value) {
  WalRecord rec;
  rec.type = WalRecordType::kSample;
  rec.metric = id;
  rec.minute = t;
  rec.value = value;
  return wal_->log(std::move(rec));
}

std::uint64_t PersistBackend::log_watch(std::uint64_t change_id) {
  WalRecord rec;
  rec.type = WalRecordType::kWatch;
  rec.change_id = change_id;
  return wal_->log(std::move(rec));
}

void PersistBackend::flush_wal() { wal_->flush(); }

void PersistBackend::note_dirty(const MetricId& id, MinuteTime t) {
  std::lock_guard lock(state_mutex_);
  auto [it, fresh] = dirty_low_.try_emplace(id, t);
  if (!fresh) it->second = std::min(it->second, t);
}

MinuteTime PersistBackend::flush_cut(const MetricId& id,
                                     MinuteTime series_start) const {
  std::lock_guard lock(state_mutex_);
  MinuteTime lo = series_start;
  if (const auto it = flushed_hi_.find(id); it != flushed_hi_.end()) {
    lo = std::max(series_start, it->second);
  }
  if (const auto it = dirty_low_.find(id); it != dirty_low_.end()) {
    lo = std::min(lo, std::max(series_start, it->second));
  }
  return lo;
}

void PersistBackend::commit_checkpoint(std::vector<SegmentColumn> columns,
                                       std::string watch_state,
                                       std::uint64_t journal_events) {
  {
    std::lock_guard lock(state_mutex_);
    if (crashed_) return;
  }

  // 1. Everything logged so far must be durable before any segment claims
  //    to cover it — the write-ahead invariant.
  wal_->flush();
  const std::uint64_t covered_seq = wal_->next_seq() - 1;

  // 2. Adopt a finished compaction: swap the merged reader in for the
  //    prefix it replaced. Only this thread ever mutates the list.
  std::vector<std::string> doomed;
  std::optional<CompactionResult> adopted;
  {
    std::lock_guard lock(compact_mutex_);
    if (compact_result_.has_value()) {
      adopted = std::move(compact_result_);
      compact_result_.reset();
    }
  }
  if (adopted.has_value()) {
    auto merged = std::make_unique<SegmentReader>(adopted->path);
    std::unique_lock lock(segments_mutex_);
    for (std::size_t i = 0; i < adopted->replaced; ++i) {
      doomed.push_back(segments_[i]->path());
    }
    segments_.erase(segments_.begin(),
                    segments_.begin() + static_cast<std::ptrdiff_t>(
                                            adopted->replaced));
    segments_.insert(segments_.begin(), std::move(merged));
  }

  // 3. Freeze the unflushed cut into a new segment.
  std::uint64_t new_epoch = 0;
  if (!columns.empty()) {
    {
      std::lock_guard lock(state_mutex_);
      new_epoch = next_epoch_++;
    }
    const std::string path = segment_path(new_epoch);
    const std::uint64_t bytes = write_segment(path, new_epoch, columns);
    auto reader = std::make_unique<SegmentReader>(path);
    {
      std::unique_lock lock(segments_mutex_);
      segments_.push_back(std::move(reader));
    }
    if (const obs::Registry* reg = stats_.load(std::memory_order_relaxed)) {
      reg->add("funnel.persist.segments_written");
      reg->add("funnel.persist.segment_bytes", bytes);
    }
  }

  // 4. Commit: the checkpoint names the new state including the NEXT WAL
  //    file; the tmp+rename is the atomic commit point.
  CheckpointState ckpt;
  const std::string old_wal = wal_->path();
  {
    std::lock_guard lock(state_mutex_);
    ckpt.wal_counter = ++wal_counter_;
    ckpt.next_epoch = next_epoch_;
  }
  ckpt.checkpoint_seq = covered_seq;
  ckpt.journal_events = journal_events;
  ckpt.wal_file = fs::path(wal_path(ckpt.wal_counter)).filename().string();
  {
    std::shared_lock lock(segments_mutex_);
    for (const auto& seg : segments_) {
      ckpt.segment_files.push_back(
          fs::path(seg->path()).filename().string());
    }
  }
  ckpt.watch_state = std::move(watch_state);
  write_file_atomic(dir_ + "/" + kCheckpointName, encode_checkpoint(ckpt));

  // 5. Roll forward: new WAL, drop the old one and compacted-away files.
  wal_->rotate(wal_path(ckpt.wal_counter));
  std::error_code ec;
  fs::remove(old_wal, ec);
  for (const std::string& path : doomed) fs::remove(path, ec);

  {
    std::lock_guard lock(state_mutex_);
    for (const SegmentColumn& col : columns) {
      auto [it, fresh] = flushed_hi_.try_emplace(col.metric, col.hi);
      if (!fresh) it->second = std::max(it->second, col.hi);
      dirty_low_.erase(col.metric);
    }
  }

  if (const obs::Registry* reg = stats_.load(std::memory_order_relaxed)) {
    reg->add("funnel.persist.checkpoints");
    reg->set("funnel.persist.segments", static_cast<double>(segment_count()));
  }

  // Kick compaction when the list got long; the result lands at the NEXT
  // checkpoint.
  std::lock_guard lock(compact_mutex_);
  maybe_kick_compaction_locked();
}

void PersistBackend::maybe_kick_compaction_locked() {
  if (compact_threshold_ == 0) return;
  if (!compact_job_.empty() || compact_result_.has_value()) return;
  std::shared_lock lock(segments_mutex_);
  if (segments_.size() < compact_threshold_) return;
  for (const auto& seg : segments_) compact_job_.push_back(seg.get());
  {
    std::lock_guard slock(state_mutex_);
    compact_epoch_ = next_epoch_++;
  }
  compact_cv_.notify_one();
}

void PersistBackend::compaction_main() {
  for (;;) {
    std::vector<const SegmentReader*> job;
    std::uint64_t epoch = 0;
    {
      std::unique_lock lock(compact_mutex_);
      compact_cv_.wait(lock,
                       [&] { return compact_stop_ || !compact_job_.empty(); });
      if (compact_stop_) return;
      job = compact_job_;
      epoch = compact_epoch_;
    }

    // The inputs are immutable files whose readers stay alive until a
    // checkpoint adopts this result (adoption is the only path that erases
    // readers, and it cannot run before the result exists), so reading them
    // lock-free here is safe.
    const std::vector<SegmentColumn> merged = merge_segments(job);
    const std::string path = segment_path(epoch);
    bool ok = true;
    try {
      write_segment(path, epoch, merged);
    } catch (const StorageError&) {
      ok = false;  // disk trouble: drop the job, segments stay un-compacted
    }

    {
      std::lock_guard lock(compact_mutex_);
      compact_job_.clear();
      if (ok) {
        compact_result_ = CompactionResult{path, job.size()};
        ++compactions_done_;
      }
    }
    if (ok) {
      if (const obs::Registry* reg = stats_.load(std::memory_order_relaxed)) {
        reg->add("funnel.persist.compactions");
      }
    }
  }
}

void PersistBackend::crash_for_testing() {
  {
    std::lock_guard lock(state_mutex_);
    crashed_ = true;
  }
  wal_->crash_for_testing();
}

void PersistBackend::set_stats(const obs::Registry* stats) {
  stats_.store(stats, std::memory_order_relaxed);
  wal_->set_stats(stats);
}

std::size_t PersistBackend::segment_count() const {
  std::shared_lock lock(segments_mutex_);
  return segments_.size();
}

std::uint64_t PersistBackend::compactions() const {
  std::lock_guard lock(compact_mutex_);
  return compactions_done_;
}

}  // namespace funnel::tsdb::persist
