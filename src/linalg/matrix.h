// Dense row-major matrix and vector primitives.
//
// The trajectory (Hankel) matrices SST operates on are tiny (omega x delta
// with omega in [5, 32]), so a simple contiguous row-major matrix with
// unblocked kernels is both sufficient and cache-friendly. No external BLAS
// is required anywhere in the repository.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace funnel::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Construct from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// View of row r.
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of column c.
  Vector col(std::size_t c) const;

  /// Overwrite column c.
  void set_col(std::size_t c, std::span<const double> v);

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = M x.
Vector matvec(const Matrix& m, std::span<const double> x);

/// y = Mᵀ x.
Vector matvec_transposed(const Matrix& m, std::span<const double> x);

/// C = A B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Aᵀ.
Matrix transpose(const Matrix& m);

/// A Aᵀ (Gram matrix of rows).
Matrix gram_rows(const Matrix& a);

/// Aᵀ A (Gram matrix of columns).
Matrix gram_cols(const Matrix& a);

/// Inner product.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> v);

/// Scale v so that ||v|| = 1; returns the original norm. A zero vector is
/// left untouched and 0 is returned.
double normalize(std::span<double> v);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Frobenius norm of A - B (shapes must match).
double frobenius_distance(const Matrix& a, const Matrix& b);

/// Max |A(i,j) - B(i,j)|.
double max_abs_difference(const Matrix& a, const Matrix& b);

}  // namespace funnel::linalg
