// Ablation — the omega window-size knob (§3.2.3: "for a service that needs
// quick mitigation ... omega can be set to a small value such as 5; for
// more precise assessment ... a larger value such as 15").
//
// Measures, per omega: false-alarm rate on quiet KPIs, detection rate and
// median delay on injected shifts, and the per-window cost.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "detect/sliding.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

namespace {

struct OmegaStats {
  int fa = 0;
  int detected = 0;
  std::vector<double> delays;
  double us_per_window = 0.0;
};

OmegaStats run_omega(std::size_t omega, int trials) {
  const detect::SstGeometry g{.omega = omega, .eta = 3};
  const detect::AlarmPolicy policy{
      .threshold = 0.35, .persistence = 7, .patience = 10};
  OmegaStats out;
  for (int r = 0; r < trials; ++r) {
    // Quiet KPI.
    workload::StationaryParams p;
    workload::KpiStream quiet(
        workload::make_stationary(p, Rng(1000 + static_cast<unsigned>(r))));
    const auto quiet_series = workload::render(quiet, 0, 240);
    detect::IkaSst sq(g);
    const auto quiet_scores = detect::score_series(sq, quiet_series);
    for (const auto& a : detect::all_alarms(quiet_scores, sq.window_size(),
                                            0, policy)) {
      if (a.minute >= 120) {
        ++out.fa;
        break;
      }
    }
    // Shifted KPI (5 sigma at minute 120).
    workload::KpiStream shifted(
        workload::make_stationary(p, Rng(2000 + static_cast<unsigned>(r))));
    shifted.add_effect(workload::LevelShift{120, 5.0});
    const auto shift_series = workload::render(shifted, 0, 240);
    detect::IkaSst ss(g);
    const auto shift_scores = detect::score_series(ss, shift_series);
    for (const auto& a : detect::all_alarms(shift_scores, ss.window_size(),
                                            0, policy)) {
      if (a.minute >= 120) {
        ++out.detected;
        out.delays.push_back(static_cast<double>(a.minute - 120));
        break;
      }
    }
  }
  // Cost.
  workload::VariableParams vp;
  workload::KpiStream cost_stream(workload::make_variable(vp, Rng(3)));
  const auto cost_series = workload::render(cost_stream, 0, 400);
  detect::IkaSst sc(g);
  out.us_per_window = evalkit::mean_score_micros(sc, cost_series, 2000);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = quick ? 15 : 40;
  bench::print_header("Ablation: SST window size omega (5 / 9 / 15)");

  Table t({"omega", "W", "false alarms", "detected (5-sigma)",
           "median delay (min)", "us/window"});
  for (std::size_t omega : {std::size_t{5}, std::size_t{9}, std::size_t{15}}) {
    const OmegaStats s = run_omega(omega, trials);
    t.add_row({std::to_string(omega),
               std::to_string(4 * omega - 2),
               std::to_string(s.fa) + "/" + std::to_string(trials),
               std::to_string(s.detected) + "/" + std::to_string(trials),
               s.delays.empty() ? "-" : format_fixed(median(s.delays), 1),
               format_fixed(s.us_per_window, 1)});
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("expected shape: omega=5 alarms earliest but with the most "
              "false alarms; omega=15 is slowest and cleanest; omega=9 (the "
              "paper's evaluation setting) balances the two.\n");
  return 0;
}
