// RAII stage-timing span: measures the enclosing scope on the steady clock
// and records the elapsed microseconds into a registry histogram on exit.
//
//   {
//     obs::ScopedTimer span(config.stats, "funnel.assess.impact_set_us");
//     report.impact_set = identify_impact_set(change, topo_);
//   }
//
// A null registry skips even the clock read, so an uninstrumented run pays
// one pointer test per span. The name must outlive the timer — call sites
// pass string literals.
#pragma once

#include <chrono>

#include "obs/registry.h"

namespace funnel::obs {

#ifdef FUNNEL_OBS_OFF

class ScopedTimer {
 public:
  ScopedTimer(const Registry*, const char*) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#else  // FUNNEL_OBS_OFF

class ScopedTimer {
 public:
  ScopedTimer(const Registry* registry, const char* name)
      : registry_(registry), name_(name) {
    if (registry_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedTimer() {
    if (registry_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_->observe(
        name_,
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const Registry* registry_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

#endif  // FUNNEL_OBS_OFF

}  // namespace funnel::obs
