// Triage engine — one consumer for the whole verdict-event stream.
//
// Wraps the three analyses (scorecards, blame ranking, rule mining) behind
// a single streaming interface. Two ways to drive it, which must agree
// exactly (the replay-determinism acceptance test):
//
//   live    journal.set_observer([&](const auto& e) { engine.observe(e); })
//           — events arrive on the journal's writer thread as they are
//           written; call report() only after journal.flush();
//   replay  for (auto& e : obs::read_journal(path)) engine.observe(e);
//
// observe() folds the event into the scorecards immediately and retains a
// copy for the two whole-stream analyses (blame clustering and rule mining
// need the full event set; a day of ~24k-change verdicts is megabytes, not
// gigabytes — see docs/TRIAGE.md, "Journal sizing"). report() derives
// everything from sorted state, so two streams of the same event set yield
// identical reports byte-for-byte through to_json().
//
// The engine is single-consumer by design, matching the journal's single
// writer thread; guard it externally if several threads must feed one
// engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/registry.h"
#include "triage/blame.h"
#include "triage/rules.h"
#include "triage/scorecard.h"

namespace funnel::triage {

struct TriageOptions {
  BlameOptions blame{};
  RuleOptions rules{};
};

/// Everything the triage layer derives from one journal.
struct TriageReport {
  std::uint64_t events = 0;
  Scorecard totals;
  std::vector<Scorecard> by_service;
  std::vector<Scorecard> by_kpi;
  std::vector<BlameCluster> blame;
  std::vector<TriageRule> rules;
};

class TriageEngine {
 public:
  explicit TriageEngine(TriageOptions options = {});

  /// Fold one event (streaming tap or replay loop).
  void observe(const obs::JournalEvent& event);

  /// Derive the full report from everything observed so far. Pure function
  /// of the observed event set.
  TriageReport report() const;

  std::uint64_t events() const { return cards_.events(); }

  /// Attach a telemetry registry (null detaches): `funnel.triage.events`
  /// consumed, `funnel.triage.regressions` / `funnel.triage.inconclusive`
  /// tallies, `funnel.triage.reports` built. The registry must outlive the
  /// engine.
  void set_stats(const obs::Registry* stats) { stats_ = stats; }

 private:
  TriageOptions options_;
  ScorecardBuilder cards_;
  std::vector<obs::JournalEvent> events_;  ///< retained for blame + rules
  const obs::Registry* stats_ = nullptr;
};

/// JSON rendering of a full report (single object, stable key order) —
/// what `funnel_triage` emits and what the determinism tests compare.
std::string to_json(const TriageReport& report);

/// Markdown rendering — the human-facing scorecard/blame/rules digest.
std::string to_markdown(const TriageReport& report);

/// JSON fragment summarizing one change's standing in the report (its
/// cluster ranking entry, if any), for splicing into to_json_explained.
/// Returns "null" when the change does not appear.
std::string change_summary_json(const TriageReport& report,
                                std::uint64_t change_id);

}  // namespace funnel::triage
