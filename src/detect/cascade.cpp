#include "detect/cascade.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "detect/cusum.h"
#include "detect/sst_common.h"
#include "detect/week_over_week.h"

namespace funnel::detect {

const char* to_string(GateDecision d) {
  switch (d) {
    case GateDecision::kDirty:
      return "dirty";
    case GateDecision::kVarianceSuppressed:
      return "variance_suppressed";
    case GateDecision::kCusumSuppressed:
      return "cusum_suppressed";
    case GateDecision::kForcedByWow:
      return "wow_forced";
    case GateDecision::kScored:
      return "scored";
  }
  return "unknown";
}

CascadeCounters& CascadeCounters::operator+=(const CascadeCounters& o) {
  windows += o.windows;
  scored += o.scored;
  suppressed_variance += o.suppressed_variance;
  suppressed_cusum += o.suppressed_cusum;
  wow_forced += o.wow_forced;
  dirty += o.dirty;
  return *this;
}

GateDecision gate_window(std::span<const double> window,
                         const SstGeometry& geometry,
                         const CascadeConfig& config) {
  FUNNEL_REQUIRE(window.size() == geometry.window(),
                 "gate_window size mismatch");
  const std::vector<double> z = standardize_window(window, geometry.half());
  if (z.empty()) return GateDecision::kDirty;
  const std::span<const double> past(z.data(), geometry.half());
  const std::span<const double> future(z.data() + geometry.half(),
                                       geometry.half());
  // Stage 0: the Eq. 11 factor upper-bounds the score (x̂ ≤ 1), so
  // factor ≤ threshold proves no exceedance is possible here.
  if (robust_score_factor(past, future) <= config.sst_threshold) {
    return GateDecision::kVarianceSuppressed;
  }
  // Stage 1: raw max-CUSUM of the standardized future half (the past half
  // is the baseline standardization already subtracted out).
  if (Cusum::max_cusum(future, config.cusum_slack) < config.cusum_min) {
    return GateDecision::kCusumSuppressed;
  }
  return GateDecision::kScored;
}

std::vector<double> cascade_score_series(
    IkaSst& scorer, std::span<const double> series,
    const CascadeConfig& config, CascadeCounters* counters,
    std::vector<GateDecision>* decisions) {
  const std::size_t w = scorer.window_size();
  std::vector<double> out;
  if (decisions) decisions->clear();
  if (series.size() < w) return out;
  const std::size_t n = series.size() - w + 1;
  out.reserve(n);
  if (decisions) decisions->reserve(n);

  // WoW force scores, aligned so wow[i] covers the compare block ending at
  // sample i; a window starting at sample s ends at s + w - 1.
  std::vector<double> wow;
  if (config.wow_season > 0) {
    WeekOverWeekParams wp;
    wp.season = config.wow_season;
    wow = wow_score_series(series, wp);
  }

  for (std::size_t s = 0; s < n; ++s) {
    const std::span<const double> window = series.subspan(s, w);
    GateDecision d = gate_window(window, scorer.geometry(), config);
    if (d != GateDecision::kScored && d != GateDecision::kDirty &&
        !wow.empty()) {
      const double wz = wow[s + w - 1];
      if (std::isfinite(wz) && wz >= config.wow_force) {
        d = GateDecision::kForcedByWow;
      }
    }
    double score;
    switch (d) {
      case GateDecision::kDirty:
        // Exactly what IkaSst::score returns for this window, without
        // advancing its warm state (IkaSst bails before touching it too).
        score = std::numeric_limits<double>::quiet_NaN();
        break;
      case GateDecision::kVarianceSuppressed:
      case GateDecision::kCusumSuppressed:
        score = 0.0;
        break;
      case GateDecision::kForcedByWow:
      case GateDecision::kScored:
        score = scorer.score(window);
        break;
      default:
        score = std::numeric_limits<double>::quiet_NaN();
        break;
    }
    out.push_back(score);
    if (decisions) decisions->push_back(d);
    if (counters) {
      ++counters->windows;
      switch (d) {
        case GateDecision::kDirty:
          ++counters->dirty;
          break;
        case GateDecision::kVarianceSuppressed:
          ++counters->suppressed_variance;
          break;
        case GateDecision::kCusumSuppressed:
          ++counters->suppressed_cusum;
          break;
        case GateDecision::kForcedByWow:
          ++counters->wow_forced;
          ++counters->scored;
          break;
        case GateDecision::kScored:
          ++counters->scored;
          break;
      }
    }
  }
  return out;
}

CascadeGate::CascadeGate(std::unique_ptr<IkaSst> inner, CascadeConfig config,
                         CascadeCounters* counters)
    : inner_(std::move(inner)), config_(config), counters_(counters) {
  FUNNEL_REQUIRE(inner_ != nullptr, "CascadeGate needs a scorer");
}

double CascadeGate::score(std::span<const double> window) {
  const GateDecision d = gate_window(window, inner_->geometry(), config_);
  last_decision_ = d;
  double score;
  switch (d) {
    case GateDecision::kDirty:
      score = std::numeric_limits<double>::quiet_NaN();
      break;
    case GateDecision::kVarianceSuppressed:
    case GateDecision::kCusumSuppressed:
      score = 0.0;
      break;
    default:
      score = inner_->score(window);
      break;
  }
  if (counters_) {
    ++counters_->windows;
    switch (d) {
      case GateDecision::kDirty:
        ++counters_->dirty;
        break;
      case GateDecision::kVarianceSuppressed:
        ++counters_->suppressed_variance;
        break;
      case GateDecision::kCusumSuppressed:
        ++counters_->suppressed_cusum;
        break;
      default:
        ++counters_->scored;
        break;
    }
  }
  return score;
}

}  // namespace funnel::detect
