// funnel_serve — the multi-tenant assessment daemon (docs/SERVICE.md).
//
//   funnel_serve --port P|auto [--port-file F] [--data-root DIR]
//                [--tenants a,b,c] [--dynamic-tenants]
//                [--config FILE]
//                [--quota-rate R] [--quota-burst B] [--queue-share S]
//                [--num-shards N] [--queue-capacity N]
//                [--horizon M] [--lookback M] [--min-did-window M]
//                [--max-seconds S]
//
// Hosts one FunnelService: every named tenant is created (and, with
// --data-root, crash-recovered from <data-root>/<name>/) before the
// listener binds, so the port-file handshake guarantees a fully serving
// daemon. Clients then drive the /v1 surface (ingest, changes, report,
// seq, checkpoint) documented in src/service/service.h.
//
// Signals:
//   SIGTERM / SIGINT  graceful shutdown: checkpoint every persistent
//                     tenant, stop the listener, exit 0. The next boot
//                     recovers from the checkpoints instantly.
//   SIGHUP            config reload: re-read --config (key=value lines:
//                     quota_rate, quota_burst, queue_share) and apply the
//                     quota to every tenant. Without --config, SIGHUP is a
//                     documented no-op (logged, nothing changes) — same
//                     contract funnel_detect_csv --serve has.
//
// Crash recovery needs no flags: a SIGKILL'd daemon restarted on the same
// --data-root replays each tenant's meta.log + WAL tail and repairs its
// journal (the funnel_persist_replay_test protocol); clients read
// GET /v1/seq/<tenant> to learn where to resume. tools/soak_harness drills
// exactly this loop under fault injection.
//
// Exit codes: 0 clean shutdown, 2 usage, 3 environment (bind failure, or a
// FUNNEL_OBS=OFF build, which compiles the HTTP server out).
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "service/service.h"

namespace {

using funnel::service::FunnelService;
using funnel::service::QuotaConfig;
using funnel::service::ServiceOptions;

struct Options {
  int port = -2;  // -2 = unset, -1 = auto (ephemeral), else fixed
  std::string port_file;
  std::string data_root;
  std::vector<std::string> tenants;
  bool dynamic_tenants = false;
  std::string config_path;
  QuotaConfig quota;
  std::size_t num_shards = 2;
  std::size_t queue_capacity = 256;
  funnel::MinuteTime horizon = 60;
  funnel::MinuteTime lookback = 60;
  funnel::MinuteTime min_did_window = 9;
  std::size_t max_seconds = 0;  // 0 = serve until a stop signal
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P|auto [--port-file F] [--data-root DIR]\n"
      "          [--tenants a,b,c] [--dynamic-tenants] [--config FILE]\n"
      "          [--quota-rate R] [--quota-burst B] [--queue-share S]\n"
      "          [--num-shards N] [--queue-capacity N]\n"
      "          [--horizon M] [--lookback M] [--min-did-window M]\n"
      "          [--max-seconds S]\n",
      argv0);
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;
    if (a == "--port") {
      if (!next(&v)) return false;
      opt.port = v == "auto" ? -1 : std::atoi(v.c_str());
    } else if (a == "--port-file") {
      if (!next(&opt.port_file)) return false;
    } else if (a == "--data-root") {
      if (!next(&opt.data_root)) return false;
    } else if (a == "--tenants") {
      if (!next(&v)) return false;
      std::stringstream ss(v);
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (!name.empty()) opt.tenants.push_back(name);
      }
    } else if (a == "--dynamic-tenants") {
      opt.dynamic_tenants = true;
    } else if (a == "--config") {
      if (!next(&opt.config_path)) return false;
    } else if (a == "--quota-rate") {
      if (!next(&v)) return false;
      opt.quota.rate_per_sec = std::atof(v.c_str());
    } else if (a == "--quota-burst") {
      if (!next(&v)) return false;
      opt.quota.burst = std::atof(v.c_str());
    } else if (a == "--queue-share") {
      if (!next(&v)) return false;
      opt.quota.queue_share = std::atof(v.c_str());
    } else if (a == "--num-shards") {
      if (!next(&v)) return false;
      opt.num_shards = static_cast<std::size_t>(std::atoll(v.c_str()));
    } else if (a == "--queue-capacity") {
      if (!next(&v)) return false;
      opt.queue_capacity = static_cast<std::size_t>(std::atoll(v.c_str()));
    } else if (a == "--horizon") {
      if (!next(&v)) return false;
      opt.horizon = std::atoll(v.c_str());
    } else if (a == "--lookback") {
      if (!next(&v)) return false;
      opt.lookback = std::atoll(v.c_str());
    } else if (a == "--min-did-window") {
      if (!next(&v)) return false;
      opt.min_did_window = std::atoll(v.c_str());
    } else if (a == "--max-seconds") {
      if (!next(&v)) return false;
      opt.max_seconds = static_cast<std::size_t>(std::atoll(v.c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return opt.port != -2;
}

/// key=value quota config ('#' comments, unknown keys ignored so the file
/// can grow). Returns false when the file cannot be read.
bool load_quota_config(const std::string& path, QuotaConfig* quota) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const double value = std::atof(line.c_str() + eq + 1);
    if (key == "quota_rate") {
      quota->rate_per_sec = value;
    } else if (key == "quota_burst") {
      quota->burst = value;
    } else if (key == "queue_share") {
      quota->queue_share = value;
    }
  }
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void handle_stop(int) { g_stop = 1; }
void handle_reload(int) { g_reload = 1; }

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  if (!opt.config_path.empty() &&
      !load_quota_config(opt.config_path, &opt.quota)) {
    std::fprintf(stderr, "error: cannot read %s\n", opt.config_path.c_str());
    return 3;
  }

  funnel::obs::Registry reg;
  ServiceOptions sopts;
  sopts.plane.http.port =
      opt.port < 0 ? 0 : static_cast<std::uint16_t>(opt.port);
  sopts.plane.build_info = "funnel_serve";
  {
    std::ostringstream summary;
    summary << "tenants=" << opt.tenants.size()
            << " data_root=" << (opt.data_root.empty() ? "-" : opt.data_root)
            << " quota_rate=" << opt.quota.rate_per_sec;
    sopts.plane.config_summary = summary.str();
  }
  sopts.data_root = opt.data_root;
  sopts.allow_dynamic_tenants = opt.dynamic_tenants;
  sopts.stats = &reg;
  sopts.tenant_defaults.num_shards = opt.num_shards;
  sopts.tenant_defaults.ingest_queue_capacity = opt.queue_capacity;
  sopts.tenant_defaults.quota = opt.quota;
  sopts.tenant_defaults.funnel.horizon = opt.horizon;
  sopts.tenant_defaults.funnel.lookback = opt.lookback;
  sopts.tenant_defaults.funnel.min_did_window = opt.min_did_window;

  FunnelService service(std::move(sopts));
  for (const std::string& name : opt.tenants) {
    funnel::service::Tenant& t = service.add_tenant(name);
    if (t.quarantined()) {
      std::fprintf(stderr, "# tenant %s quarantined at boot: %s\n",
                   name.c_str(), t.quarantine_reason().c_str());
    } else if (t.recovered_seq() > 0) {
      std::fprintf(stderr, "# tenant %s recovered to seq %llu\n",
                   name.c_str(),
                   static_cast<unsigned long long>(t.recovered_seq()));
    }
  }

  std::string error;
  if (!service.start(&error)) {
    std::fprintf(stderr, "error: cannot start service: %s\n", error.c_str());
    return 3;
  }
  std::fprintf(stderr, "# serving %zu tenants on 127.0.0.1:%d\n",
               service.tenant_count(), service.port());
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    if (!pf) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.port_file.c_str());
      return 3;
    }
    pf << service.port() << '\n';
  }

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  std::signal(SIGHUP, handle_reload);

  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    if (g_reload != 0) {
      g_reload = 0;
      if (opt.config_path.empty()) {
        std::fprintf(stderr, "# SIGHUP: no --config, nothing to reload\n");
      } else if (QuotaConfig quota = opt.quota;
                 load_quota_config(opt.config_path, &quota)) {
        service.reload_quotas(quota);
        opt.quota = quota;
        std::fprintf(stderr,
                     "# SIGHUP: reloaded %s (rate=%.1f burst=%.1f "
                     "share=%.2f)\n",
                     opt.config_path.c_str(), quota.rate_per_sec, quota.burst,
                     quota.queue_share);
      } else {
        std::fprintf(stderr, "# SIGHUP: cannot re-read %s; keeping quotas\n",
                     opt.config_path.c_str());
      }
    }
    if (opt.max_seconds > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(opt.max_seconds)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "# shutting down: checkpointing tenants\n");
  service.checkpoint_all();
  service.stop();
  return 0;
}
