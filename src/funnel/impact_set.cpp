#include "funnel/impact_set.h"

#include <algorithm>

#include "common/error.h"

namespace funnel::core {

ImpactSet identify_impact_set(const changes::SoftwareChange& change,
                              const topology::ServiceTopology& topo) {
  ImpactSet set;
  set.change_id = change.id;
  set.changed_service = change.service;
  set.dark_launched = change.dark_launched();
  set.tservers = change.servers;
  for (const std::string& s : set.tservers) {
    set.tinstances.push_back(topology::instance_name(change.service, s));
  }
  for (const std::string& s : topo.servers_of(change.service)) {
    if (std::find(set.tservers.begin(), set.tservers.end(), s) !=
        set.tservers.end()) {
      continue;
    }
    set.cservers.push_back(s);
    set.cinstances.push_back(topology::instance_name(change.service, s));
  }
  set.affected_services = topo.affected_services(change.service);
  return set;
}

std::vector<tsdb::MetricId> impact_metrics(const ImpactSet& set,
                                           const tsdb::MetricStore& store) {
  std::vector<tsdb::MetricId> out;
  auto take = [&](tsdb::EntityKind kind, const std::string& entity) {
    for (tsdb::MetricId& id : store.metrics_of(kind, entity)) {
      out.push_back(std::move(id));
    }
  };
  for (const std::string& s : set.tservers) take(tsdb::EntityKind::kServer, s);
  for (const std::string& i : set.tinstances) {
    take(tsdb::EntityKind::kInstance, i);
  }
  take(tsdb::EntityKind::kService, set.changed_service);
  for (const std::string& svc : set.affected_services) {
    take(tsdb::EntityKind::kService, svc);
  }
  return out;
}

bool is_affected_service_metric(const ImpactSet& set,
                                const tsdb::MetricId& metric) {
  if (metric.kind != tsdb::EntityKind::kService) return false;
  return std::find(set.affected_services.begin(), set.affected_services.end(),
                   metric.entity) != set.affected_services.end();
}

std::vector<tsdb::MetricId> treated_group_for(const ImpactSet& set,
                                              const tsdb::MetricId& metric) {
  std::vector<tsdb::MetricId> out;
  switch (metric.kind) {
    case tsdb::EntityKind::kServer:
      for (const std::string& s : set.tservers) {
        out.push_back(tsdb::server_metric(s, metric.kpi));
      }
      break;
    case tsdb::EntityKind::kInstance:
    case tsdb::EntityKind::kService:
      // Changed-service KPIs are aggregations of the same-named tinstance
      // KPIs (§3.2.4): assessing the tinstances is sufficient.
      for (const std::string& i : set.tinstances) {
        out.push_back(tsdb::instance_metric(i, metric.kpi));
      }
      break;
  }
  return out;
}

std::vector<tsdb::MetricId> control_group_for(const ImpactSet& set,
                                              const tsdb::MetricId& metric) {
  std::vector<tsdb::MetricId> out;
  switch (metric.kind) {
    case tsdb::EntityKind::kServer:
      for (const std::string& s : set.cservers) {
        out.push_back(tsdb::server_metric(s, metric.kpi));
      }
      break;
    case tsdb::EntityKind::kInstance:
    case tsdb::EntityKind::kService:
      for (const std::string& i : set.cinstances) {
        out.push_back(tsdb::instance_metric(i, metric.kpi));
      }
      break;
  }
  return out;
}

}  // namespace funnel::core
