// Fixed-capacity rolling window with robust statistics.
//
// The online detector feeds each new 1-minute sample into a RollingWindow
// and scores the window once it is full; median/MAD queries back the
// robustness filter of the improved SST (Eq. 11).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace funnel::tsdb {

/// Ring buffer of the last `capacity` samples with O(capacity) robust
/// statistics. Capacities in FUNNEL are tiny (tens of samples), so copying
/// for median queries is cheaper than tree-based structures.
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity);

  void push(double value);
  void clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool full() const { return size_ == capacity_; }

  /// Samples in arrival order (oldest first). O(capacity) copy.
  std::vector<double> snapshot() const;

  /// Oldest and newest sample; throw when empty.
  double front() const;
  double back() const;

  double mean() const;
  double median() const;
  double mad() const;

 private:
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::size_t head_ = 0;  // index of the oldest element
  std::vector<double> buf_;
};

}  // namespace funnel::tsdb
