// Journal overhead benchmark — µs/verdict for the batch assessment window
// with the verdict journal detached vs attached.
//
// The journal's contract is "the hot path never blocks on disk": append()
// is one bounded-queue enqueue and the writer thread does the serialization
// and I/O. This bench puts a number on that claim, on the Table 3
// deployment-week workload (paper_dataset_params; a scaled-down dataset
// with more reps under --quick so the estimate is robust on noisy CI
// machines): the same assess_window run, measured with journal off and on,
// reps interleaved off/on/off/on so machine drift hits both sides alike.
// The reported overhead ratio is the median of per-pair on/off ratios —
// an isolated scheduler burst skews one pair, not the median — and the
// µs/verdict numbers are the per-side minima (the quiet-machine cost).
//
// Writes BENCH_journal.json (--json FILE to relocate): off/on µs/verdict,
// the overhead ratio, and the journal's own accounting (events, bytes,
// drops — drops must be 0 under the default lossless policy).
// tests/journal_bench_smoke.cmake runs --quick and enforces the < 2%
// acceptance bar from docs/TRIAGE.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "evalkit/dataset.h"
#include "funnel/assessor.h"
#include "obs/journal.h"

using namespace funnel;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunCost {
  double us_per_verdict = 0.0;
  std::size_t verdicts = 0;
};

RunCost run_once(const evalkit::EvalDataset& ds, MinuteTime window_end,
                 std::size_t threads, bool quick,
                 const obs::Journal* journal) {
  core::FunnelConfig cfg;
  cfg.num_threads = threads;
  if (quick) cfg.baseline_days = 3;  // matches the short quick history
  cfg.journal = journal;
  const core::Funnel funnel(cfg, ds.topo, ds.log, ds.store);
  const double start = now_us();
  const auto reports = funnel.assess_window(0, window_end);
  // The journal rides along with the run: a fair "on" measurement includes
  // draining what the run enqueued, exactly what a deployment pays before
  // it can hand the file to triage.
  if (journal != nullptr) journal->flush();
  const double elapsed = now_us() - start;
  RunCost cost;
  for (const auto& r : reports) cost.verdicts += r.items.size();
  cost.us_per_verdict = elapsed / static_cast<double>(cost.verdicts);
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t threads = bench::threads_arg(argc, argv);
  const char* json_path = "BENCH_journal.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  const std::string journal_path = std::string(json_path) + ".scratch.jsonl";

  bench::print_header("Verdict-journal overhead on assess_window");
  evalkit::DatasetParams params = bench::paper_dataset_params(quick);
  if (quick) {
    // Short runs, many reps: a robust median needs samples more than bulk.
    params.services = 4;
    params.positive_changes = 8;
    params.negative_changes = 8;
    params.history_days = 4;
  }
  const auto ds = evalkit::build_dataset(params);
  MinuteTime window_end = 0;
  for (const auto& ch : ds->log.all()) {
    window_end = std::max(window_end, ch.time);
  }
  ++window_end;

  const std::size_t reps = quick ? 15 : 9;
  std::vector<double> pair_ratios;
  double off_us = 0.0, on_us = 0.0;
  std::size_t verdicts = 0;
  std::uint64_t events = 0, bytes = 0, dropped = 0;
  {
    obs::Journal journal(journal_path);
    if (!journal.ok()) {
      std::fprintf(stderr, "error: cannot write %s\n", journal_path.c_str());
      return 1;
    }
    // Warm-up rep on each side (page cache, allocator), then interleave.
    run_once(*ds, window_end, threads, quick, nullptr);
    run_once(*ds, window_end, threads, quick, &journal);
    for (std::size_t r = 0; r < reps; ++r) {
      const RunCost off = run_once(*ds, window_end, threads, quick, nullptr);
      const RunCost on = run_once(*ds, window_end, threads, quick, &journal);
      pair_ratios.push_back(on.us_per_verdict / off.us_per_verdict);
      off_us = (r == 0) ? off.us_per_verdict
                        : std::min(off_us, off.us_per_verdict);
      on_us = (r == 0) ? on.us_per_verdict
                       : std::min(on_us, on.us_per_verdict);
      verdicts = off.verdicts;
    }
    events = journal.written();
    bytes = 0;  // filled from the file below; written() counts events
    dropped = journal.dropped();
  }
  {
    std::ifstream in(journal_path, std::ios::binary | std::ios::ate);
    if (in) bytes = static_cast<std::uint64_t>(in.tellg());
  }
  std::remove(journal_path.c_str());

  std::sort(pair_ratios.begin(), pair_ratios.end());
  const double ratio = pair_ratios[pair_ratios.size() / 2];
  std::printf("verdicts/run        %zu\n", verdicts);
  std::printf("journal off         %.2f us/verdict (min of %zu)\n", off_us,
              reps);
  std::printf("journal on          %.2f us/verdict (min of %zu)\n", on_us,
              reps);
  std::printf("overhead            %.2f%% (median of %zu pair ratios)\n",
              (ratio - 1.0) * 100.0, pair_ratios.size());
  std::printf("journaled           %llu events, %llu bytes, %llu dropped\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(dropped));

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  out << "{\"workload\":{\"quick\":" << (quick ? "true" : "false")
      << ",\"verdicts_per_run\":" << verdicts << ",\"reps\":" << reps
      << "},\"off_us_per_verdict\":" << off_us
      << ",\"on_us_per_verdict\":" << on_us
      << ",\"overhead_ratio\":" << ratio
      << ",\"journal\":{\"events_per_run\":" << events / (reps + 1)
      << ",\"bytes\":" << bytes << ",\"dropped\":" << dropped << "}}\n";
  out.close();
  std::fprintf(stderr, "# wrote %s\n", json_path);
  return 0;
}
