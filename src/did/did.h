// Difference-in-difference estimation (§3.2.4, Eq. 15-16).
//
// DiD separates KPI changes caused by the software change from those caused
// by "other factors" (seasonality, attacks, hardware trouble): factors other
// than the change move the treated and the control group alike, so the
// change's impact is the difference of the groups' pre/post differences.
//
// The estimator is fit as the interaction coefficient of the linear panel
// model Y(i,t) = θ(t) + α·D(i,t) + ξ(i) + υ(i,t) (Eq. 15); with two periods
// α reduces to the classical 2x2 difference of cell means (Eq. 16), and the
// OLS fit additionally yields a standard error and t-statistic so the
// decision rule can demand statistical significance, not just magnitude.
#pragma once

#include <span>
#include <vector>

namespace funnel::did {

/// One panel cell: the (treated?, post?) mean outcome of one KPI in one
/// period.
struct PanelObservation {
  bool treated = false;
  bool post = false;
  double y = 0.0;
};

struct DiDResult {
  double alpha = 0.0;        ///< impact estimator (raw KPI units)
  double alpha_scaled = 0.0; ///< alpha / robust scale of control pre-period
  double std_error = 0.0;    ///< OLS standard error of alpha
  double t_stat = 0.0;       ///< alpha / std_error (0 when SE degenerate)
  std::size_t n_treated = 0; ///< KPIs in the treated group
  std::size_t n_control = 0; ///< KPIs in the control group
};

/// Fit Eq. 15 by OLS on {1, post, treated, post*treated} and return the
/// interaction coefficient with its standard error. Requires at least one
/// observation in each of the four cells; throws InvalidArgument otherwise.
DiDResult did_panel(std::span<const PanelObservation> observations);

/// Convenience over per-KPI period means: element k of each span is KPI k's
/// mean over the corresponding period. treated_pre/treated_post must be the
/// same length (same KPIs), likewise control_pre/control_post.
///
/// `scale_hint` (> 0) sets the denominator of `alpha_scaled` — callers that
/// have access to raw samples pass the control group's pooled per-minute
/// robust sigma, so the threshold rule measures the impact against the
/// KPI's intrinsic noise. Without a hint the cross-KPI dispersion of the
/// control pre-period means is used, which understates the noise badly when
/// the control KPIs are homogeneous (load-balanced replicas usually are).
DiDResult did_from_groups(std::span<const double> treated_pre,
                          std::span<const double> treated_post,
                          std::span<const double> control_pre,
                          std::span<const double> control_post,
                          double scale_hint = 0.0);

/// Decision rule on a DiD fit (§3.2.4: "if α ≈ 0 ... not induced by software
/// changes; if α >> 0 or α << 0 ... likelihood is high").
struct DiDConfig {
  /// |alpha_scaled| must exceed this. The paper quotes 0.5 for
  /// change-sensitive services in its own (unspecified) normalization; in
  /// this implementation alpha_scaled is measured against the control
  /// group's per-minute noise sigma, where the sampling noise of alpha
  /// itself is ~0.2, so 1.0 (~5 sampling sigmas) is the comparable
  /// operating point. Raise it further for non-sensitive services.
  double alpha_threshold = 1.0;
  /// |t| must exceed this when `require_significance`. The group diff
  /// counts are small (few servers / 30 historical days), so the t
  /// statistic is heavy-tailed — the alpha gate carries most of the
  /// false-positive control.
  double t_threshold = 2.5;
  bool require_significance = true;
};

/// True when the fit attributes the KPI change to the software change.
bool caused_by_change(const DiDResult& fit, const DiDConfig& config);

}  // namespace funnel::did
