// Golden-file test for the JSON export: a hand-built AssessmentReport
// (covering every branch of the renderer — alarm present/absent, DiD
// present/absent, historical vs entity control, non-finite numbers, string
// escaping) is rendered and compared byte-for-byte against a committed
// fixture. Report formatting is an integration surface for paging and
// ticketing systems; it must not drift silently under refactors. If a
// change to the format is intentional, regenerate tests/data/
// report_golden.json from the test's failure output.
#include "funnel/report_json.h"

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "funnel/report.h"

namespace funnel::core {
namespace {

AssessmentReport golden_report() {
  AssessmentReport report;
  report.change_id = 42;
  report.change_time = 6060;
  report.impact_set.change_id = 42;
  // Exercises string escaping: quote, backslash, newline, control char.
  report.impact_set.changed_service = "search.web\"front\\end\n\x01";
  report.impact_set.dark_launched = true;

  {  // Full verdict: alarm + entity-control DiD, attributed to the change,
     // with the online confirming-minute stamp (time-to-verdict = 16 min).
    ItemVerdict v;
    v.metric = tsdb::server_metric("s1", "mem");
    v.kpi_change_detected = true;
    v.alarm = detect::Alarm{.minute = 6067, .first_window = 7,
                            .peak_score = 0.75};
    v.cause = Cause::kSoftwareChange;
    v.determined_at = 6076;
    v.did_fit = did::DiDResult{.alpha = 8.25,
                               .alpha_scaled = 3.5,
                               .std_error = 0.66,
                               .t_stat = 12.5,
                               .n_treated = 2,
                               .n_control = 3};
    v.used_historical_control = false;
    report.items.push_back(v);
  }
  {  // Quiet KPI: no alarm, no DiD.
    ItemVerdict v;
    v.metric = tsdb::instance_metric("svc@s2", "latency");
    report.items.push_back(v);
  }
  {  // Historical-control rejection with a non-finite score (renders null).
    ItemVerdict v;
    v.metric = tsdb::service_metric("search.web", "qps");
    v.kpi_change_detected = true;
    v.alarm = detect::Alarm{
        .minute = 6100, .first_window = 0,
        .peak_score = std::numeric_limits<double>::quiet_NaN()};
    v.cause = Cause::kSeasonality;
    v.did_fit = did::DiDResult{.alpha = -0.125,
                               .alpha_scaled = -0.25,
                               .std_error = 1.0,
                               .t_stat = -0.125,
                               .n_treated = 1,
                               .n_control = 0};
    v.used_historical_control = true;
    report.items.push_back(v);
  }
  {  // Degraded telemetry: inconclusive verdict after the fallback chain
     // (reason + fallback flag + quality block are all conditional keys).
    ItemVerdict v;
    v.metric = tsdb::server_metric("s3", "mem");
    v.cause = Cause::kInconclusive;
    v.inconclusive_reason = InconclusiveReason::kControlGroupEmpty;
    v.used_historical_control = true;
    v.used_fallback_control = true;
    v.quality = tsdb::QualityReport{.window_minutes = 120,
                                    .clean_samples = 45,
                                    .coverage = 0.375,
                                    .longest_gap_run = 33,
                                    .longest_flat_run = 8};
    report.items.push_back(v);
  }
  return report;
}

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(FUNNEL_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  // The committed fixture ends with a POSIX trailing newline; the renderer
  // does not emit one.
  if (!content.empty() && content.back() == '\n') content.pop_back();
  return content;
}

TEST(ReportJson, MatchesGoldenFixture) {
  const std::string rendered = to_json(golden_report());
  const std::string golden = read_fixture("report_golden.json");
  EXPECT_EQ(rendered, golden)
      << "report_json output drifted; if intentional, update "
         "tests/data/report_golden.json to:\n"
      << rendered;
}

TEST(ReportJson, RenderingIsDeterministic) {
  const AssessmentReport r = golden_report();
  EXPECT_EQ(to_json(r), to_json(r));
}

}  // namespace
}  // namespace funnel::core
