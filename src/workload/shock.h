// Shared confounders ("other factors", §3.2.4).
//
// Seasonal events, network attacks, hardware trouble and similar non-change
// factors hit every instance of a service — treated and control alike. A
// ShockSeries is one such common-mode disturbance: it is generated once per
// service and shared (by shared_ptr) across all of the service's KPI
// streams, which is exactly the property the DiD step exploits to cancel it.
#pragma once

#include <memory>
#include <vector>

#include "common/minute_time.h"
#include "common/rng.h"

namespace funnel::workload {

/// Precomputed additive disturbance over [start, start + values.size()).
/// Contributes 0 outside its range.
class ShockSeries {
 public:
  ShockSeries(MinuteTime start, std::vector<double> values)
      : start_(start), values_(std::move(values)) {}

  double value_at(MinuteTime t) const {
    if (t < start_) return 0.0;
    const auto idx = static_cast<std::size_t>(t - start_);
    return idx < values_.size() ? values_[idx] : 0.0;
  }

  MinuteTime start() const { return start_; }
  MinuteTime end() const {
    return start_ + static_cast<MinuteTime>(values_.size());
  }

 private:
  MinuteTime start_;
  std::vector<double> values_;
};

using SharedShock = std::shared_ptr<const ShockSeries>;

/// A smooth bump (raised cosine) of the given peak amplitude — models a
/// flash-crowd / special-event load swell.
SharedShock make_event_shock(MinuteTime start, MinuteTime duration,
                             double amplitude);

/// A sustained noisy surge — models a network attack or hardware
/// degradation: abrupt onset, jittery plateau, abrupt end.
SharedShock make_attack_shock(MinuteTime start, MinuteTime duration,
                              double amplitude, Rng rng);

/// A slow random-walk drift over the whole horizon — models baseline
/// contamination accumulating from earlier changes and ambient load shifts.
SharedShock make_drift_shock(MinuteTime start, MinuteTime duration,
                             double step_sigma, Rng rng);

}  // namespace funnel::workload
