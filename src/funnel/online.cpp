#include "funnel/online.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "funnel/verdict_journal.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "tsdb/persist/format.h"

namespace funnel::core {
namespace {

// The internal batch engine only serves per-metric determine_cause calls
// from inside store callbacks — it never runs the batch fan-outs, so it
// must not spawn a pool of idle workers.
FunnelConfig serial(FunnelConfig config) {
  config.num_threads = 1;
  return config;
}

namespace persist = tsdb::persist;

// Watch-snapshot blob version (persisted inside the store checkpoint; see
// docs/STORAGE.md, "Watch snapshot"). Bump on any layout change — restore
// refuses blobs it does not understand rather than guessing.
constexpr std::uint8_t kWatchSnapshotVersion = 1;

// The ItemVerdict codec persists the *decision*, not the evidence trail:
// determinations consumed store state (control groups, historical windows)
// as of the minute they ran, which a restarted process cannot re-derive.
void encode_verdict(std::string& out, const ItemVerdict& v) {
  persist::put_u8(out, v.kpi_change_detected ? 1 : 0);
  persist::put_u8(out, v.alarm.has_value() ? 1 : 0);
  if (v.alarm) {
    persist::put_i64(out, v.alarm->minute);
    persist::put_u64(out, v.alarm->first_window);
    persist::put_f64(out, v.alarm->peak_score);
  }
  persist::put_u8(out, static_cast<std::uint8_t>(v.cause));
  persist::put_u8(out, static_cast<std::uint8_t>(v.inconclusive_reason));
  persist::put_u8(out, v.did_fit.has_value() ? 1 : 0);
  if (v.did_fit) {
    persist::put_f64(out, v.did_fit->alpha);
    persist::put_f64(out, v.did_fit->alpha_scaled);
    persist::put_f64(out, v.did_fit->std_error);
    persist::put_f64(out, v.did_fit->t_stat);
    persist::put_u64(out, v.did_fit->n_treated);
    persist::put_u64(out, v.did_fit->n_control);
  }
  persist::put_u8(out, v.used_historical_control ? 1 : 0);
  persist::put_u8(out, v.used_fallback_control ? 1 : 0);
  persist::put_u8(out, v.quality.has_value() ? 1 : 0);
  if (v.quality) {
    persist::put_u64(out, v.quality->window_minutes);
    persist::put_u64(out, v.quality->clean_samples);
    persist::put_f64(out, v.quality->coverage);
    persist::put_u64(out, v.quality->longest_gap_run);
    persist::put_u64(out, v.quality->longest_flat_run);
  }
  persist::put_u8(out, v.determined_at.has_value() ? 1 : 0);
  if (v.determined_at) persist::put_i64(out, *v.determined_at);
}

void decode_verdict(persist::ByteReader& r, ItemVerdict& v) {
  v.kpi_change_detected = r.get_u8() != 0;
  if (r.get_u8() != 0) {
    detect::Alarm alarm;
    alarm.minute = r.get_i64();
    alarm.first_window = static_cast<std::size_t>(r.get_u64());
    alarm.peak_score = r.get_f64();
    v.alarm = alarm;
  }
  v.cause = static_cast<Cause>(r.get_u8());
  v.inconclusive_reason = static_cast<InconclusiveReason>(r.get_u8());
  if (r.get_u8() != 0) {
    did::DiDResult fit;
    fit.alpha = r.get_f64();
    fit.alpha_scaled = r.get_f64();
    fit.std_error = r.get_f64();
    fit.t_stat = r.get_f64();
    fit.n_treated = static_cast<std::size_t>(r.get_u64());
    fit.n_control = static_cast<std::size_t>(r.get_u64());
    v.did_fit = fit;
  }
  v.used_historical_control = r.get_u8() != 0;
  v.used_fallback_control = r.get_u8() != 0;
  if (r.get_u8() != 0) {
    tsdb::QualityReport q;
    q.window_minutes = static_cast<std::size_t>(r.get_u64());
    q.clean_samples = static_cast<std::size_t>(r.get_u64());
    q.coverage = r.get_f64();
    q.longest_gap_run = static_cast<std::size_t>(r.get_u64());
    q.longest_flat_run = static_cast<std::size_t>(r.get_u64());
    v.quality = q;
  }
  if (r.get_u8() != 0) v.determined_at = r.get_i64();
}

}  // namespace

FunnelOnline::FunnelOnline(FunnelConfig config,
                           const topology::ServiceTopology& topo,
                           const changes::ChangeLog& log,
                           tsdb::MetricStore& store)
    : config_(config),
      topo_(topo),
      log_(log),
      store_(store),
      batch_(serial(config), topo, log, store),
      record_feed_(store.persistent()) {}

FunnelOnline::~FunnelOnline() {
  if (subscribed_) store_.unsubscribe(subscription_);
}

void FunnelOnline::watch(changes::ChangeId id) {
  // The marker must hit the WAL *before* priming reads the store, so that
  // tail replay re-registers the watch against exactly the store state the
  // original registration saw (docs/STORAGE.md, "Watch markers").
  if (store_.persistent()) store_.log_watch_marker(id);
  watch_impl(id);
}

void FunnelOnline::replay_watch(changes::ChangeId id) { watch_impl(id); }

void FunnelOnline::watch_impl(changes::ChangeId id) {
  const changes::SoftwareChange& change = log_.get(id);
  ChangeWatch watch;
  watch.change_id = id;
  watch.set = identify_impact_set(change, topo_);
  watch.deadline = change.time + config_.horizon;
  watch.trace = obs::DetachedSpan(config_.tracer, "funnel.watch");
  if (watch.trace.active()) {
    watch.trace.attr("change.id", id);
    watch.trace.attr("change.minute", change.time);
    watch.trace.attr("change.service", std::string_view(change.service));
    watch.trace.attr("watch.deadline", watch.deadline);
  }

  // Priming runs on the control thread; its span parents under the watch
  // root explicitly (the root never installs itself as ambient context).
  obs::Span prime_span(watch.trace.context(), "funnel.online.prime");
  for (const tsdb::MetricId& metric : impact_metrics(watch.set, store_)) {
    // Copy the priming window under the shard's reader lock — watch() runs
    // on the control thread and must not race a store that is already
    // ingesting (docs/CONCURRENCY.md, "Online assessor").
    MinuteTime prime_start = 0;
    std::vector<double> prime;
    store_.read(metric, [&](const tsdb::TimeSeries& series) {
      prime_start =
          std::max(series.start_time(), change.time - config_.lookback);
      prime = series.slice(prime_start, series.end_time());
    });
    MetricWatch mw = make_metric_watch(metric, prime_start);
    // Prime with whatever history is already in the store; pre-change
    // alarms are discarded (rearmed) — only post-deployment behavior
    // changes are attributable.
    for (double v : prime) feed_detector(change, mw, v);
    watch.metrics.emplace(metric, std::move(mw));
  }
  if (prime_span.active()) {
    prime_span.attr("watch.kpis", watch.metrics.size());
  }
  watches_.emplace(id, std::move(watch));
  if (config_.stats != nullptr) {
    config_.stats->add("funnel.online.watches_started");
    config_.stats->set("funnel.online.active_watches",
                       static_cast<double>(watches_.size()));
  }

  subscribe_once();
}

FunnelOnline::MetricWatch FunnelOnline::make_metric_watch(
    const tsdb::MetricId& metric, MinuteTime start) {
  MetricWatch mw;
  mw.metric = metric;
  mw.verdict.metric = metric;
  auto scorer = std::make_unique<detect::IkaSst>(config_.geometry,
                                                 sst_params(config_));
  detect::ChangeScorer* active = nullptr;
  if (config_.sst_cascade) {
    detect::CascadeConfig cc = config_.cascade;
    cc.sst_threshold = config_.alarm.threshold;
    mw.gate = std::make_unique<detect::CascadeGate>(std::move(scorer), cc);
    active = mw.gate.get();
  } else {
    mw.scorer = std::move(scorer);
    active = mw.scorer.get();
  }
  mw.detector = std::make_unique<detect::OnlineDetector>(*active,
                                                         config_.alarm, start);
  mw.quality.start = start;
  mw.fed_start = start;
  return mw;
}

void FunnelOnline::subscribe_once() {
  if (subscribed_) return;
  subscription_ = store_.subscribe(
      {}, [this](const tsdb::MetricId& m, MinuteTime t, double v) {
        handle_sample(m, t, v);
      });
  subscribed_ = true;
}

void FunnelOnline::feed_detector(const changes::SoftwareChange& change,
                                 MetricWatch& mw, double value) {
  if (record_feed_) mw.fed.push_back(value);
  mw.quality.on_sample(value);
  const auto alarm = mw.detector->push(value);
  if (!alarm) return;
  if (alarm->minute < change.time) {
    mw.detector->rearm();
  } else if (!mw.verdict.kpi_change_detected) {
    mw.verdict.kpi_change_detected = true;
    mw.verdict.alarm = *alarm;
    mw.pending_determination = true;
  }
}

void FunnelOnline::handle_sample(const tsdb::MetricId& id, MinuteTime t,
                                 double value) {
  const obs::ScopedTimer span(config_.stats, "funnel.online.sample_us");
  if (config_.stats != nullptr) {
    config_.stats->add("funnel.online.samples_ingested");
  }
  std::vector<changes::ChangeId> finished;
  for (auto& [cid, watch] : watches_) {
    const changes::SoftwareChange& change = log_.get(cid);
    const auto it = watch.metrics.find(id);
    if (it != watch.metrics.end()) {
      MetricWatch& mw = it->second;
      // The detector consumes exactly one sample per minute. A dirty feed
      // delivers duplicates, reordered and late samples: align by the
      // detector's clock — skipped minutes are scored as the NaN gaps they
      // were at delivery time, and anything at/before an already-scored
      // minute is dropped here (the store has reconciled it via upsert,
      // but detection cannot rewind).
      const MinuteTime expected = mw.detector->next_minute();
      if (t >= expected) {
        for (MinuteTime m = expected; m < t; ++m) {
          feed_detector(change, mw,
                        std::numeric_limits<double>::quiet_NaN());
          if (config_.stats != nullptr) {
            config_.stats->add("funnel.online.gap_minutes_scored");
          }
        }
        feed_detector(change, mw, value);
        if (mw.pending_determination) try_determination(watch, mw, t);
      } else if (config_.stats != nullptr) {
        config_.stats->add("funnel.online.stale_samples_skipped");
      }
    }
    if (t >= watch.deadline) finished.push_back(cid);
  }
  for (changes::ChangeId cid : finished) finalize(cid);
}

std::size_t FunnelOnline::expire(MinuteTime now) {
  std::vector<changes::ChangeId> expired;
  for (const auto& [cid, watch] : watches_) {
    if (now >= watch.deadline + config_.watch_timeout) expired.push_back(cid);
  }
  for (changes::ChangeId cid : expired) finalize(cid, /*timed_out=*/true);
  if (config_.stats != nullptr && !expired.empty()) {
    config_.stats->add("funnel.online.watches_expired", expired.size());
  }
  return expired.size();
}

void FunnelOnline::try_determination(ChangeWatch& watch, MetricWatch& mw,
                                     MinuteTime now) {
  const changes::SoftwareChange& change = log_.get(watch.change_id);
  // Use only fully-delivered minutes: samples for `now` are still arriving
  // metric by metric, so the post period ends at `now` (exclusive) —
  // otherwise sibling/control series would be judged "not covering" and
  // dropped from the DiD groups.
  const MinuteTime post = now - change.time;
  if (post < config_.min_did_window) return;  // wait for more post data
  // Runs on the dispatcher thread for an async store. Parenting under the
  // watch root (not the ambient context) keeps one tree per watch; the span
  // installs itself as ambient, so determine_cause's own spans nest inside.
  obs::Span trace_span(watch.trace.context(), "funnel.online.determine");
  if (trace_span.active()) {
    trace_span.attr("kpi.metric", mw.metric.to_string());
    trace_span.attr("kpi.minute", now);
    trace_span.attr("kpi.post_window", post);
  }
  batch_.determine_cause(change, watch.set, mw.metric, post, mw.verdict);
  mw.pending_determination = false;
  note_determined(change, mw, now);
  if (mw.verdict.caused_by_software_change() && verdict_cb_) {
    verdict_cb_(watch.change_id, mw.verdict);
  }
}

void FunnelOnline::note_determined(const changes::SoftwareChange& change,
                                   MetricWatch& mw, MinuteTime minute) {
  mw.verdict.determined_at = minute;
  if (config_.stats == nullptr) return;
  config_.stats->add(std::string("funnel.online.verdicts.") +
                     to_string(mw.verdict.cause));
  if (mw.verdict.caused_by_software_change()) {
    config_.stats->add("funnel.online.verdicts_confirmed");
    // The headline series: minutes from change deployment to a confirmed
    // verdict (§5.2 was ~10 against 1.5 h of manual assessment).
    config_.stats->observe("funnel.online.time_to_verdict_min",
                           static_cast<double>(minute - change.time));
  }
}

void FunnelOnline::FeedQuality::on_sample(double v) {
  if (std::isfinite(v)) {
    ++clean;
    gap_run = 0;
    flat_run = (have_prev && v == prev) ? flat_run + 1 : 1;
    if (flat_run > longest_flat) longest_flat = flat_run;
    prev = v;
    have_prev = true;
  } else {
    ++gap_run;
    flat_run = 0;
    have_prev = false;
    if (gap_run > longest_gap) longest_gap = gap_run;
  }
}

tsdb::QualityReport FunnelOnline::FeedQuality::report(MinuteTime frontier,
                                                      MinuteTime end) const {
  tsdb::QualityReport q;
  q.window_minutes =
      end > start ? static_cast<std::size_t>(end - start) : clean;
  q.clean_samples = clean;
  // Minutes the feed never reached before the window closed are one
  // trailing gap, merged with any open gap run at the frontier.
  std::size_t tail = gap_run;
  if (end > frontier) tail += static_cast<std::size_t>(end - frontier);
  q.longest_gap_run = std::max(longest_gap, tail);
  q.longest_flat_run = longest_flat;
  q.coverage =
      q.window_minutes == 0
          ? 0.0
          : std::min(1.0, static_cast<double>(q.clean_samples) /
                              static_cast<double>(q.window_minutes));
  return q;
}

void FunnelOnline::finalize(changes::ChangeId id, bool timed_out) {
  const auto wit = watches_.find(id);
  if (wit == watches_.end()) return;
  ChangeWatch& watch = wit->second;
  const changes::SoftwareChange& change = log_.get(id);

  AssessmentReport report;
  report.change_id = id;
  report.change_time = change.time;
  report.impact_set = watch.set;
  const obs::Journal* journal = config_.journal;
  const bool journal_on = journal != nullptr && journal->active();
  {
    obs::Span trace_span(watch.trace.context(), "funnel.online.finalize");
    if (trace_span.active() && timed_out) {
      trace_span.attr("watch.timed_out", 1);
    }
    for (auto& [metric, mw] : watch.metrics) {
      (void)metric;
      mw.verdict.quality =
          mw.quality.report(mw.detector->next_minute(), watch.deadline);
      if (mw.pending_determination) {
        if (timed_out) {
          // The feed starved before DiD ever became possible; a verdict
          // now would rest on data we know never arrived.
          mw.verdict.cause = Cause::kInconclusive;
          mw.verdict.inconclusive_reason =
              InconclusiveReason::kWatchTimedOut;
          mw.pending_determination = false;
          note_determined(change, mw, watch.deadline);
        } else {
          // Horizon reached with a still-undetermined alarm: run with the
          // full observed window.
          batch_.determine_cause(change, watch.set, mw.metric,
                                 watch.deadline - change.time, mw.verdict);
          mw.pending_determination = false;
          note_determined(change, mw, watch.deadline);
          if (mw.verdict.caused_by_software_change() && verdict_cb_) {
            verdict_cb_(id, mw.verdict);
          }
        }
      } else if (!mw.verdict.kpi_change_detected &&
                 mw.verdict.cause == Cause::kNoKpiChange &&
                 !mw.verdict.quality->acceptable(
                     config_.quality.min_coverage, config_.quality.max_gap_run,
                     config_.quality.max_flat_run)) {
        // No alarm, but the feed was too holey to have caught one: degrade
        // instead of delivering a silent "no change".
        mw.verdict.cause = Cause::kInconclusive;
        mw.verdict.inconclusive_reason =
            InconclusiveReason::kGapInDetectionWindow;
      }
      report.items.push_back(mw.verdict);
      // Journal the finalized determination. Online events carry the
      // determined_at stamp and time-to-verdict (the paper's rapidity
      // metric); the batch-only extras (damp factor, gate decision) stay
      // absent — the streaming detector never materializes them.
      if (journal_on) {
        journal->append(journal_event(change, mw.verdict, "online"));
      }
      if (config_.stats != nullptr) {
        // Per-metric scorers live exactly as long as their watch and are
        // never reset, so lifetime totals are this watch's totals.
        const detect::IkaSst& scorer =
            mw.gate != nullptr ? mw.gate->inner() : *mw.scorer;
        if (scorer.cold_restarts() > 0) {
          config_.stats->add("funnel.sst.cold_restarts",
                             scorer.cold_restarts());
        }
        if (scorer.escalations() > 0) {
          config_.stats->add("funnel.sst.escalations", scorer.escalations());
        }
      }
    }
  }
  if (watch.trace.active()) {
    watch.trace.attr("watch.kpis", report.items.size());
    watch.trace.attr("watch.detected", report.kpi_changes_detected());
    watch.trace.attr("watch.caused", report.kpi_changes_caused());
    watch.trace.end();  // lands in this (possibly dispatcher) thread's ring
  }
  watches_.erase(wit);
  if (config_.stats != nullptr) {
    config_.stats->add("funnel.online.reports_finalized");
    config_.stats->set("funnel.online.active_watches",
                       static_cast<double>(watches_.size()));
  }
  if (report_cb_) report_cb_(report);
}

std::string FunnelOnline::snapshot_state() const {
  std::string out;
  persist::put_u8(out, kWatchSnapshotVersion);
  persist::put_u32(out, static_cast<std::uint32_t>(watches_.size()));
  for (const auto& [cid, watch] : watches_) {
    persist::put_u64(out, cid);
    persist::put_u32(out, static_cast<std::uint32_t>(watch.metrics.size()));
    for (const auto& [metric, mw] : watch.metrics) {
      persist::put_u8(out, static_cast<std::uint8_t>(metric.kind));
      persist::put_str(out, metric.entity);
      persist::put_str(out, metric.kpi);
      persist::put_i64(out, mw.fed_start);
      persist::put_u64(out, mw.fed.size());
      for (double v : mw.fed) persist::put_f64(out, v);
      persist::put_u8(out, mw.pending_determination ? 1 : 0);
      encode_verdict(out, mw.verdict);
    }
  }
  return out;
}

void FunnelOnline::restore_state(const std::string& blob) {
  if (blob.empty()) return;
  persist::ByteReader r(blob.data(), blob.size());
  const auto corrupt = [] {
    return persist::StorageError("corrupt watch snapshot");
  };
  if (r.get_u8() != kWatchSnapshotVersion || !r.ok()) throw corrupt();
  const std::uint32_t n_watches = r.get_u32();
  for (std::uint32_t w = 0; w < n_watches && r.ok(); ++w) {
    const changes::ChangeId cid = r.get_u64();
    const changes::SoftwareChange& change = log_.get(cid);
    ChangeWatch watch;
    watch.change_id = cid;
    watch.set = identify_impact_set(change, topo_);
    watch.deadline = change.time + config_.horizon;
    // A fresh root span: traces are diagnostics, not replay state, and the
    // pre-crash span already landed (or died) in the old process's ring.
    watch.trace = obs::DetachedSpan(config_.tracer, "funnel.watch");
    const std::uint32_t n_metrics = r.get_u32();
    for (std::uint32_t m = 0; m < n_metrics && r.ok(); ++m) {
      tsdb::MetricId metric;
      const std::uint8_t kind = r.get_u8();
      if (kind > static_cast<std::uint8_t>(tsdb::EntityKind::kService)) {
        throw corrupt();
      }
      metric.kind = static_cast<tsdb::EntityKind>(kind);
      metric.entity = r.get_str();
      metric.kpi = r.get_str();
      const MinuteTime fed_start = r.get_i64();
      const std::uint64_t n_fed = r.get_u64();
      std::vector<double> fed;
      fed.reserve(static_cast<std::size_t>(n_fed));
      for (std::uint64_t i = 0; i < n_fed && r.ok(); ++i) {
        fed.push_back(r.get_f64());
      }
      const bool pending = r.get_u8() != 0;
      if (!r.ok()) throw corrupt();
      MetricWatch mw = make_metric_watch(metric, fed_start);
      // Replaying the recorded feed rebuilds the scorer, cascade gate,
      // online detector and feed-quality counters bit-for-bit (they are
      // deterministic functions of the stream) — including mw.fed itself,
      // since feed_detector re-records each value.
      for (double v : fed) feed_detector(change, mw, v);
      // The replay's provisional verdict is then overwritten wholesale:
      // determinations that already ran used store evidence from their own
      // minute, which must survive the restart verbatim.
      mw.verdict = ItemVerdict{};
      mw.verdict.metric = metric;
      decode_verdict(r, mw.verdict);
      mw.pending_determination = pending;
      if (!r.ok()) throw corrupt();
      watch.metrics.emplace(std::move(metric), std::move(mw));
    }
    watches_.emplace(cid, std::move(watch));
  }
  if (!r.ok() || r.remaining() != 0) throw corrupt();
  if (config_.stats != nullptr && !watches_.empty()) {
    config_.stats->set("funnel.online.active_watches",
                       static_cast<double>(watches_.size()));
  }
  if (!watches_.empty()) subscribe_once();
}

}  // namespace funnel::core
