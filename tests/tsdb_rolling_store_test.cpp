// Tests for RollingWindow and the MetricStore (including subscriptions).
#include <gtest/gtest.h>

#include "common/error.h"
#include "tsdb/rolling.h"
#include "tsdb/store.h"

namespace funnel::tsdb {
namespace {

TEST(RollingWindow, FillsThenWraps) {
  RollingWindow w(3);
  EXPECT_FALSE(w.full());
  w.push(1.0);
  w.push(2.0);
  w.push(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.snapshot(), (std::vector<double>{1.0, 2.0, 3.0}));
  w.push(4.0);  // evicts 1
  EXPECT_EQ(w.snapshot(), (std::vector<double>{2.0, 3.0, 4.0}));
  EXPECT_DOUBLE_EQ(w.front(), 2.0);
  EXPECT_DOUBLE_EQ(w.back(), 4.0);
}

TEST(RollingWindow, Statistics) {
  RollingWindow w(5);
  for (double v : {1.0, 2.0, 3.0, 4.0, 100.0}) w.push(v);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);
  EXPECT_DOUBLE_EQ(w.mad(), 1.0);
  EXPECT_DOUBLE_EQ(w.mean(), 22.0);
}

TEST(RollingWindow, ClearAndErrors) {
  RollingWindow w(2);
  w.push(1.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_THROW((void)w.front(), InvalidArgument);
  EXPECT_THROW(RollingWindow(0), InvalidArgument);
}

TEST(RollingWindow, WrapsManyTimes) {
  RollingWindow w(4);
  for (int i = 0; i < 100; ++i) w.push(static_cast<double>(i));
  EXPECT_EQ(w.snapshot(), (std::vector<double>{96.0, 97.0, 98.0, 99.0}));
}

TEST(MetricStore, CreateAppendQuery) {
  MetricStore store;
  const MetricId id = server_metric("web-1", "cpu");
  store.create(id, 100);
  EXPECT_TRUE(store.has(id));
  EXPECT_THROW(store.create(id, 100), InvalidArgument);
  store.append(id, 100, 1.0);
  store.append(id, 101, 2.0);
  EXPECT_EQ(store.query(id, 100, 102), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(store.metric_count(), 1u);
}

TEST(MetricStore, AppendAutoCreates) {
  MetricStore store;
  const MetricId id = instance_metric("svc@web-1", "pvc");
  store.append(id, 50, 9.0);
  EXPECT_TRUE(store.has(id));
  EXPECT_EQ(store.series(id).start_time(), 50);
}

TEST(MetricStore, InsertBulkSeries) {
  MetricStore store;
  const MetricId id = service_metric("svc", "pvc");
  store.insert(id, TimeSeries(0, {1.0, 2.0, 3.0}));
  EXPECT_EQ(store.series(id).size(), 3u);
  EXPECT_THROW(store.insert(id, TimeSeries(0)), InvalidArgument);
}

TEST(MetricStore, LookupErrors) {
  const MetricStore store;
  EXPECT_THROW((void)store.series(server_metric("nope", "cpu")), NotFound);
}

TEST(MetricStore, MetricsOfFiltersByEntity) {
  MetricStore store;
  store.append(server_metric("a", "cpu"), 0, 1.0);
  store.append(server_metric("a", "mem"), 0, 1.0);
  store.append(server_metric("b", "cpu"), 0, 1.0);
  store.append(instance_metric("a", "cpu"), 0, 1.0);  // different kind
  const auto ms = store.metrics_of(EntityKind::kServer, "a");
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_EQ(ms[0].kpi, "cpu");
  EXPECT_EQ(ms[1].kpi, "mem");
  EXPECT_EQ(store.metrics().size(), 4u);
}

TEST(MetricStore, AggregateAcrossMetrics) {
  MetricStore store;
  store.insert(server_metric("a", "cpu"), TimeSeries(0, {1.0, 3.0}));
  store.insert(server_metric("b", "cpu"), TimeSeries(0, {3.0, 5.0}));
  const std::vector<MetricId> ids{server_metric("a", "cpu"),
                                  server_metric("b", "cpu"),
                                  server_metric("missing", "cpu")};
  const TimeSeries agg = store.aggregate(ids, 0, 2);
  EXPECT_DOUBLE_EQ(agg.at(0), 2.0);
  EXPECT_DOUBLE_EQ(agg.at(1), 4.0);
}

TEST(MetricStore, SubscriptionReceivesMatchingSamples) {
  MetricStore store;
  const MetricId watched = server_metric("a", "cpu");
  const MetricId other = server_metric("b", "cpu");
  std::vector<std::pair<MinuteTime, double>> got;
  const SubscriptionId sid = store.subscribe(
      {watched}, [&](const MetricId& id, MinuteTime t, double v) {
        EXPECT_EQ(id, watched);
        got.emplace_back(t, v);
      });
  store.append(watched, 0, 1.5);
  store.append(other, 0, 9.0);
  store.append(watched, 1, 2.5);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<MinuteTime, double>{0, 1.5}));
  EXPECT_EQ(got[1], (std::pair<MinuteTime, double>{1, 2.5}));
  store.unsubscribe(sid);
  store.append(watched, 2, 3.5);
  EXPECT_EQ(got.size(), 2u);
}

TEST(MetricStore, EmptyFilterSubscribesToEverything) {
  MetricStore store;
  int count = 0;
  store.subscribe({}, [&](const MetricId&, MinuteTime, double) { ++count; });
  store.append(server_metric("a", "cpu"), 0, 1.0);
  store.append(instance_metric("i", "pvc"), 0, 1.0);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(store.subscriber_count(), 1u);
}

TEST(MetricStore, SubscribeRequiresCallback) {
  MetricStore store;
  EXPECT_THROW((void)store.subscribe({}, MetricStore::Callback{}),
               InvalidArgument);
}

TEST(MetricId, OrderingAndToString) {
  const MetricId a = server_metric("x", "cpu");
  const MetricId b = server_metric("x", "mem");
  EXPECT_LT(a, b);
  EXPECT_EQ(a.to_string(), "server:x/cpu");
  EXPECT_EQ(instance_metric("s@h", "pvc").to_string(), "instance:s@h/pvc");
  EXPECT_EQ(service_metric("s", "pvc").to_string(), "service:s/pvc");
}

TEST(KpiClass, Names) {
  EXPECT_STREQ(to_string(KpiClass::kSeasonal), "seasonal");
  EXPECT_STREQ(to_string(KpiClass::kStationary), "stationary");
  EXPECT_STREQ(to_string(KpiClass::kVariable), "variable");
  EXPECT_STREQ(to_string(EntityKind::kServer), "server");
}

}  // namespace
}  // namespace funnel::tsdb
