// Per-service / per-KPI triage scorecards over the verdict-event journal.
//
// At ~24k changes/day (§2.1) no operator reads individual verdicts; the
// aggregate view is what pages someone: which services keep shipping
// regressions, where the assessor keeps answering "inconclusive" (and for
// which telemetry defect), how often the DiD had to fall back to the
// seasonal control, and how fast verdicts actually land (the paper's
// rapidity claim, §5.2, as a p50/p95 instead of one anecdote). DeCaf
// (arXiv:1910.05339) builds the same per-service view from its verdict
// stream; the noise-aware per-service baselines of arXiv:2110.03229 are the
// reason the cards are keyed per service rather than fleet-wide only.
//
// A ScorecardBuilder consumes JournalEvents one at a time (live tap or
// disk replay — the two must agree byte-for-byte, see the determinism test)
// and folds them into cards keyed by service and by KPI name. All derived
// numbers are computed from sorted state at read time, so the cards are a
// pure function of the event *set*, insensitive to arrival order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/minute_time.h"
#include "obs/journal.h"

namespace funnel::triage {

/// Aggregated verdict statistics for one key (a service, a KPI name, or
/// the whole stream).
struct Scorecard {
  std::string key;

  std::uint64_t events = 0;       ///< determinations folded in
  std::uint64_t detected = 0;     ///< KPI change detected (alarm fired)
  std::uint64_t regressions = 0;  ///< cause == software-change
  std::uint64_t inconclusive = 0;
  std::uint64_t fallback_control = 0;  ///< §3.2.5 fallback verdicts
  std::uint64_t did_runs = 0;          ///< events where a DiD fit landed
  /// kInconclusive verdicts by machine-readable reason — the telemetry
  /// repair queue, ranked.
  std::map<std::string, std::uint64_t> inconclusive_by_reason;
  /// Minutes from change to verdict, online events only. Kept sorted by
  /// the builder so percentiles and equality are order-insensitive.
  std::vector<MinuteTime> time_to_verdict;

  double regression_rate() const { return rate(regressions); }
  double inconclusive_rate() const { return rate(inconclusive); }
  double fallback_rate() const { return rate(fallback_control); }

  /// Nearest-rank percentile of time_to_verdict; 0 when untimed.
  /// p in [0, 1].
  MinuteTime ttv_percentile(double p) const;
  MinuteTime ttv_p50() const { return ttv_percentile(0.50); }
  MinuteTime ttv_p95() const { return ttv_percentile(0.95); }

  bool operator==(const Scorecard&) const = default;

 private:
  double rate(std::uint64_t n) const {
    return events == 0 ? 0.0
                       : static_cast<double>(n) / static_cast<double>(events);
  }
};

/// Streaming scorecard accumulator. observe() is cheap (a few map
/// upserts); snapshots are built on demand.
class ScorecardBuilder {
 public:
  /// Fold one journal event into the totals, its service card and its KPI
  /// card.
  void observe(const obs::JournalEvent& event);

  /// Whole-stream card (key "total").
  Scorecard totals() const;
  /// One card per service, sorted by service name.
  std::vector<Scorecard> by_service() const;
  /// One card per KPI name, sorted by KPI name.
  std::vector<Scorecard> by_kpi() const;

  std::uint64_t events() const { return totals_.events; }

 private:
  static void fold(Scorecard& card, const obs::JournalEvent& event);
  static Scorecard finish(const Scorecard& card);

  Scorecard totals_;
  std::map<std::string, Scorecard> service_;
  std::map<std::string, Scorecard> kpi_;
};

}  // namespace funnel::triage
