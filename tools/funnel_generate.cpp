// funnel_generate — synthesize a KPI time series as CSV.
//
// Usage:
//   funnel_generate --class seasonal|stationary|variable [--minutes N]
//                   [--seed S] [--shift T,DELTA] [--ramp T0,T1,DELTA]
//                   [--spike T,DUR,DELTA] [--out FILE]
//
// Companion of funnel_detect_csv: produce a synthetic KPI with known
// injected changes, feed it to the detector, check what comes back.
// Effects may be repeated (e.g. two --shift options).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/error.h"
#include "common/strings.h"
#include "tsdb/io.h"
#include "workload/effects.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --class seasonal|stationary|variable\n"
               "          [--minutes N] [--seed S] [--shift T,DELTA]\n"
               "          [--ramp T0,T1,DELTA] [--spike T,DUR,DELTA]\n"
               "          [--out FILE]\n",
               argv0);
}

bool parse_numbers(const std::string& arg, std::vector<double>& out,
                   std::size_t expected) {
  out.clear();
  for (const std::string& f : split(arg, ',')) {
    try {
      out.push_back(std::stod(f));
    } catch (const std::exception&) {
      return false;
    }
  }
  return out.size() == expected;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cls;
  MinuteTime minutes = 1440;
  std::uint64_t seed = 1;
  std::string out_path;
  std::vector<workload::Effect> effects;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    std::vector<double> nums;
    if (a == "--class") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      cls = v;
    } else if (a == "--minutes") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      minutes = std::atoll(v);
    } else if (a == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      out_path = v;
    } else if (a == "--shift") {
      const char* v = value();
      if (v == nullptr || !parse_numbers(v, nums, 2)) {
        return usage(argv[0]), 2;
      }
      effects.push_back(workload::LevelShift{
          static_cast<MinuteTime>(nums[0]), nums[1]});
    } else if (a == "--ramp") {
      const char* v = value();
      if (v == nullptr || !parse_numbers(v, nums, 3)) {
        return usage(argv[0]), 2;
      }
      effects.push_back(workload::Ramp{static_cast<MinuteTime>(nums[0]),
                                       static_cast<MinuteTime>(nums[1]),
                                       nums[2]});
    } else if (a == "--spike") {
      const char* v = value();
      if (v == nullptr || !parse_numbers(v, nums, 3)) {
        return usage(argv[0]), 2;
      }
      effects.push_back(workload::TransientSpike{
          static_cast<MinuteTime>(nums[0]),
          static_cast<MinuteTime>(nums[1]), nums[2]});
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return 2;
    }
  }

  tsdb::KpiClass kpi_class;
  if (cls == "seasonal") {
    kpi_class = tsdb::KpiClass::kSeasonal;
  } else if (cls == "stationary") {
    kpi_class = tsdb::KpiClass::kStationary;
  } else if (cls == "variable") {
    kpi_class = tsdb::KpiClass::kVariable;
  } else {
    usage(argv[0]);
    return 2;
  }

  workload::KpiStream stream(workload::make_default(kpi_class, Rng(seed)));
  for (const auto& e : effects) stream.add_effect(e);
  const tsdb::TimeSeries series(0, workload::render(stream, 0, minutes));

  try {
    if (out_path.empty()) {
      tsdb::write_series_csv(std::cout, series);
    } else {
      tsdb::save_series_csv(out_path, series);
      std::fprintf(stderr, "wrote %zu samples to %s\n", series.size(),
                   out_path.c_str());
    }
  } catch (const funnel::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
