#include "common/error.h"

#include <sstream>

namespace funnel::detail {

void throw_invalid_argument(const char* expr, const std::string& msg,
                            std::source_location loc) {
  std::ostringstream os;
  os << msg << " [failed: " << expr << " at " << loc.file_name() << ':'
     << loc.line() << ']';
  throw InvalidArgument(os.str());
}

}  // namespace funnel::detail
