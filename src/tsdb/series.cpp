#include "tsdb/series.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace funnel::tsdb {

void TimeSeries::append_at(MinuteTime t, double value) {
  if (empty() && values_.empty() && t != start_ && size() == 0) {
    // Allow the first explicit-timestamp append to (re)define the start.
    start_ = t;
    values_.push_back(value);
    return;
  }
  FUNNEL_REQUIRE(t >= end_time(), "append_at into the past");
  while (end_time() < t) {
    values_.push_back(std::numeric_limits<double>::quiet_NaN());
  }
  values_.push_back(value);
}

TimeSeries::Upsert TimeSeries::upsert_at(MinuteTime t, double value) {
  if (values_.empty()) {
    start_ = t;
    values_.push_back(value);
    return Upsert::kAppended;
  }
  if (t >= end_time()) {
    while (end_time() < t) {
      values_.push_back(std::numeric_limits<double>::quiet_NaN());
    }
    values_.push_back(value);
    return Upsert::kAppended;
  }
  if (t < start_) return Upsert::kTooOld;
  double& slot = values_[static_cast<std::size_t>(t - start_)];
  if (std::isfinite(slot)) return Upsert::kDuplicate;
  slot = value;
  return Upsert::kFilled;
}

double TimeSeries::at(MinuteTime t) const {
  FUNNEL_REQUIRE(contains(t), "TimeSeries::at out of range");
  return values_[static_cast<std::size_t>(t - start_)];
}

std::span<const double> TimeSeries::view(MinuteTime t0, MinuteTime t1) const {
  FUNNEL_REQUIRE(covers(t0, t1), "TimeSeries::view range not covered");
  return {values_.data() + (t0 - start_), static_cast<std::size_t>(t1 - t0)};
}

std::vector<double> TimeSeries::slice(MinuteTime t0, MinuteTime t1) const {
  const auto v = view(t0, t1);
  return {v.begin(), v.end()};
}

bool TimeSeries::clean(MinuteTime t0, MinuteTime t1) const {
  if (!covers(t0, t1)) return false;
  for (double x : view(t0, t1)) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

TimeSeries aggregate_mean(std::span<const TimeSeries* const> series,
                          MinuteTime t0, MinuteTime t1) {
  FUNNEL_REQUIRE(t1 >= t0, "aggregate_mean over negative range");
  TimeSeries out(t0);
  for (MinuteTime t = t0; t < t1; ++t) {
    double acc = 0.0;
    int n = 0;
    for (const TimeSeries* s : series) {
      if (s == nullptr || !s->contains(t)) continue;
      const double v = s->at(t);
      if (!std::isfinite(v)) continue;
      acc += v;
      ++n;
    }
    out.append(n > 0 ? acc / n : std::numeric_limits<double>::quiet_NaN());
  }
  return out;
}

}  // namespace funnel::tsdb
