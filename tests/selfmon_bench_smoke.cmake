# Smoke check for the self-surveillance overhead benchmark: runs
# bench/selfmon_overhead in --quick mode, validates the BENCH_selfmon.json
# shape, and enforces the acceptance bar from docs/OBSERVABILITY.md — a
# SelfMonitor ticking every 25 ms (40x the default cadence) costs < 2% on
# assess_window (overhead_ratio < 1.02). Under a sanitizer build the bench
# reports workload.sanitized=true and both gates are skipped: instrumented
# timings are 10-20x slower and jittery, so neither the overhead bar nor
# the no-false-alarms bar measures the product.
#
# Invoked by ctest as:
#   cmake -DBENCH=<selfmon_overhead> -DWORK_DIR=<scratch dir>
#         -P selfmon_bench_smoke.cmake

foreach(var BENCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(json_path "${WORK_DIR}/BENCH_selfmon.json")

# A CI machine under load can push the median pair ratio past the bar or
# stall the pipeline long enough for a detector to fire once; a couple of
# retries keep both gates meaningful without making them flaky.
foreach(attempt RANGE 1 3)
  execute_process(
    COMMAND "${BENCH}" --quick --json "${json_path}"
    OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "selfmon_overhead failed (${rc}): ${err}")
  endif()
  file(READ "${json_path}" json)
  string(JSON ratio ERROR_VARIABLE jerr GET "${json}" overhead_ratio)
  string(JSON attempt_alarms ERROR_VARIABLE aerr GET "${json}" selfmon alarms)
  string(JSON sanitized ERROR_VARIABLE serr GET "${json}" workload sanitized)
  if(NOT serr AND sanitized STREQUAL "ON")
    break()  # gates are skipped below; retrying cannot change that
  endif()
  if(NOT jerr AND NOT aerr AND ratio LESS 1.02 AND attempt_alarms EQUAL 0)
    break()
  endif()
  message(STATUS
    "attempt ${attempt}: overhead_ratio=${ratio} alarms=${attempt_alarms}, retrying")
endforeach()

string(JSON verdicts ERROR_VARIABLE jerr GET "${json}" workload verdicts_per_run)
if(jerr)
  message(FATAL_ERROR "BENCH_selfmon.json did not parse: ${jerr}")
endif()
if(verdicts LESS 1)
  message(FATAL_ERROR "workload.verdicts_per_run must be positive, got ${verdicts}")
endif()

foreach(key off_us_per_verdict on_us_per_verdict overhead_ratio)
  string(JSON v ERROR_VARIABLE jerr GET "${json}" ${key})
  if(jerr)
    message(FATAL_ERROR "${key} missing: ${jerr}")
  endif()
  if(v LESS_EQUAL 0)
    message(FATAL_ERROR "${key} must be > 0, got ${v}")
  endif()
endforeach()

# FUNNEL_OBS=OFF makes selfmon inert (ticks 0); the overhead bar only means
# something when the monitor actually sampled. A steady benchmark workload
# must also never read as pipeline degradation.
string(JSON ticks GET "${json}" selfmon ticks)
string(JSON alarms GET "${json}" selfmon alarms)
string(JSON ratio GET "${json}" overhead_ratio)
string(JSON sanitized ERROR_VARIABLE jerr GET "${json}" workload sanitized)
if(NOT jerr AND sanitized STREQUAL "ON")
  message(STATUS
    "selfmon_bench_smoke: sanitizer build, shape validated, gates skipped")
  return()
endif()
if(ticks GREATER 0 AND ratio GREATER_EQUAL 1.02)
  message(FATAL_ERROR
    "selfmon overhead ratio ${ratio} >= 1.02 — watching the funnel is slowing the funnel")
endif()
# The detectors watch real timings, and on a loaded single-core machine the
# pipeline genuinely stalls when the OS schedules something else — one
# transient alarm across all reps is scheduling jitter, not the monitor
# misreading the workload. More than that is systematic false degradation.
if(alarms GREATER 1)
  message(FATAL_ERROR
    "selfmon raised ${alarms} alarms on a steady workload — false degradation")
elseif(alarms EQUAL 1)
  message(STATUS
    "selfmon_bench_smoke: one transient alarm tolerated (scheduling jitter)")
endif()

message(STATUS "selfmon_bench_smoke OK: overhead_ratio=${ratio}, ticks=${ticks}")
