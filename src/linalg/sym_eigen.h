// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Used for the future-trajectory Gram matrix A·Aᵀ in the improved SST
// (§3.2.2) and as the exact reference for the Lanczos/QL fast path.
#pragma once

#include "linalg/matrix.h"

namespace funnel::linalg {

/// Eigendecomposition of a symmetric matrix: A = Q diag(values) Qᵀ.
/// Eigenvalues are sorted in non-increasing order; column j of `vectors`
/// is the eigenvector for `values[j]`.
struct SymEigen {
  Vector values;
  Matrix vectors;
};

/// Cyclic Jacobi eigensolver for a symmetric matrix.
/// Throws InvalidArgument if `a` is not square, NumericalError if the sweep
/// limit is exceeded.
SymEigen sym_eigen(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

}  // namespace funnel::linalg
