// Ablation — fidelity and speed of the Implicit Krylov Approximation
// (§3.2.3) against the exact-SVD improved SST it approximates.
//
// Reports score correlation and mean absolute deviation over long mixed
// series, plus the per-window cost of each path and the speedup.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "detect/sliding.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  bench::print_header("Ablation: IKA (Lanczos+QL) vs exact SVD fidelity");

  Table t({"KPI class", "corr(ika, exact)", "mean |diff|",
           "exact us/window", "ika us/window", "speedup"});
  const int len = quick ? 400 : 1200;

  for (int c = 0; c < 3; ++c) {
    const auto cls = static_cast<tsdb::KpiClass>(c);
    workload::KpiStream stream(
        workload::make_default(cls, Rng(10 + static_cast<unsigned>(c))));
    stream.add_effect(workload::LevelShift{len / 3, 10.0});
    stream.add_effect(
        workload::Ramp{2 * len / 3, 2 * len / 3 + 25, -8.0});
    const auto series = workload::render(stream, 0, len);

    const detect::SstGeometry g{.omega = 9, .eta = 3};
    detect::ImprovedSst exact(g);
    detect::IkaSst ika(g);
    const auto se = detect::score_series(exact, series);
    const auto si = detect::score_series(ika, series);

    double mad_sum = 0.0;
    for (std::size_t i = 0; i < se.size(); ++i) {
      mad_sum += std::abs(se[i] - si[i]);
    }

    detect::ImprovedSst exact_t(g);
    detect::IkaSst ika_t(g);
    const double us_exact =
        evalkit::mean_score_micros(exact_t, series, 2000);
    const double us_ika = evalkit::mean_score_micros(ika_t, series, 2000);

    t.add_row({tsdb::to_string(cls), format_fixed(correlation(se, si), 3),
               format_fixed(mad_sum / static_cast<double>(se.size()), 4),
               format_fixed(us_exact, 1), format_fixed(us_ika, 1),
               format_fixed(us_exact / us_ika, 2) + "x"});
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("expected shape: correlation > 0.85 on every class — the "
              "warm-started Krylov path preserves the improved score — at a "
              "fraction of the exact decomposition's cost.\n");
  return 0;
}
