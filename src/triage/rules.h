// Explainable triage rules mined from the verdict stream.
//
// DeCaf's (arXiv:1910.05339) production insight: operators trust mined,
// human-readable rules over change metadata far more than an opaque score —
// "config changes to service X regress cache KPIs (support 9, confidence
// 0.82)" tells a release manager what to gate. The journal already joins
// each verdict to its change metadata, so mining is a counting pass:
//
//   antecedent  — an itemset over {change_type=…, service=…, launch_mode=…}
//                 (single attributes and pairs);
//   consequent  — "regresses <kpi>" (cause == software-change for that KPI);
//   assessed    — events matching the antecedent where that KPI was
//                 assessed at all (the rule's denominator);
//   support     — of those, how many regressed;
//   confidence  — support / assessed.
//
// Conditioning the denominator on "the KPI was assessed" (rather than all
// antecedent events) keeps confidence meaningful when a change type touches
// many KPI classes — it answers "when this kind of change meets this KPI,
// how often does the KPI lose", which is the gating question.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/journal.h"

namespace funnel::triage {

struct RuleOptions {
  /// Minimum regression events a rule must explain.
  std::uint64_t min_support = 2;
  /// Minimum support / assessed ratio.
  double min_confidence = 0.5;
  /// Cap on emitted rules (highest confidence first); 0 = unlimited.
  std::size_t max_rules = 50;
};

/// One mined rule: IF every antecedent item matches the change THEN the
/// named KPI regresses, with the observed support/confidence.
struct TriageRule {
  /// Conjunctive items, e.g. {"change_type=config-change", "service=cache"}.
  /// Always sorted, 1 or 2 items.
  std::vector<std::string> antecedent;
  std::string kpi;  ///< the regressed KPI name (consequent)
  std::uint64_t support = 0;   ///< antecedent ∧ regression of kpi
  std::uint64_t assessed = 0;  ///< antecedent ∧ kpi assessed
  double confidence = 0.0;     ///< support / assessed

  bool operator==(const TriageRule&) const = default;
};

/// Mine rules from `events`. Pure counting — deterministic and insensitive
/// to event order. Results sorted by confidence desc, support desc, then
/// antecedent/kpi lexicographically for a total order.
std::vector<TriageRule> mine_rules(const std::vector<obs::JournalEvent>& events,
                                   RuleOptions options = {});

}  // namespace funnel::triage
