#include "detect/classic_sst.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "linalg/hankel.h"
#include "linalg/svd.h"

namespace funnel::detect {

ClassicSst::ClassicSst(SstGeometry geometry) : geo_(geometry) {
  FUNNEL_REQUIRE(geo_.omega >= 2, "SST needs omega >= 2");
  FUNNEL_REQUIRE(geo_.eta >= 1 && geo_.eta < geo_.omega,
                 "SST needs 1 <= eta < omega");
}

double ClassicSst::score(std::span<const double> window) {
  FUNNEL_REQUIRE(window.size() == geo_.window(),
                 "ClassicSst window size mismatch");
  const std::vector<double> z = standardize_window(window, geo_.half());
  if (z.empty()) return std::numeric_limits<double>::quiet_NaN();

  const std::span<const double> past(z.data(), geo_.half());
  const std::span<const double> future(z.data() + geo_.half(), geo_.half());

  const linalg::Matrix b = linalg::hankel(past, geo_.omega, geo_.omega);
  const linalg::Svd bs = linalg::jacobi_svd(b);

  const linalg::Matrix a = linalg::hankel(future, geo_.omega, geo_.omega);
  const linalg::Svd as = linalg::jacobi_svd(a);
  if (as.singular_values.empty() || as.singular_values[0] <= 0.0) {
    return 0.0;  // flat future: no change direction at all
  }
  const linalg::Vector beta = as.u.col(0);

  double proj2 = 0.0;
  for (std::size_t j = 0; j < geo_.eta; ++j) {
    if (bs.singular_values[j] <= 0.0) break;  // past rank exhausted
    const linalg::Vector uj = bs.u.col(j);
    const double p = linalg::dot(beta, uj);
    proj2 += p * p;
  }
  return std::clamp(1.0 - proj2, 0.0, 1.0);
}

}  // namespace funnel::detect
