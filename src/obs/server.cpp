#include "obs/server.h"

#ifndef FUNNEL_OBS_OFF

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace funnel::obs {
namespace {

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return status < 400 ? "OK" : "Error";
  }
}

// Loop until every byte is out (or the peer is gone). MSG_NOSIGNAL: a
// scraper hanging up mid-response must not SIGPIPE the pipeline.
void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

void write_response(int fd, const HttpResponse& resp, bool head_only) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     status_reason(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  write_all(fd, head.data(), head.size());
  if (!head_only) write_all(fd, resp.body.data(), resp.body.size());
}

/// Read until the blank line ending the request head, a size/time bound, or
/// EOF. Returns false on overflow/timeout/error (head may be partial).
bool read_request_head(int fd, std::size_t max_bytes, std::string* head) {
  char buf[2048];
  while (head->size() < max_bytes) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN from SO_RCVTIMEO: slowloris timeout
    }
    if (n == 0) return false;
    head->append(buf, static_cast<std::size_t>(n));
    // Bound before the terminator check: a head that arrives in one read
    // must not dodge the limit just because its "\r\n\r\n" is present.
    if (head->size() > max_bytes) return false;
    if (head->find("\r\n\r\n") != std::string::npos) return true;
  }
  return false;
}

/// Parse "METHOD SP target SP HTTP/1.x" out of the head's first line.
bool parse_request_line(const std::string& head, HttpRequest* req) {
  std::size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return false;
  std::string line = head.substr(0, eol);
  std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  req->method = line.substr(0, sp1);
  req->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::size_t q = req->target.find('?');
  req->path = req->target.substr(0, q);
  req->query = q == std::string::npos ? "" : req->target.substr(q + 1);
  return !req->path.empty() && req->path[0] == '/';
}

}  // namespace

struct HttpServer::Impl {
  explicit Impl(HttpServerOptions o) : options(std::move(o)) {
    if (options.num_workers == 0) options.num_workers = 1;
    if (options.queue_capacity == 0) options.queue_capacity = 1;
  }

  HttpServerOptions options;
  std::unordered_map<std::string, Handler> routes;

  int listen_fd = -1;
  std::atomic<std::uint16_t> bound_port{0};
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  std::thread accept_thread;
  std::vector<std::thread> workers;

  std::mutex mutex;                ///< guards pending
  std::condition_variable cv;
  std::deque<int> pending;         ///< accepted fds awaiting a worker

  std::atomic<std::uint64_t> requests{0};
  std::atomic<const Registry*> stats{nullptr};

  void account(int status, double micros) {
    requests.fetch_add(1, std::memory_order_relaxed);
    if (const Registry* reg = stats.load(std::memory_order_acquire)) {
      reg->add("obs.server.requests");
      if (status >= 400) reg->add("obs.server.http_errors");
      reg->observe("obs.server.request_us", micros);
    }
  }

  void serve_connection(int fd) {
    // Bound the read side so a half-open scraper can't pin a worker.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    auto t0 = std::chrono::steady_clock::now();
    std::string head;
    HttpRequest req;
    HttpResponse resp;
    bool head_only = false;
    if (!read_request_head(fd, options.max_request_bytes, &head) ||
        !parse_request_line(head, &req)) {
      if (head.empty()) {  // peer connected and hung up: not a request
        ::close(fd);
        return;
      }
      resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (req.method != "GET" && req.method != "HEAD") {
      resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      head_only = req.method == "HEAD";
      auto it = routes.find(req.path);
      if (it == routes.end()) {
        resp = {404, "text/plain; charset=utf-8", "not found\n"};
      } else {
        try {
          resp = it->second(req);
        } catch (const std::exception& e) {
          resp = {500, "text/plain; charset=utf-8",
                  std::string("handler error: ") + e.what() + "\n"};
        } catch (...) {
          resp = {500, "text/plain; charset=utf-8", "handler error\n"};
        }
      }
    }
    write_response(fd, resp, head_only);
    ::close(fd);
    double micros = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    account(resp.status, micros);
  }

  void worker_loop() {
    for (;;) {
      int fd = -1;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) || !pending.empty();
        });
        if (stopping.load(std::memory_order_relaxed)) return;
        fd = pending.front();
        pending.pop_front();
      }
      serve_connection(fd);
    }
  }

  void accept_loop() {
    pollfd pfd{listen_fd, POLLIN, 0};
    while (!stopping.load(std::memory_order_relaxed)) {
      // Finite poll so stop() never waits on a quiet socket.
      int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;  // timeout or EINTR
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      bool shed = false;
      {
        std::lock_guard lock(mutex);
        if (pending.size() >= options.queue_capacity) {
          shed = true;
        } else {
          pending.push_back(fd);
        }
      }
      if (shed) {
        // Load-shed from the accept thread: a scrape storm gets 503s, the
        // worker queue stays bounded.
        write_response(fd, {503, "text/plain; charset=utf-8", "overloaded\n"},
                       false);
        ::close(fd);
        account(503, 0.0);
      } else {
        cv.notify_one();
      }
    }
  }
};

HttpServer::HttpServer(HttpServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  impl_->routes[std::move(path)] = std::move(handler);
}

bool HttpServer::start() {
  if (impl_->running.load()) {
    error_ = "server already running";
    return false;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Skip TIME_WAIT on restart. This does NOT allow stealing a port another
  // live listener holds — bind below still fails with EADDRINUSE, which is
  // the diagnostic the CLI's port-conflict exit path relies on.
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl_->options.port);
  if (::inet_pton(AF_INET, impl_->options.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    error_ = "invalid bind address: " + impl_->options.bind_address;
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "bind " + impl_->options.bind_address + ":" +
             std::to_string(impl_->options.port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    error_ = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  impl_->bound_port.store(ntohs(bound.sin_port));

  impl_->listen_fd = fd;
  impl_->stopping.store(false);
  impl_->running.store(true);
  impl_->workers.reserve(impl_->options.num_workers);
  for (std::size_t i = 0; i < impl_->options.num_workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  error_.clear();
  return true;
}

void HttpServer::stop() {
  if (!impl_->running.load()) return;
  impl_->stopping.store(true);
  impl_->cv.notify_all();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  for (auto& w : impl_->workers) {
    if (w.joinable()) w.join();
  }
  impl_->workers.clear();
  // Workers bail on stop without draining; connections still queued get a
  // hangup rather than a stall.
  for (int fd : impl_->pending) ::close(fd);
  impl_->pending.clear();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->bound_port.store(0);
  impl_->running.store(false);
  impl_->stopping.store(false);
}

bool HttpServer::running() const { return impl_->running.load(); }

std::uint16_t HttpServer::port() const { return impl_->bound_port.load(); }

std::uint64_t HttpServer::requests_served() const {
  return impl_->requests.load(std::memory_order_relaxed);
}

void HttpServer::set_stats(const Registry* stats) {
  impl_->stats.store(stats, std::memory_order_release);
}

}  // namespace funnel::obs

#endif  // FUNNEL_OBS_OFF
