# Smoke check for the persistent-store benchmark: runs bench/wal_throughput
# in --quick mode, then validates the BENCH_persist.json it emits — the
# file must parse as JSON and carry the three cost blocks docs/STORAGE.md
# budgets for (WAL append rate, segment flush latency, RAM-vs-mmap window
# reads), with sane values: positive throughput, every appended record
# accounted for by the WAL, at least one segment, and positive read costs
# on both sides (the bench itself already asserts the RAM and mmap reads
# return identical data).
#
# Invoked by ctest as:
#   cmake -DBENCH=<wal_throughput> -DWORK_DIR=<scratch dir> -P persist_bench_smoke.cmake

foreach(var BENCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(json_path "${WORK_DIR}/BENCH_persist.json")

execute_process(
  COMMAND "${BENCH}" --quick --json "${json_path}" --dir "${WORK_DIR}/store"
  OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "wal_throughput failed (${rc}): ${err}")
endif()

file(READ "${json_path}" json)

# Workload block: the bench must say what it measured.
string(JSON records ERROR_VARIABLE jerr GET "${json}" workload records)
if(jerr)
  message(FATAL_ERROR "BENCH_persist.json did not parse: ${jerr}")
endif()
if(records LESS 1)
  message(FATAL_ERROR "workload.records must be positive, got ${records}")
endif()

# WAL block: every appended record hit the log, at a positive rate.
string(JSON wal_records ERROR_VARIABLE jerr GET "${json}" wal records_written)
if(jerr)
  message(FATAL_ERROR "wal.records_written missing: ${jerr}")
endif()
if(NOT wal_records EQUAL records)
  message(FATAL_ERROR
    "WAL lost records: appended ${records}, logged ${wal_records}")
endif()
foreach(key records_per_s mb_per_s bytes)
  string(JSON v ERROR_VARIABLE jerr GET "${json}" wal ${key})
  if(jerr)
    message(FATAL_ERROR "wal.${key} missing: ${jerr}")
  endif()
  if(v LESS_EQUAL 0)
    message(FATAL_ERROR "wal.${key} must be > 0, got ${v}")
  endif()
endforeach()

# Segment block: the checkpoint produced at least one segment.
string(JSON segs ERROR_VARIABLE jerr GET "${json}" segment segments)
if(jerr)
  message(FATAL_ERROR "segment.segments missing: ${jerr}")
endif()
if(segs LESS 1)
  message(FATAL_ERROR "checkpoint wrote no segment (got ${segs})")
endif()
string(JSON flush_ms ERROR_VARIABLE jerr GET "${json}" segment flush_ms)
if(jerr)
  message(FATAL_ERROR "segment.flush_ms missing: ${jerr}")
endif()

# Read block: both sides of the RAM-vs-mmap comparison reported a cost.
foreach(key ram_us_per_window mmap_us_per_window)
  string(JSON v ERROR_VARIABLE jerr GET "${json}" read ${key})
  if(jerr)
    message(FATAL_ERROR "read.${key} missing: ${jerr}")
  endif()
  if(v LESS_EQUAL 0)
    message(FATAL_ERROR "read.${key} must be > 0, got ${v}")
  endif()
endforeach()

string(JSON rate GET "${json}" wal records_per_s)
string(JSON mmap_us GET "${json}" read mmap_us_per_window)
message(STATUS "persist_bench_smoke OK: ${rate} records/s, "
               "flush ${flush_ms} ms, mmap read ${mmap_us} us/window")
