// Example: validating an *expected* performance change (§5.1 scenario).
//
// A configuration change rebalances Redis query traffic from saturated
// class-A servers to idle class-B servers. The operations team wants
// confirmation that the NIC-throughput levels moved as intended — FUNNEL
// attributes both the drop on class A and the rise on class B to the
// change, while leaving the unrelated KPIs alone.
#include <cstdio>
#include <string>
#include <vector>

#include "changes/change_log.h"
#include "funnel/assessor.h"
#include "topology/topology.h"
#include "tsdb/store.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

int main() {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;

  const std::string svc = "redis.query";
  std::vector<std::string> servers;
  for (int i = 0; i < 4; ++i) {
    servers.push_back("redis-a" + std::to_string(i));
    servers.push_back("redis-b" + std::to_string(i));
  }
  for (const auto& s : servers) topo.add_server(svc, s);

  // Full launching needs a historical baseline: generate 31 days of NIC
  // throughput per server.
  const MinuteTime tc = 31 * kMinutesPerDay + 480;
  Rng rng(5);
  for (const auto& s : servers) {
    const bool class_a = s.find("-a") != std::string::npos;
    workload::VariableParams p;
    p.level = class_a ? 0.9 : 0.2;  // normalized NIC utilization
    p.ar_coefficient = 0.6;
    p.burst_sigma = 0.02;
    p.spike_rate = 0.01;
    p.spike_scale = 0.06;
    workload::KpiStream nic(workload::make_variable(p, rng.split()));
    nic.add_effect(workload::LevelShift{tc, class_a ? -0.35 : 0.35});
    workload::materialize(nic, store,
                          tsdb::server_metric(s, "nic_throughput"), 0,
                          tc + 120);
    // An unrelated KPI that must stay clean.
    workload::StationaryParams mem;
    mem.level = 60.0;
    workload::KpiStream mem_stream(workload::make_stationary(mem, rng.split()));
    workload::materialize(mem_stream, store,
                          tsdb::server_metric(s, "memory_utilization"), 0,
                          tc + 120);
  }

  changes::SoftwareChange change;
  change.type = changes::ChangeType::kConfigChange;
  change.service = svc;
  change.servers = servers;  // balancing rules apply everywhere at once
  change.time = tc;
  change.mode = changes::LaunchMode::kFull;
  change.description = "rebalance query traffic between A and B classes";
  const changes::ChangeId id = log.record(change, topo);

  const core::Funnel funnel(core::FunnelConfig{}, topo, log, store);
  const core::AssessmentReport report = funnel.assess(id);
  std::printf("%s\n", report.summary().c_str());

  int a_down = 0, b_up = 0, clean_violations = 0;
  for (const auto& v : report.items) {
    if (v.metric.kpi == "nic_throughput" && v.caused_by_software_change()) {
      const bool class_a = v.metric.entity.find("-a") != std::string::npos;
      const double alpha = v.did_fit ? v.did_fit->alpha : 0.0;
      if (class_a && alpha < 0.0) ++a_down;
      if (!class_a && alpha > 0.0) ++b_up;
    }
    if (v.metric.kpi == "memory_utilization" &&
        v.caused_by_software_change()) {
      ++clean_violations;
    }
  }
  std::printf("validated: %d class-A NICs shifted down, %d class-B NICs "
              "shifted up, %d spurious attributions on memory KPIs\n",
              a_down, b_up, clean_violations);
  std::printf(a_down == 4 && b_up == 4 && clean_violations == 0
                  ? "the load-balancing change had exactly the expected "
                    "effect.\n"
                  : "unexpected outcome — inspect the report above.\n");
  return 0;
}
