#include "changes/change.h"

namespace funnel::changes {

const char* to_string(ChangeType t) {
  switch (t) {
    case ChangeType::kSoftwareUpgrade:
      return "software-upgrade";
    case ChangeType::kConfigChange:
      return "config-change";
  }
  return "?";
}

const char* to_string(LaunchMode m) {
  switch (m) {
    case LaunchMode::kDark:
      return "dark-launching";
    case LaunchMode::kFull:
      return "full-launching";
  }
  return "?";
}

}  // namespace funnel::changes
