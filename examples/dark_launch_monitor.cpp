// Example: a dark-launch gate.
//
// A canary rollout pushes a change to 2 of 6 servers, then streams live
// KPIs through FunnelOnline. The example shows both possible endings:
//   * a clean canary (confounder hits treated AND control alike -> DiD
//     rejects it, rollout may proceed), and
//   * a genuine regression (treated-only effect -> page + roll back).
#include <cstdio>
#include <memory>
#include <vector>

#include "changes/change_log.h"
#include "funnel/online.h"
#include "topology/topology.h"
#include "tsdb/store.h"
#include "workload/generators.h"
#include "workload/shock.h"
#include "workload/stream.h"

using namespace funnel;

namespace {

// Runs one canary: returns true when FUNNEL attributes a KPI change to it.
bool run_canary(bool inject_regression) {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;

  const std::string svc = "search.frontend";
  std::vector<std::string> servers;
  for (int i = 0; i < 6; ++i) {
    servers.push_back("sf-" + std::to_string(i));
    topo.add_server(svc, servers.back());
  }

  const MinuteTime tc = 2 * kMinutesPerDay;
  Rng rng(inject_regression ? 31u : 32u);

  // A service-wide confounder (traffic surge) arrives with the change in
  // both runs: the control group sees it too, so it must not be blamed on
  // the canary.
  const workload::SharedShock surge =
      workload::make_event_shock(tc + 5, 45, 6.0);

  std::vector<std::pair<tsdb::MetricId,
                        std::unique_ptr<workload::KpiStream>>> streams;
  for (const auto& s : servers) {
    workload::StationaryParams p;
    p.level = 120.0;  // p95 response delay, ms
    p.noise_sigma = 1.5;
    auto stream = std::make_unique<workload::KpiStream>(
        workload::make_stationary(p, rng.split()));
    stream->add_shock(surge);
    const bool treated = s == "sf-0" || s == "sf-1";
    if (treated && inject_regression) {
      stream->add_effect(workload::Ramp{tc, tc + 15, 12.0});  // latency creep
    }
    const tsdb::MetricId m = tsdb::instance_metric(
        topology::instance_name(svc, s), "response_delay");
    tsdb::TimeSeries history(0);
    for (MinuteTime t = 0; t < tc; ++t) history.append(stream->sample(t));
    store.insert(m, std::move(history));
    streams.emplace_back(m, std::move(stream));
  }

  changes::SoftwareChange change;
  change.service = svc;
  change.servers = {"sf-0", "sf-1"};
  change.time = tc;
  change.mode = changes::LaunchMode::kDark;
  change.description = "canary build";
  const changes::ChangeId id = log.record(change, topo);

  core::FunnelOnline online(core::FunnelConfig{}, topo, log, store);
  bool regression_paged = false;
  online.on_verdict([&](changes::ChangeId, const core::ItemVerdict& v) {
    std::printf("  PAGE %s: attributed to the canary (alpha=%+.1f ms)\n",
                v.metric.to_string().c_str(),
                v.did_fit ? v.did_fit->alpha : 0.0);
    regression_paged = true;
  });
  core::AssessmentReport final_report;
  online.on_report(
      [&](const core::AssessmentReport& r) { final_report = r; });
  online.watch(id);

  for (MinuteTime t = tc; t < tc + 61; ++t) {
    for (auto& [m, stream] : streams) store.append(m, t, stream->sample(t));
  }

  std::printf("  detected behavior changes: %zu, attributed to canary: "
              "%zu\n",
              final_report.kpi_changes_detected(),
              final_report.kpi_changes_caused());
  return regression_paged;
}

}  // namespace

int main() {
  std::printf("canary run 1: clean build + ambient traffic surge\n");
  const bool run1 = run_canary(false);
  std::printf("  verdict: %s\n\n",
              run1 ? "BLOCKED (unexpected!)" : "PROCEED with rollout");

  std::printf("canary run 2: build with a latency regression (+ surge)\n");
  const bool run2 = run_canary(true);
  std::printf("  verdict: %s\n",
              run2 ? "ROLL BACK the canary" : "PROCEED (unexpected!)");

  return (!run1 && run2) ? 0 : 1;
}
