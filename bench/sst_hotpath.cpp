// SST hot-path micro-benchmark — µs/window for every tier of the fast
// path, on the Table 2 workload (variable-class KPI, the hardest: no
// early-outs anywhere).
//
// Tiers:
//   cold      reset() before every window — the naive per-window cost a
//             stateless deployment would pay (30 power sweeps + Lanczos)
//   warm      the default scorer: future basis warm-started across windows
//   fast      --sst-fast: past subspace warm-started too, deterministic
//             restarts (IkaParams::warm_past)
//   batch     IkaSstBatch: 8 KPI lanes scored lockstep, fused Hankel
//             Gram applies (µs per window per KPI)
//   cascaded  fast + pre-filter cascade (variance + raw-CUSUM gates)
//
// Alongside the table it writes a machine-readable BENCH_sst.json
// (--json FILE, default BENCH_sst.json) with per-tier µs/window, derived
// million-KPI core counts, the speedups vs cold, and the fast-vs-exact
// score correlation. tests/sst_bench_smoke.cmake validates the JSON shape
// and asserts the cascaded tier is ≥ 5x cheaper than cold.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "detect/cascade.h"
#include "detect/ika_batch.h"
#include "detect/ika_sst.h"
#include "detect/improved_sst.h"
#include "detect/sliding.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

namespace {

std::vector<double> bench_series(std::size_t len, std::uint64_t seed) {
  workload::VariableParams p;  // Table 2's workload class
  workload::KpiStream s(workload::make_variable(p, Rng(seed)));
  return workload::render(s, 0, static_cast<MinuteTime>(len));
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Mean µs/window of one pass callback that scores `windows_per_pass`
/// windows, repeated until `min_windows` windows have been scored.
template <typename Pass>
double measure(std::size_t windows_per_pass, std::size_t min_windows,
               Pass&& pass) {
  std::size_t scored = 0;
  const double start = now_us();
  while (scored < min_windows) {
    pass();
    scored += windows_per_pass;
  }
  return (now_us() - start) / static_cast<double>(scored);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const char* json_path = "BENCH_sst.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bench::print_header("SST hot path: cold vs warm vs fast vs cascaded");

  const detect::SstGeometry g{.omega = 9, .eta = 3};
  const std::size_t len = 600;
  const std::vector<double> series = bench_series(len, 99);  // Table 2 seed
  const std::size_t w = g.window();
  const std::size_t positions = series.size() - w + 1;
  const std::size_t min_windows = quick ? 2000 : 8000;
  const auto span = std::span<const double>(series);

  // cold: full restart per window.
  detect::IkaSst cold_scorer(g);
  const double us_cold = measure(positions, quick ? 600 : 2000, [&] {
    for (std::size_t i = 0; i < positions; ++i) {
      cold_scorer.reset();
      volatile double s = cold_scorer.score(span.subspan(i, w));
      (void)s;
    }
  });

  // warm: the default scorer across consecutive windows.
  detect::IkaSst warm_scorer(g);
  const double us_warm = measure(positions, min_windows, [&] {
    for (std::size_t i = 0; i < positions; ++i) {
      volatile double s = warm_scorer.score(span.subspan(i, w));
      (void)s;
    }
  });

  // fast: warm-past + deterministic restarts.
  detect::IkaParams fast_params;
  fast_params.warm_past = true;
  detect::IkaSst fast_scorer(g, fast_params);
  const double us_fast = measure(positions, min_windows, [&] {
    for (std::size_t i = 0; i < positions; ++i) {
      volatile double s = fast_scorer.score(span.subspan(i, w));
      (void)s;
    }
  });

  // batch: 8 lanes in lockstep, µs per window per KPI.
  constexpr std::size_t kLanes = 8;
  std::vector<std::vector<double>> fleet;
  for (std::size_t k = 0; k < kLanes; ++k) {
    fleet.push_back(bench_series(len, 200 + k));
  }
  detect::IkaSstBatch batch(kLanes, g, fast_params);
  std::vector<double> packed(kLanes * w), batch_out(kLanes);
  const double us_batch = measure(positions * kLanes, min_windows, [&] {
    for (std::size_t i = 0; i < positions; ++i) {
      for (std::size_t k = 0; k < kLanes; ++k) {
        std::memcpy(packed.data() + k * w, fleet[k].data() + i,
                    w * sizeof(double));
      }
      batch.score_all(packed, batch_out);
      volatile double s = batch_out[0];
      (void)s;
    }
  });

  // cascaded: fast scorer behind the pre-filter gates.
  detect::IkaSst casc_scorer(g, fast_params);
  detect::CascadeConfig cc;
  cc.sst_threshold = 0.22;  // library-default alarm threshold
  detect::CascadeCounters counters;
  const double us_casc = measure(positions, min_windows, [&] {
    casc_scorer.reset();
    const auto scores =
        detect::cascade_score_series(casc_scorer, series, cc, &counters,
                                     nullptr);
    volatile double s = scores.empty() ? 0.0 : scores.back();
    (void)s;
  });

  // Fidelity: fast-path scores vs the exact-SVD reference on this workload.
  detect::ImprovedSst exact(g);
  detect::IkaSst fast_fresh(g, fast_params);
  const auto se = detect::score_series(exact, series);
  const auto sf = detect::score_series(fast_fresh, series);
  const double corr = correlation(se, sf);

  const double suppressed_frac =
      counters.windows == 0
          ? 0.0
          : static_cast<double>(counters.windows - counters.scored -
                                counters.dirty) /
                static_cast<double>(counters.windows);

  Table t({"tier", "us/window", "cores for 1M KPIs", "speedup vs cold"});
  const auto add = [&](const char* name, double us) {
    t.add_row({name, format_fixed(us, 1),
               std::to_string(evalkit::cores_for_kpis(us)),
               format_fixed(us_cold / us, 2) + "x"});
  };
  add("cold", us_cold);
  add("warm (default)", us_warm);
  add("fast (--sst-fast --no-cascade)", us_fast);
  add("batch x8 (IkaSstBatch)", us_batch);
  add("cascaded (--sst-fast)", us_casc);
  std::printf("%s\n", t.to_string().c_str());
  std::printf("fidelity: corr(fast, exact SVD) = %.3f on the variable-class "
              "workload; cascade suppressed %.0f%% of windows\n",
              corr, 100.0 * suppressed_frac);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 3;
  }
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"workload\": {\"class\": \"variable\", \"minutes\": %zu, "
      "\"windows\": %zu},\n"
      "  \"tiers\": {\n"
      "    \"cold\": {\"us_per_window\": %.3f, \"cores_for_1m_kpis\": %llu},\n"
      "    \"warm\": {\"us_per_window\": %.3f, \"cores_for_1m_kpis\": %llu},\n"
      "    \"fast\": {\"us_per_window\": %.3f, \"cores_for_1m_kpis\": %llu},\n"
      "    \"batch\": {\"us_per_window\": %.3f, \"cores_for_1m_kpis\": "
      "%llu},\n"
      "    \"cascaded\": {\"us_per_window\": %.3f, \"cores_for_1m_kpis\": "
      "%llu}\n"
      "  },\n"
      "  \"speedup\": {\"warm_vs_cold\": %.2f, \"fast_vs_cold\": %.2f, "
      "\"batch_vs_cold\": %.2f, \"cascaded_vs_cold\": %.2f},\n"
      "  \"cascade\": {\"suppressed_fraction\": %.4f},\n"
      "  \"fidelity\": {\"fast_vs_exact_corr\": %.4f}\n"
      "}\n",
      len, positions, us_cold,
      static_cast<unsigned long long>(evalkit::cores_for_kpis(us_cold)),
      us_warm,
      static_cast<unsigned long long>(evalkit::cores_for_kpis(us_warm)),
      us_fast,
      static_cast<unsigned long long>(evalkit::cores_for_kpis(us_fast)),
      us_batch,
      static_cast<unsigned long long>(evalkit::cores_for_kpis(us_batch)),
      us_casc,
      static_cast<unsigned long long>(evalkit::cores_for_kpis(us_casc)),
      us_cold / us_warm, us_cold / us_fast, us_cold / us_batch,
      us_cold / us_casc, suppressed_frac, corr);
  out << buf;
  std::fprintf(stderr, "# wrote %s\n", json_path);
  return 0;
}
