// One hash-shard of the MetricStore (see docs/CONCURRENCY.md, "Metric
// store").
//
// The store partitions its series by MetricId hash so that writers on
// different shards never contend: each shard pairs its own slice of the
// series map with a reader-writer lock, and carries the subscription list
// relevant to its metrics so dispatch scans stay shard-local. This header is
// an implementation detail of store.h — user code never names StoreShard.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/minute_time.h"
#include "tsdb/metric.h"
#include "tsdb/series.h"

namespace funnel::tsdb {

/// One push subscription. Shared between the store's id index and every
/// shard whose metrics the filter touches; `active` is cleared by
/// unsubscribe() so a dispatch snapshot taken just before never invokes a
/// dead callback (the in-flight-callback barrier is the dispatcher's job,
/// see dispatch.h).
struct Subscription {
  std::vector<MetricId> filter;  ///< sorted, deduplicated; empty = all
  std::function<void(const MetricId&, MinuteTime, double)> callback;
  std::atomic<bool> active{true};
};

/// One partition: its series, their lock, and the subscriptions that can
/// match its metrics.
struct StoreShard {
  /// Guards `series` (map structure and every TimeSeries payload). Readers
  /// take it shared, create/append/insert take it exclusive. Never held
  /// while a subscriber callback runs.
  mutable std::shared_mutex data_mutex;
  std::map<MetricId, TimeSeries> series;

  /// Guards `subs`. Separate from data_mutex so dispatch (which snapshots
  /// the list, then invokes callbacks lock-free) never serializes against
  /// appends into the shard.
  mutable std::mutex subs_mutex;
  std::vector<std::shared_ptr<Subscription>> subs;
};

}  // namespace funnel::tsdb
