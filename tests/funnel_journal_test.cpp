// Integration tests for the verdict-event journal (obs/journal.h) and its
// assessor wiring: JSONL round-trip for full and minimal events, crash
// recovery (a truncated trailing line is skipped and counted, never fatal),
// assessment reports byte-identical with the journal attached or not, the
// canonically-sorted journal byte-identical at 1/2/8 threads, the online
// path stamping source/time-to-verdict, and the live-observer triage tap
// agreeing byte-for-byte with a disk replay.
#include "obs/journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "evalkit/dataset.h"
#include "funnel/assessor.h"
#include "funnel/online.h"
#include "funnel/report_json.h"
#include "triage/engine.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "funnel_journal_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> sorted_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

obs::JournalEvent full_event() {
  obs::JournalEvent e;
  e.source = "online";
  e.change_id = 42;
  e.change_time = 6060;
  e.service = "cache";
  e.change_type = "config-change";
  e.launch_mode = "dark-launching";
  e.metric = "server:s1/mem";
  e.entity_kind = "server";
  e.kpi = "mem";
  e.cause = "software-change";
  e.detected = true;
  e.alarm_minute = 6073;
  e.sst_peak = 3.25;
  e.sst_damp_factor = 0.875;
  e.did_alpha = -1.5;
  e.did_alpha_scaled = -4.0625;
  e.did_t_stat = 9.5;
  e.did_n_treated = 2;
  e.did_n_control = 2;
  e.control_kind = "dark-launch-siblings";
  e.fallback_control = false;
  e.coverage = 0.975;
  e.window_minutes = 120;
  e.clean_samples = 117;
  e.longest_gap_run = 2;
  e.longest_flat_run = 1;
  e.gate_decision = "escalated-full-score";
  e.determined_at = 6073;
  e.time_to_verdict = 13;
  return e;
}

obs::JournalEvent minimal_event() {
  obs::JournalEvent e;
  e.source = "batch";
  e.change_id = 7;
  e.change_time = 100;
  e.service = "web";
  e.change_type = "software-upgrade";
  e.launch_mode = "full-launching";
  e.metric = "server:s9/cpu";
  e.entity_kind = "server";
  e.kpi = "cpu";
  e.cause = "no-kpi-change";
  e.detected = false;
  return e;
}

TEST(JournalCodec, RoundTripsFullAndMinimalEvents) {
  for (const obs::JournalEvent& original : {full_event(), minimal_event()}) {
    const std::string line = to_jsonl(original);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    obs::JournalEvent parsed;
    ASSERT_TRUE(parse_jsonl(line, parsed)) << line;
    EXPECT_EQ(parsed, original) << line;
    // Same event, same bytes — the determinism the sorted-journal
    // byte-identity test below rests on.
    EXPECT_EQ(to_jsonl(parsed), line);
  }
}

TEST(JournalCodec, InconclusiveReasonAndTiesSurviveRoundTrip) {
  obs::JournalEvent e = minimal_event();
  e.cause = "inconclusive";
  e.inconclusive_reason = "gap-in-detection-window";
  e.fallback_control = true;
  e.control_kind = "seasonal-window";
  const std::string line = to_jsonl(e);
  EXPECT_NE(line.find("\"inconclusive_reason\":"), std::string::npos);
  obs::JournalEvent parsed;
  ASSERT_TRUE(parse_jsonl(line, parsed));
  EXPECT_EQ(parsed, e);
}

TEST(JournalCodec, RejectsTruncatedAndForeignLines) {
  const std::string line = to_jsonl(full_event());
  obs::JournalEvent parsed;
  // A crash can cut the final line anywhere; every proper prefix must be
  // rejected, not mis-parsed. (Step 8 keeps the full line valid.)
  for (const std::size_t cut : {std::size_t{1}, line.size() / 2,
                                line.size() - 8, line.size() - 1}) {
    EXPECT_FALSE(parse_jsonl(line.substr(0, cut), parsed)) << cut;
  }
  EXPECT_FALSE(parse_jsonl("", parsed));
  EXPECT_FALSE(parse_jsonl("not json at all", parsed));
  // Unknown schema versions are skipped by readers, not trusted.
  std::string future = line;
  const auto at = future.find("{\"v\":1,");
  ASSERT_EQ(at, 0u);
  future.replace(0, 7, "{\"v\":99,");
  EXPECT_FALSE(parse_jsonl(future, parsed));
}

TEST(JournalCodec, ToleratesUnknownKeysFromNewerWriters) {
  std::string line = to_jsonl(minimal_event());
  line.insert(line.size() - 1, ",\"future_key\":\"ignored\",\"n\":3");
  obs::JournalEvent parsed;
  ASSERT_TRUE(parse_jsonl(line, parsed));
  EXPECT_EQ(parsed, minimal_event());
}

TEST(JournalCodec, ReadJournalRecoversFromTruncatedTrailingLine) {
  const std::string path = temp_path("truncated.jsonl");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << to_jsonl(minimal_event()) << '\n'
        << to_jsonl(full_event()) << '\n';
    const std::string cut = to_jsonl(minimal_event());
    out << cut.substr(0, cut.size() / 2);  // the crash signature
  }
  std::size_t bad_lines = 0;
  bool ok = false;
  const auto events = obs::read_journal(path, &bad_lines, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], minimal_event());
  EXPECT_EQ(events[1], full_event());
  EXPECT_EQ(bad_lines, 1u);
  std::remove(path.c_str());

  const auto missing = obs::read_journal(temp_path("no_such.jsonl"),
                                         &bad_lines, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(missing.empty());
}

#ifndef FUNNEL_OBS_OFF
TEST(JournalWriter, AppendsFromManyThreadsLosslessly) {
  const std::string path = temp_path("writer.jsonl");
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&journal, t] {
        for (int i = 0; i < 50; ++i) {
          obs::JournalEvent e = minimal_event();
          e.change_id = static_cast<std::uint64_t>(t * 1000 + i);
          journal.append(std::move(e));
        }
      });
    }
    for (auto& th : threads) th.join();
    journal.flush();
    EXPECT_EQ(journal.appended(), 200u);
    EXPECT_EQ(journal.written(), 200u);
    EXPECT_EQ(journal.dropped(), 0u);
  }
  std::size_t bad_lines = 0;
  bool ok = false;
  const auto events = obs::read_journal(path, &bad_lines, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(bad_lines, 0u);
  ASSERT_EQ(events.size(), 200u);
  std::vector<std::uint64_t> ids;
  for (const auto& e : events) ids.push_back(e.change_id);
  std::sort(ids.begin(), ids.end());
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(ids[static_cast<std::size_t>(t * 50 + i)],
                static_cast<std::uint64_t>(t * 1000 + i));
    }
  }
  std::remove(path.c_str());
}
#endif  // FUNNEL_OBS_OFF

// Batch pipeline fixture: the funnel_trace_test dataset, journaled.
class FunnelJournal : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    evalkit::DatasetParams p;
    p.seed = 424242;
    p.services = 2;
    p.servers_per_service = 4;
    p.treated_servers = 2;
    p.positive_changes = 2;
    p.negative_changes = 3;
    p.history_days = 4;
    p.confounder_probability = 0.4;
    ds_ = evalkit::build_dataset(p).release();
  }

  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static MinuteTime window_end() {
    MinuteTime last = 0;
    for (const auto& ch : ds_->log.all()) last = std::max(last, ch.time);
    return last + 1;
  }

  static std::vector<AssessmentReport> run_window(
      std::size_t threads, const obs::Journal* journal) {
    FunnelConfig cfg;
    cfg.baseline_days = 3;  // the short history has no 30-day baseline
    cfg.num_threads = threads;
    cfg.journal = journal;
    const Funnel funnel(cfg, ds_->topo, ds_->log, ds_->store);
    return funnel.assess_window(0, window_end());
  }

  static std::string rendered(const std::vector<AssessmentReport>& reports) {
    std::string out;
    for (const AssessmentReport& r : reports) {
      out += to_json(r);
      out += '\n';
    }
    return out;
  }

  static evalkit::EvalDataset* ds_;
};

evalkit::EvalDataset* FunnelJournal::ds_ = nullptr;

TEST_F(FunnelJournal, ReportsByteIdenticalWithJournalOnOrOff) {
  const std::string path = temp_path("identity.jsonl");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const std::string without = rendered(run_window(threads, nullptr));
    std::string with;
    {
      obs::Journal journal(path);
      ASSERT_TRUE(journal.ok());
      with = rendered(run_window(threads, &journal));
    }
    EXPECT_EQ(without, with)
        << "journaling leaked into reports at threads=" << threads;
  }
  std::remove(path.c_str());
}

TEST_F(FunnelJournal, SortedJournalByteIdenticalAcrossThreadCounts) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  std::vector<std::string> reference;
  std::size_t reference_events = 0;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::string path =
        temp_path("threads" + std::to_string(threads) + ".jsonl");
    std::size_t expected = 0;
    {
      obs::Journal journal(path);
      ASSERT_TRUE(journal.ok());
      const auto reports = run_window(threads, &journal);
      for (const AssessmentReport& r : reports) expected += r.items.size();
      journal.flush();
      EXPECT_EQ(journal.written(), expected);
      EXPECT_EQ(journal.dropped(), 0u);
    }
    // Worker threads interleave appends nondeterministically; the event
    // *set* — and, since the codec is byte-deterministic, the sorted line
    // set — must not depend on the schedule.
    const std::vector<std::string> lines = sorted_lines(path);
    ASSERT_EQ(lines.size(), expected);
    if (reference.empty()) {
      reference = lines;
      reference_events = expected;
    } else {
      EXPECT_EQ(expected, reference_events);
      EXPECT_EQ(lines, reference)
          << "journal content changed at threads=" << threads;
    }
    std::remove(path.c_str());
  }
  ASSERT_FALSE(reference.empty());
}

TEST_F(FunnelJournal, BatchEventsCarryProvenance) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  const std::string path = temp_path("provenance.jsonl");
  std::vector<AssessmentReport> reports;
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    reports = run_window(1, &journal);
  }
  const auto events = obs::read_journal(path);
  std::size_t expected = 0;
  for (const AssessmentReport& r : reports) expected += r.items.size();
  ASSERT_EQ(events.size(), expected);

  std::size_t detected = 0, with_did = 0;
  for (const obs::JournalEvent& e : events) {
    EXPECT_EQ(e.source, "batch");
    EXPECT_FALSE(e.service.empty());
    EXPECT_FALSE(e.kpi.empty());
    EXPECT_FALSE(e.cause.empty());
    if (e.detected) {
      ++detected;
      ASSERT_TRUE(e.alarm_minute.has_value()) << to_jsonl(e);
      ASSERT_TRUE(e.sst_peak.has_value());
    }
    if (e.did_alpha.has_value()) {
      ++with_did;
      EXPECT_FALSE(e.control_kind.empty());
      EXPECT_TRUE(e.did_t_stat.has_value());
    }
  }
  // The dataset plants real regressions; the journal must show the
  // detections and the DiD fits that adjudicated them.
  EXPECT_GT(detected, 0u);
  EXPECT_GT(with_did, 0u);
  std::remove(path.c_str());
}

TEST_F(FunnelJournal, LiveObserverTriageMatchesDiskReplay) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  const std::string path = temp_path("tap.jsonl");
  triage::TriageEngine live;
  std::string replay_json;
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    journal.set_observer(
        [&live](const obs::JournalEvent& e) { live.observe(e); });
    run_window(2, &journal);
    journal.flush();
  }
  triage::TriageEngine replayed;
  for (const obs::JournalEvent& e : obs::read_journal(path)) {
    replayed.observe(e);
  }
  ASSERT_GT(replayed.events(), 0u);
  EXPECT_EQ(live.events(), replayed.events());
  // The acceptance bar: a replayed journal reproduces the exact scorecards
  // and blame ranking the live tap computed, down to the rendered bytes.
  EXPECT_EQ(triage::to_json(live.report()),
            triage::to_json(replayed.report()));
  std::remove(path.c_str());
}

// Online pipeline: a dark-launch watch streamed minute-by-minute (the
// funnel_online_test scenario), with the journal attached.
struct OnlineScenario {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;
  MinuteTime tc = 4 * kMinutesPerDay + 300;
  changes::ChangeId change_id = 0;
  std::vector<std::pair<tsdb::MetricId, std::unique_ptr<workload::KpiStream>>>
      streams;

  explicit OnlineScenario(double effect) {
    const std::vector<std::string> servers{"s1", "s2", "s3", "s4"};
    for (const auto& s : servers) topo.add_server("svc", s);
    changes::SoftwareChange ch;
    ch.service = "svc";
    ch.time = tc;
    ch.mode = changes::LaunchMode::kDark;
    ch.servers = {"s1", "s2"};
    change_id = log.record(ch, topo);

    Rng rng(7);
    for (const auto& s : servers) {
      workload::StationaryParams p;
      p.level = 50.0;
      auto stream = std::make_unique<workload::KpiStream>(
          workload::make_stationary(p, rng.split()));
      if (effect != 0.0 && (s == "s1" || s == "s2")) {
        stream->add_effect(workload::LevelShift{tc, effect});
      }
      const tsdb::MetricId id = tsdb::server_metric(s, "mem");
      workload::materialize(*stream, store, id, 0, tc);
      streams.emplace_back(id, std::move(stream));
    }
  }

  std::string run(const obs::Journal* journal) {
    FunnelConfig cfg;
    cfg.baseline_days = 3;
    cfg.journal = journal;
    FunnelOnline online(cfg, topo, log, store);
    std::string out;
    online.on_report([&out](const AssessmentReport& r) { out += to_json(r); });
    online.watch(change_id);
    for (MinuteTime t = tc; t < tc + 61; ++t) {
      for (auto& [id, stream] : streams) {
        store.append(id, t, stream->sample(t));
      }
    }
    return out;
  }
};

TEST(FunnelJournalOnline, ReportsByteIdenticalAndEventsTimed) {
  const std::string path = temp_path("online.jsonl");
  const std::string without = OnlineScenario(8.0).run(nullptr);
  std::string with;
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    with = OnlineScenario(8.0).run(&journal);
  }
  ASSERT_FALSE(without.empty());
  EXPECT_EQ(without, with);

  if (!obs::kEnabled) {
    std::remove(path.c_str());
    GTEST_SKIP() << "FUNNEL_OBS=OFF: no events to inspect";
  }
  const auto events = obs::read_journal(path);
  ASSERT_FALSE(events.empty());
  std::size_t attributed = 0;
  for (const obs::JournalEvent& e : events) {
    EXPECT_EQ(e.source, "online");
    EXPECT_EQ(e.service, "svc");
    EXPECT_EQ(e.launch_mode, "dark-launching");
    if (e.cause == "software-change") {
      ++attributed;
      // The paper's rapidity claim, measurable per event: the verdict
      // minute and the minutes-from-change distance both land.
      ASSERT_TRUE(e.determined_at.has_value());
      ASSERT_TRUE(e.time_to_verdict.has_value());
      EXPECT_EQ(*e.time_to_verdict, *e.determined_at - e.change_time);
      EXPECT_GT(*e.time_to_verdict, 0);
      EXPECT_EQ(e.control_kind, "dark-launch-siblings");
    }
  }
  EXPECT_GE(attributed, 2u);  // both treated KPIs attributed
  std::remove(path.c_str());
}

}  // namespace
}  // namespace funnel::core
