// Ablation — the DiD decision threshold on alpha (§3.2.4: "for a service
// which is sensitive to KPI change ... the threshold of alpha can be set to
// a small value like 0.5. Otherwise, the threshold can be set larger").
//
// Sweeps the alpha threshold and reports FUNNEL's precision/recall on the
// labeled dataset — the precision/recall trade-off the paper describes
// qualitatively.
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/table.h"

using namespace funnel;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  bench::print_header("Ablation: DiD alpha threshold sweep");

  evalkit::DatasetParams p = bench::paper_dataset_params(true);
  if (!quick) {
    p.services = 10;
    p.positive_changes = 24;
    p.negative_changes = 24;
  }
  std::printf("building dataset...\n");
  const auto ds = evalkit::build_dataset(p);

  Table t({"alpha threshold", "precision", "recall", "TNR", "accuracy"});
  for (double threshold : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::FunnelConfig cfg = bench::funnel_config();
    cfg.did.alpha_threshold = threshold;
    const auto result =
        evalkit::evaluate_funnel(*ds, cfg, bench::kNegativeScale);
    const auto cm = result.total();
    t.add_row({format_fixed(threshold, 2), format_percent(cm.precision()),
               format_percent(cm.recall()), format_percent(cm.tnr()),
               format_percent(cm.accuracy())});
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("expected shape: recall stays ~flat until the threshold "
              "approaches the injected effect size (several sigma), while "
              "precision/TNR improve as the threshold grows — 0.5 (the "
              "paper's change-sensitive setting) already rejects nearly all "
              "confounders.\n");
  return 0;
}
