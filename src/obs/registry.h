// Self-telemetry registry — FUNNEL measuring FUNNEL.
//
// The paper's headline claim is *rapid* assessment (§5.2: ~10 minutes to a
// confirmed verdict instead of 1.5 hours of manual work). This subsystem is
// how the reproduction measures its own rapidity: named counters, gauges and
// fixed-bucket latency histograms that the pipeline stages write into and
// the exporters (obs/export.h) dump as JSON or Prometheus text.
//
// Design:
//   * The hot path is lock-free. Each thread gets its own shard of cells on
//     first touch; steady-state recording is a transparent map lookup plus a
//     relaxed atomic store on a cell only that thread writes. The only locks
//     are taken when a thread inserts a brand-new stat name into its shard
//     and when snapshot() merges all shards — never per sample.
//   * Consumers hold a `const Registry*`; null means telemetry off, and
//     every helper (and ScopedTimer) checks the pointer first, so the
//     disabled path costs one branch. Recording through a const pointer is
//     deliberate: a registry is a sink, like a logger — it never feeds back
//     into assessment results, which stay byte-identical with telemetry on
//     or off.
//   * Histograms use one fixed 1-2-5 bucket ladder spanning 1..1e7 (plus an
//     overflow bucket). That covers microsecond stage durations and
//     minute-valued time-to-verdict alike; exact mean/min/max are tracked
//     alongside, so the buckets only need to localize the distribution.
//   * Configuring with -DFUNNEL_OBS=OFF compiles the whole registry to
//     no-ops (empty inline bodies); call sites need no #ifdefs.
//
// Key naming convention (see DESIGN.md "Self-observability"):
//   <subsystem>.<object>.<stat>[_<unit>]   e.g. funnel.assess.sst_us,
//   pool.queue_wait_us, tsdb.store.appends, funnel.online.time_to_verdict_min.
//
// The shard-merge model and the rest of the repo-wide threading contract
// are documented in docs/CONCURRENCY.md.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace funnel::obs {

/// Upper bounds of the fixed histogram buckets (ascending); every histogram
/// additionally has a +inf overflow bucket, so counts have size
/// bucket_bounds().size() + 1.
std::span<const double> bucket_bounds();

/// Merged view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
  std::vector<std::uint64_t> buckets;  ///< per-bucket (non-cumulative)

  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// Point-in-time merge of every shard. `enabled` is false when the build
/// compiled the registry to no-ops (FUNNEL_OBS=OFF).
struct Snapshot {
  bool enabled = false;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

#ifdef FUNNEL_OBS_OFF

inline constexpr bool kEnabled = false;

class Registry {
 public:
  void add(std::string_view, std::uint64_t = 1) const {}
  void set(std::string_view, double) const {}
  void observe(std::string_view, double) const {}
  void declare_counter(std::string_view) const {}
  void declare_gauge(std::string_view) const {}
  void declare_histogram(std::string_view) const {}
  Snapshot snapshot() const { return {}; }
};

#else  // FUNNEL_OBS_OFF

inline constexpr bool kEnabled = true;

class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Increment counter `name` by `delta`.
  void add(std::string_view name, std::uint64_t delta = 1) const;

  /// Set gauge `name`. Last write wins across threads (ordered by a
  /// registry-wide sequence, so a stale shard never shadows a newer value).
  void set(std::string_view name, double value) const;

  /// Record one observation into histogram `name`.
  void observe(std::string_view name, double value) const;

  /// Pre-create a zero-valued stat so exporters list it before the first
  /// event — dashboards and the stats smoke test want a stable key set.
  void declare_counter(std::string_view name) const;
  void declare_gauge(std::string_view name) const;
  void declare_histogram(std::string_view name) const;

  /// Merge every thread's shard into one consistent-enough view. Safe to
  /// call concurrently with recording (recorders are never blocked; a
  /// snapshot may miss increments that race with it).
  Snapshot snapshot() const;

  /// One thread's private slice (defined in registry.cpp; public only so
  /// file-local helpers there can name it).
  struct Shard;

 private:
  Shard& local_shard() const;

  const std::uint64_t uid_;  ///< never reused; keys the thread-local cache
  mutable std::mutex mutex_;  ///< guards shards_ (creation + snapshot)
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

#endif  // FUNNEL_OBS_OFF

}  // namespace funnel::obs
