// Impact-set identification (§3.1, Fig. 4).
//
// For a change on service A deployed to servers (A1..Am):
//   * tservers  = the deployed-on servers (from the change log);
//   * tinstances = A's instances on those servers;
//   * cservers / cinstances = A's remaining servers / instances (the control
//     group for Dark Launching) — empty under Full Launching;
//   * changed service = A; affected services = every service reachable from
//     A in the relation graph.
// The monitored items are: all KPIs of tservers, all KPIs of tinstances, all
// KPIs of the changed service, and all KPIs of each affected service —
// affected services enter only at service granularity (their instances are
// load-balanced; per-instance effects are implausible, §3.1).
#pragma once

#include <string>
#include <vector>

#include "changes/change_log.h"
#include "topology/topology.h"
#include "tsdb/store.h"

namespace funnel::core {

struct ImpactSet {
  changes::ChangeId change_id = 0;
  std::string changed_service;

  std::vector<std::string> tservers;
  std::vector<std::string> tinstances;
  std::vector<std::string> cservers;
  std::vector<std::string> cinstances;
  std::vector<std::string> affected_services;

  bool dark_launched = false;

  bool has_control_group() const { return !cservers.empty(); }
};

/// Derive the impact set of a recorded change.
ImpactSet identify_impact_set(const changes::SoftwareChange& change,
                              const topology::ServiceTopology& topo);

/// All KPIs FUNNEL must examine for this change, in deterministic order:
/// tserver KPIs, tinstance KPIs, changed-service KPIs, affected-service
/// KPIs — every metric the store holds for those entities.
std::vector<tsdb::MetricId> impact_metrics(const ImpactSet& set,
                                           const tsdb::MetricStore& store);

/// True when `metric` belongs to an affected service (those KPIs always take
/// the historical-control DiD path, Fig. 3 step 4).
bool is_affected_service_metric(const ImpactSet& set,
                                const tsdb::MetricId& metric);

/// The treated-group metric ids to use in DiD for a detected change on
/// `metric`: same-named KPI across tservers (server KPIs) or tinstances
/// (instance and changed-service KPIs).
std::vector<tsdb::MetricId> treated_group_for(const ImpactSet& set,
                                              const tsdb::MetricId& metric);

/// The control-group metric ids: same-named KPI across cservers /
/// cinstances. Empty under Full Launching.
std::vector<tsdb::MetricId> control_group_for(const ImpactSet& set,
                                              const tsdb::MetricId& metric);

}  // namespace funnel::core
