#include "detect/ika_sst.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "detect/sst_internal.h"
#include "linalg/hankel.h"
#include "linalg/lanczos.h"
#include "linalg/sym_eigen.h"
#include "linalg/tridiag.h"

namespace funnel::detect {
namespace {

using internal::seed_basis;

// One or more block power sweeps with Rayleigh-Ritz extraction:
// B <- orth((C B) Q) with Q the eigenvectors of T = Bᵀ C B. Returns the
// Ritz values (estimates of C's leading eigenvalues, non-increasing). The
// C·B product runs through the batched Hankel kernel — bit-identical to
// column-at-a-time applies, just one strided pass. When `residual2` is
// non-null, one extra apply against the final basis fills it with the
// squared Ritz residual (the warm-start escalation signal); the extra
// apply never perturbs basis or lambdas.
struct RitzResidual {
  double res2 = 0.0;
  double scale = 0.0;  ///< leading Rayleigh quotient
};

linalg::Vector ritz_iterate(const linalg::HankelGramOperator& op,
                            linalg::Matrix& basis, int iterations,
                            RitzResidual* residual = nullptr) {
  const std::size_t omega = basis.rows();
  const std::size_t eta = basis.cols();
  linalg::Vector lambdas(eta, 0.0);
  linalg::Vector scratch(op.count() * eta);
  for (int it = 0; it < iterations; ++it) {
    linalg::Matrix y(omega, eta);
    op.apply_block(basis.data(), y.data(), eta, scratch);
    lambdas = internal::ritz_rotate(basis, y);
  }
  if (residual != nullptr) {
    linalg::Matrix y(omega, eta);
    op.apply_block(basis.data(), y.data(), eta, scratch);
    residual->res2 = internal::ritz_residual2(basis, y, residual->scale);
  }
  return lambdas;
}

}  // namespace

IkaSst::IkaSst(SstGeometry geometry, IkaParams params)
    : geo_(geometry), params_(params) {
  FUNNEL_REQUIRE(geo_.omega >= 2, "SST needs omega >= 2");
  FUNNEL_REQUIRE(geo_.eta >= 1 && geo_.eta < geo_.omega,
                 "SST needs 1 <= eta < omega");
  FUNNEL_REQUIRE(geo_.krylov_k() <= geo_.omega,
                 "Krylov dimension k must not exceed omega");
  FUNNEL_REQUIRE(params_.cold_iterations >= 1 && params_.warm_iterations >= 1,
                 "iteration counts must be positive");
  FUNNEL_REQUIRE(params_.restart_period >= 1,
                 "restart period must be positive");
}

double IkaSst::score(std::span<const double> window) {
  FUNNEL_REQUIRE(window.size() == geo_.window(),
                 "IkaSst window size mismatch");
  const std::vector<double> z = standardize_window(window, geo_.half());
  if (z.empty()) return std::numeric_limits<double>::quiet_NaN();

  const std::size_t omega = geo_.omega;
  const std::size_t eta = geo_.eta;
  const std::size_t k = geo_.krylov_k();
  const std::span<const double> past(z.data(), geo_.half());
  const std::span<const double> future(z.data() + geo_.half(), geo_.half());

  // Deterministic cold restart (fast path only): rebuilding both bases from
  // scratch every restart_period scored windows keeps warm-start drift
  // bounded and makes a run's scores a pure function of the series.
  if (params_.warm_past && windows_since_restart_ >= params_.restart_period) {
    warm_ = false;
    past_warm_ = false;
    windows_since_restart_ = 0;
    ++cold_restarts_;
  }
  if (params_.warm_past) ++windows_since_restart_;

  // Eq. 11 damping factor, shared by every path. On the fast path it also
  // gates the escalation check: when the factor is exactly zero the window
  // scores 0 regardless of basis quality (score = x̂ · factor), so warm
  // sweeps proceed without the residual apply and cannot contribute drift.
  const double factor = robust_score_factor(past, future);

  // --- Future: eta leading eigenpairs of A·Aᵀ by warm-started block power
  // iteration with Rayleigh-Ritz extraction. On the fast path, a warm
  // window whose Ritz residual shows the basis lost the subspace escalates
  // to a full cold re-seed — bit-identical to a cold restart at this
  // window, so drift is bounded per window, not just per restart period.
  const linalg::HankelGramOperator future_op(future, omega, omega);
  const bool future_was_warm = warm_;
  if (!warm_) seed_basis(future_basis_, future, omega, eta);
  const bool check_future =
      params_.warm_past && future_was_warm && factor > 0.0;
  RitzResidual future_res;
  linalg::Vector lambdas = ritz_iterate(
      future_op, future_basis_,
      future_was_warm ? params_.warm_iterations : params_.cold_iterations,
      check_future ? &future_res : nullptr);
  if (check_future &&
      internal::needs_escalation(future_res.res2, future_res.scale,
                                 params_.warm_residual_tol)) {
    seed_basis(future_basis_, future, omega, eta);
    lambdas = ritz_iterate(future_op, future_basis_, params_.cold_iterations);
    ++escalations_;
  }
  warm_ = true;

  // --- Past: phi_i per future direction. ---
  const linalg::HankelGramOperator past_op(past, omega, omega);

  double weighted = 0.0;
  double total_weight = 0.0;
  if (params_.warm_past) {
    // Fast path: persist the past eigen-subspace the same way the future one
    // is persisted and read φᵢ = 1 − Σⱼ (βᵢ·uⱼ)² over the positive-λ past
    // directions uⱼ — the quantity the per-direction Lanczos runs
    // approximate (Eq. 13), for one warm block sweep per window instead of
    // eta cold Krylov factorizations.
    const bool past_was_warm = past_warm_;
    if (!past_warm_) seed_basis(past_basis_, past, omega, eta);
    const bool check_past = past_was_warm && factor > 0.0;
    RitzResidual past_res;
    linalg::Vector mus = ritz_iterate(
        past_op, past_basis_,
        past_was_warm ? params_.warm_iterations : params_.cold_iterations,
        check_past ? &past_res : nullptr);
    if (check_past &&
        internal::needs_escalation(past_res.res2, past_res.scale,
                                   params_.warm_residual_tol)) {
      seed_basis(past_basis_, past, omega, eta);
      mus = ritz_iterate(past_op, past_basis_, params_.cold_iterations);
      ++escalations_;
    }
    past_warm_ = true;
    internal::accumulate_fast_score(lambdas, future_basis_, mus, past_basis_,
                                    eta, weighted, total_weight);
  } else {
    for (std::size_t i = 0; i < eta; ++i) {
      const double lambda = std::max(lambdas[i], 0.0);
      if (lambda <= 0.0) break;
      const linalg::Vector beta = future_basis_.col(i);

      const linalg::LanczosResult plr = linalg::lanczos(past_op, beta, k);
      const linalg::SymEigen pe = linalg::tridiag_eigen(plr.t);
      double proj2 = 0.0;
      const std::size_t n_past = std::min<std::size_t>(eta, pe.values.size());
      for (std::size_t j = 0; j < n_past; ++j) {
        if (pe.values[j] <= 0.0) break;
        const double x0 = pe.vectors(0, j);  // Eq. 13: first components
        proj2 += x0 * x0;
      }
      const double phi = std::clamp(1.0 - proj2, 0.0, 1.0);
      weighted += lambda * phi;  // Eq. 9
      total_weight += lambda;
    }
  }
  if (total_weight <= 0.0) return 0.0;
  const double xhat =
      std::max(weighted / total_weight, geo_.novelty_floor);

  return xhat * factor;  // Eq. 11
}

}  // namespace funnel::detect
