// Labeled evaluation dataset builder — the substitute for the paper's
// manually-labeled production data (§4.1).
//
// Builds a complete synthetic deployment: a service topology with relations,
// weeks of per-entity KPI history in a MetricStore (seasonal, stationary and
// variable KPIs; service KPIs are true aggregations of their instance KPIs),
// and a change log mixing positive changes (which inject level shifts /
// ramps into the treated entities' KPIs at the deployment minute) with
// negative ones (no injected effect). Service-wide confounder shocks hit
// treated and control entities alike so that detection-only methods produce
// false "caused by change" verdicts that DiD must reject.
//
// Every (change, metric) pair in the impact set becomes an item with exact
// ground truth — the stand-in for the operations team's labels.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "changes/change_log.h"
#include "funnel/impact_set.h"
#include "topology/topology.h"
#include "tsdb/store.h"

namespace funnel::evalkit {

struct DatasetParams {
  std::uint64_t seed = 42;

  int services = 4;
  int servers_per_service = 6;
  int treated_servers = 2;  ///< dark-launch subset size

  int positive_changes = 8;  ///< changes that induce KPI changes
  int negative_changes = 8;  ///< changes with no injected effect
  double dark_fraction = 0.75;  ///< fraction rolled out with Dark Launching

  /// Days of history before the change day (the paper's 30-day baseline
  /// needs >= 30; tests use small values with a reduced baseline).
  int history_days = 31;

  /// Probability that a service-wide confounder shock coincides with a
  /// change (the "other factors" that detection alone cannot exclude).
  double confounder_probability = 0.35;

  /// Injected effect magnitude, in units of the KPI's own noise scale.
  /// Production changes span a wide range — small effects are what
  /// separates the methods' detection delays (a cumulative statistic needs
  /// threshold/(shift - slack) minutes to cross).
  double effect_min_sigma = 2.5;
  double effect_max_sigma = 9.0;

  /// A changed-service aggregate KPI (instance effects diluted by the
  /// untreated replicas, noise averaged down by 1/sqrt(n)) is labeled
  /// change-induced only when the diluted effect clears this many aggregate
  /// noise sigmas — mirroring what a human labeler can actually see.
  double aggregate_label_min_sigma = 2.0;

  /// Fraction of injected effects that are ramps (rest are level shifts).
  double ramp_fraction = 0.4;
  /// Ramp rise time in minutes.
  MinuteTime ramp_duration = 20;

  /// How many distinct KPI names a positive change affects.
  int kpis_affected_per_change = 2;

  /// Probability that a positive change also propagates (at service
  /// granularity) into each affected service.
  double propagate_probability = 0.5;
};

/// Ground truth for one evaluation item (S_i, c_i, k_i).
struct ItemTruth {
  changes::ChangeId change_id = 0;
  tsdb::MetricId metric;
  tsdb::KpiClass kpi_class = tsdb::KpiClass::kStationary;
  /// True iff this KPI carries an injected persistent effect caused by this
  /// software change.
  bool change_induced = false;
  /// Effect onset (== change minute in this builder); meaningful when
  /// change_induced.
  MinuteTime effect_start = 0;
};

struct EvalDataset {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;
  std::vector<ItemTruth> items;
  DatasetParams params;

  /// Change ids that injected at least one effect.
  std::vector<changes::ChangeId> positive_change_ids;
  std::vector<changes::ChangeId> negative_change_ids;

  /// First minute of the change day (changes are all placed on the last
  /// simulated day).
  MinuteTime change_day_start = 0;

  bool is_positive_change(changes::ChangeId id) const;
};

/// KPI schema shared by builder, tests and benches.
/// Server KPIs: cpu_context_switch (variable), memory_utilization
/// (stationary). Instance KPIs: page_view_count (seasonal),
/// response_delay (variable), error_count (stationary). Service KPIs are
/// the aggregations of the instance KPIs.
tsdb::KpiClass kpi_class_of(const std::string& kpi_name);
const std::vector<std::string>& server_kpi_names();
const std::vector<std::string>& instance_kpi_names();

/// Marginal noise scale of each generated KPI (used to size effects).
double kpi_noise_sigma(const std::string& kpi_name);

/// Build the full dataset. Deterministic in params.seed.
std::unique_ptr<EvalDataset> build_dataset(const DatasetParams& params);

}  // namespace funnel::evalkit
