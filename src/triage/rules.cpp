#include "triage/rules.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace funnel::triage {
namespace {

/// Itemsets for one event: the three single attributes plus the three
/// pairs. Items inside a set are sorted (they are generated in sorted
/// order: change_type < launch_mode < service, matching lexicographic
/// order of the attribute names).
std::vector<std::vector<std::string>> itemsets_of(
    const obs::JournalEvent& e) {
  const std::string type = "change_type=" + e.change_type;
  const std::string mode = "launch_mode=" + e.launch_mode;
  const std::string service = "service=" + e.service;
  return {{type},         {mode},          {service},
          {type, mode},   {type, service}, {mode, service}};
}

struct RuleCounts {
  std::uint64_t assessed = 0;
  std::uint64_t support = 0;
};

}  // namespace

std::vector<TriageRule> mine_rules(const std::vector<obs::JournalEvent>& events,
                                   RuleOptions options) {
  // (antecedent, kpi) -> counts. Map keys give deterministic enumeration.
  std::map<std::pair<std::vector<std::string>, std::string>, RuleCounts>
      counts;
  for (const obs::JournalEvent& e : events) {
    const bool regressed = (e.cause == "software-change");
    for (auto& items : itemsets_of(e)) {
      RuleCounts& rc = counts[{std::move(items), e.kpi}];
      ++rc.assessed;
      if (regressed) ++rc.support;
    }
  }

  std::vector<TriageRule> rules;
  for (const auto& [key, rc] : counts) {
    if (rc.support < options.min_support) continue;
    const double confidence =
        static_cast<double>(rc.support) / static_cast<double>(rc.assessed);
    if (confidence < options.min_confidence) continue;
    TriageRule rule;
    rule.antecedent = key.first;
    rule.kpi = key.second;
    rule.support = rc.support;
    rule.assessed = rc.assessed;
    rule.confidence = confidence;
    rules.push_back(std::move(rule));
  }

  std::sort(rules.begin(), rules.end(),
            [](const TriageRule& a, const TriageRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              return std::tie(a.antecedent, a.kpi) <
                     std::tie(b.antecedent, b.kpi);
            });
  if (options.max_rules != 0 && rules.size() > options.max_rules) {
    rules.resize(options.max_rules);
  }
  return rules;
}

}  // namespace funnel::triage
