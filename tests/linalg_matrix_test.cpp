// Tests for the dense matrix/vector primitives.
#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace funnel::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.gaussian();
  }
  return m;
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, RowViewAndColCopy) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const auto row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
  const Vector col = m.col(0);
  EXPECT_EQ(col, (Vector{1.0, 3.0}));
  m.set_col(1, Vector{7.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
}

TEST(Matvec, KnownProduct) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(matvec(m, Vector{1.0, 1.0}), (Vector{3.0, 7.0}));
  EXPECT_EQ(matvec_transposed(m, Vector{1.0, 1.0}), (Vector{4.0, 6.0}));
}

TEST(Matvec, DimensionChecks) {
  const Matrix m(2, 3);
  EXPECT_THROW((void)matvec(m, Vector{1.0, 2.0}), InvalidArgument);
  EXPECT_THROW((void)matvec_transposed(m, Vector{1.0}), InvalidArgument);
}

TEST(Matmul, KnownProductAndIdentity) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_EQ(matmul(a, Matrix::identity(2)), a);
  EXPECT_EQ(matmul(Matrix::identity(2), a), a);
}

TEST(Transpose, Involution) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 7, rng);
  EXPECT_EQ(transpose(transpose(a)), a);
  EXPECT_EQ(transpose(a).rows(), 7u);
}

TEST(Gram, MatchesExplicitProducts) {
  Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  EXPECT_LT(max_abs_difference(gram_rows(a), matmul(a, transpose(a))), 1e-12);
  EXPECT_LT(max_abs_difference(gram_cols(a), matmul(transpose(a), a)), 1e-12);
}

TEST(DotNorm, Basics) {
  EXPECT_DOUBLE_EQ(dot(Vector{1.0, 2.0, 3.0}, Vector{4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(norm2(Vector{3.0, 4.0}), 5.0);
  EXPECT_THROW((void)dot(Vector{1.0}, Vector{1.0, 2.0}), InvalidArgument);
}

TEST(Normalize, UnitNormAndZeroVector) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(normalize(v), 5.0);
  EXPECT_NEAR(norm2(v), 1.0, 1e-15);
  Vector z{0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(z), 0.0);
  EXPECT_EQ(z, (Vector{0.0, 0.0}));
}

TEST(Axpy, AccumulatesScaled) {
  Vector y{1.0, 1.0};
  axpy(2.0, Vector{3.0, 4.0}, y);
  EXPECT_EQ(y, (Vector{7.0, 9.0}));
}

TEST(Distances, FrobeniusAndMaxAbs) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = a;
  b(1, 1) += 3.0;
  b(0, 0) -= 4.0;
  EXPECT_DOUBLE_EQ(frobenius_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(max_abs_difference(a, b), 4.0);
  EXPECT_DOUBLE_EQ(frobenius_distance(a, a), 0.0);
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ and matvec agrees with matmul for random shapes.
class MatrixAlgebraProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatrixAlgebraProperty, TransposeOfProductAndMatvecAgreement) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(k), rng);
  const Matrix b = random_matrix(static_cast<std::size_t>(k),
                                 static_cast<std::size_t>(n), rng);
  EXPECT_LT(max_abs_difference(transpose(matmul(a, b)),
                               matmul(transpose(b), transpose(a))),
            1e-12);
  // matvec against matmul with a 1-column matrix.
  Matrix x(static_cast<std::size_t>(n), 1);
  Vector xv(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < xv.size(); ++i) {
    xv[i] = rng.gaussian();
    x(i, 0) = xv[i];
  }
  const Matrix abx = matmul(matmul(a, b), x);
  const Vector abv = matvec(a, matvec(b, xv));
  for (std::size_t i = 0; i < abv.size(); ++i) {
    EXPECT_NEAR(abx(i, 0), abv[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixAlgebraProperty,
    ::testing::Values(std::tuple{2, 3, 4}, std::tuple{5, 5, 5},
                      std::tuple{1, 7, 2}, std::tuple{9, 2, 9},
                      std::tuple{6, 1, 3}));

}  // namespace
}  // namespace funnel::linalg
