// Tests for the persistent segment store (src/tsdb/persist): WAL framing
// and torn-tail recovery at every byte offset, dirty-feed replay through
// upsert_at, segment round-trips and merges, the checkpoint/recover cycle,
// background compaction, cold (out-of-core) reads, and the StorageError
// exit contract. The on-disk format under test is docs/STORAGE.md.
#include "tsdb/persist/backend.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "tsdb/persist/format.h"
#include "tsdb/persist/segment.h"
#include "tsdb/persist/wal.h"
#include "tsdb/store.h"

namespace funnel::tsdb::persist {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory under the gtest temp root.
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("persist_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Element-wise equality where NaN == NaN (a stored gap must survive the
// round-trip as a gap).
void expect_values_eq(const std::vector<double>& got,
                      const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << "index " << i;
    } else {
      EXPECT_EQ(got[i], want[i]) << "index " << i;
    }
  }
}

WalRecord sample_record(const std::string& server, const std::string& kpi,
                        MinuteTime t, double v) {
  WalRecord r;
  r.type = WalRecordType::kSample;
  r.metric = server_metric(server, kpi);
  r.minute = t;
  r.value = v;
  return r;
}

// ---------------------------------------------------------------------------
// WAL framing

TEST(Wal, RoundTripsRecordsInSeqOrder) {
  const fs::path dir = scratch("wal_roundtrip");
  const std::string path = (dir / "wal-000001.log").string();
  {
    WalWriter w(path, /*next_seq=*/1);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.log(sample_record("s1", "cpu", 10, 1.5)), 1u);
    EXPECT_EQ(w.log(sample_record("s2", "mem", 11, -2.25)), 2u);
    WalRecord watch;
    watch.type = WalRecordType::kWatch;
    watch.change_id = 42;
    EXPECT_EQ(w.log(watch), 3u);
    // NaN samples are legal WAL payloads (a collector can report a gap).
    EXPECT_EQ(
        w.log(sample_record("s1", "cpu", 12,
                            std::numeric_limits<double>::quiet_NaN())),
        4u);
    w.flush();
    EXPECT_EQ(w.next_seq(), 5u);
    EXPECT_EQ(w.records_written(), 4u);
  }

  const WalReadResult rr = read_wal(path);
  ASSERT_TRUE(rr.ok);
  EXPECT_EQ(rr.skipped_bytes, 0u);
  ASSERT_EQ(rr.records.size(), 4u);
  EXPECT_EQ(rr.records[0].seq, 1u);
  EXPECT_EQ(rr.records[0].metric, server_metric("s1", "cpu"));
  EXPECT_EQ(rr.records[0].minute, 10);
  EXPECT_EQ(rr.records[0].value, 1.5);
  EXPECT_EQ(rr.records[1].value, -2.25);
  EXPECT_EQ(rr.records[2].type, WalRecordType::kWatch);
  EXPECT_EQ(rr.records[2].change_id, 42u);
  EXPECT_TRUE(std::isnan(rr.records[3].value));

  // A missing file is a legal crash window, not an error.
  const WalReadResult missing = read_wal((dir / "nope.log").string());
  EXPECT_FALSE(missing.ok);
  EXPECT_TRUE(missing.records.empty());
}

TEST(Wal, TornTailRecoversExactPrefixAtEveryByteOffset) {
  const fs::path dir = scratch("wal_torn");
  const std::string path = (dir / "wal-000001.log").string();
  // Varying payload sizes so the truncation sweep crosses string fields.
  const std::vector<WalRecord> records = {
      sample_record("s1", "cpu", 100, 1.0),
      sample_record("server-with-long-name", "kpi_with_long_name", 101, 2.0),
      sample_record("s2", "m", 102, 3.0),
  };
  {
    WalWriter w(path, 1);
    for (const WalRecord& r : records) w.log(r);
  }
  const std::string full = slurp(path);
  ASSERT_FALSE(full.empty());
  ASSERT_EQ(read_wal(path).records.size(), 3u);

  // Byte length of the first two framed records = where the last one starts.
  WalRecord last = records[2];
  last.seq = 3;
  const std::size_t prefix = full.size() - encode_wal_record(last).size();

  // Truncate at every byte offset of the final record: the reader must
  // recover exactly the two-record prefix and account for every dangling
  // byte — no over-read, no silent loss.
  const fs::path torn = dir / "torn.log";
  for (std::size_t cut = prefix; cut < full.size(); ++cut) {
    spit(torn, full.substr(0, cut));
    const WalReadResult rr = read_wal(torn.string());
    ASSERT_TRUE(rr.ok) << "cut=" << cut;
    EXPECT_EQ(rr.records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(rr.valid_bytes, prefix) << "cut=" << cut;
    EXPECT_EQ(rr.skipped_bytes, cut - prefix) << "cut=" << cut;
  }
}

TEST(Wal, CorruptMidFileStopsAtTheDamage) {
  const fs::path dir = scratch("wal_corrupt");
  const std::string path = (dir / "wal-000001.log").string();
  {
    WalWriter w(path, 1);
    for (int i = 0; i < 8; ++i) {
      w.log(sample_record("s1", "cpu", 100 + i, i));
    }
  }
  std::string bytes = slurp(path);
  WalRecord first = sample_record("s1", "cpu", 100, 0);
  first.seq = 1;
  const std::size_t one = encode_wal_record(first).size();
  bytes[one + 12] ^= 0x5a;  // flip a payload byte of record 2
  spit(path, bytes);

  const WalReadResult rr = read_wal(path);
  ASSERT_TRUE(rr.ok);
  EXPECT_EQ(rr.records.size(), 1u);
  EXPECT_EQ(rr.valid_bytes, one);
  EXPECT_EQ(rr.skipped_bytes, bytes.size() - one);
}

// ---------------------------------------------------------------------------
// Segments

TEST(Segment, RoundTripsSparseColumnsAndWindows) {
  const fs::path dir = scratch("segment");
  const std::string path = (dir / "seg-000001.seg").string();
  SegmentColumn a;
  a.metric = server_metric("s1", "cpu");
  a.lo = 100;
  a.hi = 110;  // minutes 103/107 missing: stored sparsely
  a.minutes = {100, 101, 102, 104, 105, 106, 108, 109};
  a.values = {1, 2, 3, 5, 6, 7, 9, 10};
  SegmentColumn b;
  b.metric = server_metric("s2", "mem");
  b.lo = 50;
  b.hi = 53;
  b.minutes = {50, 51, 52};
  b.values = {-1.5, 0.0, 1.5};
  const std::vector<SegmentColumn> cols = {a, b};
  const std::uint64_t bytes = write_segment(path, /*epoch=*/7, cols);
  EXPECT_EQ(bytes, fs::file_size(path));

  SegmentReader reader(path);
  EXPECT_EQ(reader.epoch(), 7u);
  ASSERT_EQ(reader.entries().size(), 2u);
  const auto* ea = reader.find(a.metric);
  ASSERT_NE(ea, nullptr);
  EXPECT_EQ(ea->lo, 100);
  EXPECT_EQ(ea->hi, 110);
  EXPECT_EQ(ea->count, 8u);
  EXPECT_EQ(reader.find(server_metric("nope", "x")), nullptr);

  // Window overlay honors the sparse holes and the [t0, t1) bounds.
  std::vector<double> out(6, std::numeric_limits<double>::quiet_NaN());
  reader.read_into(*ea, 102, 108, out);
  EXPECT_EQ(out[0], 3.0);
  EXPECT_TRUE(std::isnan(out[1]));  // minute 103 was a gap
  EXPECT_EQ(out[2], 5.0);
  EXPECT_EQ(out[4], 7.0);
  EXPECT_TRUE(std::isnan(out[5]));  // minute 107 was a gap too
}

TEST(Segment, MergeOverlaysNewestSegmentOverOldest) {
  const fs::path dir = scratch("segment_merge");
  SegmentColumn old_col;
  old_col.metric = server_metric("s1", "cpu");
  old_col.lo = 100;
  old_col.hi = 105;
  old_col.minutes = {100, 101, 102, 104};
  old_col.values = {1, 2, 3, 5};
  SegmentColumn new_col;  // overlapping late fill: plugs minute 103
  new_col.metric = old_col.metric;
  new_col.lo = 103;
  new_col.hi = 107;
  new_col.minutes = {103, 105, 106};
  new_col.values = {4, 6, 7};

  const std::string p1 = (dir / "seg-000001.seg").string();
  const std::string p2 = (dir / "seg-000002.seg").string();
  write_segment(p1, 1, std::vector<SegmentColumn>{old_col});
  write_segment(p2, 2, std::vector<SegmentColumn>{new_col});
  SegmentReader r1(p1), r2(p2);
  const std::vector<const SegmentReader*> readers = {&r1, &r2};
  const std::vector<SegmentColumn> merged = merge_segments(readers);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].lo, 100);
  EXPECT_EQ(merged[0].hi, 107);
  const std::vector<MinuteTime> want_m = {100, 101, 102, 103, 104, 105, 106};
  const std::vector<double> want_v = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(merged[0].minutes, want_m);
  EXPECT_EQ(merged[0].values, want_v);
}

TEST(Segment, CorruptFooterThrowsStorageError) {
  const fs::path dir = scratch("segment_corrupt");
  const std::string path = (dir / "seg-000001.seg").string();
  SegmentColumn c;
  c.metric = server_metric("s1", "cpu");
  c.lo = 0;
  c.hi = 2;
  c.minutes = {0, 1};
  c.values = {1, 2};
  write_segment(path, 1, std::vector<SegmentColumn>{c});
  std::string bytes = slurp(path);
  bytes[bytes.size() - 30] ^= 0xff;  // damage the footer region
  spit(path, bytes);
  EXPECT_THROW(SegmentReader reader(path), StorageError);
}

// ---------------------------------------------------------------------------
// MetricStore integration

StoreOptions persistent_options(const fs::path& dir) {
  StoreOptions o;
  o.data_dir = dir.string();
  return o;
}

TEST(PersistentStore, DirtyFeedReplayMatchesInMemoryStore) {
  const fs::path dir = scratch("dirty_replay");
  MetricStore reference;  // in-memory twin fed the identical dirty stream
  const MetricId id = server_metric("s1", "cpu");
  // Dups, reordering, gaps and a late fill — every upsert_at outcome.
  const std::vector<std::pair<MinuteTime, double>> feed = {
      {100, 1.0}, {101, 2.0}, {104, 5.0},  // gap at 102/103
      {101, 99.0},                         // duplicate: first write wins
      {103, 4.0},                          // late fill into the gap
      {99, 42.0},                          // too old: dropped
      {105, 6.0},
  };
  {
    MetricStore store(persistent_options(dir));
    ASSERT_TRUE(store.persistent());
    for (const auto& [t, v] : feed) {
      store.append(id, t, v);
      reference.append(id, t, v);
    }
  }  // destructor drains the WAL

  MetricStore recovered(persistent_options(dir));
  EXPECT_EQ(recovered.recovered_tail().size(), feed.size());
  recovered.read(id, [&](const TimeSeries& got) {
    reference.read(id, [&](const TimeSeries& want) {
      EXPECT_EQ(got.start_time(), want.start_time());
      EXPECT_EQ(got.end_time(), want.end_time());
      expect_values_eq(got.slice(got.start_time(), got.end_time()),
                       want.slice(want.start_time(), want.end_time()));
    });
  });
}

TEST(PersistentStore, CheckpointRecoverRoundTripsStateAndMetadata) {
  const fs::path dir = scratch("checkpoint");
  const MetricId a = server_metric("s1", "cpu");
  const MetricId b = server_metric("s2", "mem");
  {
    MetricStore store(persistent_options(dir));
    for (MinuteTime t = 0; t < 50; ++t) {
      if (t != 45) store.append(a, t, static_cast<double>(t));
      store.append(b, t, -static_cast<double>(t));
    }
    store.checkpoint("watch-blob", /*journal_events=*/7);
    EXPECT_EQ(store.segment_count(), 1u);
    // Post-checkpoint tail plus a late fill at minute 45 — *below* the
    // flush frontier: the dirty mark must pull the next checkpoint's cut
    // back down so the fill is not stranded in a dropped WAL.
    for (MinuteTime t = 50; t < 60; ++t) store.append(a, t, 1000.0 + t);
    store.append(a, 45, 4545.0);
  }

  MetricStore store(persistent_options(dir));
  EXPECT_EQ(store.recovered_watch_state(), "watch-blob");
  EXPECT_EQ(store.recovered_journal_events(), 7u);
  // Tail = the 11 post-checkpoint appends (the first 99 are in segments).
  EXPECT_EQ(store.recovered_tail().size(), 11u);
  EXPECT_EQ(store.recovered_seq(), 110u);
  store.read(a, [](const TimeSeries& s) {
    ASSERT_EQ(s.start_time(), 0);
    ASSERT_EQ(s.end_time(), 60);
    EXPECT_EQ(s.at(44), 44.0);
    EXPECT_EQ(s.at(45), 4545.0);
    EXPECT_EQ(s.at(59), 1059.0);
  });
  // Second-generation checkpoint + recovery: the re-flushed cut includes
  // the late fill, even though its WAL generation is gone.
  store.checkpoint();
  MetricStore third(persistent_options(dir));
  EXPECT_EQ(third.recovered_tail().size(), 0u);
  third.read(a, [](const TimeSeries& s) {
    EXPECT_EQ(s.at(45), 4545.0);
    EXPECT_EQ(s.at(59), 1059.0);
  });
}

TEST(PersistentStore, CrashLosesOnlyUnflushedTailAndRecoversCleanly) {
  const fs::path dir = scratch("crash");
  const MetricId id = server_metric("s1", "cpu");
  {
    MetricStore store(persistent_options(dir));
    for (MinuteTime t = 0; t < 30; ++t) {
      store.append(id, t, static_cast<double>(t));
    }
    store.wal_flush();
    store.crash_for_testing();
    // Appends after the kill exist only in memory; recovery must not see
    // them.
    store.append(id, 30, 999.0);
  }
  // Simulate a torn final frame on top of the kill: half a record of
  // garbage appended to the WAL.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) {
      WalRecord r = sample_record("s1", "cpu", 31, 7.0);
      r.seq = 31;
      const std::string frame = encode_wal_record(r);
      std::ofstream out(entry.path(),
                        std::ios::binary | std::ios::app);
      out.write(frame.data(),
                static_cast<std::streamsize>(frame.size() / 2));
    }
  }

  MetricStore store(persistent_options(dir));
  EXPECT_EQ(store.recovered_tail().size(), 30u);
  EXPECT_GT(store.recovered_wal_skipped_bytes(), 0u);
  store.read(id, [](const TimeSeries& s) {
    EXPECT_EQ(s.end_time(), 30);
    EXPECT_EQ(s.at(29), 29.0);
  });
  // The recovered store keeps appending where the WAL left off.
  store.append(id, 30, 30.0);
  store.checkpoint();
  MetricStore again(persistent_options(dir));
  again.read(id, [](const TimeSeries& s) { EXPECT_EQ(s.at(30), 30.0); });
}

TEST(PersistentStore, CorruptCheckpointThrowsStorageError) {
  const fs::path dir = scratch("corrupt_checkpoint");
  {
    MetricStore store(persistent_options(dir));
    store.append(server_metric("s1", "cpu"), 0, 1.0);
    store.checkpoint();
  }
  const fs::path ckp = dir / "checkpoint";
  ASSERT_TRUE(fs::exists(ckp));
  std::string bytes = slurp(ckp);
  bytes[bytes.size() / 2] ^= 0xff;
  spit(ckp, bytes);
  EXPECT_THROW(MetricStore store(persistent_options(dir)), StorageError);

  // A referenced-but-missing segment is equally fatal (damage beyond the
  // WAL's torn-tail tolerance must never be silently dropped).
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    MetricStore store(persistent_options(dir));
    store.append(server_metric("s1", "cpu"), 0, 1.0);
    store.checkpoint();
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) fs::remove(entry.path());
  }
  EXPECT_THROW(MetricStore store(persistent_options(dir)), StorageError);
}

TEST(PersistentStore, StrayFilesAreDeletedOnRecovery) {
  const fs::path dir = scratch("strays");
  {
    MetricStore store(persistent_options(dir));
    store.append(server_metric("s1", "cpu"), 0, 1.0);
    store.checkpoint();
  }
  // Files no checkpoint references: a half-published segment, an orphaned
  // WAL generation, an in-flight tmp.
  spit(dir / "seg-999999.seg", "junk");
  spit(dir / "wal-999999.log", "junk");
  spit(dir / "checkpoint.tmp", "junk");
  MetricStore store(persistent_options(dir));
  EXPECT_FALSE(fs::exists(dir / "seg-999999.seg"));
  EXPECT_FALSE(fs::exists(dir / "wal-999999.log"));
  EXPECT_FALSE(fs::exists(dir / "checkpoint.tmp"));
  store.read(server_metric("s1", "cpu"),
             [](const TimeSeries& s) { EXPECT_EQ(s.at(0), 1.0); });
}

TEST(PersistentStore, CompactionMergesOverlappingSegments) {
  const fs::path dir = scratch("compaction");
  StoreOptions options = persistent_options(dir);
  options.compact_threshold = 2;
  const MetricId id = server_metric("s1", "cpu");
  MetricStore store(options);
  // Each cycle checkpoints a fresh slice; threshold 2 kicks the background
  // merge, which the *next* checkpoint adopts.
  MinuteTime t = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (MinuteTime end = t + 20; t < end; ++t) {
      store.append(id, t, static_cast<double>(t));
    }
    store.checkpoint();
  }
  // Merges run on a background thread and are adopted by the *next*
  // checkpoint; keep checkpointing (empty cuts — no new segments) until
  // the whole overlapping pile has collapsed into one file.
  for (int i = 0; i < 400 && store.segment_count() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    store.checkpoint();
  }
  EXPECT_GE(store.compactions(), 1u);
  EXPECT_EQ(store.segment_count(), 1u);
  store.read(id, [&](const TimeSeries& s) {
    ASSERT_EQ(s.end_time(), t);
    for (MinuteTime m = 0; m < t; ++m) {
      ASSERT_EQ(s.at(m), static_cast<double>(m)) << "minute " << m;
    }
  });
}

TEST(PersistentStore, ColdReadsMatchHydratedReads) {
  const fs::path dir = scratch("cold");
  const MetricId a = server_metric("s1", "cpu");
  const MetricId b = server_metric("s2", "mem");
  {
    MetricStore store(persistent_options(dir));
    for (MinuteTime t = 0; t < 200; ++t) {
      store.append(a, t, std::sin(static_cast<double>(t)));
      if (t % 3 != 0) store.append(b, t, static_cast<double>(t) * 0.5);
    }
    store.checkpoint();
    for (MinuteTime t = 200; t < 230; ++t) {
      store.append(a, t, std::sin(static_cast<double>(t)));
    }
  }

  MetricStore hot(persistent_options(dir));
  StoreOptions cold_options = persistent_options(dir);
  cold_options.cold_reads = true;
  MetricStore cold(cold_options);

  EXPECT_EQ(hot.metric_count(), cold.metric_count());
  EXPECT_EQ(hot.metrics(), cold.metrics());
  EXPECT_TRUE(cold.has(a));
  EXPECT_TRUE(cold.has(b));
  for (const MetricId& id : {a, b}) {
    hot.read(id, [&](const TimeSeries& want) {
      cold.read(id, [&](const TimeSeries& got) {
        EXPECT_EQ(got.start_time(), want.start_time());
        EXPECT_EQ(got.end_time(), want.end_time());
        expect_values_eq(got.slice(got.start_time(), got.end_time()),
                         want.slice(want.start_time(), want.end_time()));
      });
    });
  }
  // query() windows spanning the segment/hot-tail boundary agree too.
  const auto want_q = hot.query(a, 150, 220);
  const auto got_q = cold.query(a, 150, 220);
  ASSERT_EQ(want_q.size(), got_q.size());
  for (std::size_t i = 0; i < want_q.size(); ++i) {
    EXPECT_EQ(want_q[i], got_q[i]) << i;
  }
}

TEST(PersistentStore, InMemoryStoreKeepsLegacyBehavior) {
  MetricStore store;  // no data_dir
  EXPECT_FALSE(store.persistent());
  EXPECT_TRUE(store.recovered_tail().empty());
  EXPECT_EQ(store.recovered_seq(), 0u);
  EXPECT_EQ(store.recovered_watch_state(), "");
  store.append(server_metric("s1", "cpu"), 0, 1.0);
  store.checkpoint("ignored", 9);  // must be a no-op, not a crash
  store.wal_flush();
  EXPECT_EQ(store.wal_records_written(), 0u);
  EXPECT_EQ(store.segment_count(), 0u);
}

}  // namespace
}  // namespace funnel::tsdb::persist
