#include "detect/week_over_week.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"

namespace funnel::detect {

std::vector<double> wow_score_series(std::span<const double> series,
                                     const WeekOverWeekParams& params) {
  FUNNEL_REQUIRE(params.season >= 1, "season must be positive");
  FUNNEL_REQUIRE(params.compare >= 2, "compare block too small");
  const auto season = static_cast<std::size_t>(params.season);
  const std::size_t m = params.compare;

  std::vector<double> out(series.size(),
                          std::numeric_limits<double>::quiet_NaN());
  if (series.size() < season + m) return out;

  for (std::size_t end = season + m - 1; end < series.size(); ++end) {
    const std::span<const double> now =
        series.subspan(end + 1 - m, m);
    const std::span<const double> then =
        series.subspan(end + 1 - m - season, m);
    if (!all_finite(now) || !all_finite(then)) continue;
    double scale = mad_sigma(then);
    if (scale <= 0.0) scale = stddev(then);
    if (scale <= 0.0) scale = 1.0;
    out[end] = std::abs(median(now) - median(then)) / scale;
  }
  return out;
}

}  // namespace funnel::detect
