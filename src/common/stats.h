// Robust and classical descriptive statistics used throughout FUNNEL.
//
// The paper (§3.2.2) replaces mean/stddev with median/MAD because the former
// are not robust in the presence of level shifts and outliers; these helpers
// are the single implementation every module shares.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace funnel {

/// Arithmetic mean. Returns 0 for empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Median (average of middle two for even n). Throws InvalidArgument on
/// empty input. Copies the input; does not reorder the caller's data.
double median(std::span<const double> xs);

/// Median absolute deviation about the median: median(|x - median(x)|).
/// Not scaled by the 1.4826 Gaussian consistency factor; callers that need
/// a sigma estimate should use `mad_sigma`.
double mad(std::span<const double> xs);

/// MAD scaled to be a consistent estimator of sigma for Gaussian data.
double mad_sigma(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Throws on empty input.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient. Returns 0 when either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Min/max convenience (throw on empty input).
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Standardize a copy of `xs` to zero median and unit MAD-sigma; falls back
/// to mean/stddev when MAD is zero, and to pure centering when both scales
/// vanish (constant series).
std::vector<double> robust_standardize(std::span<const double> xs);

/// True when every element is finite.
bool all_finite(std::span<const double> xs);

/// Empirical CCDF evaluated at each point of `grid`:
/// ccdf[i] = fraction of xs strictly greater than grid[i].
std::vector<double> ccdf(std::span<const double> xs, std::span<const double> grid);

}  // namespace funnel
