// CUSUM baseline (MERCURY, Mahimkar et al. SIGCOMM'10).
//
// Per window of W samples: the leading half estimates the baseline
// mean/scale, the trailing half is standardized against it and run through a
// two-sided cumulative-sum statistic. The score is that raw max-CUSUM
// statistic, gated by a bootstrap significance test (the trailing half is
// permuted B times; a statistic that fewer than `significance` of the
// permutations stay below scores 0). Alarm thresholds are therefore in
// accumulated-sigma units — and a high best-accuracy threshold is exactly
// what gives CUSUM its long detection delay (Fig. 5): the sum needs
// threshold/(shift - slack) post-change minutes to grow past it.
//
// The other documented weaknesses are reproduced too: within-window seasonal
// trends look like mean shifts (low precision on seasonal KPIs, Table 1) and
// the bootstrap makes each window expensive (Table 2).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "detect/scorer.h"

namespace funnel::detect {

struct CusumParams {
  std::size_t window = 60;       ///< W_CUSUM in the paper's evaluation
  double slack = 0.5;            ///< k: drift allowance in sigma units
  std::size_t bootstrap = 200;   ///< permutations per window
  double significance = 0.95;    ///< bootstrap rank needed to report at all
  std::uint64_t seed = 0xC05Au;  ///< bootstrap RNG seed
};

class Cusum final : public ChangeScorer {
 public:
  explicit Cusum(CusumParams params = {});

  std::size_t window_size() const override { return params_.window; }
  std::size_t change_offset() const override { return params_.window / 2; }
  double score(std::span<const double> window) override;
  const char* name() const override { return "cusum"; }

  const CusumParams& params() const { return params_; }

  /// The raw (un-bootstrapped) two-sided max-CUSUM statistic of a
  /// standardized sequence — exposed for tests.
  static double max_cusum(std::span<const double> z, double slack);

 private:
  CusumParams params_;
  Rng rng_;
};

}  // namespace funnel::detect
