// One tenant of the multi-tenant service mode (docs/SERVICE.md).
//
// A Tenant is a fully isolated FUNNEL pipeline: its own topology, change
// log, MetricStore (own shards + own bounded ingest queue, optionally
// persisted under its own data_dir subtree), FunnelOnline assessor and
// verdict journal. Nothing is shared with other tenants except the process
// and the optional telemetry registry — which is why one tenant's dirty
// feed, store error or quota exhaustion can never alter another tenant's
// verdict bytes (service_test proves it byte-for-byte).
//
// Threading (docs/CONCURRENCY.md, "Service plane"): every mutating entry
// point REQUIRES the tenant mutex, which the FunnelService acquires with
// try_lock so a busy tenant answers 429 instead of pinning an HTTP worker.
// Under the lock the tenant is single-producer: samples append in request
// order, so with a persistent store the WAL sequence numbers align 1:1 with
// the client's action stream — the soak harness resumes exactly at
// recovered_seq() after a SIGKILL (the funnel_persist_replay_test protocol,
// docs/STORAGE.md §6).
//
// Degradation: a batch carrying more than max_malformed_per_batch broken
// lines, or any persist::StorageError, quarantines the tenant — active
// watches force-finalize (undetermined alarms become Cause::kInconclusive
// with the machine-readable kWatchTimedOut reason), further ingest is
// refused with the stored reason, and /healthz carries a failing
// "tenant:<name>" check. Other tenants keep serving.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "changes/change_log.h"
#include "funnel/config.h"
#include "funnel/online.h"
#include "obs/journal.h"
#include "service/quota.h"
#include "topology/topology.h"
#include "tsdb/store.h"

namespace funnel::service {

struct TenantOptions {
  std::string name;

  /// Store shape: per-tenant shards and bounded MPSC ingest queue
  /// (0 = synchronous dispatch on the ingesting thread).
  std::size_t num_shards = 2;
  std::size_t ingest_queue_capacity = 256;
  tsdb::Backpressure backpressure = tsdb::Backpressure::kBlock;

  QuotaConfig quota;

  /// Quarantine when one ingest batch carries more than this many
  /// malformed lines — the dirty-feed tripwire.
  std::size_t max_malformed_per_batch = 64;

  /// Per-tenant persistence root (WAL + segments + meta.log +
  /// journal.jsonl). Empty = fully in-memory.
  std::string data_dir;

  /// Verdict-journal path override; defaults to <data_dir>/journal.jsonl,
  /// or no journal when both are empty.
  std::string journal_path;

  /// Assessor configuration. stats/journal sinks are wired by the Tenant;
  /// num_shards/ingest_queue_capacity in here are ignored (the store shape
  /// comes from the fields above).
  core::FunnelConfig funnel;
};

struct IngestResult {
  std::size_t accepted = 0;   ///< samples appended (and WAL-logged)
  std::size_t malformed = 0;  ///< lines dropped by the parser
  bool quarantined = false;   ///< this batch tripped (or hit) quarantine
};

class Tenant {
 public:
  /// Construction recovers from data_dir when one is set: replay meta.log
  /// (topology + change registrations, in original order so ChangeIds are
  /// stable), repair the journal to the checkpoint's event count, restore
  /// watch state, then replay the WAL tail. A recovery StorageError does
  /// not throw — the tenant comes up in-memory and quarantined, so the
  /// daemon keeps serving its healthy tenants.
  explicit Tenant(TenantOptions options,
                  const obs::Registry* stats = nullptr);
  ~Tenant();

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& name() const { return options_.name; }

  /// The tenant mutex every mutating call below requires. FunnelService
  /// try_locks it (busy tenants shed with 429 instead of queueing).
  std::mutex& mutex() { return mutex_; }

  /// Admission for an n-sample batch at monotonic `now_s` (REQUIRES lock):
  /// token bucket first, then the queue-share cap. On refusal
  /// `*retry_after_s` is the suggested client backoff.
  bool admit(std::size_t n, double now_s, double* retry_after_s);

  /// Replace the quota (SIGHUP reload path; REQUIRES lock).
  void update_quota(const QuotaConfig& quota);

  /// Ingest newline-delimited samples (REQUIRES lock):
  ///   service,server,kpi,minute,value
  /// Value "nan" / empty = NaN (a delivered-but-broken reading). Unknown
  /// servers auto-join the tenant topology (durably, via meta.log).
  /// Malformed lines are counted, not fatal — unless one batch exceeds
  /// max_malformed_per_batch, which quarantines.
  IngestResult ingest(std::string_view body);

  /// Register + watch changes, one per line (REQUIRES lock):
  ///   time,service,mode,servers,description
  /// mode "dark"|"full"; servers ';'-separated or "*" (all servers of the
  /// service). Registration is idempotent on (service, time, description):
  /// a re-sent line reuses the recorded ChangeId, and re-watches only when
  /// no watch marker for it survived — which keeps WAL sequence alignment
  /// exact across crash/resume (docs/SERVICE.md, "Crash recovery").
  /// Returns the ChangeIds in line order; parse failures count into
  /// `*malformed` when non-null.
  std::vector<changes::ChangeId> register_changes(
      std::string_view body, std::size_t* malformed = nullptr);

  /// Finalized-report JSON for this tenant (REQUIRES lock; flushes the
  /// store so every delivered sample's verdicts are in). Deterministic
  /// bytes: reports render in ChangeId order via core::to_json.
  std::string report_json();

  /// One-line status JSON (REQUIRES lock): counters, seq, quarantine.
  std::string status_json();

  /// flush + checkpoint(watch snapshot, journal event count); no-op for an
  /// in-memory tenant (REQUIRES lock).
  void checkpoint();

  /// flush + FunnelOnline::expire(now): force-finalize gap-starved watches
  /// (REQUIRES lock). Returns watches finalized.
  std::size_t maintenance(MinuteTime now);

  /// Enter quarantine (REQUIRES lock; idempotent — the first reason
  /// sticks): force-finalize all watches, checkpoint, refuse later ingest.
  void quarantine(std::string reason);

  bool quarantined() const { return quarantined_; }
  const std::string& quarantine_reason() const { return quarantine_reason_; }

  /// WAL seq recovered at construction — the client's resume index (0 for
  /// a fresh or in-memory tenant).
  std::uint64_t recovered_seq() const { return recovered_seq_; }
  /// WAL-visible actions applied over the tenant's lifetime (recovered +
  /// live samples + live watch registrations).
  std::uint64_t applied_seq() const { return applied_seq_; }

  std::uint64_t accepted_samples() const { return accepted_samples_; }
  std::uint64_t malformed_lines() const { return malformed_lines_; }
  std::uint64_t quota_rejections() const { return quota_rejections_; }
  std::uint64_t busy_rejections() const { return busy_rejections_; }
  void count_quota_rejection() { ++quota_rejections_; }
  void count_busy_rejection() { ++busy_rejections_; }

  /// Active watches (REQUIRES lock; flushes first).
  std::size_t active_watches();

  const std::string& journal_path() const { return journal_path_; }
  tsdb::MetricStore& store() { return *store_; }
  core::FunnelOnline& online() { return *online_; }
  const TenantOptions& options() const { return options_; }

 private:
  void open_fresh();
  void recover();
  void wire_online();
  void meta_append(const std::string& line);
  void replay_meta();
  /// Quiesce the dispatcher once per batch before the first topology /
  /// change-log mutation: callbacks running on the dispatcher thread read
  /// topo_/log_ and must not race a writer (docs/CONCURRENCY.md).
  void quiesce_for_mutation(bool* done);

  TenantOptions options_;
  const obs::Registry* stats_;
  std::mutex mutex_;

  topology::ServiceTopology topo_;
  changes::ChangeLog log_;
  std::unique_ptr<tsdb::MetricStore> store_;
  std::unique_ptr<obs::Journal> journal_;
  std::unique_ptr<core::FunnelOnline> online_;
  std::string journal_path_;
  std::FILE* meta_ = nullptr;

  TokenBucket bucket_;
  double queue_share_ = 1.0;

  /// Changes ever watched in this store's WAL history (snapshot + tail
  /// markers + journaled verdicts) — the dedup set behind idempotent
  /// re-registration.
  std::set<changes::ChangeId> watched_;
  /// (service, time, description) -> id: idempotent registration key.
  std::map<std::tuple<std::string, MinuteTime, std::string>,
           changes::ChangeId>
      change_index_;

  std::mutex report_mutex_;  ///< guards reports_ (written on dispatcher)
  std::map<changes::ChangeId, std::string> reports_;

  bool quarantined_ = false;
  std::string quarantine_reason_;

  std::uint64_t recovered_seq_ = 0;
  std::uint64_t applied_seq_ = 0;
  /// Journal events already in the file when this incarnation opened it
  /// (append mode after recovery). Checkpoints record journal_base_ +
  /// journal_->written() so repair_journal() keeps the full prefix.
  std::uint64_t journal_base_ = 0;
  std::uint64_t accepted_samples_ = 0;
  std::uint64_t malformed_lines_ = 0;
  std::uint64_t quota_rejections_ = 0;
  std::uint64_t busy_rejections_ = 0;
  MinuteTime max_minute_ = 0;
};

}  // namespace funnel::service
