#include "evalkit/metrics.h"

#include <sstream>

namespace funnel::evalkit {

void ConfusionMatrix::add(bool truth, bool predicted, std::uint64_t weight) {
  if (truth && predicted) {
    tp += weight;
  } else if (truth && !predicted) {
    fn += weight;
  } else if (!truth && predicted) {
    fp += weight;
  } else {
    tn += weight;
  }
}

ConfusionMatrix& ConfusionMatrix::operator+=(const ConfusionMatrix& other) {
  tp += other.tp;
  tn += other.tn;
  fp += other.fp;
  fn += other.fn;
  return *this;
}

ConfusionMatrix ConfusionMatrix::scaled(std::uint64_t factor) const {
  return {tp * factor, tn * factor, fp * factor, fn * factor};
}

double ConfusionMatrix::precision() const {
  const std::uint64_t denom = tp + fp;
  return denom == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const std::uint64_t denom = tp + fn;
  return denom == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::tnr() const {
  const std::uint64_t denom = tn + fp;
  return denom == 0 ? 1.0 : static_cast<double>(tn) / static_cast<double>(denom);
}

double ConfusionMatrix::accuracy() const {
  const std::uint64_t t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "tp=" << tp << " tn=" << tn << " fp=" << fp << " fn=" << fn;
  return os.str();
}

}  // namespace funnel::evalkit
