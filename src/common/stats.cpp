#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace funnel {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(n - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  FUNNEL_REQUIRE(!xs.empty(), "median of empty range");
  std::vector<double> buf(xs.begin(), xs.end());
  const std::size_t mid = buf.size() / 2;
  std::nth_element(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(mid), buf.end());
  double hi = buf[mid];
  if (buf.size() % 2 == 1) return hi;
  const double lo = *std::max_element(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mad(std::span<const double> xs) {
  const double med = median(xs);
  std::vector<double> dev(xs.size());
  std::transform(xs.begin(), xs.end(), dev.begin(),
                 [med](double x) { return std::abs(x - med); });
  return median(dev);
}

double mad_sigma(std::span<const double> xs) { return 1.4826 * mad(xs); }

double quantile(std::span<const double> xs, double q) {
  FUNNEL_REQUIRE(!xs.empty(), "quantile of empty range");
  FUNNEL_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level outside [0,1]");
  std::vector<double> buf(xs.begin(), xs.end());
  std::sort(buf.begin(), buf.end());
  if (buf.size() == 1) return buf.front();
  const double pos = q * static_cast<double>(buf.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, buf.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return buf[lo] * (1.0 - frac) + buf[hi] * frac;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  FUNNEL_REQUIRE(xs.size() == ys.size(), "correlation requires equal lengths");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double min_value(std::span<const double> xs) {
  FUNNEL_REQUIRE(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  FUNNEL_REQUIRE(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> robust_standardize(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  if (out.empty()) return out;
  const double center = median(xs);
  double scale = mad_sigma(xs);
  if (scale <= 0.0) scale = stddev(xs);
  if (scale <= 0.0) scale = 1.0;
  for (double& x : out) x = (x - center) / scale;
  return out;
}

bool all_finite(std::span<const double> xs) {
  return std::all_of(xs.begin(), xs.end(),
                     [](double x) { return std::isfinite(x); });
}

std::vector<double> ccdf(std::span<const double> xs, std::span<const double> grid) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(grid.size());
  const double n = static_cast<double>(sorted.size());
  for (double g : grid) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), g);
    const auto greater = static_cast<double>(sorted.end() - it);
    out.push_back(n > 0 ? greater / n : 0.0);
  }
  return out;
}

}  // namespace funnel
