// The persistent half of a MetricStore: one data_dir, one WAL, a list of
// immutable segments, one checkpoint file naming exactly what is current.
//
// Directory contents (docs/STORAGE.md §4):
//   checkpoint        authoritative manifest: CRC-guarded, tmp+rename'd;
//                     names the live WAL file, the live segments (in overlay
//                     order), the WAL seq the segments cover, the journal
//                     event count, and the FunnelOnline watch snapshot
//   wal-NNNNNN.log    the live WAL (arrival-order record stream)
//   seg-NNNNNN.seg    immutable columnar segments
//   *.tmp             in-flight writes; never valid state
//
// Recovery trusts ONLY what the checkpoint references: open the listed
// segments (corruption there is fatal — StorageError), read the listed WAL
// tolerating a torn tail (truncate it to the valid prefix), delete every
// stray wal-/seg-/tmp file. That rule makes every crash window of the
// checkpoint protocol safe — a half-published segment or an already-written
// next-WAL simply does not exist until a checkpoint says so.
//
// Checkpoint protocol (caller quiesces producers first; MetricStore wraps
// this as MetricStore::checkpoint):
//   1. flush the WAL, capture the covered seq
//   2. adopt a finished background compaction, if any
//   3. write the unflushed cut of every series as a new segment (tmp+rename)
//   4. write the new checkpoint naming the NEXT WAL file (tmp+rename) —
//      this rename is the commit point
//   5. rotate the WAL to the named file; delete the old WAL and any
//      compacted-away segments
//
// Compaction runs on one background thread: it merges a snapshot of the
// current segment list into one file and parks the result; the NEXT
// checkpoint adopts it (swaps the list, deletes the inputs). The segment
// list therefore mutates only on the checkpointing thread, under a
// shared_mutex that cold readers hold shared — the whole locking story is
// three lines in docs/CONCURRENCY.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/minute_time.h"
#include "obs/registry.h"
#include "tsdb/metric.h"
#include "tsdb/persist/segment.h"
#include "tsdb/persist/wal.h"
#include "tsdb/series.h"

namespace funnel::tsdb::persist {

struct BackendOptions {
  std::string dir;
  std::size_t wal_queue_capacity = 4096;
  WalDurability durability = WalDurability::kFlush;
  /// Kick background compaction when the live segment count reaches this
  /// (0 disables compaction).
  std::size_t compact_threshold = 4;
};

class PersistBackend {
 public:
  /// Opens or recovers `options.dir`. Throws StorageError when the
  /// directory cannot be created/opened or holds damage beyond the WAL's
  /// torn-tail tolerance (corrupt checkpoint, corrupt/missing segment).
  explicit PersistBackend(const BackendOptions& options);
  ~PersistBackend();

  PersistBackend(const PersistBackend&) = delete;
  PersistBackend& operator=(const PersistBackend&) = delete;

  // --- Recovery products (fixed at construction) -------------------------

  /// WAL records found after the last checkpoint, in arrival (seq) order.
  const std::vector<WalRecord>& recovered_tail() const { return tail_; }
  /// Seq covered by the segments (records <= this are already flushed).
  std::uint64_t checkpoint_seq() const { return checkpoint_seq_; }
  /// FunnelOnline watch snapshot stored by the last checkpoint.
  const std::string& recovered_watch_state() const { return watch_state_; }
  /// Verdict-journal event count recorded by the last checkpoint.
  std::uint64_t recovered_journal_events() const { return journal_events_; }
  /// Torn-tail bytes truncated off the recovered WAL.
  std::uint64_t recovered_wal_skipped_bytes() const { return wal_skipped_; }

  // --- Cold (segment-resident) data --------------------------------------

  bool has_cold(const MetricId& id) const;
  /// Metrics present in any segment, ordered.
  std::vector<MetricId> cold_metrics() const;
  /// Segment-side range [lo, hi) of one metric, nullopt when absent.
  std::optional<std::pair<MinuteTime, MinuteTime>> cold_bounds(
      const MetricId& id) const;
  /// Overlay segment samples intersecting [t0, t1) onto `out` (out[k] is
  /// minute t0+k), ascending segment order so the newest value wins.
  /// Untouched minutes keep their prior content — pre-fill with NaN.
  void fill_window(const MetricId& id, MinuteTime t0, MinuteTime t1,
                   std::span<double> out) const;
  /// Full stitched series: segments overlaid in order, then the finite
  /// samples of `hot` (the in-memory tail; nullptr for segments only).
  /// Empty series when the metric exists nowhere.
  TimeSeries materialize(const MetricId& id, const TimeSeries* hot) const;

  // --- Runtime ------------------------------------------------------------

  /// Append one sample record to the WAL; returns its seq. Any thread.
  std::uint64_t log_sample(const MetricId& id, MinuteTime t, double value);
  /// Append one watch-registration marker; returns its seq. Any thread.
  std::uint64_t log_watch(std::uint64_t change_id);
  /// WAL durability barrier.
  void flush_wal();

  /// Record a late fill so the next checkpoint re-flushes from `t` — the
  /// source of overlapping segments (and the reason compaction exists).
  void note_dirty(const MetricId& id, MinuteTime t);

  /// First minute of `id` the next checkpoint must flush, given the series
  /// starts at `series_start`: its flush frontier, lowered by dirty marks.
  MinuteTime flush_cut(const MetricId& id, MinuteTime series_start) const;

  /// Run the checkpoint protocol (steps 1-5 above). `columns` is the
  /// unflushed cut, sorted by metric. Producers must be quiesced; see
  /// MetricStore::checkpoint for the caller-facing contract.
  void commit_checkpoint(std::vector<SegmentColumn> columns,
                         std::string watch_state,
                         std::uint64_t journal_events);

  /// Abandon the WAL queue and stop without draining — the simulated kill
  /// behind the replay-determinism test. After this, log/checkpoint no-op.
  void crash_for_testing();

  /// Telemetry (null detaches): wal.* from the writer, plus
  /// funnel.persist.checkpoints / segments_written / segment_bytes /
  /// compactions counters and a funnel.persist.segments gauge.
  void set_stats(const obs::Registry* stats);

  // --- Introspection (tests, bench) ---------------------------------------

  std::uint64_t wal_records_written() const { return wal_->records_written(); }
  std::uint64_t wal_bytes_written() const { return wal_->bytes_written(); }
  std::uint64_t wal_batches() const { return wal_->batches(); }
  std::size_t segment_count() const;
  std::uint64_t compactions() const;
  const std::string& dir() const { return dir_; }

 private:
  struct CompactionResult {
    std::string path;
    std::size_t replaced;  ///< prefix length of the list it merged
  };

  void recover(const BackendOptions& options);
  void compaction_main();
  void maybe_kick_compaction_locked();
  std::string wal_path(std::uint64_t counter) const;
  std::string segment_path(std::uint64_t epoch) const;

  std::string dir_;
  std::size_t compact_threshold_ = 4;

  // Recovery products.
  std::vector<WalRecord> tail_;
  std::uint64_t checkpoint_seq_ = 0;
  std::string watch_state_;
  std::uint64_t journal_events_ = 0;
  std::uint64_t wal_skipped_ = 0;

  // Live segment list in overlay (ascending-age) order. Mutated only inside
  // commit_checkpoint, under unique lock; cold readers hold shared.
  mutable std::shared_mutex segments_mutex_;
  std::vector<std::unique_ptr<SegmentReader>> segments_;

  // Flush frontiers + dirty marks (state_mutex_). flushed_hi_ is rebuilt
  // from segment footers at recovery.
  mutable std::mutex state_mutex_;
  std::map<MetricId, MinuteTime> flushed_hi_;
  std::map<MetricId, MinuteTime> dirty_low_;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t wal_counter_ = 1;
  bool crashed_ = false;

  std::unique_ptr<WalWriter> wal_;

  // Compaction worker: one job at a time, result parked for adoption.
  mutable std::mutex compact_mutex_;
  std::condition_variable compact_cv_;
  std::vector<const SegmentReader*> compact_job_;  ///< empty = no job
  std::uint64_t compact_epoch_ = 0;
  std::optional<CompactionResult> compact_result_;
  std::uint64_t compactions_done_ = 0;
  bool compact_stop_ = false;
  std::thread compact_thread_;  ///< last started, first joined

  std::atomic<const obs::Registry*> stats_{nullptr};
};

}  // namespace funnel::tsdb::persist
