#include "detect/mrls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"
#include "detect/sst_common.h"
#include "linalg/hankel.h"
#include "linalg/matrix.h"
#include "linalg/robust_pca.h"
#include "linalg/svd.h"

namespace funnel::detect {
namespace {

// Centered boxcar smoothing of width `scale` (clipped at the edges).
std::vector<double> smooth(std::span<const double> x, std::size_t scale) {
  if (scale <= 1) return {x.begin(), x.end()};
  std::vector<double> out(x.size());
  const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(scale) / 2;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - r);
    const std::ptrdiff_t hi = std::min(n - 1, i + r);
    double acc = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) acc += x[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

// Robust subspace of the columns of X by iteratively-reweighted SVD: columns
// with large reconstruction residuals are downweighted (l1-style Huber
// weights) and the SVD is recomputed — the expensive iteration at the heart
// of MRLS.
linalg::Matrix robust_subspace(const linalg::Matrix& x, std::size_t rank,
                               int iterations) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  rank = std::min(rank, std::min(m, n));

  std::vector<double> weights(n, 1.0);
  linalg::Matrix basis;
  for (int iter = 0; iter < iterations; ++iter) {
    // Weighted copy.
    linalg::Matrix xw(m, n);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < m; ++i) xw(i, j) = x(i, j) * weights[j];
    }
    const linalg::Svd svd = linalg::jacobi_svd(xw);
    basis = linalg::Matrix(m, rank);
    for (std::size_t k = 0; k < rank; ++k) {
      for (std::size_t i = 0; i < m; ++i) basis(i, k) = svd.u(i, k);
    }
    // Column residuals against the unweighted data.
    for (std::size_t j = 0; j < n; ++j) {
      const linalg::Vector col = x.col(j);
      const linalg::Vector coef = linalg::matvec_transposed(basis, col);
      linalg::Vector recon = linalg::matvec(basis, coef);
      double res = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const double d = col[i] - recon[i];
        res += d * d;
      }
      res = std::sqrt(res);
      weights[j] = 1.0 / std::sqrt(res + 1e-6);  // l1 IRLS weight
    }
  }
  return basis;
}

double subspace_residual(const linalg::Matrix& basis,
                         const linalg::Vector& v) {
  const linalg::Vector coef = linalg::matvec_transposed(basis, v);
  const linalg::Vector recon = linalg::matvec(basis, coef);
  double res = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double d = v[i] - recon[i];
    res += d * d;
  }
  return std::sqrt(res);
}

// Robust local linear detrend. The slope is a Theil-Sen median over
// *short-lag* pairs only (lags n/8..n/4): for a mid-window step the pairs
// that straddle the step are a small minority at short lags, so the slope
// tracks the smooth trend and leaves the step intact — whereas a full
// Theil-Sen would absorb half the step into the line. The intercept is
// anchored on the past half so that, after removal, the pre-change samples
// are centered and a post-change level shift survives as a clean offset.
std::vector<double> detrend_window(std::span<const double> x) {
  const std::size_t n = x.size();
  const std::size_t lag_lo = std::max<std::size_t>(2, n / 8);
  const std::size_t lag_hi = std::max(lag_lo, n / 4);
  std::vector<double> slopes;
  for (std::size_t lag = lag_lo; lag <= lag_hi; ++lag) {
    for (std::size_t i = 0; i + lag < n; ++i) {
      slopes.push_back((x[i + lag] - x[i]) / static_cast<double>(lag));
    }
  }
  // Cap the removable slope at the magnitude a slow seasonal trend can
  // plausibly reach (in standardized units per minute): steeper gradients
  // are treated as genuine ramps and must survive detrending.
  double slope = slopes.empty() ? 0.0 : median(slopes);
  slope = std::clamp(slope, -0.1, 0.1);
  const std::size_t half = n / 2;
  std::vector<double> intercepts(half);
  for (std::size_t i = 0; i < half; ++i) {
    intercepts[i] = x[i] - slope * static_cast<double>(i);
  }
  const double intercept = intercepts.empty() ? 0.0 : median(intercepts);
  std::vector<double> out(x.begin(), x.end());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] -= intercept + slope * static_cast<double>(i);
  }
  return out;
}

}  // namespace

Mrls::Mrls(MrlsParams params) : params_(std::move(params)) {
  FUNNEL_REQUIRE(params_.window >= 8, "MRLS window too small");
  FUNNEL_REQUIRE(params_.lag >= 2 && 2 * params_.lag <= params_.window,
                 "MRLS lag must fit in half a window");
  FUNNEL_REQUIRE(!params_.scales.empty(), "MRLS needs at least one scale");
  FUNNEL_REQUIRE(params_.rank >= 1, "MRLS rank must be positive");
}

double Mrls::score_at_scale(std::span<const double> window,
                            std::size_t scale) {
  const std::vector<double> sm = smooth(window, scale);
  const std::size_t half = sm.size() / 2;
  const std::span<const double> past(sm.data(), half);
  const std::span<const double> future(sm.data() + half, sm.size() - half);

  const std::size_t lag = params_.lag;
  const std::size_t past_cols = past.size() - lag + 1;
  const std::size_t future_cols = future.size() - lag + 1;

  const linalg::Matrix x = linalg::hankel(past, lag, past_cols);

  // Fit on the even-indexed past columns; normalize on the held-out odd
  // columns so the IRLS overfit of the training set does not shrink the
  // normalizer (which would make every future residual look anomalous).
  const std::size_t fit_cols = (past_cols + 1) / 2;
  linalg::Matrix xfit(lag, fit_cols);
  for (std::size_t j = 0; j < fit_cols; ++j) {
    for (std::size_t i = 0; i < lag; ++i) xfit(i, j) = x(i, 2 * j);
  }
  linalg::Matrix basis;
  if (params_.engine == MrlsSubspaceEngine::kIalmRobustPca) {
    // Exact l1 route: strip the sparse contamination with RPCA, then take
    // the leading left singular vectors of the clean low-rank part.
    linalg::RobustPcaOptions opt;
    opt.max_iterations = params_.alm_max_iterations;
    const linalg::RobustPcaResult rpca = linalg::robust_pca(xfit, opt);
    const linalg::Svd svd = linalg::jacobi_svd(rpca.low_rank);
    const std::size_t rank =
        std::min(params_.rank, svd.singular_values.size());
    basis = linalg::Matrix(lag, rank);
    for (std::size_t k = 0; k < rank; ++k) {
      for (std::size_t i = 0; i < lag; ++i) basis(i, k) = svd.u(i, k);
    }
  } else {
    basis = robust_subspace(xfit, params_.rank, params_.irls_iterations);
  }

  std::vector<double> holdout_res;
  for (std::size_t j = 1; j < past_cols; j += 2) {
    holdout_res.push_back(subspace_residual(basis, x.col(j)));
  }
  // Robust z-score of the worst future residual against the held-out past
  // residuals. The spread estimate from a handful of held-out columns is
  // noisy, so it is floored both relative to the residual level and at an
  // absolute fraction of the (standardized) noise — otherwise smoothing at
  // coarse scales shrinks the spread toward zero and ordinary fluctuations
  // explode into huge z-scores.
  const double center = median(holdout_res);
  const double spread =
      std::max({mad_sigma(holdout_res), 0.25 * center, 0.3}) + 1e-9;

  double worst = 0.0;
  for (std::size_t j = 0; j < future_cols; ++j) {
    linalg::Vector v(lag);
    for (std::size_t i = 0; i < lag; ++i) v[i] = future[j + i];
    worst = std::max(worst, subspace_residual(basis, v));
  }
  return std::max(worst - center, 0.0) / spread;
}

double Mrls::score(std::span<const double> window) {
  FUNNEL_REQUIRE(window.size() == params_.window, "Mrls window size mismatch");
  std::vector<double> z = standardize_window(window, params_.window / 2);
  if (z.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (params_.detrend) z = detrend_window(z);

  std::vector<double> per_scale;
  per_scale.reserve(params_.scales.size());
  for (std::size_t scale : params_.scales) {
    per_scale.push_back(score_at_scale(z, scale));
  }
  return median(per_scale);
}

}  // namespace funnel::detect
