#include "tsdb/store.h"

#include <algorithm>

#include "common/error.h"
#include "obs/timer.h"

namespace funnel::tsdb {

void MetricStore::create(const MetricId& id, MinuteTime start) {
  const auto [it, inserted] = series_.emplace(id, TimeSeries(start));
  FUNNEL_REQUIRE(inserted, "metric already exists: " + id.to_string());
  (void)it;
}

bool MetricStore::has(const MetricId& id) const {
  return series_.contains(id);
}

void MetricStore::append(const MetricId& id, MinuteTime t, double value) {
  auto it = series_.find(id);
  if (it == series_.end()) {
    it = series_.emplace(id, TimeSeries(t)).first;
  }
  it->second.append_at(t, value);
  if (stats_ != nullptr) stats_->add("tsdb.store.appends");
  if (subs_.empty()) return;
  // Time the synchronous dispatch as one span per append: this is the
  // latency a producing agent pays for slow consumers (the ROADMAP's async
  // ingestion item needs exactly this series to justify itself).
  const obs::ScopedTimer dispatch(stats_, "tsdb.store.dispatch_us");
  std::uint64_t notified = 0;
  for (const auto& [sid, sub] : subs_) {
    (void)sid;
    if (sub.filter.empty() ||
        std::binary_search(sub.filter.begin(), sub.filter.end(), id)) {
      sub.callback(id, t, value);
      ++notified;
    }
  }
  if (stats_ != nullptr && notified > 0) {
    stats_->add("tsdb.store.notifications", notified);
  }
}

void MetricStore::insert(const MetricId& id, TimeSeries series) {
  const auto [it, inserted] = series_.emplace(id, std::move(series));
  FUNNEL_REQUIRE(inserted, "metric already exists: " + id.to_string());
  (void)it;
}

const TimeSeries& MetricStore::series(const MetricId& id) const {
  const auto it = series_.find(id);
  if (it == series_.end()) {
    throw NotFound("no such metric: " + id.to_string());
  }
  return it->second;
}

std::vector<MetricId> MetricStore::metrics() const {
  std::vector<MetricId> out;
  out.reserve(series_.size());
  for (const auto& [id, s] : series_) {
    (void)s;
    out.push_back(id);
  }
  return out;
}

std::vector<MetricId> MetricStore::metrics_of(EntityKind kind,
                                              const std::string& entity) const {
  std::vector<MetricId> out;
  for (const auto& [id, s] : series_) {
    (void)s;
    if (id.kind == kind && id.entity == entity) out.push_back(id);
  }
  return out;
}

std::vector<double> MetricStore::query(const MetricId& id, MinuteTime t0,
                                       MinuteTime t1) const {
  return series(id).slice(t0, t1);
}

TimeSeries MetricStore::aggregate(std::span<const MetricId> ids, MinuteTime t0,
                                  MinuteTime t1) const {
  std::vector<const TimeSeries*> ptrs;
  ptrs.reserve(ids.size());
  for (const MetricId& id : ids) {
    const auto it = series_.find(id);
    if (it != series_.end()) ptrs.push_back(&it->second);
  }
  return aggregate_mean(ptrs, t0, t1);
}

SubscriptionId MetricStore::subscribe(std::vector<MetricId> filter,
                                      Callback cb) {
  FUNNEL_REQUIRE(static_cast<bool>(cb), "subscription needs a callback");
  std::sort(filter.begin(), filter.end());
  const SubscriptionId id = next_sub_++;
  subs_.emplace(id, Subscription{std::move(filter), std::move(cb)});
  return id;
}

void MetricStore::unsubscribe(SubscriptionId id) { subs_.erase(id); }

}  // namespace funnel::tsdb
