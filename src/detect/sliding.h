// Sliding-window detection runner and alarm policy.
//
// The evaluation protocol of §4.1: a scorer consumes x(i..i+W-1), emits a
// score, and the window moves forward one minute. An alarm is raised when
// the score exceeds a threshold for `persistence` consecutive window
// positions — FUNNEL's 7-minute rule that separates level shifts and ramps
// from one-off events (CUSUM and MRLS in the paper run with persistence 1,
// trading false positives for occasional faster hits).
//
// NaN semantics (the dirty-telemetry contract, see docs/ROBUSTNESS.md):
// a gap minute is stored as NaN, every window containing a NaN scores NaN,
// and a NaN score is never an exceedance — `isfinite(score) &&
// score > threshold` is the only hit test. Consequences, asserted by
// detect_sliding_test:
//   * A NaN score inside a would-be persistence run consumes patience
//     slack exactly like a sub-threshold score: with persistence P and
//     patience Q, a run survives at most Q - P interruptions, NaN or not.
//   * A gap longer than the patience surplus kills the run; the alarm (if
//     the shift is still there) re-establishes only after the window
//     clears the gap — W - 1 + P clean minutes later. It is delayed, never
//     resurrected mid-gap.
//   * A gap straddling the would-be alarm minute therefore suppresses the
//     alarm entirely until the feed resumes; the assessment layer turns
//     that silence into Cause::kInconclusive via the window QualityReport
//     instead of reading it as a clean bill of health.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/minute_time.h"
#include "detect/scorer.h"

namespace funnel::detect {

/// Scores for every window position over `series`: out[i] is the score of
/// the window starting at sample i; size is series.size() - W + 1 (empty
/// when the series is shorter than one window).
std::vector<double> score_series(ChangeScorer& scorer,
                                 std::span<const double> series);

struct AlarmPolicy {
  double threshold = 0.5;
  /// Exceedances required before alarming (the 7-minute rule).
  std::size_t persistence = 7;
  /// Length of the sliding look-back the exceedances are counted in. 0 (the
  /// default) means `persistence` — i.e. strictly consecutive exceedances.
  /// FUNNEL runs with a small surplus (e.g. 10 for persistence 7) because
  /// the Eq. 11 damping factor passes through zero as a change edge crosses
  /// the window midpoint, briefly denting an otherwise sustained run.
  std::size_t patience = 0;

  std::size_t effective_patience() const {
    return patience == 0 ? persistence : patience;
  }
};

/// A raised alarm.
struct Alarm {
  /// Minute the alarm fires (wall clock): the arrival minute of the last
  /// sample of the final window of the persistence run. Online, this is the
  /// earliest minute the method could have raised it.
  MinuteTime minute = 0;
  /// Window start index (into the scored series) of the first exceedance.
  std::size_t first_window = 0;
  /// Largest score within the persistence run.
  double peak_score = 0.0;
};

/// First alarm over precomputed scores. `series_start` is the minute of
/// sample 0; `window` the scorer's W. NaN scores break persistence runs.
std::optional<Alarm> first_alarm(std::span<const double> scores,
                                 std::size_t window, MinuteTime series_start,
                                 const AlarmPolicy& policy);

/// All alarms: after an alarm fires, scanning re-arms immediately, so a
/// sustained exceedance fires again every `persistence` windows while it
/// lasts. Consumers that want one alarm per episode should de-duplicate by
/// gap; evaluation code relies on the repetition so that an exceedance run
/// straddling the change minute still produces a post-change alarm.
std::vector<Alarm> all_alarms(std::span<const double> scores,
                              std::size_t window, MinuteTime series_start,
                              const AlarmPolicy& policy);

/// Collapse the repeated alarms of a sustained exceedance into episodes:
/// alarms closer than `gap` minutes to their predecessor are merged into
/// it (keeping the first minute and the maximum peak). Deployment
/// dashboards count episodes, not raw re-fires.
std::vector<Alarm> alarm_episodes(std::span<const Alarm> alarms,
                                  MinuteTime gap);

/// Convenience: run the scorer and return the first alarm.
std::optional<Alarm> detect_first(ChangeScorer& scorer,
                                  std::span<const double> series,
                                  MinuteTime series_start,
                                  const AlarmPolicy& policy);

/// Online wrapper: feed samples one at a time; fires at most one alarm.
/// Mirrors exactly what the batch path computes, enabling the streaming
/// FUNNEL deployment (§5).
class OnlineDetector {
 public:
  OnlineDetector(ChangeScorer& scorer, AlarmPolicy policy,
                 MinuteTime start_minute);

  /// Feed the sample for the next minute; returns the alarm if this sample
  /// completes one.
  std::optional<Alarm> push(double value);

  bool alarmed() const { return alarmed_; }
  MinuteTime next_minute() const { return next_minute_; }

  /// Clear a latched alarm so detection continues (used when an alarm turns
  /// out to predate the software change and must be discarded).
  void rearm() {
    alarmed_ = false;
    hits_.clear();
  }

 private:
  struct Hit {
    std::size_t index;
    double score;
  };

  ChangeScorer& scorer_;
  AlarmPolicy policy_;
  MinuteTime next_minute_;
  std::vector<double> buffer_;
  std::vector<Hit> hits_;  ///< exceedances within the patience look-back
  std::size_t windows_scored_ = 0;
  bool alarmed_ = false;
};

}  // namespace funnel::detect
