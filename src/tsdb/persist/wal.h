// Append-only write-ahead log: the arrival-order truth of a persistent
// MetricStore.
//
// Every sample accepted by MetricStore::append (and every FunnelOnline
// watch registration, logged as a marker so replay can interleave watches
// with samples in original arrival order) becomes one WAL record, framed
//
//     [u32 len][u32 crc32c(payload)][payload: len bytes]
//
// with a strictly increasing sequence number assigned under the queue lock
// — the seq ordering IS the arrival ordering, and because upsert_at is
// first-write-wins, replaying any valid prefix of the WAL reconstructs
// exactly the store state that prefix produced (docs/STORAGE.md §2).
//
// The writer mirrors obs::Journal: a bounded MPSC queue drained by one
// writer thread that group-commits — one fwrite + fflush per drained batch,
// plus an optional fsync per batch (WalDurability::kFsync) for deployments
// that want power-loss durability rather than process-crash durability.
// A torn tail (crash mid-fwrite) is expected, not corruption: read_wal()
// stops at the first record whose length or CRC does not check out,
// reports the exact valid prefix length, and recovery truncates the file
// there before reopening it for append.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/minute_time.h"
#include "obs/registry.h"
#include "tsdb/metric.h"
#include "tsdb/persist/format.h"

namespace funnel::tsdb::persist {

/// WAL format version, first payload byte of every record.
inline constexpr std::uint8_t kWalVersion = 1;

enum class WalRecordType : std::uint8_t {
  kSample = 1,  ///< one MetricStore::append arrival (value may be NaN)
  kWatch = 2,   ///< FunnelOnline::watch(change_id) registration marker
};

/// One logged arrival. `seq` is assigned by the writer at log() time and is
/// strictly increasing with no gaps within one WAL file generation.
struct WalRecord {
  WalRecordType type = WalRecordType::kSample;
  std::uint64_t seq = 0;

  // kSample payload.
  MetricId metric;
  MinuteTime minute = 0;
  double value = 0.0;

  // kWatch payload.
  std::uint64_t change_id = 0;
};

/// Serialize one record including its [len][crc] frame.
std::string encode_wal_record(const WalRecord& record);

struct WalReadResult {
  bool ok = false;  ///< file existed and opened
  std::vector<WalRecord> records;
  /// Bytes of the longest valid record prefix — recovery truncates here.
  std::uint64_t valid_bytes = 0;
  /// Bytes after the valid prefix (torn tail / corruption), counted exactly.
  std::uint64_t skipped_bytes = 0;
};

/// Read a WAL file back, tolerating a torn or corrupt tail: scanning stops
/// at the first frame whose length field, CRC or payload does not decode,
/// and everything before it is returned. A missing file is `ok == false`
/// with zero records — a legal crash window (checkpoint rotated, new WAL
/// not yet created).
WalReadResult read_wal(const std::string& path);

/// How hard log() pushes bytes toward the platter.
enum class WalDurability {
  kFlush,  ///< fwrite + fflush per batch: survives process crash (default)
  kFsync,  ///< + fsync per batch: survives power loss; ~10-100x slower
};

struct WalWriterOptions {
  std::size_t queue_capacity = 4096;  ///< clamped to >= 1
  WalDurability durability = WalDurability::kFlush;
};

/// MPSC group-committing WAL writer (obs::Journal's design, binary frames
/// instead of JSONL). log() enqueues and blocks when the queue is full —
/// the WAL is the durability record, shedding is not an option. flush() is
/// the barrier: returns once everything logged before the call is on disk
/// (per the durability policy).
class WalWriter {
 public:
  /// Opens `path` for append (recovery truncates the torn tail first) and
  /// starts the writer thread. Records logged here get sequence numbers
  /// `next_seq, next_seq+1, ...`. ok() reports whether the file opened.
  WalWriter(std::string path, std::uint64_t next_seq,
            WalWriterOptions options = {});

  /// Drains, flushes, closes, joins. No-op after crash_for_testing().
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

  /// Assign the next sequence number to `record`, enqueue it, return the
  /// seq. Blocks while the queue is full. Any thread.
  std::uint64_t log(WalRecord record);

  /// Barrier: returns once every record logged before the call is written
  /// and flushed (and fsynced under kFsync).
  void flush();

  /// Seq that the next log() will assign.
  std::uint64_t next_seq() const;

  /// Records written to the file so far.
  std::uint64_t records_written() const;
  /// Frame bytes written to the file so far.
  std::uint64_t bytes_written() const;
  /// Group-commit batches flushed so far.
  std::uint64_t batches() const;

  /// Atomically switch the log to a new file (checkpoint rotation). Flushes
  /// and closes the current file, opens `path` truncated, continues the seq
  /// counter. Callers must quiesce producers first (MetricStore rotates
  /// under its checkpoint lock).
  void rotate(std::string path);

  /// Simulate a crash: stop the writer thread without draining the queue
  /// and close the file mid-stream. Records still queued are lost exactly
  /// as they would be in a real kill — the replay-determinism test recovers
  /// from whatever prefix made it to disk. After this, log()/flush() are
  /// no-ops.
  void crash_for_testing();

  /// Attach a telemetry registry (null detaches): wal.records / wal.bytes /
  /// wal.batches counters, wal.queue_depth gauge.
  void set_stats(const obs::Registry* stats);

 private:
  struct Impl;
  std::string path_;
  bool ok_ = false;
  std::unique_ptr<Impl> impl_;
};

}  // namespace funnel::tsdb::persist
