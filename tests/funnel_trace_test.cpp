// Integration tests for decision-provenance tracing: assessment reports are
// byte-identical with the tracer on or off (for every thread count), one
// assessment yields a single rooted span tree whose shape is deterministic
// at 1/2/8 threads, the online watch builds one tree across the async
// store's dispatcher thread, the explain report section carries the SST and
// DiD evidence for every alarmed KPI, and tracing costs < 2% on
// assess_window.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "evalkit/dataset.h"
#include "funnel/assessor.h"
#include "funnel/online.h"
#include "funnel/report_json.h"
#include "obs/trace.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::core {
namespace {

class FunnelTrace : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    evalkit::DatasetParams p;
    p.seed = 424242;
    p.services = 2;
    p.servers_per_service = 4;
    p.treated_servers = 2;
    p.positive_changes = 2;
    p.negative_changes = 3;
    p.history_days = 4;
    p.confounder_probability = 0.4;
    ds_ = evalkit::build_dataset(p).release();
  }

  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static FunnelConfig config(std::size_t threads, const obs::Tracer* tracer) {
    FunnelConfig cfg;
    cfg.baseline_days = 3;  // the short history has no 30-day baseline
    cfg.num_threads = threads;
    cfg.tracer = tracer;
    return cfg;
  }

  static MinuteTime window_end() {
    MinuteTime last = 0;
    for (const auto& ch : ds_->log.all()) last = std::max(last, ch.time);
    return last + 1;
  }

  static std::vector<AssessmentReport> run_window(std::size_t threads,
                                                  const obs::Tracer* tracer) {
    const Funnel funnel(config(threads, tracer), ds_->topo, ds_->log,
                        ds_->store);
    return funnel.assess_window(0, window_end());
  }

  static std::string rendered(const std::vector<AssessmentReport>& reports) {
    std::string out;
    for (const AssessmentReport& r : reports) {
      out += to_json(r);
      out += '\n';
    }
    return out;
  }

  static evalkit::EvalDataset* ds_;
};

evalkit::EvalDataset* FunnelTrace::ds_ = nullptr;

// Scheduling-independent signature of one span: its name plus whichever
// identity attribute the layer stamps (change id for assess, metric for the
// per-KPI span). Raw span ids are allocation-ordered and must never be
// compared across runs.
std::string span_signature(const obs::SpanRecord& s) {
  std::string sig = s.name;
  if (const obs::SpanAttr* a = s.find_attr("change.id")) {
    sig += "#change" + std::to_string(a->inum);
  }
  if (const obs::SpanAttr* a = s.find_attr("kpi.metric")) {
    sig += "#" + a->str;
  }
  return sig;
}

// The tree rendered as a sorted multiset of child<-parent signature edges.
std::vector<std::string> tree_shape(const obs::TraceDump& dump) {
  std::map<std::uint64_t, const obs::SpanRecord*> by_id;
  for (const obs::SpanRecord& s : dump.spans) by_id.emplace(s.span_id, &s);
  std::vector<std::string> edges;
  for (const obs::SpanRecord& s : dump.spans) {
    const auto parent = by_id.find(s.parent_id);
    const std::string parent_sig =
        parent == by_id.end() ? "ROOT" : span_signature(*parent->second);
    edges.push_back(span_signature(s) + " <- " + parent_sig);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

TEST_F(FunnelTrace, ReportsByteIdenticalWithTracerOnOrOff) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const std::string without = rendered(run_window(threads, nullptr));
    obs::Tracer tracer;
    const std::string with = rendered(run_window(threads, &tracer));
    EXPECT_EQ(without, with)
        << "tracing leaked into reports at threads=" << threads;
  }
}

TEST_F(FunnelTrace, SingleRootedTreeDeterministicAcrossThreadCounts) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  std::vector<std::string> reference;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    obs::Tracer tracer(1 << 16);  // large enough that nothing is dropped
    const std::vector<AssessmentReport> reports =
        run_window(threads, &tracer);
    ASSERT_FALSE(reports.empty());

    const obs::TraceDump dump = tracer.collect();
    ASSERT_FALSE(dump.spans.empty());
    EXPECT_EQ(dump.dropped, 0u) << "ring too small for the test workload";
    EXPECT_EQ(dump.recorded, dump.spans.size());

    // Exactly one root — the assess_window span — and every span belongs
    // to its trace: one batch, one causally-linked tree.
    std::map<std::uint64_t, const obs::SpanRecord*> by_id;
    for (const obs::SpanRecord& s : dump.spans) by_id.emplace(s.span_id, &s);
    std::size_t roots = 0;
    for (const obs::SpanRecord& s : dump.spans) {
      if (s.parent_id == 0) {
        ++roots;
        EXPECT_STREQ(s.name, "funnel.assess_window");
      } else {
        ASSERT_NE(by_id.find(s.parent_id), by_id.end())
            << s.name << " has a dangling parent at threads=" << threads;
      }
      EXPECT_EQ(s.trace_id, dump.spans.front().trace_id);
    }
    EXPECT_EQ(roots, 1u) << "threads=" << threads;

    // One assess span per change, one kpi span per examined KPI.
    std::size_t assess_spans = 0, kpi_spans = 0, expected_kpis = 0;
    for (const AssessmentReport& r : reports) expected_kpis += r.items.size();
    for (const obs::SpanRecord& s : dump.spans) {
      if (std::string_view(s.name) == "funnel.assess") ++assess_spans;
      if (std::string_view(s.name) == "funnel.assess.kpi") ++kpi_spans;
    }
    EXPECT_EQ(assess_spans, reports.size());
    EXPECT_EQ(kpi_spans, expected_kpis);

    const std::vector<std::string> shape = tree_shape(dump);
    if (reference.empty()) {
      reference = shape;
    } else {
      EXPECT_EQ(shape, reference)
          << "span tree shape changed at threads=" << threads;
    }
  }
}

TEST_F(FunnelTrace, KpiSpansCarrySstProvenance) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  obs::Tracer tracer(1 << 16);
  const std::vector<AssessmentReport> reports = run_window(1, &tracer);
  const obs::TraceDump dump = tracer.collect();

  // The same metric is examined by several changes; key the per-KPI spans
  // by (change id, metric) via their parent assess span.
  std::map<std::uint64_t, std::int64_t> change_of_span;
  for (const obs::SpanRecord& s : dump.spans) {
    if (std::string_view(s.name) != "funnel.assess") continue;
    change_of_span.emplace(s.span_id, s.find_attr("change.id")->inum);
  }
  std::map<std::pair<std::int64_t, std::string>, const obs::SpanRecord*>
      kpi_spans;
  for (const obs::SpanRecord& s : dump.spans) {
    if (std::string_view(s.name) != "funnel.assess.kpi") continue;
    kpi_spans.emplace(std::make_pair(change_of_span.at(s.parent_id),
                                     s.find_attr("kpi.metric")->str),
                      &s);
  }

  std::size_t alarmed = 0;
  for (const AssessmentReport& r : reports) {
    for (const ItemVerdict& v : r.items) {
      if (!v.kpi_change_detected) continue;
      ++alarmed;
      const auto it = kpi_spans.find(std::make_pair(
          static_cast<std::int64_t>(r.change_id), v.metric.to_string()));
      ASSERT_NE(it, kpi_spans.end()) << v.metric.to_string();
      const obs::SpanRecord& s = *it->second;

      // The damped peak on the span is the report's own number; the raw
      // score is peak / damping factor, recomputed on the peak window.
      const obs::SpanAttr* peak = s.find_attr("sst.peak_score");
      ASSERT_NE(peak, nullptr);
      EXPECT_DOUBLE_EQ(peak->num, v.alarm->peak_score);
      const obs::SpanAttr* raw = s.find_attr("sst.raw_score");
      const obs::SpanAttr* damp = s.find_attr("sst.damp_factor");
      ASSERT_NE(raw, nullptr);
      ASSERT_NE(damp, nullptr);
      if (damp->num > 0.0) {
        EXPECT_NEAR(raw->num * damp->num, v.alarm->peak_score,
                    1e-9 * std::max(1.0, v.alarm->peak_score));
      }
      ASSERT_NE(s.find_attr("sst.threshold"), nullptr);
      ASSERT_NE(s.find_attr("sst.krylov_k"), nullptr);
      ASSERT_NE(s.find_attr("kpi.cause"), nullptr);
      EXPECT_EQ(s.find_attr("kpi.cause")->str, to_string(v.cause));
    }
  }
  EXPECT_GT(alarmed, 0u) << "dataset produced no alarms to verify";

  // Every alarmed KPI also carries a determination span with the control
  // kind and thresholds under its per-KPI span.
  std::size_t determine_spans = 0;
  for (const obs::SpanRecord& s : dump.spans) {
    if (std::string_view(s.name) != "funnel.assess.determine") continue;
    ++determine_spans;
    const obs::SpanAttr* kind = s.find_attr("did.control_kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_TRUE(kind->str == "seasonal-window" ||
                kind->str == "dark-launch-siblings")
        << kind->str;
    EXPECT_NE(s.find_attr("did.alpha_threshold"), nullptr);
    EXPECT_NE(s.find_attr("did.cause"), nullptr);
  }
  EXPECT_EQ(determine_spans, alarmed);
}

TEST_F(FunnelTrace, ExplainSectionCoversEveryAlarmedKpi) {
  obs::Tracer tracer(1 << 16);
  const obs::Tracer* tracer_ptr = obs::kEnabled ? &tracer : nullptr;
  const std::vector<AssessmentReport> reports = run_window(1, tracer_ptr);
  const obs::TraceDump dump = tracer.collect();
  const FunnelConfig cfg = config(1, tracer_ptr);

  bool any_alarmed = false;
  for (const AssessmentReport& r : reports) {
    const std::string base = to_json(r);
    const std::string explained =
        to_json_explained(r, cfg, obs::kEnabled ? &dump : nullptr);

    // The base report is a byte-identical prefix: plain consumers parse the
    // explained report unchanged.
    ASSERT_GT(explained.size(), base.size());
    EXPECT_EQ(explained.substr(0, base.size() - 1),
              base.substr(0, base.size() - 1));
    EXPECT_NE(explained.find(",\"explain\":["), std::string::npos);

    for (const ItemVerdict& v : r.items) {
      if (!v.kpi_change_detected) continue;
      any_alarmed = true;
      const std::string entry_start =
          "{\"metric\":\"" + v.metric.to_string() + "\",\"cause\":";
      const std::size_t pos =
          explained.find(entry_start, explained.find(",\"explain\":["));
      ASSERT_NE(pos, std::string::npos) << v.metric.to_string();
      const std::size_t end = explained.find("\"decision\":", pos);
      ASSERT_NE(end, std::string::npos);
      const std::string entry = explained.substr(pos, end - pos);

      EXPECT_NE(entry.find("\"control_kind\":\""), std::string::npos);
      EXPECT_NE(entry.find(v.used_historical_control
                               ? "\"seasonal-window\""
                               : "\"dark-launch-siblings\""),
                std::string::npos)
          << entry;
      EXPECT_NE(entry.find("\"sst\":{\"peak_score\":"), std::string::npos);
      EXPECT_NE(entry.find("\"threshold\":"), std::string::npos);
      EXPECT_NE(entry.find("\"alpha_threshold\":"), std::string::npos);
      if (v.did_fit) {
        EXPECT_NE(entry.find("\"did\":{\"alpha\":"), std::string::npos);
      }
      if (obs::kEnabled) {
        EXPECT_NE(entry.find("\"raw_score\":"), std::string::npos) << entry;
        EXPECT_NE(entry.find("\"damp_factor\":"), std::string::npos);
      }
    }
  }
  EXPECT_TRUE(any_alarmed) << "dataset produced no alarms to explain";
}

// Online scenario: dark launch on 2 of 4 servers, level shift on the
// treated KPIs at the change minute, with the store's async ingest queue on
// so every callback runs on the dispatcher thread.
struct OnlineTraceScenario {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;
  MinuteTime tc = 4 * kMinutesPerDay + 300;
  changes::ChangeId change_id = 0;
  std::vector<std::pair<tsdb::MetricId, std::unique_ptr<workload::KpiStream>>>
      streams;

  explicit OnlineTraceScenario(std::size_t ingest_queue)
      : store(tsdb::StoreOptions{.num_shards = 2,
                                 .ingest_queue_capacity = ingest_queue,
                                 .backpressure =
                                     tsdb::Backpressure::kBlock}) {
    const std::vector<std::string> servers{"s1", "s2", "s3", "s4"};
    for (const auto& s : servers) topo.add_server("svc", s);
    changes::SoftwareChange ch;
    ch.service = "svc";
    ch.time = tc;
    ch.mode = changes::LaunchMode::kDark;
    ch.servers = {"s1", "s2"};
    change_id = log.record(ch, topo);

    Rng rng(7);
    for (const auto& s : servers) {
      workload::StationaryParams p;
      p.level = 50.0;
      auto stream = std::make_unique<workload::KpiStream>(
          workload::make_stationary(p, rng.split()));
      if (s == "s1" || s == "s2") {
        stream->add_effect(workload::LevelShift{tc, 8.0});
      }
      const tsdb::MetricId id = tsdb::server_metric(s, "mem");
      workload::materialize(*stream, store, id, 0, tc);
      streams.emplace_back(id, std::move(stream));
    }
  }

  AssessmentReport run(const obs::Tracer* tracer) {
    FunnelConfig cfg;
    cfg.baseline_days = 3;
    cfg.tracer = tracer;
    FunnelOnline online(cfg, topo, log, store);
    AssessmentReport report;
    online.on_report([&](const AssessmentReport& r) { report = r; });
    online.watch(change_id);
    for (MinuteTime t = tc; t < tc + 61; ++t) {
      for (auto& [id, stream] : streams) store.append(id, t, stream->sample(t));
    }
    store.flush();  // quiesce before the caller collects
    return report;
  }
};

TEST(FunnelTraceOnline, WatchBuildsOneTreeAcrossDispatcherThread) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  obs::Tracer tracer(1 << 16);
  OnlineTraceScenario sc(/*ingest_queue=*/256);
  const AssessmentReport report = sc.run(&tracer);
  ASSERT_GE(report.kpi_changes_caused(), 2u);

  const obs::TraceDump dump = tracer.collect();
  ASSERT_FALSE(dump.spans.empty());
  EXPECT_EQ(dump.dropped, 0u);
  // Control thread opened the watch, the dispatcher ran determinations.
  EXPECT_GE(dump.threads, 2u);

  std::map<std::uint64_t, const obs::SpanRecord*> by_id;
  for (const obs::SpanRecord& s : dump.spans) by_id.emplace(s.span_id, &s);
  const obs::SpanRecord* root = nullptr;
  for (const obs::SpanRecord& s : dump.spans) {
    if (s.parent_id == 0) {
      ASSERT_EQ(root, nullptr) << "second root: " << s.name;
      root = &s;
    } else {
      ASSERT_NE(by_id.find(s.parent_id), by_id.end())
          << s.name << " has a dangling parent";
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_STREQ(root->name, "funnel.watch");
  for (const obs::SpanRecord& s : dump.spans) {
    EXPECT_EQ(s.trace_id, root->trace_id) << s.name;
  }

  std::size_t prime = 0, determine = 0, finalize = 0;
  for (const obs::SpanRecord& s : dump.spans) {
    const std::string_view name = s.name;
    if (name == "funnel.online.prime") ++prime;
    if (name == "funnel.online.determine") ++determine;
    if (name == "funnel.online.finalize") ++finalize;
  }
  EXPECT_EQ(prime, 1u);
  EXPECT_EQ(finalize, 1u);
  std::size_t determined = 0;
  for (const ItemVerdict& v : report.items) {
    if (v.determined_at) ++determined;
  }
  EXPECT_EQ(determine, determined);
  ASSERT_NE(root->find_attr("watch.caused"), nullptr);
  EXPECT_EQ(root->find_attr("watch.caused")->inum,
            static_cast<std::int64_t>(report.kpi_changes_caused()));
}

TEST(FunnelTraceOnline, ReportsByteIdenticalWithTracerOnOrOff) {
  for (const std::size_t queue : {std::size_t{0}, std::size_t{256}}) {
    OnlineTraceScenario without_sc(queue);
    const std::string without = to_json(without_sc.run(nullptr));
    obs::Tracer tracer;
    OnlineTraceScenario with_sc(queue);
    const std::string with = to_json(with_sc.run(&tracer));
    EXPECT_EQ(without, with) << "ingest_queue=" << queue;
  }
}

TEST_F(FunnelTrace, TracerOnOverheadUnderTwoPercent) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF (nothing to measure)";
  // Same bound and methodology as the registry's overhead test: tracing on
  // must cost < 2% on assess_window versus a null tracer. The hot-path cost
  // is one clock read + a thread-local ring write per span; min-of-N with
  // retries absorbs scheduler noise on busy CI boxes.
  using clock = std::chrono::steady_clock;
  const auto min_of = [&](const obs::Tracer* tracer, int n) {
    double best = 1e300;
    for (int i = 0; i < n; ++i) {
      const auto start = clock::now();
      const std::size_t count = run_window(1, tracer).size();
      const double ms = std::chrono::duration<double, std::milli>(
                            clock::now() - start)
                            .count();
      EXPECT_GT(count, 0u);  // keep the work honest
      best = std::min(best, ms);
    }
    return best;
  };
  run_window(1, nullptr);  // warm caches once

  bool ok = false;
  double worst_ratio = 0.0;
  for (int round = 0; round < 4 && !ok; ++round) {
    const double base = min_of(nullptr, 3);
    obs::Tracer tracer(1 << 16);
    const double with = min_of(&tracer, 3);
    const double ratio = with / base;
    worst_ratio = std::max(worst_ratio, ratio);
    ok = ratio < 1.02;
    if (ok) {
      std::cerr << "tracing overhead on assess_window: " << base << " ms -> "
                << with << " ms (ratio " << ratio << ")\n";
    }
  }
  EXPECT_TRUE(ok) << "tracing overhead exceeded 2% in every round "
                     "(last ratios up to "
                  << worst_ratio << "x)";
}

}  // namespace
}  // namespace funnel::core
