// Tests for the multi-tenant service plane (src/service): quota arithmetic
// on a virtual clock, the Tenant ingest/changes line protocols, the
// dirty-feed quarantine tripwire, cross-tenant verdict-byte isolation, the
// crash-recovery protocol (recovered_seq alignment, journal repair across
// REPEATED recoveries), and the /v1 HTTP surface end to end. The soak
// harness (tools/soak_harness) drills the same contracts against a live
// daemon under fault injection; these are the deterministic in-process
// versions CI runs on every build (docs/SERVICE.md).
#include "service/service.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "service/quota.h"
#include "service/tenant.h"

namespace funnel::service {
namespace {

namespace fs = std::filesystem;

#define SKIP_IF_OBS_OFF()                                         \
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled to no-ops "   \
                                      "(FUNNEL_OBS=OFF)"

// ---------------------------------------------------------------------------
// TokenBucket: deterministic refusal/retry arithmetic on a virtual clock.

TEST(TokenBucket, UnlimitedByDefaultAndAtRateZero) {
  TokenBucket none;
  EXPECT_TRUE(none.unlimited());
  EXPECT_TRUE(none.try_acquire(1e9, 0.0));

  TokenBucket zero(0.0, 100.0);
  EXPECT_TRUE(zero.unlimited());
  EXPECT_TRUE(zero.try_acquire(1e9, 0.0));
}

TEST(TokenBucket, BurstThenRefillAtTheConfiguredRate) {
  TokenBucket bucket(10.0, 5.0);  // 10 samples/s, burst 5
  double retry = 0.0;
  // The full burst is available immediately...
  EXPECT_TRUE(bucket.try_acquire(5.0, 0.0, &retry));
  // ...and an empty bucket refuses with the exact wait for the shortfall.
  EXPECT_FALSE(bucket.try_acquire(2.0, 0.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 0.2);  // need 2 tokens at 10/s
  // 0.1 s later one token has refilled: still short for 2.
  EXPECT_FALSE(bucket.try_acquire(2.0, 0.1, &retry));
  EXPECT_DOUBLE_EQ(retry, 0.1);
  // At 0.2 s the two tokens are there.
  EXPECT_TRUE(bucket.try_acquire(2.0, 0.2, &retry));
  // Refill saturates at the burst: after a long idle, exactly 5 tokens.
  EXPECT_DOUBLE_EQ(bucket.available(100.0), 5.0);
}

TEST(TokenBucket, OversizedBatchesRunDebtInsteadOfStarving) {
  TokenBucket bucket(10.0, 5.0);
  // A batch larger than the burst can never find `n` tokens; it is admitted
  // against a full bucket and drives the fill negative, throttling the
  // average rate without refusing the request forever.
  EXPECT_TRUE(bucket.try_acquire(25.0, 0.0));
  EXPECT_DOUBLE_EQ(bucket.available(0.0), -20.0);
  // The debt pays down at the configured rate; a 1-sample request needs the
  // fill back to +1, i.e. 21 tokens at 10/s.
  double retry = 0.0;
  EXPECT_FALSE(bucket.try_acquire(1.0, 0.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 2.1);
  EXPECT_TRUE(bucket.try_acquire(1.0, 2.1, &retry));
}

TEST(TokenBucket, ReconfigureClampsFillAndKeepsDefaults) {
  TokenBucket bucket(10.0, 100.0);
  EXPECT_TRUE(bucket.try_acquire(10.0, 0.0));  // fill now 90
  bucket.configure(10.0, 20.0);                // shrink the burst
  EXPECT_DOUBLE_EQ(bucket.available(0.0), 20.0);
  // burst = 0 defaults to one second's worth of rate.
  TokenBucket secondish(8.0, 0.0);
  EXPECT_DOUBLE_EQ(secondish.available(0.0), 8.0);
}

// ---------------------------------------------------------------------------
// Tenant line protocols (in-memory).

/// Deterministic sample feed shared by the isolation/recovery tests: two
/// servers of "svc", one KPI, values varied by a seeded Rng; a dark change
/// on s0 at minute 45 with a level shift so the verdict is a detection.
std::string sample_lines(MinuteTime from, MinuteTime to, unsigned seed) {
  Rng rng(seed);
  std::ostringstream out;
  for (MinuteTime t = from; t < to; ++t) {
    for (const char* srv : {"s0", "s1"}) {
      double v = 10.0 + rng.uniform(-0.5, 0.5);
      if (srv[1] == '0' && t >= 45) v += 8.0;  // the shifted (treated) server
      out << "svc," << srv << ",cpu," << t << "," << v << "\n";
    }
  }
  return out.str();
}

TenantOptions small_funnel(std::string name) {
  TenantOptions opts;
  opts.name = std::move(name);
  opts.funnel.horizon = 20;
  opts.funnel.lookback = 30;
  opts.funnel.min_did_window = 6;
  return opts;
}

TEST(Tenant, IngestParsesCountsAndAlignsAppliedSeq) {
  Tenant tenant(small_funnel("t"));
  const IngestResult r = tenant.ingest(
      "svc,s0,cpu,1,10.5\n"
      "svc,s1,cpu,1,nan\n"       // delivered-but-broken reading: accepted
      "\n"                        // blank: ignored entirely
      "# comment\n"               // comment: ignored entirely
      "svc,s0,cpu,not-a-minute,1\n"
      "too,few\n");
  EXPECT_EQ(r.accepted, 2u);
  EXPECT_EQ(r.malformed, 2u);
  EXPECT_FALSE(r.quarantined);
  // Seq alignment: one accepted sample = one WAL-visible action.
  EXPECT_EQ(tenant.applied_seq(), 2u);
  EXPECT_EQ(tenant.accepted_samples(), 2u);
  EXPECT_EQ(tenant.malformed_lines(), 2u);
}

TEST(Tenant, ChangeRegistrationIsIdempotentOnServiceTimeDescription) {
  Tenant tenant(small_funnel("t"));
  tenant.ingest(sample_lines(0, 50, 1));
  const auto first = tenant.register_changes("45,svc,dark,s0,chg-0\n");
  ASSERT_EQ(first.size(), 1u);
  const std::uint64_t seq_after_first = tenant.applied_seq();

  // A re-sent line (the crash-resume path) reuses the id and does NOT
  // advance the seq again — the watch marker already exists.
  std::size_t malformed = 0;
  const auto again = tenant.register_changes("45,svc,dark,s0,chg-0\n",
                                             &malformed);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], first[0]);
  EXPECT_EQ(malformed, 0u);
  EXPECT_EQ(tenant.applied_seq(), seq_after_first);

  // '*' expands to every server of the service; parse failures count.
  const auto starred = tenant.register_changes(
      "60,svc,full,*,chg-1\n"
      "not,a,change\n",
      &malformed);
  ASSERT_EQ(starred.size(), 1u);
  EXPECT_NE(starred[0], first[0]);
  EXPECT_EQ(malformed, 1u);
}

TEST(Tenant, WatchFinalizesIntoTheReport) {
  Tenant tenant(small_funnel("t"));
  tenant.ingest(sample_lines(0, 46, 1));
  tenant.register_changes("45,svc,dark,s0,chg-0\n");
  EXPECT_EQ(tenant.active_watches(), 1u);
  tenant.ingest(sample_lines(46, 100, 2));
  EXPECT_EQ(tenant.active_watches(), 0u);
  const std::string report = tenant.report_json();
  EXPECT_NE(report.find("\"reports\":["), std::string::npos);
  EXPECT_NE(report.find("\"change_id\":0"), std::string::npos);
  EXPECT_NE(report.find("\"change_time\":45"), std::string::npos);
  EXPECT_NE(report.find("\"quarantined\":false"), std::string::npos);
}

TEST(Tenant, DirtyFeedTripsQuarantineWithMachineReadableReason) {
  TenantOptions opts = small_funnel("t");
  opts.max_malformed_per_batch = 3;
  Tenant tenant(opts);
  tenant.ingest(sample_lines(0, 46, 1));
  tenant.register_changes("45,svc,dark,s0,chg-0\n");

  std::string garbage;
  for (int i = 0; i < 10; ++i) garbage += "complete garbage line\n";
  const IngestResult r = tenant.ingest(garbage);
  EXPECT_TRUE(r.quarantined);
  EXPECT_TRUE(tenant.quarantined());
  EXPECT_EQ(tenant.quarantine_reason().rfind("dirty-feed", 0), 0u)
      << tenant.quarantine_reason();

  // Quarantine force-finalized the active watch: the verdict exists and is
  // inconclusive rather than silently missing.
  EXPECT_EQ(tenant.active_watches(), 0u);
  EXPECT_NE(tenant.report_json().find("\"change_id\":0"), std::string::npos);

  // Later batches are refused outright, and the FIRST reason sticks.
  const IngestResult refused = tenant.ingest("svc,s0,cpu,50,10\n");
  EXPECT_TRUE(refused.quarantined);
  EXPECT_EQ(refused.accepted, 0u);
  tenant.quarantine("second-reason");
  EXPECT_EQ(tenant.quarantine_reason().rfind("dirty-feed", 0), 0u);
}

// ---------------------------------------------------------------------------
// Cross-tenant isolation: a neighbour's abuse never alters verdict bytes.

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Tenant, NeighbourFaultsNeverAlterACleanTenantsVerdictBytes) {
  SKIP_IF_OBS_OFF();  // the byte-compare is over the verdict journal
  const fs::path work =
      fs::temp_directory_path() / "funnel_service_isolation_test";
  fs::remove_all(work);
  fs::create_directories(work);

  const auto drive_clean = [&](Tenant& tenant) {
    tenant.ingest(sample_lines(0, 46, 1));
    tenant.register_changes("45,svc,dark,s0,chg-0\n");
    tenant.ingest(sample_lines(46, 100, 2));
    tenant.report_json();  // flush so every verdict is finalized
  };

  // Baseline: the clean tenant alone in a process.
  {
    TenantOptions opts = small_funnel("solo");
    opts.journal_path = (work / "solo.jsonl").string();
    Tenant solo(opts);
    drive_clean(solo);
  }

  // Same feed, same tenant shape — but a noisy neighbour in-process that
  // ingests garbage, trips quarantine, and hammers its own quota.
  {
    TenantOptions clean_opts = small_funnel("clean");
    clean_opts.journal_path = (work / "clean.jsonl").string();
    Tenant clean(clean_opts);
    TenantOptions dirty_opts = small_funnel("dirty");
    dirty_opts.journal_path = (work / "dirty.jsonl").string();
    dirty_opts.max_malformed_per_batch = 0;
    Tenant dirty(dirty_opts);

    dirty.ingest(sample_lines(0, 46, 3));
    clean.ingest(sample_lines(0, 46, 1));
    dirty.ingest("garbage\n");  // quarantines (max_malformed 0)
    clean.register_changes("45,svc,dark,s0,chg-0\n");
    EXPECT_TRUE(dirty.quarantined());
    clean.ingest(sample_lines(46, 100, 2));
    dirty.ingest(sample_lines(46, 100, 3));  // refused: quarantined
    clean.report_json();
  }

  const std::string solo = slurp(work / "solo.jsonl");
  ASSERT_FALSE(solo.empty());
  EXPECT_EQ(slurp(work / "clean.jsonl"), solo);
  fs::remove_all(work);
}

// ---------------------------------------------------------------------------
// Crash recovery: seq alignment and journal repair across REPEATED
// recoveries (regression: a recovered journal is append-mode, so checkpoints
// must record journal_base_ + written(), not written() alone — or the next
// recovery truncates the pre-crash prefix away).

TEST(Tenant, RecoveryAlignsSeqAndPreservesJournalAcrossIncarnations) {
  SKIP_IF_OBS_OFF();  // journal bytes are the recovery oracle
  const fs::path work =
      fs::temp_directory_path() / "funnel_service_recovery_test";
  fs::remove_all(work);

  TenantOptions opts = small_funnel("t");
  opts.data_dir = (work / "t").string();

  std::uint64_t seq_at_shutdown = 0;
  std::string journal_after_run1;

  // Incarnation 1: two finalized changes, but only the FIRST is covered by
  // a checkpoint — the second verdict exists only in journal + WAL tail.
  {
    Tenant tenant(opts);
    EXPECT_EQ(tenant.recovered_seq(), 0u);
    tenant.ingest(sample_lines(0, 46, 1));
    tenant.register_changes("45,svc,dark,s0,chg-0\n");
    tenant.ingest(sample_lines(46, 100, 2));
    EXPECT_EQ(tenant.active_watches(), 0u);  // chg-0 finalized
    tenant.checkpoint();
    tenant.register_changes("95,svc,dark,s1,chg-1\n");
    tenant.ingest(sample_lines(100, 150, 3));
    EXPECT_EQ(tenant.active_watches(), 0u);  // chg-1 finalized, no ckpt
    seq_at_shutdown = tenant.applied_seq();
  }
  journal_after_run1 = slurp(fs::path(opts.data_dir) / "journal.jsonl");
  ASSERT_FALSE(journal_after_run1.empty());

  // Incarnation 2: recovery rewinds the journal to the checkpoint (chg-0's
  // event) and replays the WAL tail, re-finalizing chg-1 and re-emitting
  // its verdict byte-identically; a checkpoint HERE must account for the
  // pre-existing journal prefix.
  {
    Tenant tenant(opts);
    EXPECT_EQ(tenant.recovered_seq(), seq_at_shutdown);
    EXPECT_EQ(tenant.applied_seq(), seq_at_shutdown);
    EXPECT_FALSE(tenant.quarantined());
    // Re-sent registrations dedup against the recovered index: same ids,
    // no new WAL records.
    const auto ids = tenant.register_changes(
        "45,svc,dark,s0,chg-0\n"
        "95,svc,dark,s1,chg-1\n");
    EXPECT_EQ(ids.size(), 2u);
    EXPECT_EQ(tenant.applied_seq(), seq_at_shutdown);
    // The tail replay re-finalized chg-1, so THIS incarnation has its
    // report; chg-0 retired before the checkpoint — its durable record is
    // the journal line, not /v1/report (docs/SERVICE.md, "Crash recovery").
    const std::string report = tenant.report_json();
    EXPECT_NE(report.find("\"change_id\":1"), std::string::npos);
    EXPECT_EQ(report.find("\"change_id\":0,"), std::string::npos);
    // checkpoint() flushes the journal: the repaired prefix + the replayed
    // re-emission must reproduce the pre-shutdown file exactly.
    tenant.checkpoint();
    EXPECT_EQ(slurp(fs::path(opts.data_dir) / "journal.jsonl"),
              journal_after_run1);
  }

  // Incarnation 3: repair_journal keeps everything the incarnation-2
  // checkpoint covered — i.e. the WHOLE file, not just the events written
  // since the last recovery.
  {
    Tenant tenant(opts);
    EXPECT_EQ(tenant.recovered_seq(), seq_at_shutdown);
    EXPECT_FALSE(tenant.quarantined());
    EXPECT_EQ(slurp(fs::path(opts.data_dir) / "journal.jsonl"),
              journal_after_run1);
  }
  fs::remove_all(work);
}

// ---------------------------------------------------------------------------
// The /v1 HTTP surface end to end (needs the obs HTTP server).

/// Minimal raw HTTP client: one request, read to EOF, return the raw bytes.
std::string http(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string post(int port, const std::string& path, const std::string& body) {
  return http(port, "POST " + path + " HTTP/1.1\r\nHost: t\r\n"
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n\r\n" + body);
}

std::string get(int port, const std::string& path) {
  return http(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

int status_of(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(FunnelService, V1SurfaceServesIngestChangesReportAndStatus) {
  SKIP_IF_OBS_OFF();
  ServiceOptions sopts;
  sopts.tenant_defaults = small_funnel("");
  FunnelService service(std::move(sopts));
  service.add_tenant("alpha");
  service.add_tenant("beta");
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;
  const int port = service.port();

  // Unknown tenant: 404 before any work happens.
  EXPECT_EQ(status_of(post(port, "/v1/ingest/nobody", "x\n")), 404);

  const std::string ingest =
      post(port, "/v1/ingest/alpha", sample_lines(0, 46, 1));
  EXPECT_EQ(status_of(ingest), 200);
  EXPECT_NE(body_of(ingest).find("\"accepted\":92"), std::string::npos)
      << body_of(ingest);

  const std::string changes =
      post(port, "/v1/changes/alpha", "45,svc,dark,s0,chg-0\n");
  EXPECT_EQ(status_of(changes), 200);
  EXPECT_NE(body_of(changes).find("\"registered\":[0]"), std::string::npos)
      << body_of(changes);

  EXPECT_EQ(status_of(post(port, "/v1/ingest/alpha",
                           sample_lines(46, 100, 2))),
            200);

  const std::string report = get(port, "/v1/report/alpha");
  EXPECT_EQ(status_of(report), 200);
  EXPECT_NE(body_of(report).find("\"change_id\":0"), std::string::npos);
  EXPECT_NE(body_of(report).find("\"change_time\":45"), std::string::npos);

  const std::string seq = get(port, "/v1/seq/alpha");
  EXPECT_EQ(status_of(seq), 200);
  EXPECT_NE(body_of(seq).find("\"recovered_seq\":0"), std::string::npos);

  // beta is untouched by alpha's traffic.
  const std::string beta = get(port, "/v1/status/beta");
  EXPECT_NE(body_of(beta).find("\"accepted_samples\":0"), std::string::npos);

  const std::string tenants = get(port, "/v1/tenants");
  EXPECT_NE(body_of(tenants).find("alpha"), std::string::npos);
  EXPECT_NE(body_of(tenants).find("beta"), std::string::npos);
  service.stop();
}

TEST(FunnelService, QuotaRefusalsCarryRetryAfterAndSpareOtherTenants) {
  SKIP_IF_OBS_OFF();
  ServiceOptions sopts;
  sopts.tenant_defaults = small_funnel("");
  FunnelService service(std::move(sopts));
  TenantOptions greedy = small_funnel("greedy");
  greedy.quota.rate_per_sec = 0.001;  // effectively no refill in-test
  greedy.quota.burst = 4.0;
  service.add_tenant(std::move(greedy));
  service.add_tenant("steady");
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;
  const int port = service.port();

  // First batch: larger than the burst, admitted against the full bucket
  // (debt semantics) — the door opens once.
  EXPECT_EQ(status_of(post(port, "/v1/ingest/greedy",
                           sample_lines(0, 10, 1))),
            200);
  // Second batch: the bucket is deep in debt -> 429 with a Retry-After.
  const std::string refused =
      post(port, "/v1/ingest/greedy", sample_lines(10, 20, 1));
  EXPECT_EQ(status_of(refused), 429);
  EXPECT_NE(refused.find("Retry-After:"), std::string::npos);
  EXPECT_NE(body_of(refused).find("over-quota"), std::string::npos)
      << body_of(refused);

  // The unlimited neighbour is untouched by greedy's refusals.
  EXPECT_EQ(status_of(post(port, "/v1/ingest/steady",
                           sample_lines(0, 10, 2))),
            200);
  service.stop();
}

TEST(FunnelService, QuarantineAnswers503AndFailsItsHealthCheckOnly) {
  SKIP_IF_OBS_OFF();
  ServiceOptions sopts;
  sopts.tenant_defaults = small_funnel("");
  FunnelService service(std::move(sopts));
  service.add_tenant("sick");
  service.add_tenant("fine");
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;
  const int port = service.port();

  EXPECT_EQ(status_of(get(port, "/healthz")), 200);
  EXPECT_EQ(status_of(post(port, "/v1/quarantine/sick", "drill-reason")),
            200);

  // Quarantined tenant: 503 carrying the machine-readable reason.
  const std::string refused = post(port, "/v1/ingest/sick", "svc,s,cpu,1,1\n");
  EXPECT_EQ(status_of(refused), 503);
  EXPECT_NE(body_of(refused).find("drill-reason"), std::string::npos);

  // /healthz degrades with per-tenant detail; the healthy tenant serves on.
  const std::string health = get(port, "/healthz");
  EXPECT_EQ(status_of(health), 503);
  EXPECT_NE(body_of(health).find("tenant:sick"), std::string::npos);
  EXPECT_NE(body_of(health).find("drill-reason"), std::string::npos);
  EXPECT_EQ(status_of(post(port, "/v1/ingest/fine", "svc,s,cpu,1,1\n")), 200);
  service.stop();
}

TEST(FunnelService, DynamicTenantsSpringIntoExistenceOnFirstPost) {
  SKIP_IF_OBS_OFF();
  ServiceOptions sopts;
  sopts.tenant_defaults = small_funnel("");
  sopts.allow_dynamic_tenants = true;
  FunnelService service(std::move(sopts));
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;
  const int port = service.port();

  EXPECT_EQ(service.tenant_count(), 0u);
  EXPECT_EQ(status_of(post(port, "/v1/ingest/new-tenant", "svc,s,cpu,1,1\n")),
            200);
  EXPECT_EQ(service.tenant_count(), 1u);
  // Dynamic creation is a POST-ingest/changes privilege: GETs still 404.
  EXPECT_EQ(status_of(get(port, "/v1/report/still-nobody")), 404);
  EXPECT_THROW(service.add_tenant("new-tenant"), InvalidArgument);
  service.stop();
}

}  // namespace
}  // namespace funnel::service
