// Ablation — what the §3.2.2 robustness work buys: classic SST vs the
// improved (eta-direction, Eq. 11-damped) variant vs the IKA-accelerated
// variant, across noise levels.
//
// The paper's claim: plain SST "degrades fast in terms of accuracy when the
// input time-series includes significant noises"; the improved score fixes
// that without losing detection power, and the Krylov approximation keeps
// the improved score's behavior.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "detect/sliding.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

namespace {

struct Outcome {
  int fa = 0;
  int detected = 0;
};

template <typename Scorer>
Outcome run(double noise, double threshold, int trials) {
  const detect::SstGeometry g{.omega = 9, .eta = 3};
  const detect::AlarmPolicy policy{
      .threshold = threshold, .persistence = 7, .patience = 10};
  Outcome out;
  for (int r = 0; r < trials; ++r) {
    workload::StationaryParams p;
    p.noise_sigma = noise;
    workload::KpiStream quiet(
        workload::make_stationary(p, Rng(100 + static_cast<unsigned>(r))));
    const auto qs = workload::render(quiet, 0, 240);
    Scorer s1(g);
    const auto q_scores = detect::score_series(s1, qs);
    for (const auto& a :
         detect::all_alarms(q_scores, s1.window_size(), 0, policy)) {
      if (a.minute >= 120) {
        ++out.fa;
        break;
      }
    }
    workload::KpiStream shifted(
        workload::make_stationary(p, Rng(300 + static_cast<unsigned>(r))));
    shifted.add_effect(workload::LevelShift{120, 5.0 * noise});
    const auto ss = workload::render(shifted, 0, 240);
    Scorer s2(g);
    const auto s_scores = detect::score_series(s2, ss);
    for (const auto& a :
         detect::all_alarms(s_scores, s2.window_size(), 0, policy)) {
      if (a.minute >= 120) {
        ++out.detected;
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const int trials = quick ? 15 : 40;
  bench::print_header(
      "Ablation: robustness of classic vs improved vs IKA SST");

  // Thresholds tuned per method (classic scores live in [0, 1]; improved
  // scores in robust-sigma units).
  Table t({"noise sigma", "method", "false alarms", "detected (5-sigma)"});
  for (double noise : {0.5, 1.0, 2.0, 4.0}) {
    const Outcome classic =
        run<detect::ClassicSst>(noise, 0.95, trials);
    const Outcome improved =
        run<detect::ImprovedSst>(noise, 0.4, trials);
    const Outcome ika = run<detect::IkaSst>(noise, 0.35, trials);
    auto row = [&](const char* name, const Outcome& o) {
      t.add_row({format_fixed(noise, 1), name,
                 std::to_string(o.fa) + "/" + std::to_string(trials),
                 std::to_string(o.detected) + "/" + std::to_string(trials)});
    };
    row("classic SST", classic);
    row("improved SST", improved);
    row("FUNNEL IKA-SST", ika);
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("expected shape: classic SST cannot separate shifts from "
              "noise at any level (high FA and/or low detection); the "
              "improved variants detect reliably with few false alarms, and "
              "IKA matches improved closely.\n");
  return 0;
}
