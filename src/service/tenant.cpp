#include "service/tenant.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "funnel/report_json.h"
#include "service/json.h"
#include "tsdb/persist/format.h"
#include "tsdb/persist/wal.h"

namespace funnel::service {
namespace {

namespace fs = std::filesystem;

/// Split on `sep`, keeping empty fields (a,,b -> 3 fields).
std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Split into at most `max_fields` pieces; the last piece keeps any further
/// separators verbatim (change descriptions may contain commas).
std::vector<std::string_view> splitn(std::string_view s, char sep,
                                     std::size_t max_fields) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (out.size() + 1 < max_fields) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  out.push_back(s.substr(start));
  return out;
}

bool parse_minute(std::string_view s, MinuteTime* out) {
  if (s.empty()) return false;
  MinuteTime value = 0;
  bool negative = false;
  std::size_t i = 0;
  if (s[0] == '-') {
    negative = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = negative ? -value : value;
  return true;
}

bool parse_value(std::string_view s, double* out) {
  if (s.empty() || s == "nan" || s == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

std::string_view trim_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

}  // namespace

Tenant::Tenant(TenantOptions options, const obs::Registry* stats)
    : options_(std::move(options)), stats_(stats) {
  bucket_.configure(options_.quota.rate_per_sec, options_.quota.burst);
  queue_share_ = std::clamp(options_.quota.queue_share, 0.0, 1.0);
  if (!options_.journal_path.empty()) {
    journal_path_ = options_.journal_path;
  } else if (!options_.data_dir.empty()) {
    journal_path_ = (fs::path(options_.data_dir) / "journal.jsonl").string();
  }
  if (options_.data_dir.empty()) {
    open_fresh();
    return;
  }
  try {
    recover();
  } catch (const tsdb::persist::StorageError& e) {
    // Degrade, don't die: the daemon's other tenants keep serving. This
    // tenant comes up fully in-memory and quarantined with the error as its
    // machine-readable reason; its on-disk state is left untouched for
    // offline forensics.
    online_.reset();
    store_.reset();
    journal_.reset();
    if (meta_ != nullptr) {
      std::fclose(meta_);
      meta_ = nullptr;
    }
    topo_ = topology::ServiceTopology{};
    log_ = changes::ChangeLog{};
    change_index_.clear();
    watched_.clear();
    recovered_seq_ = 0;
    applied_seq_ = 0;
    options_.data_dir.clear();
    journal_path_.clear();
    open_fresh();
    quarantined_ = true;
    quarantine_reason_ = std::string("recovery-failed: ") + e.what();
  }
}

Tenant::~Tenant() {
  // FunnelOnline references topo_/log_/store_/journal_: it must go first.
  online_.reset();
  store_.reset();
  journal_.reset();
  if (meta_ != nullptr) std::fclose(meta_);
}

void Tenant::open_fresh() {
  tsdb::StoreOptions sopts;
  sopts.num_shards = options_.num_shards;
  sopts.ingest_queue_capacity = options_.ingest_queue_capacity;
  sopts.backpressure = options_.backpressure;
  if (!options_.data_dir.empty()) {
    fs::create_directories(options_.data_dir);
    sopts.data_dir = options_.data_dir;
  }
  store_ = std::make_unique<tsdb::MetricStore>(sopts);
  if (!journal_path_.empty()) {
    journal_ = std::make_unique<obs::Journal>(journal_path_);
  }
  wire_online();
  if (!options_.data_dir.empty()) {
    meta_ = std::fopen(
        (fs::path(options_.data_dir) / "meta.log").string().c_str(), "ab");
  }
}

void Tenant::recover() {
  fs::create_directories(options_.data_dir);
  tsdb::StoreOptions sopts;
  sopts.num_shards = options_.num_shards;
  sopts.ingest_queue_capacity = options_.ingest_queue_capacity;
  sopts.backpressure = options_.backpressure;
  sopts.data_dir = options_.data_dir;
  sopts.hand_off_tail = true;
  store_ = std::make_unique<tsdb::MetricStore>(sopts);  // may throw

  // Topology + change registrations replay first, in original arrival
  // order, so every ChangeId comes out exactly as it was assigned live —
  // the WAL watch markers and journal events below reference them.
  replay_meta();

  if (!journal_path_.empty()) {
    // Rewind the journal to the checkpoint's event count; replaying the WAL
    // tail re-emits everything after it, byte for byte (the
    // funnel_persist_replay_test protocol).
    journal_base_ = obs::repair_journal(journal_path_,
                                        store_->recovered_journal_events());
    for (const obs::JournalEvent& ev : obs::read_journal(journal_path_)) {
      if (ev.source == "online") watched_.insert(ev.change_id);
    }
    obs::JournalOptions jopts;
    jopts.truncate = false;
    journal_ = std::make_unique<obs::Journal>(journal_path_, jopts);
  }

  wire_online();
  online_->restore_state(store_->recovered_watch_state());
  for (const changes::ChangeId id : online_->active_watch_ids()) {
    watched_.insert(id);
  }
  for (const tsdb::persist::WalRecord& rec : store_->recovered_tail()) {
    if (rec.type == tsdb::persist::WalRecordType::kWatch) {
      // A marker's change line always precedes it in meta.log (appended,
      // fflush-ed, *then* watched), so an id past the log means a torn
      // meta tail — skip rather than crash the whole tenant.
      if (rec.change_id < log_.size()) {
        online_->replay_watch(rec.change_id);
        watched_.insert(rec.change_id);
      }
    } else {
      store_->replay(rec);
    }
  }
  recovered_seq_ = store_->recovered_seq();
  applied_seq_ = recovered_seq_;
  meta_ = std::fopen(
      (fs::path(options_.data_dir) / "meta.log").string().c_str(), "ab");
}

void Tenant::wire_online() {
  core::FunnelConfig cfg = options_.funnel;
  cfg.stats = stats_;
  cfg.journal = journal_.get();
  online_ = std::make_unique<core::FunnelOnline>(cfg, topo_, log_, *store_);
  online_->on_report([this](const core::AssessmentReport& r) {
    const std::string json = core::to_json(r);
    std::lock_guard<std::mutex> guard(report_mutex_);
    reports_[r.change_id] = json;
  });
}

void Tenant::meta_append(const std::string& line) {
  if (meta_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), meta_);
  std::fputc('\n', meta_);
  // fflush before the action that depends on this line (add_server /
  // watch): once in the kernel page cache the line survives SIGKILL, so
  // anything later in the WAL can rely on it being replayable.
  std::fflush(meta_);
}

void Tenant::replay_meta() {
  std::ifstream in(fs::path(options_.data_dir) / "meta.log");
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view sv = trim_cr(line);
    if (sv.empty()) continue;
    try {
      if (sv.rfind("server,", 0) == 0) {
        const auto f = split(sv, ',');
        if (f.size() == 3) {
          topo_.add_server(std::string(f[1]), std::string(f[2]));
        }
      } else if (sv.rfind("change,", 0) == 0) {
        const auto f = splitn(sv, ',', 6);
        if (f.size() != 6) continue;
        MinuteTime time = 0;
        if (!parse_minute(f[1], &time)) continue;
        changes::SoftwareChange change;
        change.service = std::string(f[2]);
        change.mode = f[3] == "full" ? changes::LaunchMode::kFull
                                     : changes::LaunchMode::kDark;
        for (const std::string_view srv : split(f[4], ';')) {
          if (!srv.empty()) change.servers.emplace_back(srv);
        }
        change.time = time;
        change.description = std::string(f[5]);
        const changes::ChangeId id = log_.record(change, topo_);
        change_index_[{change.service, time, change.description}] = id;
      }
    } catch (const std::exception&) {
      // A torn trailing line (crash mid-append) or a registration whose
      // prerequisites were lost: skip it. Watch markers referencing it are
      // skipped too (recover() bounds-checks against log_.size()).
    }
  }
}

bool Tenant::admit(std::size_t n, double now_s, double* retry_after_s) {
  if (!bucket_.try_acquire(static_cast<double>(n), now_s, retry_after_s)) {
    return false;
  }
  // Queue-share cap: an admitted batch must fit into this tenant's share of
  // its own ingest queue on top of what is already backed up, bounding how
  // long an HTTP worker can sit in kBlock submit(). share == 1.0 (default)
  // disables the cap — kBlock drains batches larger than the queue fine.
  if (queue_share_ < 1.0) {
    const std::size_t cap = store_->queue_capacity();
    if (cap > 0 &&
        static_cast<double>(store_->queue_depth() + n) >
            queue_share_ * static_cast<double>(cap)) {
      if (retry_after_s != nullptr) *retry_after_s = 1.0;
      return false;
    }
  }
  return true;
}

void Tenant::update_quota(const QuotaConfig& quota) {
  options_.quota = quota;
  bucket_.configure(quota.rate_per_sec, quota.burst);
  queue_share_ = std::clamp(quota.queue_share, 0.0, 1.0);
}

void Tenant::quiesce_for_mutation(bool* done) {
  if (*done) return;
  *done = true;
  // Dispatcher callbacks (FunnelOnline::handle_sample -> finalize ->
  // identify_impact_set) read topo_/log_; drain them before mutating.
  store_->flush();
}

IngestResult Tenant::ingest(std::string_view body) {
  IngestResult res;
  if (quarantined_) {
    res.quarantined = true;
    return res;
  }
  bool quiesced = false;
  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t end = body.find('\n', start);
    const std::string_view raw =
        end == std::string_view::npos ? body.substr(start)
                                      : body.substr(start, end - start);
    start = end == std::string_view::npos ? body.size() + 1 : end + 1;
    const std::string_view line = trim_cr(raw);
    if (line.empty() || line[0] == '#') continue;

    const auto f = split(line, ',');
    MinuteTime minute = 0;
    double value = 0.0;
    if (f.size() != 5 || f[0].empty() || f[1].empty() || f[2].empty() ||
        !parse_minute(f[3], &minute) || !parse_value(f[4], &value)) {
      ++res.malformed;
      continue;
    }
    const std::string service(f[0]);
    const std::string server(f[1]);
    const std::string kpi(f[2]);

    if (!topo_.has_server(server)) {
      quiesce_for_mutation(&quiesced);
      try {
        topo_.add_server(service, server);
      } catch (const std::exception&) {
        ++res.malformed;  // e.g. server claimed by another service
        continue;
      }
      meta_append("server," + service + "," + server);
    }

    try {
      store_->append(tsdb::server_metric(server, kpi), minute, value);
    } catch (const tsdb::persist::StorageError& e) {
      malformed_lines_ += res.malformed;
      quarantine(std::string("store-error: ") + e.what());
      res.quarantined = true;
      return res;
    }
    ++res.accepted;
    ++applied_seq_;
    ++accepted_samples_;
    max_minute_ = std::max(max_minute_, minute);
  }

  malformed_lines_ += res.malformed;
  if (res.malformed > options_.max_malformed_per_batch) {
    std::ostringstream reason;
    reason << "dirty-feed: " << res.malformed
           << " malformed lines in one batch (limit "
           << options_.max_malformed_per_batch << ")";
    quarantine(reason.str());
    res.quarantined = true;
  }
  return res;
}

std::vector<changes::ChangeId> Tenant::register_changes(
    std::string_view body, std::size_t* malformed) {
  std::vector<changes::ChangeId> ids;
  if (quarantined_) return ids;
  bool quiesced = false;
  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t end = body.find('\n', start);
    const std::string_view raw =
        end == std::string_view::npos ? body.substr(start)
                                      : body.substr(start, end - start);
    start = end == std::string_view::npos ? body.size() + 1 : end + 1;
    const std::string_view line = trim_cr(raw);
    if (line.empty() || line[0] == '#') continue;

    const auto f = splitn(line, ',', 5);
    MinuteTime time = 0;
    if (f.size() != 5 || !parse_minute(f[0], &time) || f[1].empty() ||
        (f[2] != "dark" && f[2] != "full")) {
      if (malformed != nullptr) ++*malformed;
      ++malformed_lines_;
      continue;
    }
    const std::string service(f[1]);
    const std::string description(f[4]);

    changes::ChangeId id = 0;
    const auto key = std::make_tuple(service, time, description);
    const auto it = change_index_.find(key);
    if (it != change_index_.end()) {
      id = it->second;
    } else {
      changes::SoftwareChange change;
      change.service = service;
      change.time = time;
      change.mode = f[2] == "full" ? changes::LaunchMode::kFull
                                   : changes::LaunchMode::kDark;
      change.description = description;
      if (f[3] == "*") {
        if (topo_.has_service(service)) {
          change.servers = topo_.servers_of(service);
        }
      } else {
        for (const std::string_view srv : split(f[3], ';')) {
          if (!srv.empty()) change.servers.emplace_back(srv);
        }
      }
      quiesce_for_mutation(&quiesced);
      try {
        id = log_.record(change, topo_);
      } catch (const std::exception&) {
        if (malformed != nullptr) ++*malformed;
        ++malformed_lines_;
        continue;
      }
      change_index_[key] = id;
      // The change line must be durable (meta fflush) before the watch
      // marker can reference its id from the WAL.
      std::ostringstream meta;
      meta << "change," << time << ',' << service << ',' << f[2] << ','
           << join(change.servers, ';') << ',' << description;
      meta_append(meta.str());
    }

    if (watched_.insert(id).second) {
      quiesce_for_mutation(&quiesced);
      online_->watch(id);  // logs the WAL watch marker when persistent
      ++applied_seq_;
    }
    ids.push_back(id);
  }
  return ids;
}

std::string Tenant::report_json() {
  store_->flush();
  std::ostringstream out;
  out << "{\"tenant\":\"" << json_escape(options_.name) << "\""
      << ",\"quarantined\":" << (quarantined_ ? "true" : "false")
      << ",\"quarantine_reason\":\"" << json_escape(quarantine_reason_)
      << "\",\"active_watches\":" << online_->active_watches()
      << ",\"reports\":[";
  {
    std::lock_guard<std::mutex> guard(report_mutex_);
    bool first = true;
    for (const auto& [id, json] : reports_) {
      if (!first) out << ',';
      first = false;
      out << json;
    }
  }
  out << "]}";
  return out.str();
}

std::string Tenant::status_json() {
  std::ostringstream out;
  out << "{\"tenant\":\"" << json_escape(options_.name) << "\""
      << ",\"quarantined\":" << (quarantined_ ? "true" : "false")
      << ",\"quarantine_reason\":\"" << json_escape(quarantine_reason_)
      << "\",\"persistent\":" << (store_->persistent() ? "true" : "false")
      << ",\"recovered_seq\":" << recovered_seq_
      << ",\"applied_seq\":" << applied_seq_
      << ",\"accepted_samples\":" << accepted_samples_
      << ",\"malformed_lines\":" << malformed_lines_
      << ",\"quota_rejections\":" << quota_rejections_
      << ",\"busy_rejections\":" << busy_rejections_
      << ",\"queue_depth\":" << store_->queue_depth() << "}";
  return out.str();
}

void Tenant::checkpoint() {
  if (!store_->persistent()) return;
  store_->flush();
  if (journal_ != nullptr) journal_->flush();
  // A recovered journal is opened in append mode, so written() counts only
  // this incarnation's events; the checkpoint needs the count from the file
  // START or the next recovery's repair_journal() would truncate the
  // pre-crash prefix away (it keeps the first N events of the file).
  store_->checkpoint(online_->snapshot_state(),
                     journal_ != nullptr ? journal_base_ + journal_->written()
                                         : 0);
}

std::size_t Tenant::maintenance(MinuteTime now) {
  store_->flush();
  return online_->expire(now);
}

void Tenant::quarantine(std::string reason) {
  if (quarantined_) return;
  quarantined_ = true;
  quarantine_reason_ = std::move(reason);
  // Force-finalize every watch: undetermined alarms become kInconclusive
  // with machine-readable reasons instead of hanging until the horizon.
  store_->flush();
  online_->expire(std::numeric_limits<MinuteTime>::max() / 2);
  try {
    checkpoint();
  } catch (const tsdb::persist::StorageError&) {
    // Quarantine must not throw; the durable state simply stays older.
  }
  if (journal_ != nullptr) journal_->flush();
}

std::size_t Tenant::active_watches() {
  store_->flush();
  return online_->active_watches();
}

}  // namespace funnel::service
