// ROC-curve generation (§4.1 notes the threshold/ROC methodology; this
// utility makes the sweep explicit).
#pragma once

#include <string>
#include <vector>

#include "evalkit/dataset.h"
#include "evalkit/evaluate.h"

namespace funnel::evalkit {

struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  ///< recall
  double fpr = 0.0;  ///< 1 - TNR
  double precision = 0.0;
  double accuracy = 0.0;
};

/// Sweep the alarm threshold of a detection-only method over the dataset
/// and return one ROC point per threshold (item protocol of §4.2).
std::vector<RocPoint> detector_roc(const EvalDataset& ds,
                                   const DetectorSpec& base,
                                   std::span<const double> thresholds,
                                   std::uint64_t negative_scale = 1);

/// Trapezoidal area under the (fpr, tpr) curve; points are sorted by fpr
/// internally and the curve is anchored at (0,0) and (1,1).
double auc(std::vector<RocPoint> points);

}  // namespace funnel::evalkit
