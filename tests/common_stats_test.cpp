// Unit and property tests for the shared descriptive statistics.
#include "common/stats.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace funnel {
namespace {

TEST(Mean, BasicAndEmpty) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.5}), 7.5);
}

TEST(Variance, MatchesHandComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance is 4; sample variance = 4 * 8/7.
  EXPECT_NEAR(variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(4.0 * 8.0 / 7.0), 1e-12);
}

TEST(Variance, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0, 3.0, 3.0}), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5.0}), 5.0);
}

TEST(Median, DoesNotMutateInput) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const std::vector<double> copy = xs;
  (void)median(xs);
  EXPECT_EQ(xs, copy);
}

TEST(Median, ThrowsOnEmpty) {
  EXPECT_THROW((void)median(std::vector<double>{}), InvalidArgument);
}

TEST(Median, RobustToOneOutlier) {
  std::vector<double> xs(21, 10.0);
  xs[0] = 1e9;
  EXPECT_DOUBLE_EQ(median(xs), 10.0);
}

TEST(Mad, KnownValues) {
  // median = 2, deviations {1,0,1,2,7} -> median 1.
  EXPECT_DOUBLE_EQ(mad(std::vector<double>{1.0, 2.0, 3.0, 4.0, 9.0}), 1.0);
  EXPECT_DOUBLE_EQ(mad(std::vector<double>{5.0, 5.0, 5.0}), 0.0);
}

TEST(MadSigma, ConsistentForGaussian) {
  Rng rng(1234);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.gaussian(10.0, 3.0);
  EXPECT_NEAR(mad_sigma(xs), 3.0, 0.1);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_NEAR(quantile(xs, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(Quantile, ValidatesInput) {
  EXPECT_THROW((void)quantile(std::vector<double>{}, 0.5), InvalidArgument);
  EXPECT_THROW((void)quantile(std::vector<double>{1.0}, 1.5), InvalidArgument);
  EXPECT_THROW((void)quantile(std::vector<double>{1.0}, -0.1), InvalidArgument);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{2.0}, 0.7), 2.0);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  std::vector<double> down = up;
  std::reverse(down.begin(), down.end());
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Correlation, ConstantSideIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(correlation(xs, c), 0.0);
}

TEST(Correlation, RequiresEqualLengths) {
  EXPECT_THROW(
      (void)correlation(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
      InvalidArgument);
}

TEST(MinMax, BasicsAndErrors) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
  EXPECT_THROW((void)min_value(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW((void)max_value(std::vector<double>{}), InvalidArgument);
}

TEST(RobustStandardize, CentersAndScales) {
  Rng rng(99);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.gaussian(42.0, 7.0);
  const std::vector<double> z = robust_standardize(xs);
  EXPECT_NEAR(median(z), 0.0, 0.05);
  EXPECT_NEAR(mad_sigma(z), 1.0, 0.05);
}

TEST(RobustStandardize, ConstantSeriesCentersOnly) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  const std::vector<double> z = robust_standardize(xs);
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RobustStandardize, EmptyInput) {
  EXPECT_TRUE(robust_standardize(std::vector<double>{}).empty());
}

TEST(AllFinite, DetectsNanAndInf) {
  EXPECT_TRUE(all_finite(std::vector<double>{1.0, 2.0}));
  EXPECT_FALSE(all_finite(std::vector<double>{1.0, std::nan("")}));
  EXPECT_FALSE(all_finite(std::vector<double>{1.0, INFINITY}));
  EXPECT_TRUE(all_finite(std::vector<double>{}));
}

TEST(Ccdf, CountsStrictlyGreater) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> grid{0.0, 1.0, 2.5, 4.0};
  const std::vector<double> c = ccdf(xs, grid);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.75);
  EXPECT_DOUBLE_EQ(c[2], 0.5);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
}

TEST(Ccdf, EmptySample) {
  const std::vector<double> grid{0.0, 1.0};
  const std::vector<double> c = ccdf(std::vector<double>{}, grid);
  EXPECT_EQ(c, (std::vector<double>{0.0, 0.0}));
}

// Property sweep: for Gaussian samples of varying size and scale, median is
// close to the mean and MAD-sigma to the true sigma.
class StatsGaussianProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(StatsGaussianProperty, RobustEstimatorsAgreeWithMoments) {
  const auto [n, sigma] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + sigma * 10));
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = rng.gaussian(5.0, sigma);
  const double tol = 6.0 * sigma / std::sqrt(static_cast<double>(n));
  EXPECT_NEAR(median(xs), 5.0, tol);
  EXPECT_NEAR(mean(xs), 5.0, tol);
  EXPECT_NEAR(mad_sigma(xs), sigma, 8.0 * sigma / std::sqrt(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StatsGaussianProperty,
    ::testing::Combine(::testing::Values(100, 1000, 10000),
                       ::testing::Values(0.5, 2.0, 10.0)));

// Property: quantile is monotone in q.
class QuantileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotone, NonDecreasingInQ) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs(200);
  for (double& x : xs) x = rng.uniform(-10.0, 10.0);
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone, ::testing::Range(1, 6));

}  // namespace
}  // namespace funnel
