// Example: catching an *unexpected* regression online (§5.2 scenario).
//
// An ad-serving upgrade silently breaks the anti-cheating check for iPhone
// browsers and the seasonal "effective clicks" KPI collapses. The streaming
// assessor is watching: it pages the operations team minutes after the
// upgrade — production ops took 1.5 hours to notice the same incident
// manually.
#include <cstdio>
#include <memory>
#include <vector>

#include "changes/change_log.h"
#include "funnel/online.h"
#include "topology/topology.h"
#include "tsdb/store.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

int main() {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;

  const std::string svc = "ads.serving";
  std::vector<std::string> servers;
  for (int i = 0; i < 6; ++i) {
    servers.push_back("ads-" + std::to_string(i));
    topo.add_server(svc, servers.back());
  }

  const MinuteTime tc = 31 * kMinutesPerDay + 650;
  Rng rng(17);

  // Stream objects kept alive so post-change samples can be appended live.
  std::vector<std::pair<tsdb::MetricId,
                        std::unique_ptr<workload::KpiStream>>> streams;
  for (const auto& s : servers) {
    workload::SeasonalParams p;
    p.base = 100.0;
    p.daily_amplitude = 45.0;
    p.noise_sigma = 2.5;
    auto stream = std::make_unique<workload::KpiStream>(
        workload::make_seasonal(p, rng.split()));
    stream->add_effect(workload::LevelShift{tc, -40.0});  // the silent bug
    const tsdb::MetricId m = tsdb::instance_metric(
        topology::instance_name(svc, s), "effective_clicks");
    tsdb::TimeSeries history(0);
    for (MinuteTime t = 0; t < tc; ++t) history.append(stream->sample(t));
    store.insert(m, std::move(history));
    streams.emplace_back(m, std::move(stream));
  }

  changes::SoftwareChange change;
  change.type = changes::ChangeType::kSoftwareUpgrade;
  change.service = svc;
  change.servers = servers;
  change.time = tc;
  change.mode = changes::LaunchMode::kFull;
  change.description = "ad-serving performance upgrade";
  const changes::ChangeId id = log.record(change, topo);

  core::FunnelOnline online(core::FunnelConfig{}, topo, log, store);
  bool paged = false;
  online.on_verdict([&](changes::ChangeId, const core::ItemVerdict& v) {
    if (!paged && v.alarm) {
      std::printf(">>> PAGE: %s changed %lld min after the upgrade "
                  "(alpha=%.1f) — investigate / roll back!\n",
                  v.metric.to_string().c_str(),
                  static_cast<long long>(v.alarm->minute - tc),
                  v.did_fit ? v.did_fit->alpha : 0.0);
      paged = true;
    }
  });
  online.on_report([&](const core::AssessmentReport& r) {
    std::printf("\nfinal report:\n%s", r.summary().c_str());
  });
  online.watch(id);

  // The world keeps producing samples, one minute at a time.
  for (MinuteTime t = tc; t < tc + 61; ++t) {
    for (auto& [m, stream] : streams) store.append(m, t, stream->sample(t));
  }

  std::printf("\nmanual assessment of this incident took ~90 minutes in "
              "production; FUNNEL paged %s.\n",
              paged ? "within minutes" : "never (unexpected!)");
  return paged ? 0 : 1;
}
