// Unit tests for the triage layer (src/triage): scorecard arithmetic and
// nearest-rank percentiles, blame clustering / scoring / tie-breaking,
// rule-mining support and confidence semantics, event-order insensitivity
// of the whole report, the explain-report splice fragment, and the golden
// journal fixture under tests/data/.
#include "triage/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "triage/blame.h"
#include "triage/rules.h"
#include "triage/scorecard.h"

namespace funnel::triage {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

obs::JournalEvent make_event(std::uint64_t change_id, MinuteTime change_time,
                             const std::string& service,
                             const std::string& kpi,
                             const std::string& cause) {
  obs::JournalEvent e;
  e.source = "batch";
  e.change_id = change_id;
  e.change_time = change_time;
  e.service = service;
  e.change_type = "software-upgrade";
  e.launch_mode = "full-launching";
  e.metric = "server:s1/" + kpi;
  e.entity_kind = "server";
  e.kpi = kpi;
  e.cause = cause;
  e.detected = (cause != "no-kpi-change");
  return e;
}

obs::JournalEvent regression(std::uint64_t change_id, MinuteTime change_time,
                             const std::string& service,
                             const std::string& kpi, MinuteTime alarm_minute,
                             double alpha_scaled) {
  obs::JournalEvent e =
      make_event(change_id, change_time, service, kpi, "software-change");
  e.alarm_minute = alarm_minute;
  e.sst_peak = 1.0;
  e.did_alpha = alpha_scaled / 2.0;
  e.did_alpha_scaled = alpha_scaled;
  e.did_t_stat = 8.0;
  e.did_n_treated = 2;
  e.did_n_control = 2;
  e.control_kind = "dark-launch-siblings";
  return e;
}

TEST(Scorecard, FoldsCountsAndRates) {
  ScorecardBuilder cards;
  cards.observe(regression(1, 100, "cache", "mem", 103, 4.0));
  cards.observe(make_event(1, 100, "cache", "cpu", "no-kpi-change"));
  obs::JournalEvent inc = make_event(1, 100, "cache", "rt", "inconclusive");
  inc.inconclusive_reason = "control-group-empty";
  cards.observe(inc);
  obs::JournalEvent fb = regression(2, 500, "web", "mem", 505, 2.0);
  fb.fallback_control = true;
  fb.control_kind = "seasonal-window";
  cards.observe(fb);

  const Scorecard total = cards.totals();
  EXPECT_EQ(total.key, "total");
  EXPECT_EQ(total.events, 4u);
  EXPECT_EQ(total.detected, 3u);
  EXPECT_EQ(total.regressions, 2u);
  EXPECT_EQ(total.inconclusive, 1u);
  EXPECT_EQ(total.fallback_control, 1u);
  EXPECT_EQ(total.did_runs, 2u);
  EXPECT_DOUBLE_EQ(total.regression_rate(), 0.5);
  EXPECT_DOUBLE_EQ(total.inconclusive_rate(), 0.25);
  EXPECT_DOUBLE_EQ(total.fallback_rate(), 0.25);
  ASSERT_EQ(total.inconclusive_by_reason.size(), 1u);
  EXPECT_EQ(total.inconclusive_by_reason.at("control-group-empty"), 1u);

  const std::vector<Scorecard> services = cards.by_service();
  ASSERT_EQ(services.size(), 2u);
  EXPECT_EQ(services[0].key, "cache");  // sorted by name
  EXPECT_EQ(services[0].events, 3u);
  EXPECT_EQ(services[0].regressions, 1u);
  EXPECT_EQ(services[1].key, "web");
  EXPECT_EQ(services[1].events, 1u);

  const std::vector<Scorecard> kpis = cards.by_kpi();
  ASSERT_EQ(kpis.size(), 3u);
  EXPECT_EQ(kpis[0].key, "cpu");
  EXPECT_EQ(kpis[1].key, "mem");
  EXPECT_EQ(kpis[1].regressions, 2u);
  EXPECT_EQ(kpis[2].key, "rt");
}

TEST(Scorecard, NearestRankPercentiles) {
  ScorecardBuilder cards;
  // Feed deliberately out of order; the builder keeps the vector sorted.
  for (const MinuteTime ttv : {40, 5, 20, 10}) {
    obs::JournalEvent e = regression(1, 100, "cache", "mem", 100 + ttv, 1.0);
    e.source = "online";
    e.determined_at = 100 + ttv;
    e.time_to_verdict = ttv;
    cards.observe(e);
  }
  const Scorecard total = cards.totals();
  ASSERT_EQ(total.time_to_verdict,
            (std::vector<MinuteTime>{5, 10, 20, 40}));
  EXPECT_EQ(total.ttv_p50(), 10);
  EXPECT_EQ(total.ttv_p95(), 40);
  EXPECT_EQ(total.ttv_percentile(0.0), 5);
  EXPECT_EQ(total.ttv_percentile(1.0), 40);

  const Scorecard untimed;
  EXPECT_EQ(untimed.ttv_p50(), 0);
}

TEST(Blame, ScoresProximityTimesEffect) {
  // Change 1 regresses two KPIs: one alarm 3' after the deploy (proximity
  // 0.95), one 30' after (0.5). Change 2, 10' later in the same window,
  // regresses nothing.
  std::vector<obs::JournalEvent> events;
  events.push_back(regression(1, 1000, "cache", "mem", 1003, 4.0));
  events.push_back(regression(1, 1000, "cache", "rt", 1030, 2.0));
  events.push_back(make_event(2, 1010, "web", "mem", "no-kpi-change"));

  const auto clusters = rank_blame(events, BlameOptions{60});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].start, 1000);
  EXPECT_EQ(clusters[0].end, 1010);
  ASSERT_EQ(clusters[0].ranking.size(), 2u);

  const BlamedChange& top = clusters[0].ranking[0];
  EXPECT_EQ(top.change_id, 1u);
  EXPECT_EQ(top.regressions, 2u);
  EXPECT_EQ(top.kpis_assessed, 2u);
  EXPECT_DOUBLE_EQ(top.score, 0.95 * 4.0 + 0.5 * 2.0);
  EXPECT_NE(top.explanation.find("server:s1/mem"), std::string::npos)
      << top.explanation;  // the 3.8-contribution alarm is the headline

  const BlamedChange& bottom = clusters[0].ranking[1];
  EXPECT_EQ(bottom.change_id, 2u);
  EXPECT_DOUBLE_EQ(bottom.score, 0.0);
  EXPECT_EQ(bottom.explanation, "no regression events attributed");
}

TEST(Blame, ProximityFloorsInsideWindowAndFallsBackToSstPeak) {
  std::vector<obs::JournalEvent> events;
  // Alarm at the end of the window: linear decay would hit 0; the floor
  // keeps live-change evidence at 0.1.
  events.push_back(regression(1, 0, "cache", "mem", 60, 4.0));
  // No DiD fit: the damped SST peak is the effect.
  obs::JournalEvent sst_only = make_event(2, 200, "web", "rt",
                                          "software-change");
  sst_only.alarm_minute = 200;
  sst_only.sst_peak = 3.0;
  events.push_back(sst_only);

  const auto clusters = rank_blame(events, BlameOptions{60});
  ASSERT_EQ(clusters.size(), 2u);
  ASSERT_EQ(clusters[0].ranking.size(), 1u);
  EXPECT_DOUBLE_EQ(clusters[0].ranking[0].score, 0.1 * 4.0);
  ASSERT_EQ(clusters[1].ranking.size(), 1u);
  EXPECT_DOUBLE_EQ(clusters[1].ranking[0].score, 1.0 * 3.0);
}

TEST(Blame, ChainedOverlapIsTransitiveAndGapsSplit) {
  std::vector<obs::JournalEvent> events;
  // 0 and 50 overlap; 50 and 100 overlap; 0 and 100 do not directly, but
  // the chain pulls all three into one cluster. 300 stands alone.
  for (const MinuteTime t : {0, 50, 100, 300}) {
    events.push_back(make_event(static_cast<std::uint64_t>(t + 1), t, "svc",
                                "mem", "no-kpi-change"));
  }
  const auto clusters = rank_blame(events, BlameOptions{60});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].ranking.size(), 3u);
  EXPECT_EQ(clusters[0].start, 0);
  EXPECT_EQ(clusters[0].end, 100);
  EXPECT_EQ(clusters[1].ranking.size(), 1u);
  EXPECT_EQ(clusters[1].start, 300);
}

TEST(Blame, ExactTiesGoToEarlierDeploymentAndAreStated) {
  std::vector<obs::JournalEvent> events;
  events.push_back(regression(8, 1005, "web", "mem", 1010, 3.0));
  events.push_back(regression(3, 1000, "cache", "mem", 1005, 3.0));

  const auto clusters = rank_blame(events, BlameOptions{60});
  ASSERT_EQ(clusters.size(), 1u);
  ASSERT_EQ(clusters[0].ranking.size(), 2u);
  // Identical (proximity × effect): 5' lag in a 60' window both times.
  ASSERT_DOUBLE_EQ(clusters[0].ranking[0].score,
                   clusters[0].ranking[1].score);
  EXPECT_EQ(clusters[0].ranking[0].change_id, 3u);
  EXPECT_NE(clusters[0].ranking[0].explanation.find(
                "tied with change 8, earlier deployment ranked first"),
            std::string::npos)
      << clusters[0].ranking[0].explanation;
  EXPECT_EQ(clusters[0].ranking[1].explanation.find("tied"),
            std::string::npos);
}

TEST(Rules, SupportAndConfidenceConditionOnAssessedKpi) {
  std::vector<obs::JournalEvent> events;
  // Three config changes to "cache" regress mem twice and leave it alone
  // once; cpu was assessed three times, never regressed.
  for (int i = 0; i < 3; ++i) {
    obs::JournalEvent mem =
        i < 2 ? regression(static_cast<std::uint64_t>(i), i * 10, "cache",
                           "mem", i * 10 + 3, 2.0)
              : make_event(2, 20, "cache", "mem", "no-kpi-change");
    mem.change_type = "config-change";
    events.push_back(mem);
    obs::JournalEvent cpu = make_event(static_cast<std::uint64_t>(i), i * 10,
                                       "cache", "cpu", "no-kpi-change");
    cpu.change_type = "config-change";
    events.push_back(cpu);
  }

  RuleOptions opt;
  opt.min_support = 2;
  opt.min_confidence = 0.5;
  const auto rules = mine_rules(events, opt);
  ASSERT_FALSE(rules.empty());
  // Every surviving rule concerns mem (cpu has zero support), with
  // support 2 of 3 assessed.
  for (const TriageRule& r : rules) {
    EXPECT_EQ(r.kpi, "mem");
    EXPECT_EQ(r.support, 2u);
    EXPECT_EQ(r.assessed, 3u);
    EXPECT_DOUBLE_EQ(r.confidence, 2.0 / 3.0);
    EXPECT_GE(r.antecedent.size(), 1u);
    EXPECT_LE(r.antecedent.size(), 2u);
    EXPECT_TRUE(std::is_sorted(r.antecedent.begin(), r.antecedent.end()));
  }
  // 3 singles + 3 pairs over identical metadata all qualify.
  EXPECT_EQ(rules.size(), 6u);

  opt.min_support = 3;
  EXPECT_TRUE(mine_rules(events, opt).empty());
  opt.min_support = 2;
  opt.min_confidence = 0.7;
  EXPECT_TRUE(mine_rules(events, opt).empty());
  opt.min_confidence = 0.5;
  opt.max_rules = 2;
  EXPECT_EQ(mine_rules(events, opt).size(), 2u);
}

std::vector<obs::JournalEvent> mixed_stream() {
  std::vector<obs::JournalEvent> events;
  events.push_back(regression(1, 1000, "cache", "mem", 1003, 4.0));
  events.push_back(regression(1, 1000, "cache", "rt", 1030, 2.0));
  events.push_back(make_event(2, 1010, "web", "mem", "no-kpi-change"));
  obs::JournalEvent inc = make_event(2, 1010, "web", "rt", "inconclusive");
  inc.inconclusive_reason = "gap-in-detection-window";
  events.push_back(inc);
  obs::JournalEvent timed = regression(3, 2000, "web", "mem", 2013, 3.0);
  timed.source = "online";
  timed.determined_at = 2013;
  timed.time_to_verdict = 13;
  events.push_back(timed);
  return events;
}

TEST(TriageEngine, ReportInsensitiveToEventOrder) {
  const std::vector<obs::JournalEvent> events = mixed_stream();
  TriageEngine forward;
  for (const auto& e : events) forward.observe(e);

  std::vector<obs::JournalEvent> shuffled = events;
  std::reverse(shuffled.begin(), shuffled.end());
  std::rotate(shuffled.begin(), shuffled.begin() + 2, shuffled.end());
  TriageEngine scrambled;
  for (const auto& e : shuffled) scrambled.observe(e);

  EXPECT_EQ(to_json(forward.report()), to_json(scrambled.report()));
  EXPECT_EQ(forward.report().totals, scrambled.report().totals);
}

TEST(TriageEngine, ChangeSummarySpliceFragment) {
  TriageEngine engine;
  for (const auto& e : mixed_stream()) engine.observe(e);
  const TriageReport report = engine.report();

  const std::string top = change_summary_json(report, 1);
  EXPECT_EQ(top.find("{\"rank\":1,"), 0u) << top;
  EXPECT_NE(top.find("\"regressions\":2"), std::string::npos) << top;
  EXPECT_NE(top.find("\"cluster_changes\":2"), std::string::npos) << top;
  const std::string second = change_summary_json(report, 2);
  EXPECT_EQ(second.find("{\"rank\":2,"), 0u) << second;
  EXPECT_EQ(change_summary_json(report, 999), "null");
}

TEST(TriageEngine, MarkdownCarriesEverySection) {
  TriageEngine engine;
  for (const auto& e : mixed_stream()) engine.observe(e);
  const std::string md = to_markdown(engine.report());
  for (const char* needle :
       {"# Triage report", "## Service scorecards", "## KPI scorecards",
        "## Inconclusive verdicts by reason", "## Blame ranking",
        "### Changes deployed in [1000, 1010]", "## Mined rules",
        "`gap-in-detection-window`: 1"}) {
    EXPECT_NE(md.find(needle), std::string::npos) << needle;
  }
}

// The golden fixture: a hand-written journal under tests/data/ and the
// exact JSON report it must yield. Regenerate with
//   funnel_triage tests/data/triage_journal.jsonl
//                 --json tests/data/triage_golden.json
// and review the diff — this pins the whole rendered schema.
TEST(TriageEngine, GoldenFixtureReproducesExactly) {
  const std::string dir = FUNNEL_TEST_DATA_DIR;
  std::size_t bad_lines = 0;
  bool ok = false;
  const auto events =
      obs::read_journal(dir + "/triage_journal.jsonl", &bad_lines, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(bad_lines, 0u);
  ASSERT_FALSE(events.empty());

  TriageEngine engine;
  for (const auto& e : events) engine.observe(e);
  const std::string expected = slurp(dir + "/triage_golden.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(to_json(engine.report()) + "\n", expected);
}

}  // namespace
}  // namespace funnel::triage
