# Smoke check for the journal-overhead benchmark: runs bench/journal_overhead
# in --quick mode, validates the BENCH_journal.json shape, and enforces the
# acceptance bar from docs/TRIAGE.md — attaching the verdict journal costs
# < 2% on assess_window (overhead_ratio < 1.02) and sheds nothing under the
# default lossless policy (dropped == 0).
#
# Invoked by ctest as:
#   cmake -DBENCH=<journal_overhead> -DWORK_DIR=<scratch dir>
#         -P journal_bench_smoke.cmake

foreach(var BENCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(json_path "${WORK_DIR}/BENCH_journal.json")

# A CI machine under load can push even the median pair ratio past the
# bar; a couple of retries keep the gate meaningful without making it flaky.
foreach(attempt RANGE 1 3)
  execute_process(
    COMMAND "${BENCH}" --quick --json "${json_path}"
    OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "journal_overhead failed (${rc}): ${err}")
  endif()
  file(READ "${json_path}" json)
  string(JSON ratio ERROR_VARIABLE jerr GET "${json}" overhead_ratio)
  if(NOT jerr AND ratio LESS 1.02)
    break()
  endif()
  message(STATUS "attempt ${attempt}: overhead_ratio=${ratio}, retrying")
endforeach()

string(JSON verdicts ERROR_VARIABLE jerr GET "${json}" workload verdicts_per_run)
if(jerr)
  message(FATAL_ERROR "BENCH_journal.json did not parse: ${jerr}")
endif()
if(verdicts LESS 1)
  message(FATAL_ERROR "workload.verdicts_per_run must be positive, got ${verdicts}")
endif()

foreach(key off_us_per_verdict on_us_per_verdict overhead_ratio)
  string(JSON v ERROR_VARIABLE jerr GET "${json}" ${key})
  if(jerr)
    message(FATAL_ERROR "${key} missing: ${jerr}")
  endif()
  if(v LESS_EQUAL 0)
    message(FATAL_ERROR "${key} must be > 0, got ${v}")
  endif()
endforeach()

string(JSON dropped GET "${json}" journal dropped)
if(NOT dropped EQUAL 0)
  message(FATAL_ERROR "journal dropped ${dropped} events under kBlock — lossless policy broken")
endif()

# FUNNEL_OBS=OFF builds journal nothing (events 0); the overhead bar only
# means something when events actually flowed.
string(JSON events GET "${json}" journal events_per_run)
string(JSON ratio GET "${json}" overhead_ratio)
if(events GREATER 0 AND ratio GREATER_EQUAL 1.02)
  message(FATAL_ERROR
    "journal overhead ratio ${ratio} >= 1.02 — the hot path is paying for the journal")
endif()

message(STATUS "journal_bench_smoke OK: overhead_ratio=${ratio}, "
               "events_per_run=${events}")
