#include "topology/topology.h"

#include <algorithm>
#include <deque>

#include "common/error.h"
#include "common/strings.h"

namespace funnel::topology {

std::string instance_name(const std::string& service,
                          const std::string& server) {
  return service + "@" + server;
}

std::pair<std::string, std::string> parse_instance_name(
    const std::string& instance) {
  const std::size_t at = instance.find('@');
  FUNNEL_REQUIRE(at != std::string::npos && at > 0 && at + 1 < instance.size(),
                 "malformed instance name: " + instance);
  return {instance.substr(0, at), instance.substr(at + 1)};
}

void ServiceTopology::add_service(const std::string& service) {
  FUNNEL_REQUIRE(!service.empty(), "service name must not be empty");
  servers_.try_emplace(service);
  relations_.try_emplace(service);
}

void ServiceTopology::add_server(const std::string& service,
                                 const std::string& server) {
  FUNNEL_REQUIRE(!server.empty(), "server name must not be empty");
  add_service(service);
  const auto it = server_owner_.find(server);
  if (it != server_owner_.end()) {
    FUNNEL_REQUIRE(it->second == service,
                   "server " + server + " already owned by " + it->second);
    return;
  }
  server_owner_.emplace(server, service);
  servers_[service].push_back(server);
}

void ServiceTopology::add_relation(const std::string& a,
                                   const std::string& b) {
  FUNNEL_REQUIRE(a != b, "a service cannot relate to itself");
  add_service(a);
  add_service(b);
  relations_[a].insert(b);
  relations_[b].insert(a);
}

void ServiceTopology::derive_relations_from_names() {
  // A child is exactly one dot-segment deeper than its parent.
  std::vector<std::string> names;
  names.reserve(servers_.size());
  for (const auto& [name, v] : servers_) {
    (void)v;
    names.push_back(name);
  }
  for (const std::string& child : names) {
    const std::size_t dot = child.rfind('.');
    if (dot == std::string::npos) continue;
    const std::string parent = child.substr(0, dot);
    if (servers_.contains(parent)) add_relation(parent, child);
  }
}

bool ServiceTopology::has_service(const std::string& service) const {
  return servers_.contains(service);
}

bool ServiceTopology::has_server(const std::string& server) const {
  return server_owner_.contains(server);
}

std::vector<std::string> ServiceTopology::services() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [name, v] : servers_) {
    (void)v;
    out.push_back(name);
  }
  return out;
}

const std::vector<std::string>& ServiceTopology::servers_of(
    const std::string& service) const {
  const auto it = servers_.find(service);
  if (it == servers_.end()) throw NotFound("no such service: " + service);
  return it->second;
}

std::vector<std::string> ServiceTopology::instances_of(
    const std::string& service) const {
  const auto& srv = servers_of(service);
  std::vector<std::string> out;
  out.reserve(srv.size());
  for (const std::string& s : srv) out.push_back(instance_name(service, s));
  return out;
}

const std::string& ServiceTopology::service_of_server(
    const std::string& server) const {
  const auto it = server_owner_.find(server);
  if (it == server_owner_.end()) throw NotFound("no such server: " + server);
  return it->second;
}

std::vector<std::string> ServiceTopology::related_to(
    const std::string& service) const {
  const auto it = relations_.find(service);
  if (it == relations_.end()) throw NotFound("no such service: " + service);
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> ServiceTopology::affected_services(
    const std::string& changed) const {
  FUNNEL_REQUIRE(has_service(changed), "no such service: " + changed);
  std::set<std::string> seen{changed};
  std::deque<std::string> frontier{changed};
  while (!frontier.empty()) {
    const std::string cur = frontier.front();
    frontier.pop_front();
    const auto it = relations_.find(cur);
    if (it == relations_.end()) continue;
    for (const std::string& next : it->second) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  seen.erase(changed);
  return {seen.begin(), seen.end()};
}

}  // namespace funnel::topology
