#include "workload/faults.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace funnel::workload {
namespace {

// One "kind=rate" or "kind=ratexN" clause.
void apply_clause(FaultSpec& spec, const std::string& clause) {
  const auto eq = clause.find('=');
  FUNNEL_REQUIRE(eq != std::string::npos && eq > 0,
                 "fault spec clause needs kind=rate: '" + clause + "'");
  const std::string kind = clause.substr(0, eq);
  std::string rate_str = clause.substr(eq + 1);
  std::size_t len = 0;
  const auto x = rate_str.find('x');
  if (x != std::string::npos) {
    try {
      len = static_cast<std::size_t>(std::stoul(rate_str.substr(x + 1)));
    } catch (const std::exception&) {
      throw InvalidArgument("fault spec: bad length in '" + clause + "'");
    }
    FUNNEL_REQUIRE(len >= 1, "fault spec: length must be >= 1 in '" +
                                 clause + "'");
    rate_str = rate_str.substr(0, x);
  }
  double rate = 0.0;
  try {
    std::size_t pos = 0;
    rate = std::stod(rate_str, &pos);
    FUNNEL_REQUIRE(pos == rate_str.size(), "trailing junk");
  } catch (const std::exception&) {
    throw InvalidArgument("fault spec: bad rate in '" + clause + "'");
  }
  FUNNEL_REQUIRE(rate >= 0.0 && rate <= 1.0,
                 "fault spec: rate must be in [0, 1] in '" + clause + "'");

  if (kind == "drop") {
    spec.drop_rate = rate;
  } else if (kind == "nan") {
    spec.nan_rate = rate;
    if (len > 0) spec.nan_burst = len;
  } else if (kind == "stuck") {
    spec.stuck_rate = rate;
    if (len > 0) spec.stuck_run = len;
  } else if (kind == "dup") {
    spec.duplicate_rate = rate;
  } else if (kind == "reorder") {
    spec.reorder_rate = rate;
  } else if (kind == "late") {
    spec.late_rate = rate;
    if (len > 0) spec.late_by = len;
  } else {
    throw InvalidArgument("fault spec: unknown kind '" + kind +
                          "' (want drop|nan|stuck|dup|reorder|late)");
  }
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  if (spec.empty() || spec == "none") return out;
  for (const std::string& clause : split(spec, ',')) {
    apply_clause(out, clause);
  }
  return out;
}

std::string to_string(const FaultSpec& spec) {
  std::ostringstream os;
  bool first = true;
  const auto clause = [&](const char* kind, double rate) -> std::ostream& {
    if (!first) os << ',';
    first = false;
    os << kind << '=' << rate;
    return os;
  };
  if (spec.drop_rate > 0.0) clause("drop", spec.drop_rate);
  if (spec.nan_rate > 0.0) clause("nan", spec.nan_rate) << 'x'
                                                        << spec.nan_burst;
  if (spec.stuck_rate > 0.0) clause("stuck", spec.stuck_rate)
      << 'x' << spec.stuck_run;
  if (spec.duplicate_rate > 0.0) clause("dup", spec.duplicate_rate);
  if (spec.reorder_rate > 0.0) clause("reorder", spec.reorder_rate);
  if (spec.late_rate > 0.0) clause("late", spec.late_rate) << 'x'
                                                           << spec.late_by;
  return first ? "none" : os.str();
}

std::vector<FaultDelivery> FaultInjector::push(MinuteTime t, double value) {
  // Fixed draw order per sample keeps the plan for a seed stable no matter
  // which outcomes fire.
  const bool hit_stuck = rng_.bernoulli(spec_.stuck_rate);
  const bool hit_nan = rng_.bernoulli(spec_.nan_rate);
  const bool hit_drop = rng_.bernoulli(spec_.drop_rate);
  const bool hit_dup = rng_.bernoulli(spec_.duplicate_rate);
  const bool hit_late = rng_.bernoulli(spec_.late_rate);
  const bool hit_reorder = rng_.bernoulli(spec_.reorder_rate);

  // Value faults: a wedged collector replays its latched reading; an agent
  // restart emits a burst of NaN.
  if (stuck_left_ > 0) {
    value = stuck_value_;
    --stuck_left_;
    ++stats_.stuck;
  } else if (hit_stuck && std::isfinite(value) && spec_.stuck_run > 1) {
    stuck_value_ = value;
    stuck_left_ = spec_.stuck_run - 1;  // this sample is the latched one
  }
  if (nan_left_ > 0) {
    value = std::numeric_limits<double>::quiet_NaN();
    --nan_left_;
    ++stats_.nans;
  } else if (hit_nan && spec_.nan_burst > 0) {
    value = std::numeric_limits<double>::quiet_NaN();
    nan_left_ = spec_.nan_burst - 1;
    ++stats_.nans;
  }

  std::vector<FaultDelivery> out;
  // Late samples whose delay has elapsed arrive ahead of this minute's.
  for (auto it = late_queue_.begin(); it != late_queue_.end();) {
    if (it->due <= pushes_) {
      out.push_back(it->d);
      it = late_queue_.erase(it);
    } else {
      ++it;
    }
  }

  const FaultDelivery d{t, value};
  bool delivered_now = false;
  if (hit_drop) {
    ++stats_.dropped;
  } else if (hit_late) {
    late_queue_.push_back({pushes_ + spec_.late_by, d});
    ++stats_.delayed;
  } else if (hit_reorder && !reorder_hold_) {
    reorder_hold_ = d;  // swaps with the next delivered sample
    ++stats_.reordered;
  } else {
    out.push_back(d);
    delivered_now = true;
  }
  if (delivered_now && hit_dup) {
    out.push_back(d);
    ++stats_.duplicated;
  }
  if (delivered_now && reorder_hold_ && reorder_hold_->minute != t) {
    out.push_back(*reorder_hold_);
    reorder_hold_.reset();
  }
  ++pushes_;
  return out;
}

std::vector<FaultDelivery> FaultInjector::drain() {
  std::vector<FaultDelivery> out;
  if (reorder_hold_) {
    out.push_back(*reorder_hold_);
    reorder_hold_.reset();
  }
  for (const Late& l : late_queue_) out.push_back(l.d);
  late_queue_.clear();
  return out;
}

tsdb::TimeSeries apply_faults(const tsdb::TimeSeries& clean,
                              FaultInjector& injector) {
  tsdb::TimeSeries out;
  const auto upsert_all = [&](const std::vector<FaultDelivery>& ds) {
    for (const FaultDelivery& d : ds) (void)out.upsert_at(d.minute, d.value);
  };
  MinuteTime t = clean.start_time();
  for (double v : clean.values()) {
    upsert_all(injector.push(t, v));
    ++t;
  }
  upsert_all(injector.drain());
  return out;
}

}  // namespace funnel::workload
