// Deterministic telemetry fault injection — the chaos layer.
//
// A FaultInjector wraps a KPI sample stream and reproduces the defects
// production collection pipelines actually exhibit: dropped samples, NaN
// bursts (agent restarts), stuck-at values (wedged collectors replaying
// their last reading), duplicated delivery, adjacent reordering and late
// arrival. Every decision is drawn from a seeded Rng in a fixed per-sample
// order, so a (spec, seed) pair defines one exact fault plan: the chaos
// harness replays it bit-identically, and an empty spec is a perfect
// pass-through (byte-identical downstream reports — the control cell of
// every chaos grid). See docs/ROBUSTNESS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/minute_time.h"
#include "common/rng.h"
#include "tsdb/series.h"

namespace funnel::workload {

/// What to inject, parsed from a spec string like
///   "drop=0.05,nan=0.02x4,stuck=0.01x8,dup=0.05,reorder=0.05,late=0.02x5"
/// (kind=rate, with xN giving the burst/run/delay length where one
/// applies). All rates default to 0 — an empty spec injects nothing.
struct FaultSpec {
  double drop_rate = 0.0;       ///< P(sample never delivered)
  double nan_rate = 0.0;        ///< P(a NaN burst starts here)
  std::size_t nan_burst = 4;    ///< samples per NaN burst
  double stuck_rate = 0.0;      ///< P(collector latches this value)
  std::size_t stuck_run = 8;    ///< samples repeating the latched value
  double duplicate_rate = 0.0;  ///< P(sample delivered twice)
  double reorder_rate = 0.0;    ///< P(sample swaps with its successor)
  double late_rate = 0.0;       ///< P(sample held back late_by samples)
  std::size_t late_by = 5;      ///< delivery delay in samples

  bool empty() const {
    return drop_rate == 0.0 && nan_rate == 0.0 && stuck_rate == 0.0 &&
           duplicate_rate == 0.0 && reorder_rate == 0.0 && late_rate == 0.0;
  }
};

/// Parse the spec-string format above. Unknown kinds, rates outside [0, 1]
/// and zero lengths throw InvalidArgument.
FaultSpec parse_fault_spec(const std::string& spec);

/// Canonical spec string (only non-zero kinds).
std::string to_string(const FaultSpec& spec);

/// One sample as (possibly) delivered to the ingest path.
struct FaultDelivery {
  MinuteTime minute = 0;
  double value = 0.0;
};

/// What the injector did so far — lets tests and tools report the realized
/// plan alongside the seed.
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t nans = 0;
  std::uint64_t stuck = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;

  std::uint64_t total() const {
    return dropped + nans + stuck + duplicated + reordered + delayed;
  }
};

/// Stream wrapper turning clean (minute, value) samples into the dirty
/// delivery sequence defined by (spec, seed). Per sample, value faults
/// apply first (stuck-at, then NaN burst), then exactly one delivery fault
/// (precedence drop > late > reorder; duplication applies to whatever is
/// delivered immediately). The Rng draws the same decisions for every
/// sample regardless of outcome, so plans for the same seed stay aligned
/// even across spec edits that only change rates to zero.
class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultSpec{}, 0) {}
  FaultInjector(FaultSpec spec, std::uint64_t seed)
      : spec_(spec), rng_(seed) {}

  /// Deliveries triggered by the clean sample (t, value): zero or more, in
  /// delivery order (due late samples first, then this sample and its
  /// duplicate, then a released reorder partner).
  std::vector<FaultDelivery> push(MinuteTime t, double value);

  /// End of stream: everything still held back (late queue, reorder hold),
  /// in delivery order.
  std::vector<FaultDelivery> drain();

  const FaultSpec& spec() const { return spec_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultSpec spec_;
  Rng rng_;
  FaultStats stats_;

  std::size_t pushes_ = 0;
  std::size_t nan_left_ = 0;
  std::size_t stuck_left_ = 0;
  double stuck_value_ = 0.0;
  std::optional<FaultDelivery> reorder_hold_;
  struct Late {
    std::size_t due;  ///< push index at which this becomes deliverable
    FaultDelivery d;
  };
  std::vector<Late> late_queue_;
};

/// Sample `minute -> value(minute)` over [t0, t1) through the injector and
/// upsert every delivery into `out` (the tolerant ingest path, so the
/// result is a well-formed monotonic series with NaN gaps where samples
/// were dropped). Used by funnel_generate --faults.
tsdb::TimeSeries apply_faults(const tsdb::TimeSeries& clean,
                              FaultInjector& injector);

}  // namespace funnel::workload
