// Tests for impact-set identification (§3.1) and group derivation.
#include "funnel/impact_set.h"

#include <gtest/gtest.h>

namespace funnel::core {
namespace {

struct Fixture {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;

  Fixture() {
    // Fig. 4: change on A (servers a1..a4), A related to B and D, B to C.
    for (const char* s : {"a1", "a2", "a3", "a4"}) topo.add_server("A", s);
    topo.add_server("B", "b1");
    topo.add_server("C", "c1");
    topo.add_server("D", "d1");
    topo.add_relation("A", "B");
    topo.add_relation("A", "D");
    topo.add_relation("B", "C");

    // Store contents: server KPIs, instance KPIs, service KPIs.
    for (const char* s : {"a1", "a2", "a3", "a4"}) {
      store.insert(tsdb::server_metric(s, "cpu"), tsdb::TimeSeries(0));
      store.insert(tsdb::server_metric(s, "mem"), tsdb::TimeSeries(0));
      store.insert(tsdb::instance_metric(std::string("A@") + s, "pvc"),
                   tsdb::TimeSeries(0));
    }
    for (const char* svc : {"A", "B", "C", "D"}) {
      store.insert(tsdb::service_metric(svc, "pvc"), tsdb::TimeSeries(0));
    }
  }

  changes::SoftwareChange dark_change() {
    changes::SoftwareChange c;
    c.service = "A";
    c.servers = {"a1", "a2"};
    c.time = 500;
    c.mode = changes::LaunchMode::kDark;
    c.id = log.record(c, topo);
    return log.get(c.id);
  }

  changes::SoftwareChange full_change() {
    changes::SoftwareChange c;
    c.service = "A";
    c.servers = {"a1", "a2", "a3", "a4"};
    c.time = 600;
    c.mode = changes::LaunchMode::kFull;
    c.id = log.record(c, topo);
    return log.get(c.id);
  }
};

TEST(ImpactSet, DarkLaunchSplitsTreatedAndControl) {
  Fixture f;
  const ImpactSet set = identify_impact_set(f.dark_change(), f.topo);
  EXPECT_EQ(set.changed_service, "A");
  EXPECT_TRUE(set.dark_launched);
  EXPECT_EQ(set.tservers, (std::vector<std::string>{"a1", "a2"}));
  EXPECT_EQ(set.cservers, (std::vector<std::string>{"a3", "a4"}));
  EXPECT_EQ(set.tinstances, (std::vector<std::string>{"A@a1", "A@a2"}));
  EXPECT_EQ(set.cinstances, (std::vector<std::string>{"A@a3", "A@a4"}));
  EXPECT_EQ(set.affected_services, (std::vector<std::string>{"B", "C", "D"}));
  EXPECT_TRUE(set.has_control_group());
}

TEST(ImpactSet, FullLaunchHasNoControl) {
  Fixture f;
  const ImpactSet set = identify_impact_set(f.full_change(), f.topo);
  EXPECT_FALSE(set.dark_launched);
  EXPECT_EQ(set.tservers.size(), 4u);
  EXPECT_TRUE(set.cservers.empty());
  EXPECT_TRUE(set.cinstances.empty());
  EXPECT_FALSE(set.has_control_group());
}

TEST(ImpactMetrics, CoversAllImpactEntities) {
  Fixture f;
  const ImpactSet set = identify_impact_set(f.dark_change(), f.topo);
  const auto metrics = impact_metrics(set, f.store);
  // tservers: 2 servers x 2 KPIs; tinstances: 2 x 1; changed service: 1;
  // affected services: 3 x 1.
  EXPECT_EQ(metrics.size(), 4u + 2u + 1u + 3u);
  // Control entities' KPIs are NOT in the impact set.
  for (const auto& m : metrics) {
    EXPECT_NE(m.entity, "a3");
    EXPECT_NE(m.entity, "A@a4");
  }
}

TEST(ImpactMetrics, AffectedServiceDetection) {
  Fixture f;
  const ImpactSet set = identify_impact_set(f.dark_change(), f.topo);
  EXPECT_TRUE(
      is_affected_service_metric(set, tsdb::service_metric("B", "pvc")));
  EXPECT_TRUE(
      is_affected_service_metric(set, tsdb::service_metric("C", "pvc")));
  EXPECT_FALSE(
      is_affected_service_metric(set, tsdb::service_metric("A", "pvc")));
  EXPECT_FALSE(
      is_affected_service_metric(set, tsdb::server_metric("B", "pvc")));
}

TEST(Groups, ServerKpiUsesServerGroups) {
  Fixture f;
  const ImpactSet set = identify_impact_set(f.dark_change(), f.topo);
  const auto treated =
      treated_group_for(set, tsdb::server_metric("a1", "cpu"));
  ASSERT_EQ(treated.size(), 2u);
  EXPECT_EQ(treated[0], tsdb::server_metric("a1", "cpu"));
  EXPECT_EQ(treated[1], tsdb::server_metric("a2", "cpu"));
  const auto control =
      control_group_for(set, tsdb::server_metric("a1", "cpu"));
  ASSERT_EQ(control.size(), 2u);
  EXPECT_EQ(control[0], tsdb::server_metric("a3", "cpu"));
}

TEST(Groups, InstanceAndServiceKpisUseInstanceGroups) {
  Fixture f;
  const ImpactSet set = identify_impact_set(f.dark_change(), f.topo);
  // Instance KPI.
  const auto t1 =
      treated_group_for(set, tsdb::instance_metric("A@a1", "pvc"));
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_EQ(t1[0], tsdb::instance_metric("A@a1", "pvc"));
  // Changed-service KPI maps to the same-named instance KPIs (§3.2.4).
  const auto t2 = treated_group_for(set, tsdb::service_metric("A", "pvc"));
  ASSERT_EQ(t2.size(), 2u);
  EXPECT_EQ(t2[0], tsdb::instance_metric("A@a1", "pvc"));
  const auto c2 = control_group_for(set, tsdb::service_metric("A", "pvc"));
  ASSERT_EQ(c2.size(), 2u);
  EXPECT_EQ(c2[0], tsdb::instance_metric("A@a3", "pvc"));
}

TEST(Groups, FullLaunchControlIsEmpty) {
  Fixture f;
  const ImpactSet set = identify_impact_set(f.full_change(), f.topo);
  EXPECT_TRUE(
      control_group_for(set, tsdb::server_metric("a1", "cpu")).empty());
  EXPECT_EQ(treated_group_for(set, tsdb::server_metric("a1", "cpu")).size(),
            4u);
}

}  // namespace
}  // namespace funnel::core
