#include "linalg/hankel.h"

#include "common/error.h"

namespace funnel::linalg {

Matrix hankel(std::span<const double> window, std::size_t omega,
              std::size_t count) {
  FUNNEL_REQUIRE(omega >= 1 && count >= 1, "hankel needs positive dimensions");
  FUNNEL_REQUIRE(window.size() == hankel_span(omega, count),
                 "hankel window length must be omega + count - 1");
  Matrix b(omega, count);
  for (std::size_t j = 0; j < count; ++j) {
    for (std::size_t i = 0; i < omega; ++i) b(i, j) = window[j + i];
  }
  return b;
}

HankelGramOperator::HankelGramOperator(std::span<const double> window,
                                       std::size_t omega, std::size_t count)
    : omega_(omega), count_(count), window_(window.begin(), window.end()) {
  FUNNEL_REQUIRE(omega >= 1 && count >= 1,
                 "HankelGramOperator needs positive dimensions");
  FUNNEL_REQUIRE(window_.size() == hankel_span(omega, count),
                 "HankelGramOperator window length must be omega + count - 1");
}

void HankelGramOperator::apply(std::span<const double> x,
                               std::span<double> y) const {
  // t = Bᵀ x : t[j] = sum_i window[j + i] * x[i]
  Vector t(count_, 0.0);
  for (std::size_t j = 0; j < count_; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < omega_; ++i) acc += window_[j + i] * x[i];
    t[j] = acc;
  }
  // y = B t : y[i] = sum_j window[j + i] * t[j]
  for (std::size_t i = 0; i < omega_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < count_; ++j) acc += window_[j + i] * t[j];
    y[i] = acc;
  }
}

}  // namespace funnel::linalg
