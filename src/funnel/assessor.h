// Batch assessment — the Fig. 3 decision flow.
//
// For a recorded software change, Funnel::assess:
//   1. identifies the impact set (§3.1);
//   2. runs the improved+IKA SST detector over every impact-set KPI around
//      the change (step 2), applying the 7-minute persistence rule;
//   3. for each detected KPI change, determines causality (steps 4-11):
//      affected-service KPIs and Full-Launching changes compare against the
//      KPI's own 30-day history (seasonality exclusion, §3.2.5); everything
//      else compares treated vs control entities via DiD (§3.2.4);
//   4. assembles the AssessmentReport delivered to the operations team.
#pragma once

#include <memory>

#include "changes/change_log.h"
#include "common/thread_pool.h"
#include "funnel/config.h"
#include "funnel/impact_set.h"
#include "funnel/report.h"
#include "topology/topology.h"
#include "tsdb/store.h"

namespace funnel::detect {
class IkaSst;
}  // namespace funnel::detect

namespace funnel::obs {
class Span;
}  // namespace funnel::obs

namespace funnel::core {

/// Batch assessment engine. With config.num_threads != 1 the two hot
/// fan-outs run on a fixed-size ThreadPool: assess() scores each impact-set
/// KPI on its own task (one warm-started IkaSst scorer per execution slot,
/// reset() between KPIs so the basis never leaks across streams) and
/// assess_window() additionally distributes whole changes across the pool.
/// Both paths write into pre-sized slots indexed by KPI/change order, so a
/// report is byte-identical regardless of thread count or scheduling. The
/// referenced topology, change log and metric store are only read through
/// const methods, which hold no hidden mutable state (no caches, no lazy
/// indexes) — concurrent readers need no locks. Callers must not mutate the
/// store/topology/log while an assessment is in flight.
class Funnel {
 public:
  Funnel(FunnelConfig config, const topology::ServiceTopology& topo,
         const changes::ChangeLog& log, const tsdb::MetricStore& store);
  ~Funnel();

  Funnel(const Funnel&) = delete;
  Funnel& operator=(const Funnel&) = delete;

  /// Assess one recorded change against the data currently in the store.
  AssessmentReport assess(changes::ChangeId id) const;

  /// Assess every change recorded in [t0, t1) — the daily batch the
  /// operations team reviews (Table 3's workload).
  std::vector<AssessmentReport> assess_window(MinuteTime t0,
                                              MinuteTime t1) const;

  /// The Fig. 3 flow for a single KPI (exposed for tests and the online
  /// assessor).
  ItemVerdict assess_metric(const changes::SoftwareChange& change,
                            const ImpactSet& set,
                            const tsdb::MetricId& metric) const;

  const FunnelConfig& config() const { return config_; }

  /// Causality determination given a raised alarm (Fig. 3 steps 4-11).
  /// `post_window` caps the post-change period (the online assessor passes
  /// the data observed so far). Also used by FunnelOnline.
  void determine_cause(const changes::SoftwareChange& change,
                       const ImpactSet& set, const tsdb::MetricId& metric,
                       MinuteTime post_window, ItemVerdict& verdict) const;

 private:
  /// assess_metric with an explicit scorer (reset()-ed before use) so the
  /// parallel path can keep one warm-started scorer per execution slot.
  ItemVerdict assess_metric_with(detect::IkaSst& scorer,
                                 const changes::SoftwareChange& change,
                                 const ImpactSet& set,
                                 const tsdb::MetricId& metric) const;

  /// Attach SST decision provenance (peak/raw/damped scores, geometry,
  /// thresholds) to an active per-KPI span. Traced path only — never runs
  /// with a null tracer, so the recompute cannot perturb reports.
  void trace_sst_provenance(obs::Span& span, const detect::Alarm& alarm,
                            const std::vector<double>& slice,
                            const std::vector<double>& scores,
                            MinuteTime t0) const;

  FunnelConfig config_;
  const topology::ServiceTopology& topo_;
  const changes::ChangeLog& log_;
  const tsdb::MetricStore& store_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when running serially
};

}  // namespace funnel::core
