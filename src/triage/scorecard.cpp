#include "triage/scorecard.h"

#include <algorithm>
#include <cmath>

namespace funnel::triage {

MinuteTime Scorecard::ttv_percentile(double p) const {
  if (time_to_verdict.empty()) return 0;
  // Nearest-rank on the sorted sample: index ceil(p*n) - 1, clamped.
  const double n = static_cast<double>(time_to_verdict.size());
  auto rank = static_cast<std::size_t>(std::ceil(p * n));
  if (rank > 0) --rank;
  if (rank >= time_to_verdict.size()) rank = time_to_verdict.size() - 1;
  return time_to_verdict[rank];
}

void ScorecardBuilder::observe(const obs::JournalEvent& event) {
  fold(totals_, event);
  Scorecard& service = service_[event.service];
  if (service.key.empty()) service.key = event.service;
  fold(service, event);
  Scorecard& kpi = kpi_[event.kpi];
  if (kpi.key.empty()) kpi.key = event.kpi;
  fold(kpi, event);
}

void ScorecardBuilder::fold(Scorecard& card, const obs::JournalEvent& event) {
  ++card.events;
  if (event.detected) ++card.detected;
  if (event.cause == "software-change") ++card.regressions;
  if (event.cause == "inconclusive") {
    ++card.inconclusive;
    ++card.inconclusive_by_reason[event.inconclusive_reason.empty()
                                      ? "unspecified"
                                      : event.inconclusive_reason];
  }
  if (event.fallback_control) ++card.fallback_control;
  if (!event.control_kind.empty()) ++card.did_runs;
  if (event.time_to_verdict) {
    card.time_to_verdict.push_back(*event.time_to_verdict);
  }
}

Scorecard ScorecardBuilder::finish(const Scorecard& card) {
  Scorecard out = card;
  // Sorted at read time, not insert time: the raw vector carries arrival
  // order, and two streams of the same event set must produce equal cards.
  std::sort(out.time_to_verdict.begin(), out.time_to_verdict.end());
  return out;
}

Scorecard ScorecardBuilder::totals() const {
  Scorecard out = finish(totals_);
  out.key = "total";
  return out;
}

std::vector<Scorecard> ScorecardBuilder::by_service() const {
  std::vector<Scorecard> out;
  out.reserve(service_.size());
  for (const auto& [key, card] : service_) out.push_back(finish(card));
  return out;
}

std::vector<Scorecard> ScorecardBuilder::by_kpi() const {
  std::vector<Scorecard> out;
  out.reserve(kpi_.size());
  for (const auto& [key, card] : kpi_) out.push_back(finish(card));
  return out;
}

}  // namespace funnel::triage
