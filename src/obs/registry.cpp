#include "obs/registry.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>
#include <unordered_map>

namespace funnel::obs {
namespace {

// 1-2-5 ladder from 1 to 1e7: wide enough for sub-microsecond stage timings
// and for minute-valued series (time-to-verdict) without per-histogram
// configuration.
constexpr std::array<double, 22> kBounds = {
    1.0,   2.0,   5.0,   1e1, 2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3,
    5e3,   1e4,   2e4,   5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7};
constexpr std::size_t kBucketCount = kBounds.size() + 1;  // + overflow

}  // namespace

std::span<const double> bucket_bounds() {
  return {kBounds.data(), kBounds.size()};
}

#ifndef FUNNEL_OBS_OFF

// Shard cells are written only by the owning thread and read by snapshot();
// owner-only writes mean plain load-modify-store on relaxed atomics is
// race-free and exact — no CAS loops, no contention.
namespace {

std::size_t bucket_index(double v) {
  // First bound >= v: Prometheus le-semantics, a value on a bound belongs
  // to that bound's bucket.
  const auto it = std::lower_bound(kBounds.begin(), kBounds.end(), v);
  return static_cast<std::size_t>(it - kBounds.begin());
}

// Gauge writes across shards are ordered by this sequence so the merge can
// pick the newest value; sharing one sequence across registries is harmless
// (only relative order within a registry matters).
std::atomic<std::uint64_t> g_gauge_seq{1};

std::atomic<std::uint64_t> g_next_uid{1};

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<double> value{0.0};
};

struct HistCell {
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

}  // namespace

/// One thread's private slice of the registry. Only the owning thread
/// inserts into the maps (under the shard mutex, because snapshot() iterates
/// them from another thread); std::map nodes are stable, so the owner's
/// lock-free find() handing out cell references stays valid forever.
struct Registry::Shard {
  std::mutex mutex;  ///< guards map *structure*: insert vs snapshot iterate
  std::map<std::string, CounterCell, std::less<>> counters;
  std::map<std::string, GaugeCell, std::less<>> gauges;
  std::map<std::string, HistCell, std::less<>> histograms;
};

namespace {

// Registry* -> shard cache, keyed by a never-reused uid so a dead
// registry's entry can never be confused with a later registry that happens
// to reuse the address.
thread_local std::unordered_map<std::uint64_t, Registry::Shard*> tls_shards;

template <typename Map>
auto& cell_for(Registry::Shard& shard, Map& map, std::string_view name) {
  // Owner-only structure mutation: the unlocked find is safe because no
  // other thread ever inserts into this shard, and snapshot() only reads.
  const auto it = map.find(name);
  if (it != map.end()) return it->second;
  // try_emplace constructs the cell in place: the cells hold atomics and
  // are neither copyable nor movable.
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return map.try_emplace(std::string(name)).first->second;
}

}  // namespace

Registry::Registry()
    : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry::Shard& Registry::local_shard() const {
  const auto it = tls_shards.find(uid_);
  if (it != tls_shards.end()) return *it->second;
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  tls_shards.emplace(uid_, shard);
  return *shard;
}

void Registry::add(std::string_view name, std::uint64_t delta) const {
  Shard& shard = local_shard();
  CounterCell& cell = cell_for(shard, shard.counters, name);
  cell.value.store(cell.value.load(std::memory_order_relaxed) + delta,
                   std::memory_order_relaxed);
}

void Registry::set(std::string_view name, double value) const {
  Shard& shard = local_shard();
  GaugeCell& cell = cell_for(shard, shard.gauges, name);
  cell.value.store(value, std::memory_order_relaxed);
  cell.seq.store(g_gauge_seq.fetch_add(1, std::memory_order_relaxed),
                 std::memory_order_release);
}

void Registry::observe(std::string_view name, double value) const {
  Shard& shard = local_shard();
  HistCell& cell = cell_for(shard, shard.histograms, name);
  auto& bucket = cell.buckets[bucket_index(value)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  cell.count.store(cell.count.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  cell.sum.store(cell.sum.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
  if (value < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(value, std::memory_order_relaxed);
  }
  if (value > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(value, std::memory_order_relaxed);
  }
}

void Registry::declare_counter(std::string_view name) const {
  Shard& shard = local_shard();
  cell_for(shard, shard.counters, name);
}

void Registry::declare_gauge(std::string_view name) const {
  Shard& shard = local_shard();
  cell_for(shard, shard.gauges, name);
}

void Registry::declare_histogram(std::string_view name) const {
  Shard& shard = local_shard();
  cell_for(shard, shard.histograms, name);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.enabled = true;
  const std::lock_guard<std::mutex> registry_lock(mutex_);
  struct GaugeMerge {
    std::uint64_t seq = 0;
    double value = 0.0;
  };
  std::map<std::string, GaugeMerge> gauges;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const auto& [name, cell] : shard->counters) {
      snap.counters[name] += cell.value.load(std::memory_order_relaxed);
    }
    for (const auto& [name, cell] : shard->gauges) {
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      GaugeMerge& merge = gauges[name];
      if (seq >= merge.seq) {
        merge.seq = seq;
        merge.value = cell.value.load(std::memory_order_relaxed);
      }
    }
    for (const auto& [name, cell] : shard->histograms) {
      HistogramSnapshot& h = snap.histograms[name];
      if (h.buckets.empty()) h.buckets.assign(kBucketCount, 0);
      for (std::size_t b = 0; b < kBucketCount; ++b) {
        h.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
      const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
      if (count > 0) {
        const double mn = cell.min.load(std::memory_order_relaxed);
        const double mx = cell.max.load(std::memory_order_relaxed);
        if (h.count == 0 || mn < h.min) h.min = mn;
        if (h.count == 0 || mx > h.max) h.max = mx;
      }
      h.count += count;
      h.sum += cell.sum.load(std::memory_order_relaxed);
    }
  }
  for (const auto& [name, merge] : gauges) {
    snap.gauges[name] = merge.value;
  }
  return snap;
}

#endif  // FUNNEL_OBS_OFF

}  // namespace funnel::obs
