// Improved (robust) SST — §3.2.2, exact eigendecomposition variant.
//
// Two robustness upgrades over classic SST:
//   1. Use the eta leading eigen-directions of the future Gram matrix
//      A·Aᵀ, eigenvalue-weighted (Eq. 8-10), instead of only the first:
//      x̂ = Σ λᵢ φᵢ / Σ λᵢ with φᵢ = 1 − Σⱼ (βᵢᵀ uⱼ)².
//   2. Damp the score by |Δmedian|·√|ΔMAD| of the halves (Eq. 11-12), which
//      suppresses windows where noise, not signal, drives the raw score.
//
// This variant computes everything with exact dense decompositions; it is
// the accuracy reference for the Krylov-approximated IkaSst and the
// "Improved SST" (no DiD) column of Table 1.
#pragma once

#include "detect/scorer.h"
#include "detect/sst_common.h"

namespace funnel::detect {

class ImprovedSst final : public ChangeScorer {
 public:
  explicit ImprovedSst(SstGeometry geometry = {});

  std::size_t window_size() const override { return geo_.window(); }
  std::size_t change_offset() const override { return geo_.half(); }
  double score(std::span<const double> window) override;
  const char* name() const override { return "improved-sst"; }

  const SstGeometry& geometry() const { return geo_; }

 private:
  SstGeometry geo_;
};

}  // namespace funnel::detect
