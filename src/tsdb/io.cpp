#include "tsdb/io.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace funnel::tsdb {
namespace {

bool parse_value(const std::string& field, double* out) {
  if (field.empty() || field == "nan" || field == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  try {
    std::size_t pos = 0;
    *out = std::stod(field, &pos);
    return pos == field.size();
  } catch (const std::exception&) {
    return false;
  }
}

EntityKind parse_kind(const std::string& s) {
  if (s == "server") return EntityKind::kServer;
  if (s == "instance") return EntityKind::kInstance;
  if (s == "service") return EntityKind::kService;
  throw InvalidArgument("unknown entity kind: " + s);
}

}  // namespace

void write_series_csv(std::ostream& out, const TimeSeries& series) {
  out << "minute,value\n";
  MinuteTime t = series.start_time();
  for (double v : series.values()) {
    out << t << ',';
    if (std::isfinite(v)) {
      out << v;
    }  // gaps serialize as an empty field
    out << '\n';
    ++t;
  }
}

TimeSeries read_series_csv(std::istream& in) {
  TimeSeries series(0);
  std::string line;
  bool first_sample = true;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::vector<std::string> fields = split(line, ',');
    FUNNEL_REQUIRE(fields.size() == 2,
                   "CSV line " + std::to_string(lineno) +
                       ": expected 'minute,value'");
    if (lineno == 1 && fields[0] == "minute") continue;  // header
    MinuteTime minute = 0;
    try {
      minute = std::stoll(fields[0]);
    } catch (const std::exception&) {
      throw InvalidArgument("CSV line " + std::to_string(lineno) +
                            ": bad minute '" + fields[0] + "'");
    }
    double value = 0.0;
    FUNNEL_REQUIRE(parse_value(fields[1], &value),
                   "CSV line " + std::to_string(lineno) + ": bad value '" +
                       fields[1] + "'");
    if (first_sample) {
      series = TimeSeries(minute);
      series.append(value);
      first_sample = false;
    } else if (minute < series.end_time()) {
      // A CSV is a serialized series, not a live feed: re-visited minutes
      // mean the file itself is corrupt, so reject with the exact line and
      // failure mode instead of silently misaligning everything after it.
      const char* what = minute == series.end_time() - 1
                             ? ": duplicate minute "
                             : ": minute went backwards to ";
      throw InvalidArgument("CSV line " + std::to_string(lineno) + what +
                            std::to_string(minute) + " (last was " +
                            std::to_string(series.end_time() - 1) + ")");
    } else {
      series.append_at(minute, value);
    }
  }
  return series;
}

void save_series_csv(const std::string& path, const TimeSeries& series) {
  std::ofstream out(path);
  if (!out) throw NotFound("cannot open for writing: " + path);
  write_series_csv(out, series);
}

TimeSeries load_series_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw NotFound("cannot open: " + path);
  return read_series_csv(in);
}

void write_store(std::ostream& out, const MetricStore& store) {
  out << "# funnel-store-v1\n";
  for (const MetricId& id : store.metrics()) {
    const TimeSeries& s = store.series(id);
    out << "# metric " << to_string(id.kind) << ' ' << id.entity << ' '
        << id.kpi << ' ' << s.start_time() << ' ' << s.size() << '\n';
    for (double v : s.values()) {
      if (std::isfinite(v)) {
        out << v << '\n';
      } else {
        out << "nan\n";
      }
    }
  }
}

void read_store(std::istream& in, MetricStore& store) {
  std::string line;
  std::getline(in, line);
  FUNNEL_REQUIRE(starts_with(line, "# funnel-store-v1"),
                 "not a funnel store snapshot");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    FUNNEL_REQUIRE(starts_with(line, "# metric "),
                   "expected '# metric' header, got: " + line);
    std::istringstream header(line.substr(9));
    std::string kind, entity, kpi;
    MinuteTime start = 0;
    std::size_t n = 0;
    header >> kind >> entity >> kpi >> start >> n;
    FUNNEL_REQUIRE(!header.fail(), "malformed metric header: " + line);
    TimeSeries series(start);
    for (std::size_t i = 0; i < n; ++i) {
      FUNNEL_REQUIRE(static_cast<bool>(std::getline(in, line)),
                     "truncated snapshot: " + entity + "/" + kpi);
      double v = 0.0;
      FUNNEL_REQUIRE(parse_value(line, &v), "bad sample: " + line);
      series.append(v);
    }
    store.insert({parse_kind(kind), entity, kpi}, std::move(series));
  }
}

void save_store(const std::string& path, const MetricStore& store) {
  std::ofstream out(path);
  if (!out) throw NotFound("cannot open for writing: " + path);
  write_store(out, store);
}

void load_store(const std::string& path, MetricStore& store) {
  std::ifstream in(path);
  if (!in) throw NotFound("cannot open: " + path);
  read_store(in, store);
}

}  // namespace funnel::tsdb
