#include "tsdb/persist/format.h"

#include <array>

namespace funnel::tsdb::persist {

namespace {

// CRC32C (Castagnoli) lookup table, reflected polynomial 0x82F63B78 —
// computed once at startup so the header stays free of a 1 KiB literal.
std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& table = crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace funnel::tsdb::persist
