// Small string utilities for hierarchical service names and report output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace funnel {

/// Split on a single-character delimiter; empty tokens preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a delimiter string.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// True when `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Format a double with fixed precision (helper for table output).
std::string format_fixed(double value, int precision);

/// Format a ratio as a percentage string like "99.88%".
std::string format_percent(double ratio, int precision = 2);

}  // namespace funnel
