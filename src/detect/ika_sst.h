// FUNNEL's production detector: improved SST accelerated with the Implicit
// Krylov Approximation (§3.2.3, Idé & Tsuda 2007).
//
// Identical score semantics to ImprovedSst (Eq. 9-11) but with every dense
// decomposition replaced by the cheap path:
//   * the Gram matrices C = B·Bᵀ (past) and A·Aᵀ (future) are never formed —
//     HankelGramOperator applies them implicitly from the raw samples
//     ("matrix compression and implicit inner product calculation");
//   * the future eigen-directions β₁..β_eta are maintained by warm-started
//     block power iteration with Rayleigh-Ritz extraction: consecutive
//     windows overlap in all but one sample, so the previous window's basis
//     is an excellent starting guess and two or three iterations suffice
//     (Idé & Tsuda's "feedback" mechanism); a cold start simply iterates
//     longer;
//   * each φᵢ is read off a k-step Lanczos run on the past operator seeded
//     at βᵢ: in the Krylov basis the seed is e₁, so
//     φᵢ ≈ 1 − Σ_{j≤eta} x_j[0]²  (Eq. 13)
//     with x_j the leading eigenvectors of the k×k tridiagonal T_k,
//     extracted by the QL iteration; k = 2·eta or 2·eta−1 (Eq. 14).
//
// The warm start makes the scorer stateful: feeding it consecutive sliding
// windows (the only access pattern in FUNNEL) is both fastest and most
// accurate. Non-consecutive windows are still correct — the iteration
// re-converges — just marginally slower.
#pragma once

#include "detect/scorer.h"
#include "detect/sst_common.h"
#include "linalg/matrix.h"

namespace funnel::detect {

struct IkaParams {
  /// Power-iteration sweeps on a cold start (no previous basis).
  int cold_iterations = 30;
  /// Sweeps when warm-started from the previous window's basis.
  int warm_iterations = 3;
};

class IkaSst final : public ChangeScorer {
 public:
  explicit IkaSst(SstGeometry geometry = {}, IkaParams params = {});

  std::size_t window_size() const override { return geo_.window(); }
  std::size_t change_offset() const override { return geo_.half(); }
  double score(std::span<const double> window) override;
  const char* name() const override { return "funnel-ika-sst"; }

  const SstGeometry& geometry() const { return geo_; }

  /// Drop the warm-start basis (e.g. when retargeting the scorer to a
  /// different KPI stream).
  void reset() { warm_ = false; }

 private:
  SstGeometry geo_;
  IkaParams params_;
  linalg::Matrix future_basis_;  ///< omega x eta, persisted across windows
  bool warm_ = false;
};

}  // namespace funnel::detect
