# End-to-end smoke check for the tools + telemetry path:
#   funnel_generate -> funnel_detect_csv --change-minute --stats-json --trace
# The generated KPI carries a level shift at the change minute, so the
# online pipeline must attribute it, the stats snapshot must parse as
# JSON with the core telemetry keys, and the Chrome trace must parse with
# a traceEvents array. Also asserts a malformed CSV makes the tool exit
# non-zero (no silent skips) and an unwritable --trace path exits 3.
#
# Invoked by ctest as:
#   cmake -DGEN=<funnel_generate> -DDET=<funnel_detect_csv>
#         -DWORK_DIR=<scratch dir> -P tools_smoke.cmake

foreach(var GEN DET WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(csv "${WORK_DIR}/smoke_series.csv")
set(stats "${WORK_DIR}/smoke_stats.json")
set(trace "${WORK_DIR}/smoke_trace.json")

execute_process(
  COMMAND "${GEN}" --class stationary --minutes 600 --seed 7
          --shift 300,8 --out "${csv}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "funnel_generate failed (${rc}): ${err}")
endif()

execute_process(
  COMMAND "${DET}" "${csv}" --change-minute 300 --stats-json "${stats}"
          --trace "${trace}"
  OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "funnel_detect_csv failed (${rc}): ${err}")
endif()
if(NOT out MATCHES "verdict: change has impact")
  message(FATAL_ERROR "expected an impact verdict, stdout was: ${out}")
endif()

file(READ "${stats}" json)
string(JSON enabled ERROR_VARIABLE jerr GET "${json}" enabled)
if(jerr)
  message(FATAL_ERROR "stats JSON did not parse: ${jerr}")
endif()

# With FUNNEL_OBS=OFF the registry is a no-op: the snapshot still parses
# (enabled=false, empty sections) but carries no keys to check.
if(enabled)
  foreach(key
      "tsdb.store.appends"
      "funnel.online.samples_ingested"
      "funnel.online.verdicts_confirmed"
      "pool.tasks_executed")
    string(JSON val ERROR_VARIABLE jerr GET "${json}" counters "${key}")
    if(jerr)
      message(FATAL_ERROR "stats JSON missing counter '${key}'")
    endif()
  endforeach()
  string(JSON confirmed GET "${json}" counters "funnel.online.verdicts_confirmed")
  if(confirmed LESS 1)
    message(FATAL_ERROR "pipeline confirmed no verdict (counter=${confirmed})")
  endif()
  string(JSON ttv ERROR_VARIABLE jerr GET "${json}"
         histograms "funnel.online.time_to_verdict_min" count)
  if(jerr OR ttv LESS 1)
    message(FATAL_ERROR "time_to_verdict histogram empty or missing (${jerr})")
  endif()
endif()

# The tool must announce where it wrote the side-channel outputs.
if(NOT err MATCHES "# wrote stats:" OR NOT err MATCHES "# wrote trace:")
  message(FATAL_ERROR "expected output-path notes on stderr, got: ${err}")
endif()

# The Chrome trace must be valid JSON with a traceEvents array; with the
# tracer compiled in (enabled mirrors FUNNEL_OBS) the assessment must have
# recorded spans, and every event needs the fields the trace viewer keys on.
file(READ "${trace}" tjson)
string(JSON nevents ERROR_VARIABLE jerr LENGTH "${tjson}" traceEvents)
if(jerr)
  message(FATAL_ERROR "trace JSON did not parse: ${jerr}")
endif()
if(enabled)
  if(nevents LESS 2)
    message(FATAL_ERROR "trace has ${nevents} events; expected spans")
  endif()
  math(EXPR last "${nevents} - 1")
  string(JSON ph GET "${tjson}" traceEvents ${last} ph)
  string(JSON name GET "${tjson}" traceEvents ${last} name)
  string(JSON dur ERROR_VARIABLE jerr GET "${tjson}" traceEvents ${last} dur)
  if(NOT ph STREQUAL "X" OR name STREQUAL "" OR jerr)
    message(FATAL_ERROR "trace event malformed: ph=${ph} name=${name} ${jerr}")
  endif()
  string(JSON recorded GET "${tjson}" otherData recorded)
  if(recorded LESS 1)
    message(FATAL_ERROR "trace otherData.recorded=${recorded}")
  endif()
endif()

# An unwritable --trace destination is a distinct failure (exit 3), after
# the assessment itself already ran.
execute_process(
  COMMAND "${DET}" "${csv}" --change-minute 300
          --trace "${WORK_DIR}/no_such_dir/t.json"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "unwritable --trace path must exit 3, got ${rc}")
endif()

# A CSV that does not parse must fail the run, not be skipped silently.
set(bad "${WORK_DIR}/smoke_bad.csv")
file(WRITE "${bad}" "garbage,not,a,csv\nrow2\n")
execute_process(COMMAND "${DET}" "${bad}"
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "malformed CSV must exit non-zero")
endif()

message(STATUS "tools smoke OK (telemetry enabled=${enabled})")
