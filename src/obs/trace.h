// End-to-end tracing with decision provenance — FUNNEL explaining FUNNEL.
//
// The paper's operators trust a verdict because it is traceable to concrete
// evidence: which tservers were in the impact set, what the SST change-score
// was, what DiD's α said against the per-service threshold (§3.2). The
// metrics registry (obs/registry.h) measures how *fast* the pipeline is;
// this subsystem records *what happened and why* for one assessment as it
// fans out across the ThreadPool and the ingest dispatcher: a Dapper-style
// tree of timed spans, each carrying typed attributes (SST raw and damped
// scores, chosen η / Krylov k, DiD α vs. threshold, control-group kind), so
// one assessment yields a single causally-linked span tree even at
// num_threads=8.
//
// Design:
//   * The hot path is lock-free. Each thread gets a bounded ring buffer on
//     first touch (same shard model as the registry); finishing a span is a
//     slot write plus a head increment that only the owning thread performs.
//     When a ring wraps, the oldest span is overwritten and counted —
//     collect() reports exact drop accounting, never silent loss.
//   * Causality propagates through an ambient thread-local SpanContext.
//     Span installs itself as the ambient context for its scope;
//     ThreadPool::parallel_for captures the initiator's context and
//     re-installs it around every task, and tsdb::IngestDispatcher stamps
//     the producer's context onto each queued sample and re-installs it
//     around the subscriber callback. Deep layers (did/groups) can open
//     child spans without any plumbing. Cross-thread parents can also be
//     passed explicitly (the online assessor parents determination spans
//     under the watch's root span this way).
//   * collect() is the cold path: call it only at quiesce points — after
//     parallel_for returned and/or store.flush() — where the pool's batch
//     completion / the dispatcher's settled barrier already order every
//     record before the read. Recording is never blocked.
//   * A null Tracer* disables everything at the cost of one pointer test
//     per span (no clock reads); -DFUNNEL_OBS=OFF compiles the whole
//     subsystem to no-ops. Tracing is a side channel: assessment reports
//     are byte-identical with it on, off, or absent.
//
// Span-naming convention mirrors the stat keys (docs/OBSERVABILITY.md):
//   <subsystem>.<object>[.<stage>]   e.g. funnel.assess, funnel.assess.kpi,
//   funnel.assess.determine, funnel.watch. Attribute keys are dotted too:
//   sst.peak_score, did.alpha, did.control_kind.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/registry.h"  // obs::kEnabled

namespace funnel::obs {

/// One typed span attribute. Keys are string literals (never freed);
/// string values are owned copies.
struct SpanAttr {
  enum class Kind { kDouble, kInt, kString };
  const char* key = "";
  Kind kind = Kind::kDouble;
  double num = 0.0;
  std::int64_t inum = 0;
  std::string str;
};

/// A finished span as stored in the ring buffers and returned by collect().
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  const char* name = "";
  std::uint64_t start_ns = 0;  ///< steady clock
  std::uint64_t end_ns = 0;
  std::uint32_t thread = 0;  ///< recording thread's ring ordinal (collect())
  std::vector<SpanAttr> attrs;

  const SpanAttr* find_attr(std::string_view key) const {
    for (const SpanAttr& a : attrs) {
      if (key == a.key) return &a;
    }
    return nullptr;
  }
};

/// Point-in-time copy of every ring, oldest surviving span first per ring.
struct TraceDump {
  std::vector<SpanRecord> spans;  ///< sorted by (start_ns, span_id)
  std::uint64_t recorded = 0;     ///< spans ever finished, incl. overwritten
  std::uint64_t dropped = 0;      ///< overwritten by ring wrap (oldest first)
  std::uint64_t threads = 0;      ///< rings (threads that recorded spans)
};

/// Chrome trace-event JSON (loads in chrome://tracing and Perfetto): one
/// complete ("ph":"X") event per span on its recording thread's track, span
/// attributes under "args", drop accounting under "otherData". Timestamps
/// are microseconds rebased to the earliest span. Deterministic for a given
/// dump (events sorted like TraceDump::spans).
std::string chrome_trace_json(const TraceDump& dump);

#ifdef FUNNEL_OBS_OFF

// ---- FUNNEL_OBS=OFF: the whole subsystem compiles to no-ops. ----

class Tracer;

struct SpanContext {
  // Members mirror the live struct so context-inspecting code compiles
  // unchanged; they stay zero because no span ever records.
  const Tracer* tracer = nullptr;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  constexpr bool active() const { return false; }
  constexpr const Tracer* owner() const { return nullptr; }
};

inline SpanContext current_context() { return {}; }

class Tracer {
 public:
  explicit Tracer(std::size_t = 0) {}
  TraceDump collect() const { return {}; }
  std::size_t ring_capacity() const { return 0; }
};

class ScopedContext {
 public:
  explicit ScopedContext(const SpanContext&) {}
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(const Tracer*, const char*) {}
  Span(const SpanContext&, const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  template <typename T>
  void attr(const char*, const T&) const {}
  bool active() const { return false; }
  SpanContext context() const { return {}; }
};

class DetachedSpan {
 public:
  DetachedSpan() = default;
  DetachedSpan(const Tracer*, const char*) {}
  DetachedSpan(const SpanContext&, const char*) {}
  DetachedSpan(DetachedSpan&&) noexcept = default;
  DetachedSpan& operator=(DetachedSpan&&) noexcept = default;
  template <typename T>
  void attr(const char*, const T&) const {}
  void end() {}
  bool active() const { return false; }
  SpanContext context() const { return {}; }
};

#else  // FUNNEL_OBS_OFF

class Tracer;

/// The causal position a span (or task) runs under: which tracer, which
/// trace, and which span new children should attach to. Trivially copyable
/// — this is what crosses thread boundaries.
struct SpanContext {
  const Tracer* tracer = nullptr;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< parent for children; 0 = trace root level

  bool active() const { return tracer != nullptr; }
  const Tracer* owner() const { return tracer; }
};

/// The calling thread's ambient context (empty when no span is open here).
SpanContext current_context();

/// Install `ctx` as the ambient context for the current scope; restores the
/// previous one on destruction. Used by the task-crossing seams (thread
/// pool, ingest dispatcher) — span-producing code should open a Span
/// instead.
class ScopedContext {
 public:
  explicit ScopedContext(const SpanContext& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  SpanContext saved_;
};

/// Owner of the per-thread span rings and the id counters. Recording is
/// done through a `const Tracer*` (a tracer is a sink, like the registry);
/// the tracer must outlive every span and every component holding it.
class Tracer {
 public:
  /// `ring_capacity` spans are retained per recording thread; older spans
  /// are overwritten (and counted as dropped). Clamped to >= 1.
  explicit Tracer(std::size_t ring_capacity = 4096);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::size_t ring_capacity() const { return capacity_; }

  /// Merge every thread's ring into one dump, sorted by (start_ns,
  /// span_id). Cold path; call at quiesce points only (see file comment) —
  /// a collect racing an actively recording thread is undefined.
  TraceDump collect() const;

  /// One thread's private ring (defined in trace.cpp; public only so
  /// file-local helpers there can name it).
  struct Ring;

  /// Internal (Span/DetachedSpan): append a finished span to the calling
  /// thread's ring.
  void record(SpanRecord&& rec) const;

  /// Internal: allocate ids. Ids are unique per tracer but not dense or
  /// deterministic across thread counts — tests compare span *counts* and
  /// tree shapes, never raw ids.
  std::uint64_t new_trace_id() const;
  std::uint64_t new_span_id() const;

 private:
  Ring& local_ring() const;

  const std::uint64_t uid_;  ///< never reused; keys the thread-local cache
  const std::size_t capacity_;
  mutable std::atomic<std::uint64_t> next_trace_{1};
  mutable std::atomic<std::uint64_t> next_span_{1};
  mutable std::mutex mutex_;  ///< guards rings_ (creation + collect)
  mutable std::vector<std::unique_ptr<Ring>> rings_;
};

namespace internal {

/// Shared open/attr/close machinery of Span and DetachedSpan.
struct SpanState {
  const Tracer* tracer = nullptr;
  SpanRecord rec;

  /// Start under `parent` (inactive parent -> inactive span).
  void open(const SpanContext& parent, const char* name);
  /// Start under the ambient context when it belongs to `tracer`, else as
  /// a new trace root on `tracer` (null -> inactive).
  void open_on(const Tracer* tracer, const char* name);
  void close();  ///< stamp end_ns and record; no-op when inactive

  SpanContext context() const {
    return {tracer, rec.trace_id, rec.span_id};
  }
  void push(const char* key, SpanAttr&& a);
};

}  // namespace internal

/// RAII scoped span. Installs itself as the ambient context so children —
/// including spans opened on pool workers via parallel_for, in subscriber
/// callbacks via the ingest dispatcher, or in deeper layers with no tracer
/// plumbing — attach underneath it. Must be destroyed on the constructing
/// thread, in scope order (plain block scoping guarantees both).
class Span {
 public:
  /// Child of the ambient context; inactive when no span is open here.
  explicit Span(const char* name) : Span(current_context(), name) {}

  /// Child of the ambient context when it belongs to `tracer`, otherwise
  /// the root of a new trace. Null tracer = inactive (no clock read).
  Span(const Tracer* tracer, const char* name);

  /// Child of an explicit parent (cross-thread propagation by hand).
  Span(const SpanContext& parent, const char* name);

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return state_.tracer != nullptr; }
  SpanContext context() const { return state_.context(); }

  /// Typed attributes. Keys must be string literals; all no-ops when
  /// inactive.
  void attr(const char* key, double v);
  template <typename T>
    requires std::is_integral_v<T>
  void attr(const char* key, T v) {
    attr_int(key, static_cast<std::int64_t>(v));
  }
  void attr(const char* key, std::string_view v);
  void attr(const char* key, const char* v) { attr(key, std::string_view(v)); }

 private:
  void attr_int(const char* key, std::int64_t v);
  void install();

  internal::SpanState state_;
  SpanContext saved_;
};

/// A span that is not tied to a scope: movable, never installs itself as
/// the ambient context, and may be end()-ed on a different thread than it
/// was opened on (the record lands in the ending thread's ring). The online
/// assessor keeps one per watch: opened at watch(), finished at finalize()
/// on the dispatcher thread, with determination spans parented under its
/// context in between.
class DetachedSpan {
 public:
  DetachedSpan() = default;
  DetachedSpan(const Tracer* tracer, const char* name);
  DetachedSpan(const SpanContext& parent, const char* name);

  DetachedSpan(DetachedSpan&& other) noexcept;
  DetachedSpan& operator=(DetachedSpan&& other) noexcept;
  ~DetachedSpan();

  DetachedSpan(const DetachedSpan&) = delete;
  DetachedSpan& operator=(const DetachedSpan&) = delete;

  void end();
  bool active() const { return state_.tracer != nullptr; }
  SpanContext context() const { return state_.context(); }

  void attr(const char* key, double v);
  template <typename T>
    requires std::is_integral_v<T>
  void attr(const char* key, T v) {
    attr_int(key, static_cast<std::int64_t>(v));
  }
  void attr(const char* key, std::string_view v);
  void attr(const char* key, const char* v) { attr(key, std::string_view(v)); }

 private:
  void attr_int(const char* key, std::int64_t v);

  internal::SpanState state_;
};

#endif  // FUNNEL_OBS_OFF

}  // namespace funnel::obs
