// Blame ranking for temporally overlapping changes.
//
// The hard triage case at ~24k changes/day is concurrency: an alarm fires
// while several changes are inside their assessment horizon, and someone
// must decide which one to roll back first. FUNNEL's own DiD already
// attributes each (change, KPI) pair in isolation; blame ranking folds the
// attributed events back together and orders the *changes*:
//
//   score(change) = Σ over its regression events of
//                     proximity(alarm) × effect(event)
//
// where proximity decays linearly from 1 (alarm at the deployment minute)
// to a floor of 0.1 across the overlap window — an alarm 3 minutes after a
// deploy is stronger evidence than one 55 minutes later — and effect is the
// DiD effect size |alpha_scaled| (robust-sigma units, comparable across
// KPIs) or, when no fit landed, the damped SST peak. This is the "SST-alarm
// overlap × DiD effect size" ranking the DeCaf-style triage layer calls
// for: both factors are already in the journal, nothing is re-fit.
//
// Changes are clustered by chained time overlap (two changes conflict when
// their [t, t + window] spans intersect; clusters are the transitive
// closure) and ranked inside each cluster. Exact score ties are broken
// toward the earlier deployment — the conventional "first suspect" — and
// the tie is stated in the explanation rather than silently resolved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/minute_time.h"
#include "obs/journal.h"

namespace funnel::triage {

struct BlameOptions {
  /// Minutes a change stays "live" for overlap clustering and proximity
  /// decay — the assessment horizon is the natural value.
  MinuteTime overlap_window = 60;
};

/// One change's entry in a cluster ranking.
struct BlamedChange {
  std::uint64_t change_id = 0;
  MinuteTime change_time = 0;
  std::string service;
  std::string change_type;
  std::string launch_mode;

  std::uint64_t regressions = 0;  ///< attributed events backing the score
  std::uint64_t kpis_assessed = 0;
  double score = 0.0;
  /// Human-readable ranking rationale (top evidence, tie notes).
  std::string explanation;

  bool operator==(const BlamedChange&) const = default;
};

/// One set of temporally overlapping changes, ranked most-blamed first.
struct BlameCluster {
  MinuteTime start = 0;  ///< earliest member deployment minute
  MinuteTime end = 0;    ///< latest member deployment minute
  std::vector<BlamedChange> ranking;

  bool operator==(const BlameCluster&) const = default;
};

/// Cluster and rank every change seen in `events`. Deterministic and
/// insensitive to event order: per-change evidence is sorted before the
/// floating-point fold, so streaming and replayed journals rank
/// identically. Clusters are ordered by start minute (then lowest change
/// id); singleton clusters are kept — "only one suspect" is also an
/// answer.
std::vector<BlameCluster> rank_blame(
    const std::vector<obs::JournalEvent>& events, BlameOptions options = {});

}  // namespace funnel::triage
