#include "evalkit/evaluate.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.h"

namespace funnel::evalkit {

ConfusionMatrix MethodResult::total() const {
  ConfusionMatrix out;
  for (const auto& [cls, cm] : by_class) {
    (void)cls;
    out += cm;
  }
  return out;
}

namespace {

std::uint64_t item_weight(const EvalDataset& ds, const ItemTruth& item,
                          std::uint64_t negative_scale) {
  return ds.is_positive_change(item.change_id) ? 1 : negative_scale;
}

}  // namespace

MethodResult evaluate_detector(const EvalDataset& ds, const DetectorSpec& spec,
                               MinuteTime lookback, MinuteTime horizon,
                               std::uint64_t negative_scale) {
  MethodResult result;
  result.method = spec.name;

  for (const ItemTruth& item : ds.items) {
    const changes::SoftwareChange& ch = ds.log.get(item.change_id);
    const tsdb::TimeSeries& series = ds.store.series(item.metric);
    const MinuteTime t0 = std::max(series.start_time(), ch.time - lookback);
    const MinuteTime t1 = std::min(series.end_time(), ch.time + horizon);

    const std::unique_ptr<detect::ChangeScorer> scorer = spec.make_scorer();
    bool predicted = false;
    std::optional<detect::Alarm> hit;
    if (t1 - t0 >= static_cast<MinuteTime>(scorer->window_size())) {
      const std::vector<double> slice = series.slice(t0, t1);
      const std::vector<double> scores = detect::score_series(*scorer, slice);
      for (const detect::Alarm& a : detect::all_alarms(
               scores, scorer->window_size(), t0, spec.policy)) {
        if (a.minute >= ch.time) {
          predicted = true;
          hit = a;
          break;
        }
      }
    }

    result.by_class[item.kpi_class].add(
        item.change_induced, predicted,
        item_weight(ds, item, negative_scale));
    if (item.change_induced && predicted) {
      result.delays.push_back(
          static_cast<double>(hit->minute - item.effect_start));
    }
  }
  return result;
}

MethodResult evaluate_funnel(const EvalDataset& ds,
                             const core::FunnelConfig& config,
                             std::uint64_t negative_scale) {
  MethodResult result;
  result.method = "funnel";

  const core::Funnel funnel(config, ds.topo, ds.log, ds.store);

  // Assess once per change; index verdicts by metric.
  std::map<changes::ChangeId, std::map<tsdb::MetricId, core::ItemVerdict>>
      verdicts;
  for (const changes::SoftwareChange& ch : ds.log.all()) {
    auto& per_metric = verdicts[ch.id];
    for (core::ItemVerdict& v : funnel.assess(ch.id).items) {
      tsdb::MetricId key = v.metric;
      per_metric.emplace(std::move(key), std::move(v));
    }
  }

  for (const ItemTruth& item : ds.items) {
    const auto cit = verdicts.find(item.change_id);
    FUNNEL_REQUIRE(cit != verdicts.end(), "missing assessment for change");
    const auto vit = cit->second.find(item.metric);
    FUNNEL_REQUIRE(vit != cit->second.end(), "missing verdict for item");
    const core::ItemVerdict& v = vit->second;

    const bool predicted = v.caused_by_software_change();
    result.by_class[item.kpi_class].add(
        item.change_induced, predicted,
        item_weight(ds, item, negative_scale));
    if (item.change_induced && predicted && v.alarm) {
      result.delays.push_back(
          static_cast<double>(v.alarm->minute - item.effect_start));
    }
  }
  return result;
}

double mean_score_micros(detect::ChangeScorer& scorer,
                         std::span<const double> series,
                         std::size_t min_total_scores) {
  const std::size_t w = scorer.window_size();
  FUNNEL_REQUIRE(series.size() >= w, "series shorter than one window");
  const std::size_t positions = series.size() - w + 1;

  volatile double sink = 0.0;  // keep the optimizer honest
  std::size_t produced = 0;
  const auto start = std::chrono::steady_clock::now();
  while (produced < min_total_scores) {
    for (std::size_t i = 0; i < positions && produced < min_total_scores;
         ++i) {
      sink = sink + scorer.score(series.subspan(i, w));
      ++produced;
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  const double total_us =
      std::chrono::duration<double, std::micro>(stop - start).count();
  return total_us / static_cast<double>(produced);
}

std::uint64_t cores_for_kpis(double micros_per_window, std::uint64_t kpis) {
  // Each KPI must be scored once per minute: a core offers 60e6 µs of work
  // per minute.
  const double needed =
      micros_per_window * static_cast<double>(kpis) / 60'000'000.0;
  return static_cast<std::uint64_t>(std::ceil(needed));
}

}  // namespace funnel::evalkit
