// Immutable, memory-mapped, columnar segment files.
//
// A checkpoint freezes each metric's not-yet-flushed minute range into one
// segment file: per metric a *sparse* pair of sorted columns — minute(i64)
// and value(f64) for the finite samples only — plus the explicit flushed
// range [lo, hi). The explicit range is what makes sparse storage lossless
// against the TimeSeries NaN-gap semantics: minutes inside [lo, hi) with no
// column entry rematerialize as NaN (a recorded collection gap), and a
// series whose tail is all-NaN still reconstructs its exact end_time().
//
// Layout (little-endian, docs/STORAGE.md §3):
//
//   header:   magic "FNLSEG1\0" (8) | epoch u64
//   columns:  per metric, count*8 bytes of minutes then count*8 of values
//   footer:   per metric: kind u8 | entity str | kpi str | lo i64 | hi i64 |
//             count u64 | minutes_off u64 | values_off u64
//   trailer:  footer_off u64 | footer_len u32 | crc32c(footer) u32 |
//             magic "FNLSEG1\0" (8)
//
// The footer lives at the end so the writer streams columns without
// buffering the whole file; the reader finds it via the fixed-size trailer.
// All column offsets are 8-byte multiples (header is 16 bytes, every column
// is a multiple of 8), though the reader still memcpy's per element rather
// than aliasing the map. Readers mmap PROT_READ and binary-search the
// footer index — a historical DiD window touches only the pages its minutes
// live on, which is the out-of-core story. Files are immutable after the
// tmp+rename publish: compaction writes a *new* merged file and the old
// ones are deleted only after a checkpoint stops referencing them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/minute_time.h"
#include "tsdb/metric.h"
#include "tsdb/persist/format.h"

namespace funnel::tsdb::persist {

/// One metric's contribution to a segment: finite samples, sorted by
/// minute, plus the flushed range [lo, hi) they were cut from.
struct SegmentColumn {
  MetricId metric;
  MinuteTime lo = 0;  ///< first flushed minute
  MinuteTime hi = 0;  ///< one past the last flushed minute
  std::vector<MinuteTime> minutes;  ///< sorted, within [lo, hi)
  std::vector<double> values;       ///< finite, parallel to `minutes`
};

/// Write a segment file atomically (tmp + rename). Columns must be sorted
/// by metric id. Returns the file size in bytes; throws StorageError on any
/// I/O failure.
std::uint64_t write_segment(const std::string& path, std::uint64_t epoch,
                            std::span<const SegmentColumn> columns);

/// Read-only mmap view of one segment file. The constructor validates the
/// trailer magic and footer CRC and throws StorageError on any damage —
/// segments are published atomically after the WAL is flushed, so unlike a
/// WAL tail there is no benign way for one to be torn.
class SegmentReader {
 public:
  explicit SegmentReader(std::string path);
  ~SegmentReader();

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t file_size() const { return size_; }

  /// One footer index entry; minute/value pairs are read straight off the
  /// map, so a lookup faults in only the pages it touches.
  struct Entry {
    MetricId metric;
    MinuteTime lo = 0;
    MinuteTime hi = 0;
    std::uint64_t count = 0;
    std::uint64_t minutes_off = 0;
    std::uint64_t values_off = 0;
  };

  /// Entries sorted by metric id (the writer's order).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Binary search; nullptr when the metric is not in this segment.
  const Entry* find(const MetricId& metric) const;

  MinuteTime minute(const Entry& e, std::uint64_t i) const;
  double value(const Entry& e, std::uint64_t i) const;

  /// Overlay this entry's samples intersecting [t0, t1) onto `out`, where
  /// out[k] is minute t0 + k. Minutes with no column entry are left
  /// untouched — callers pre-fill with NaN (or with older-segment data:
  /// applying segments in ascending epoch order makes the newest finite
  /// value win, the compaction invariant).
  void read_into(const Entry& e, MinuteTime t0, MinuteTime t1,
                 std::span<double> out) const;

 private:
  std::string path_;
  std::uint64_t epoch_ = 0;
  std::uint64_t size_ = 0;
  const unsigned char* map_ = nullptr;
  std::vector<Entry> entries_;
};

/// Merge several segments (ascending epoch order) into one set of columns —
/// the compaction kernel. Per metric: range = union of [lo, hi); values =
/// newest finite value per minute. Because upstream ingest is first-write-
/// wins, overlapping segments never hold conflicting finite values, so the
/// merge is a pure de-overlap.
std::vector<SegmentColumn> merge_segments(
    std::span<const SegmentReader* const> readers);

}  // namespace funnel::tsdb::persist
