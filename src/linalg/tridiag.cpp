#include "linalg/tridiag.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace funnel::linalg {
namespace {

double hypot2(double a, double b) { return std::hypot(a, b); }

// Implicit-shift QL on (d, e); if `z` is non-null the rotations are
// accumulated into it (z starts as identity or the Lanczos basis).
void tqli(Vector& d, Vector& e, Matrix* z) {
  const std::size_t n = d.size();
  if (n == 0) return;
  // e is used with the NR convention: e[0..n-2] subdiagonal, e[n-1] spare.
  e.resize(n, 0.0);

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      // Find a negligible subdiagonal element to split the problem.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (iter++ == 50) {
          throw NumericalError("tridiag_eigen: too many QL iterations");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (std::size_t k = 0; k < z->rows(); ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

Matrix Tridiagonal::to_dense() const {
  const std::size_t n = size();
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = diag[i];
    if (i + 1 < n) {
      m(i, i + 1) = subdiag[i];
      m(i + 1, i) = subdiag[i];
    }
  }
  return m;
}

SymEigen tridiag_eigen(const Tridiagonal& t) {
  FUNNEL_REQUIRE(t.subdiag.size() + 1 == t.diag.size() || t.diag.empty(),
                 "tridiagonal subdiagonal must have n-1 entries");
  const std::size_t n = t.size();
  Vector d = t.diag;
  Vector e = t.subdiag;
  Matrix z = Matrix::identity(n);
  tqli(d, e, &z);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return d[a] > d[b]; });

  SymEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = z(i, order[j]);
  }
  return out;
}

Vector tridiag_eigenvalues(const Tridiagonal& t) {
  FUNNEL_REQUIRE(t.subdiag.size() + 1 == t.diag.size() || t.diag.empty(),
                 "tridiagonal subdiagonal must have n-1 entries");
  Vector d = t.diag;
  Vector e = t.subdiag;
  tqli(d, e, nullptr);
  std::sort(d.begin(), d.end(), std::greater<>());
  return d;
}

}  // namespace funnel::linalg
