#include "detect/cusum.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace funnel::detect {

Cusum::Cusum(CusumParams params) : params_(params), rng_(params.seed) {
  FUNNEL_REQUIRE(params_.window >= 8, "CUSUM window too small");
  FUNNEL_REQUIRE(params_.slack >= 0.0, "CUSUM slack must be non-negative");
}

double Cusum::max_cusum(std::span<const double> z, double slack) {
  double up = 0.0, down = 0.0, best = 0.0;
  for (double x : z) {
    up = std::max(0.0, up + x - slack);
    down = std::max(0.0, down - x - slack);
    best = std::max({best, up, down});
  }
  return best;
}

double Cusum::score(std::span<const double> window) {
  FUNNEL_REQUIRE(window.size() == params_.window, "Cusum window size mismatch");
  if (!all_finite(window)) return std::numeric_limits<double>::quiet_NaN();

  const std::size_t half = params_.window / 2;
  const std::span<const double> baseline = window.subspan(0, half);
  const std::span<const double> test = window.subspan(half);

  const double m = mean(baseline);
  double s = stddev(baseline);
  if (s <= 0.0) s = mad_sigma(window);
  if (s <= 0.0) s = 1.0;

  std::vector<double> z(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) z[i] = (test[i] - m) / s;

  const double observed = max_cusum(z, params_.slack);
  if (observed <= 0.0) return 0.0;

  // Bootstrap under the no-change null: permuting the standardized samples
  // keeps their marginal distribution but destroys any sustained shift. A
  // statistic that is not extreme against the permutations scores 0.
  std::size_t below = 0;
  std::vector<double> perm = z;
  for (std::size_t b = 0; b < params_.bootstrap; ++b) {
    rng_.shuffle(perm);
    if (max_cusum(perm, params_.slack) < observed) ++below;
  }
  const double rank = static_cast<double>(below) /
                      static_cast<double>(params_.bootstrap);
  return rank >= params_.significance ? observed : 0.0;
}

}  // namespace funnel::detect
