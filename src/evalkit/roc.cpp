#include "evalkit/roc.h"

#include <algorithm>

#include "common/error.h"

namespace funnel::evalkit {

std::vector<RocPoint> detector_roc(const EvalDataset& ds,
                                   const DetectorSpec& base,
                                   std::span<const double> thresholds,
                                   std::uint64_t negative_scale) {
  FUNNEL_REQUIRE(!thresholds.empty(), "ROC sweep needs thresholds");
  std::vector<RocPoint> out;
  out.reserve(thresholds.size());
  for (double thr : thresholds) {
    DetectorSpec spec = base;
    spec.policy.threshold = thr;
    const MethodResult r =
        evaluate_detector(ds, spec, 60, 60, negative_scale);
    const ConfusionMatrix cm = r.total();
    RocPoint p;
    p.threshold = thr;
    p.tpr = cm.recall();
    p.fpr = 1.0 - cm.tnr();
    p.precision = cm.precision();
    p.accuracy = cm.accuracy();
    out.push_back(p);
  }
  return out;
}

double auc(std::vector<RocPoint> points) {
  FUNNEL_REQUIRE(!points.empty(), "AUC of empty curve");
  RocPoint lo;  // (0, 0)
  RocPoint hi;
  hi.fpr = 1.0;
  hi.tpr = 1.0;
  points.push_back(lo);
  points.push_back(hi);
  std::sort(points.begin(), points.end(),
            [](const RocPoint& a, const RocPoint& b) {
              if (a.fpr != b.fpr) return a.fpr < b.fpr;
              return a.tpr < b.tpr;
            });
  double area = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dx = points[i].fpr - points[i - 1].fpr;
    area += dx * 0.5 * (points[i].tpr + points[i - 1].tpr);
  }
  return area;
}

}  // namespace funnel::evalkit
