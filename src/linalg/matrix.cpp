#include "linalg/matrix.h"

#include <cmath>

#include "common/error.h"

namespace funnel::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    FUNNEL_REQUIRE(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::col(std::size_t c) const {
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_col(std::size_t c, std::span<const double> v) {
  FUNNEL_REQUIRE(v.size() == rows_, "column length mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Vector matvec(const Matrix& m, std::span<const double> x) {
  FUNNEL_REQUIRE(x.size() == m.cols(), "matvec dimension mismatch");
  Vector y(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < row.size(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector matvec_transposed(const Matrix& m, std::span<const double> x) {
  FUNNEL_REQUIRE(x.size() == m.rows(), "matvec_transposed dimension mismatch");
  Vector y(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < row.size(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  FUNNEL_REQUIRE(a.cols() == b.rows(), "matmul dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) t(c, r) = m(r, c);
  }
  return t;
}

Matrix gram_rows(const Matrix& a) {
  Matrix g(a.rows(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i; j < a.rows(); ++j) {
      const double v = dot(a.row(i), a.row(j));
      g(i, j) = v;
      g(j, i) = v;
    }
  }
  return g;
}

Matrix gram_cols(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    const Vector ci = a.col(i);
    for (std::size_t j = i; j < a.cols(); ++j) {
      const Vector cj = a.col(j);
      const double v = dot(ci, cj);
      g(i, j) = v;
      g(j, i) = v;
    }
  }
  return g;
}

double dot(std::span<const double> a, std::span<const double> b) {
  FUNNEL_REQUIRE(a.size() == b.size(), "dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

double normalize(std::span<double> v) {
  const double n = norm2(v);
  if (n > 0.0) {
    for (double& x : v) x /= n;
  }
  return n;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  FUNNEL_REQUIRE(x.size() == y.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double frobenius_distance(const Matrix& a, const Matrix& b) {
  FUNNEL_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "frobenius_distance shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double max_abs_difference(const Matrix& a, const Matrix& b) {
  FUNNEL_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "max_abs_difference shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace funnel::linalg
