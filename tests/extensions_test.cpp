// Tests for the extension surface: the week-over-week baseline detector,
// ROC sweeps, alarm episode grouping, and JSON report export.
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "detect/improved_sst.h"
#include "detect/sliding.h"
#include "detect/week_over_week.h"
#include "evalkit/roc.h"
#include "funnel/report_json.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel {
namespace {

TEST(WeekOverWeek, QuietSeasonalScoresLow) {
  workload::SeasonalParams p;
  p.noise_sigma = 1.0;
  p.weekly_amplitude = 0.0;  // day-over-day comparison: no weekly drift
  workload::KpiStream s(workload::make_seasonal(p, Rng(1)));
  const auto series = workload::render(s, 0, 2 * kMinutesPerDay + 300);
  detect::WeekOverWeekParams w;
  w.season = kMinutesPerDay;  // day-over-day
  const auto scores = detect::wow_score_series(series, w);
  ASSERT_EQ(scores.size(), series.size());
  // Warm-up region is NaN.
  EXPECT_TRUE(std::isnan(scores[100]));
  double peak = 0.0;
  for (std::size_t i = static_cast<std::size_t>(kMinutesPerDay) + 40;
       i < scores.size(); ++i) {
    if (std::isfinite(scores[i])) peak = std::max(peak, scores[i]);
  }
  EXPECT_LT(peak, 5.0);
}

TEST(WeekOverWeek, DetectsShiftAgainstLastSeason) {
  workload::SeasonalParams p;
  p.noise_sigma = 1.0;
  p.weekly_amplitude = 0.0;
  workload::KpiStream s(workload::make_seasonal(p, Rng(2)));
  const MinuteTime tc = kMinutesPerDay + 400;
  s.add_effect(workload::LevelShift{tc, 12.0});
  const auto series = workload::render(s, 0, kMinutesPerDay + 700);
  detect::WeekOverWeekParams w;
  w.season = kMinutesPerDay;
  const auto scores = detect::wow_score_series(series, w);
  double post_peak = 0.0;
  for (std::size_t i = static_cast<std::size_t>(tc) + 30;
       i < static_cast<std::size_t>(tc) + 90; ++i) {
    if (std::isfinite(scores[i])) post_peak = std::max(post_peak, scores[i]);
  }
  EXPECT_GT(post_peak, 6.0);
}

TEST(WeekOverWeek, ShortSeriesAllNan) {
  const std::vector<double> tiny(100, 1.0);
  detect::WeekOverWeekParams w;
  const auto scores = detect::wow_score_series(tiny, w);
  for (double v : scores) EXPECT_TRUE(std::isnan(v));
  EXPECT_THROW((void)detect::wow_score_series(
                   tiny, detect::WeekOverWeekParams{.season = 0}),
               InvalidArgument);
}

TEST(AlarmEpisodes, MergesRefiresKeepsSeparateEpisodes) {
  std::vector<detect::Alarm> alarms;
  for (MinuteTime m : {100, 107, 114, 121, 300, 307}) {
    detect::Alarm a;
    a.minute = m;
    a.peak_score = static_cast<double>(m) / 100.0;
    alarms.push_back(a);
  }
  const auto episodes = detect::alarm_episodes(alarms, 30);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].minute, 100);
  EXPECT_DOUBLE_EQ(episodes[0].peak_score, 1.21);  // max of the chain
  EXPECT_EQ(episodes[1].minute, 300);
}

TEST(AlarmEpisodes, LongChainStaysOneEpisode) {
  // Re-fires every 7 minutes for two hours: one episode, however long.
  std::vector<detect::Alarm> alarms;
  for (MinuteTime m = 0; m < 120; m += 7) {
    detect::Alarm a;
    a.minute = m;
    alarms.push_back(a);
  }
  EXPECT_EQ(detect::alarm_episodes(alarms, 30).size(), 1u);
  EXPECT_THROW((void)detect::alarm_episodes(alarms, 0), InvalidArgument);
  EXPECT_TRUE(detect::alarm_episodes({}, 30).empty());
}

TEST(Roc, SweepIsMonotoneAndAucSane) {
  evalkit::DatasetParams p;
  p.seed = 3;
  p.services = 2;
  p.servers_per_service = 4;
  p.treated_servers = 2;
  p.positive_changes = 2;
  p.negative_changes = 2;
  p.history_days = 1;
  const auto ds = evalkit::build_dataset(p);

  evalkit::DetectorSpec spec;
  spec.name = "improved";
  spec.make_scorer = [] {
    return std::make_unique<detect::ImprovedSst>(
        detect::SstGeometry{.omega = 9, .eta = 3});
  };
  spec.policy = {.threshold = 0.4, .persistence = 7, .patience = 10};

  const std::vector<double> thresholds{0.1, 0.4, 1.0, 3.0};
  const auto curve = evalkit::detector_roc(*ds, spec, thresholds);
  ASSERT_EQ(curve.size(), 4u);
  // Raising the threshold cannot increase TPR or FPR.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].tpr, curve[i - 1].tpr + 1e-12);
    EXPECT_LE(curve[i].fpr, curve[i - 1].fpr + 1e-12);
  }
  const double area = evalkit::auc(curve);
  EXPECT_GE(area, 0.5);
  EXPECT_LE(area, 1.0);
  EXPECT_THROW((void)evalkit::detector_roc(*ds, spec, {}), InvalidArgument);
  EXPECT_THROW((void)evalkit::auc({}), InvalidArgument);
}

TEST(ReportJson, SerializesVerdictAndReport) {
  core::AssessmentReport report;
  report.change_id = 7;
  report.change_time = 1234;
  report.impact_set.changed_service = "svc \"quoted\"";
  report.impact_set.dark_launched = true;

  core::ItemVerdict v;
  v.metric = tsdb::server_metric("web-1", "cpu");
  v.kpi_change_detected = true;
  v.cause = core::Cause::kSoftwareChange;
  detect::Alarm alarm;
  alarm.minute = 1240;
  alarm.peak_score = 2.5;
  v.alarm = alarm;
  did::DiDResult fit;
  fit.alpha = 4.5;
  fit.alpha_scaled = 4.0;
  fit.t_stat = 10.0;
  fit.n_treated = 2;
  fit.n_control = 3;
  v.did_fit = fit;
  report.items.push_back(v);

  const std::string json = core::to_json(report);
  EXPECT_NE(json.find("\"change_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"changed_service\":\"svc \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"software-change\""), std::string::npos);
  EXPECT_NE(json.find("\"minute\":1240"), std::string::npos);
  EXPECT_NE(json.find("\"n_control\":3"), std::string::npos);
  EXPECT_NE(json.find("\"change_has_impact\":true"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ReportJson, NonFiniteNumbersBecomeNull) {
  core::ItemVerdict v;
  v.metric = tsdb::server_metric("w", "cpu");
  did::DiDResult fit;
  fit.alpha = std::nan("");
  v.did_fit = fit;
  const std::string json = core::to_json(v);
  EXPECT_NE(json.find("\"alpha\":null"), std::string::npos);
}

}  // namespace
}  // namespace funnel
