// Tests for the evaluation kit: confusion metrics, the labeled dataset
// builder, and the method evaluators.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "detect/improved_sst.h"
#include "evalkit/dataset.h"
#include "evalkit/evaluate.h"
#include "evalkit/metrics.h"

namespace funnel::evalkit {
namespace {

TEST(ConfusionMatrix, AddAndRates) {
  ConfusionMatrix cm;
  cm.add(true, true);    // tp
  cm.add(true, false);   // fn
  cm.add(false, true);   // fp
  cm.add(false, false);  // tn
  cm.add(false, false);  // tn
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 2u);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.5);
  EXPECT_DOUBLE_EQ(cm.tnr(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
  EXPECT_EQ(cm.total(), 5u);
}

TEST(ConfusionMatrix, WeightsAndScaling) {
  ConfusionMatrix cm;
  cm.add(false, false, 86);  // the §4.2.1 extrapolation weight
  cm.add(true, true);
  EXPECT_EQ(cm.tn, 86u);
  const ConfusionMatrix s = cm.scaled(2);
  EXPECT_EQ(s.tn, 172u);
  EXPECT_EQ(s.tp, 2u);
}

TEST(ConfusionMatrix, DegenerateDenominators) {
  ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 1.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 1.0);
  EXPECT_DOUBLE_EQ(empty.tnr(), 1.0);
  EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);
}

TEST(ConfusionMatrix, Accumulate) {
  ConfusionMatrix a, b;
  a.add(true, true);
  b.add(false, true);
  a += b;
  EXPECT_EQ(a.tp, 1u);
  EXPECT_EQ(a.fp, 1u);
  EXPECT_NE(a.to_string().find("fp=1"), std::string::npos);
}

TEST(KpiSchema, ClassesAndNames) {
  EXPECT_EQ(kpi_class_of("page_view_count"), tsdb::KpiClass::kSeasonal);
  EXPECT_EQ(kpi_class_of("cpu_context_switch"), tsdb::KpiClass::kVariable);
  EXPECT_EQ(kpi_class_of("response_delay"), tsdb::KpiClass::kVariable);
  EXPECT_EQ(kpi_class_of("memory_utilization"), tsdb::KpiClass::kStationary);
  EXPECT_EQ(kpi_class_of("error_count"), tsdb::KpiClass::kStationary);
  EXPECT_EQ(server_kpi_names().size(), 2u);
  EXPECT_EQ(instance_kpi_names().size(), 3u);
  for (const auto& k : server_kpi_names()) EXPECT_GT(kpi_noise_sigma(k), 0.0);
}

DatasetParams tiny_params() {
  DatasetParams p;
  p.seed = 11;
  p.services = 3;
  p.servers_per_service = 4;
  p.treated_servers = 2;
  p.positive_changes = 2;
  p.negative_changes = 2;
  p.history_days = 2;
  p.confounder_probability = 0.5;
  return p;
}

TEST(Dataset, BuildsConsistentStructure) {
  const auto ds = build_dataset(tiny_params());
  EXPECT_EQ(ds->topo.service_count(), 3u);
  EXPECT_EQ(ds->topo.server_count(), 12u);
  EXPECT_EQ(ds->log.size(), 4u);
  EXPECT_EQ(ds->positive_change_ids.size(), 2u);
  EXPECT_EQ(ds->negative_change_ids.size(), 2u);
  EXPECT_FALSE(ds->items.empty());
  EXPECT_EQ(ds->change_day_start, 2 * kMinutesPerDay);

  // Every change has items and every item's metric exists in the store.
  for (const ItemTruth& item : ds->items) {
    EXPECT_TRUE(ds->store.has(item.metric)) << item.metric.to_string();
    EXPECT_EQ(item.kpi_class, kpi_class_of(item.metric.kpi));
  }
}

TEST(Dataset, PositiveChangesHaveInducedItemsNegativesDoNot) {
  const auto ds = build_dataset(tiny_params());
  for (changes::ChangeId id : ds->positive_change_ids) {
    int induced = 0;
    for (const ItemTruth& item : ds->items) {
      if (item.change_id == id && item.change_induced) ++induced;
    }
    EXPECT_GT(induced, 0) << "positive change " << id;
    EXPECT_TRUE(ds->is_positive_change(id));
  }
  for (changes::ChangeId id : ds->negative_change_ids) {
    for (const ItemTruth& item : ds->items) {
      if (item.change_id == id) EXPECT_FALSE(item.change_induced);
    }
    EXPECT_FALSE(ds->is_positive_change(id));
  }
}

TEST(Dataset, DeterministicForSeed) {
  const auto a = build_dataset(tiny_params());
  const auto b = build_dataset(tiny_params());
  ASSERT_EQ(a->items.size(), b->items.size());
  for (std::size_t i = 0; i < a->items.size(); ++i) {
    EXPECT_EQ(a->items[i].metric, b->items[i].metric);
    EXPECT_EQ(a->items[i].change_induced, b->items[i].change_induced);
  }
  // Sample data identical too.
  const auto& m = a->items.front().metric;
  EXPECT_EQ(a->store.series(m).slice(0, 100), b->store.series(m).slice(0, 100));
}

TEST(Dataset, ServiceKpiIsInstanceAggregation) {
  const auto ds = build_dataset(tiny_params());
  const std::string svc = ds->topo.services().front();
  const std::string kpi = instance_kpi_names().front();
  const auto& svc_series = ds->store.series(tsdb::service_metric(svc, kpi));
  const auto instances = ds->topo.instances_of(svc);
  for (MinuteTime t : {MinuteTime{100}, MinuteTime{2000}}) {
    double acc = 0.0;
    for (const auto& inst : instances) {
      acc += ds->store.series(tsdb::instance_metric(inst, kpi)).at(t);
    }
    EXPECT_NEAR(svc_series.at(t), acc / static_cast<double>(instances.size()),
                1e-9);
  }
}

TEST(Dataset, ChangesAreScheduledInsideTheHorizon) {
  const auto ds = build_dataset(tiny_params());
  for (const auto& ch : ds->log.all()) {
    EXPECT_GE(ch.time, ds->change_day_start);
    const auto& any_series = ds->store.series(ds->items.front().metric);
    EXPECT_LE(ch.time + 60, any_series.end_time());
  }
}

TEST(Dataset, ValidatesParams) {
  DatasetParams bad = tiny_params();
  bad.treated_servers = bad.servers_per_service;
  EXPECT_THROW((void)build_dataset(bad), InvalidArgument);
  bad = tiny_params();
  bad.services = 0;
  EXPECT_THROW((void)build_dataset(bad), InvalidArgument);
}

TEST(Evaluate, DetectorProtocolCountsEveryItem) {
  const auto ds = build_dataset(tiny_params());
  DetectorSpec spec;
  spec.name = "improved-sst";
  spec.make_scorer = [] {
    return std::make_unique<detect::ImprovedSst>(
        detect::SstGeometry{.omega = 9, .eta = 3});
  };
  spec.policy = {.threshold = 0.4, .persistence = 7};
  const MethodResult r = evaluate_detector(*ds, spec);
  EXPECT_EQ(r.method, "improved-sst");
  EXPECT_EQ(r.total().total(), ds->items.size());
  // Detection-only methods catch most injected effects.
  EXPECT_GT(r.total().recall(), 0.5);
}

TEST(Evaluate, NegativeScaleWeighsNegativeChangeItems) {
  const auto ds = build_dataset(tiny_params());
  DetectorSpec spec;
  spec.name = "x";
  spec.make_scorer = [] {
    return std::make_unique<detect::ImprovedSst>(
        detect::SstGeometry{.omega = 9, .eta = 3});
  };
  spec.policy = {.threshold = 0.4, .persistence = 7};
  const MethodResult unscaled = evaluate_detector(*ds, spec, 60, 60, 1);
  const MethodResult scaled = evaluate_detector(*ds, spec, 60, 60, 86);
  std::uint64_t neg_items = 0;
  for (const ItemTruth& item : ds->items) {
    if (!ds->is_positive_change(item.change_id)) ++neg_items;
  }
  EXPECT_EQ(scaled.total().total(),
            unscaled.total().total() + neg_items * 85);
}

TEST(Evaluate, FunnelBeatsDetectorOnlyPrecision) {
  // With confounders present, FUNNEL's DiD must reject non-change causes
  // that the raw detector flags.
  DatasetParams p = tiny_params();
  p.confounder_probability = 1.0;
  const auto ds = build_dataset(p);

  DetectorSpec spec;
  spec.name = "improved-sst";
  spec.make_scorer = [] {
    return std::make_unique<detect::ImprovedSst>(
        detect::SstGeometry{.omega = 9, .eta = 3});
  };
  spec.policy = {.threshold = 0.4, .persistence = 7};
  const MethodResult detector = evaluate_detector(*ds, spec);

  core::FunnelConfig cfg;
  cfg.baseline_days = 1;
  const MethodResult funnel = evaluate_funnel(*ds, cfg);
  EXPECT_EQ(funnel.total().total(), ds->items.size());
  EXPECT_GE(funnel.total().precision(), detector.total().precision());
  EXPECT_LE(funnel.total().fp, detector.total().fp);
}

TEST(Evaluate, CoresForKpisMatchesPaperArithmetic) {
  // Table 2, last row: 401.8 µs -> 7 cores, 1.846 ms -> 31 cores for one
  // million KPIs scored once a minute.
  EXPECT_EQ(cores_for_kpis(401.8), 7u);
  EXPECT_EQ(cores_for_kpis(1846.0), 31u);
  EXPECT_EQ(cores_for_kpis(2.852e6), 47534u);
  EXPECT_EQ(cores_for_kpis(0.0), 0u);
}

TEST(Evaluate, MeanScoreMicrosIsPositive) {
  detect::ImprovedSst scorer(detect::SstGeometry{.omega = 5, .eta = 3});
  std::vector<double> series(200);
  Rng rng(3);
  for (double& x : series) x = rng.gaussian(50.0, 1.0);
  const double us = mean_score_micros(scorer, series, 200);
  EXPECT_GT(us, 0.0);
  EXPECT_LT(us, 1e5);
}

}  // namespace
}  // namespace funnel::evalkit
