#include "funnel/report.h"

#include <sstream>

namespace funnel::core {

const char* to_string(Cause c) {
  switch (c) {
    case Cause::kNoKpiChange:
      return "no-kpi-change";
    case Cause::kSoftwareChange:
      return "software-change";
    case Cause::kOtherFactors:
      return "other-factors";
    case Cause::kSeasonality:
      return "seasonality";
    case Cause::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

const char* to_string(InconclusiveReason r) {
  switch (r) {
    case InconclusiveReason::kNone:
      return "none";
    case InconclusiveReason::kInsufficientPreWindow:
      return "insufficient-pre-window";
    case InconclusiveReason::kGapInDetectionWindow:
      return "gap-in-detection-window";
    case InconclusiveReason::kControlGroupEmpty:
      return "control-group-empty";
    case InconclusiveReason::kHistoricalQuorumUnmet:
      return "historical-quorum-unmet";
    case InconclusiveReason::kWatchTimedOut:
      return "watch-timed-out";
  }
  return "?";
}

std::size_t AssessmentReport::kpi_changes_detected() const {
  std::size_t n = 0;
  for (const auto& v : items) {
    if (v.kpi_change_detected) ++n;
  }
  return n;
}

std::size_t AssessmentReport::kpi_changes_caused() const {
  std::size_t n = 0;
  for (const auto& v : items) {
    if (v.caused_by_software_change()) ++n;
  }
  return n;
}

std::size_t AssessmentReport::kpis_inconclusive() const {
  std::size_t n = 0;
  for (const auto& v : items) {
    if (v.cause == Cause::kInconclusive) ++n;
  }
  return n;
}

std::string AssessmentReport::summary() const {
  std::ostringstream os;
  os << "change #" << change_id << " on " << impact_set.changed_service
     << " at minute " << change_time << " ("
     << (impact_set.dark_launched ? "dark" : "full") << " launching)\n";
  os << "  impact set: " << impact_set.tservers.size() << " tservers, "
     << impact_set.tinstances.size() << " tinstances, "
     << impact_set.affected_services.size() << " affected services; control: "
     << impact_set.cservers.size() << " cservers\n";
  os << "  KPIs examined: " << kpis_examined()
     << ", behavior changes: " << kpi_changes_detected()
     << ", caused by this change: " << kpi_changes_caused();
  if (kpis_inconclusive() > 0) {
    os << ", inconclusive: " << kpis_inconclusive();
  }
  os << "\n";
  for (const auto& v : items) {
    if (!v.kpi_change_detected && v.cause != Cause::kInconclusive) continue;
    os << "    " << v.metric.to_string() << " -> " << to_string(v.cause);
    if (v.cause == Cause::kInconclusive) {
      os << " [" << to_string(v.inconclusive_reason) << "]";
    }
    if (v.alarm) os << " (alarm at minute " << v.alarm->minute << ")";
    if (const auto ttv = v.time_to_verdict(change_time)) {
      os << " (verdict at minute " << *v.determined_at << ", " << *ttv
         << " min after deployment)";
    }
    if (v.did_fit) {
      os << " [alpha=" << v.did_fit->alpha
         << ", alpha_scaled=" << v.did_fit->alpha_scaled
         << ", t=" << v.did_fit->t_stat << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace funnel::core
