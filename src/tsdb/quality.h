// Per-window telemetry quality assessment.
//
// Production KPI feeds are dirty: agents restart (gaps), clocks skew
// (duplicates, out-of-order delivery) and collectors wedge (stuck-at
// values). A QualityReport summarizes how trustworthy one [t0, t1) window
// of a series is, so the assessment pipeline can degrade explicitly
// (Cause::kInconclusive) instead of silently suppressing alarms or throwing
// mid-flight. Computed once per assessed window and threaded through the
// verdict, the report JSON and the trace spans — see docs/ROBUSTNESS.md.
#pragma once

#include <cstddef>

#include "common/minute_time.h"
#include "tsdb/series.h"

namespace funnel::tsdb {

/// Telemetry quality of one series over one minute window.
struct QualityReport {
  /// Length of the assessed window in minutes (t1 - t0).
  std::size_t window_minutes = 0;
  /// Finite samples inside the window (minutes outside the series' covered
  /// range count as missing, exactly like stored NaN gaps).
  std::size_t clean_samples = 0;
  /// clean_samples / window_minutes; 0 for an empty window.
  double coverage = 0.0;
  /// Longest run of consecutive missing minutes (NaN or uncovered).
  std::size_t longest_gap_run = 0;
  /// Longest run of consecutive *identical* finite values — the stuck-at /
  /// flatline signature. Real KPIs carry noise; a long exact-repeat run
  /// means the collector is replaying one sample. Diagnostic only: it is
  /// surfaced, not verdict-gating (a genuinely constant KPI is legal).
  std::size_t longest_flat_run = 0;

  /// True when the window meets the given coverage/gap thresholds.
  /// `max_flat_run` = 0 disables the flatline gate (constant KPIs are
  /// legal; gate only where stuck-at collectors are the bigger risk).
  bool acceptable(double min_coverage, std::size_t max_gap_run,
                  std::size_t max_flat_run = 0) const {
    return coverage >= min_coverage && longest_gap_run <= max_gap_run &&
           (max_flat_run == 0 || longest_flat_run <= max_flat_run);
  }
};

/// Quality of `series` over [t0, t1). Minutes outside the series' covered
/// range are missing. t1 < t0 throws InvalidArgument.
QualityReport window_quality(const TimeSeries& series, MinuteTime t0,
                             MinuteTime t1);

}  // namespace funnel::tsdb
