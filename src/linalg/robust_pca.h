// Robust PCA by the inexact Augmented Lagrange Multiplier method
// (Lin, Chen & Ma, arXiv:1009.5055 — the paper's reference [17]).
//
// Decomposes M = L + S with L low-rank and S sparse by solving
//   min ||L||_* + lambda ||S||_1   s.t.   M = L + S.
// Each ALM iteration performs one full SVD (singular value thresholding),
// which is exactly the "iteration of SVD ... with l1-norm" the paper blames
// for MRLS's prohibitive computational cost (§1): MRLS uses this solver to
// extract a contamination-robust local subspace per window per scale.
#pragma once

#include "linalg/matrix.h"

namespace funnel::linalg {

struct RobustPcaResult {
  Matrix low_rank;  ///< L
  Matrix sparse;    ///< S
  int iterations = 0;
  bool converged = false;
};

struct RobustPcaOptions {
  /// Sparsity weight; <= 0 selects the standard 1/sqrt(max(m, n)).
  double lambda = 0.0;
  /// Relative Frobenius tolerance on ||M - L - S||.
  double tolerance = 1e-6;
  int max_iterations = 100;
};

/// Run inexact-ALM RPCA. Throws InvalidArgument on an empty matrix. A
/// zero matrix returns immediately with L = S = 0.
RobustPcaResult robust_pca(const Matrix& m, RobustPcaOptions options = {});

}  // namespace funnel::linalg
