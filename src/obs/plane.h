// The live telemetry plane: one object wiring the embedded HTTP server
// (obs/server.h) to the observability stack — the ROADMAP service-mode
// daemon's exposition surface, usable today from `funnel_detect_csv
// --http-port`.
//
// Endpoints (all GET/HEAD; docs/OBSERVABILITY.md "Live endpoints"):
//   /metrics     Prometheus text exposition of the live Registry
//   /stats.json  the same snapshot as --stats-json, as application/json
//   /healthz     deep health: per-subsystem checks (obs/selfmon.h) —
//                ingest dispatcher, WAL writer, journal writer, compaction,
//                plus selfmon detector alarms when a SelfMonitor is
//                attached; 200 "healthy" / 503 "unhealthy" + one line per
//                check
//   /readyz      readiness: 200 once set_ready(true) (pipeline constructed
//                and ingesting), 503 before
//   /statusz     human-readable build/config/uptime page
//   /tracez      recent span summaries as JSON, from the last published
//                TraceDump
//
// /tracez serves a *cached* dump: Tracer::collect() is only defined at
// quiesce points (obs/trace.h), so the pipeline publishes via
// publish_trace() at its natural barriers (end of a CSV file, after
// flush()) and the handler renders the latest published copy — never a
// live collect racing the recorders.
//
// Every handler reads only thread-safe state (Registry::snapshot, atomics,
// the mutex-guarded trace cache), because handlers run concurrently on the
// server's worker pool. The plane is a side channel like the rest of obs:
// reports are byte-identical with it running or not, and under
// FUNNEL_OBS=OFF start() fails with the server stub's "compiled out" error.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/selfmon.h"
#include "obs/server.h"
#include "obs/trace.h"

namespace funnel::obs {

struct PlaneOptions {
  /// Listener config; http.port 0 binds an ephemeral port (see port()).
  HttpServerOptions http{};
  /// Free-form build identification for /statusz (version, flags).
  std::string build_info;
  /// Free-form one-line config rendering for /statusz.
  std::string config_summary;
  /// Most recent spans rendered by /tracez (the full dump is retained).
  std::size_t tracez_max_spans = 256;
};

class TelemetryPlane {
 public:
  /// `stats` is the registry /metrics and /stats.json expose (null = empty
  /// snapshots); it must outlive the plane.
  explicit TelemetryPlane(const Registry* stats, PlaneOptions options = {});
  ~TelemetryPlane();

  TelemetryPlane(const TelemetryPlane&) = delete;
  TelemetryPlane& operator=(const TelemetryPlane&) = delete;

  /// Attach the self-monitor /healthz consults (null = threshold checks
  /// only). Call before start(); the monitor must outlive the plane.
  void set_selfmon(SelfMonitor* selfmon);

  /// Flip /readyz (starts false; typically set once ingestion is wired).
  void set_ready(bool ready);

  /// Publish a trace dump for /tracez. Call at quiesce points only —
  /// this is the Tracer::collect() contract, not the plane's.
  void publish_trace(TraceDump dump);

  /// Mount extra routes on the plane's server — how a host (the
  /// multi-tenant FunnelService, src/service) shares one listener with the
  /// exposition endpoints. Same contracts as HttpServer::handle /
  /// handle_post / handle_prefix; register before start(). The plane's own
  /// paths (/metrics, /healthz, ...) are registered at start() and win any
  /// exact-path collision.
  void handle(std::string path, HttpServer::Handler handler);
  void handle_post(std::string path, HttpServer::Handler handler);
  void handle_prefix(std::string prefix, HttpServer::Handler handler,
                     bool post = false);

  /// Add a /healthz contributor: its checks are appended to the report on
  /// every probe and AND-ed into the overall verdict (per-tenant detail
  /// lines come from here). Register before start(); the callable runs on
  /// server worker threads and must be thread-safe.
  void add_health(std::function<std::vector<HealthCheck>()> contributor);

  /// Register routes and start the server. False (see error()) on bind
  /// failure or under FUNNEL_OBS=OFF.
  bool start();

  void stop();
  bool running() const { return server_.running(); }

  /// Bound port after start() (the ephemeral one when options.http.port
  /// was 0).
  std::uint16_t port() const { return server_.port(); }

  const std::string& error() const { return server_.error(); }
  std::uint64_t requests_served() const { return server_.requests_served(); }

 private:
  HttpResponse metrics() const;
  HttpResponse stats_json() const;
  HttpResponse healthz() const;
  HttpResponse readyz() const;
  HttpResponse statusz() const;
  HttpResponse tracez() const;

  const Registry* stats_;
  PlaneOptions options_;
  HttpServer server_;
  SelfMonitor* selfmon_ = nullptr;
  /// Extra health checks (add_health); fixed after start(), so handlers
  /// read it lock-free.
  std::vector<std::function<std::vector<HealthCheck>()>> health_extras_;
  std::atomic<bool> ready_{false};
  std::chrono::steady_clock::time_point started_at_{};

  mutable std::mutex trace_mutex_;  ///< guards trace_dump_
  std::shared_ptr<const TraceDump> trace_dump_;
};

}  // namespace funnel::obs
