#include "tsdb/metric.h"

namespace funnel::tsdb {

const char* to_string(EntityKind kind) {
  switch (kind) {
    case EntityKind::kServer:
      return "server";
    case EntityKind::kInstance:
      return "instance";
    case EntityKind::kService:
      return "service";
  }
  return "?";
}

const char* to_string(KpiClass c) {
  switch (c) {
    case KpiClass::kSeasonal:
      return "seasonal";
    case KpiClass::kStationary:
      return "stationary";
    case KpiClass::kVariable:
      return "variable";
  }
  return "?";
}

std::string MetricId::to_string() const {
  std::string out = funnel::tsdb::to_string(kind);
  out += ':';
  out += entity;
  out += '/';
  out += kpi;
  return out;
}

MetricId server_metric(std::string server, std::string kpi) {
  return {EntityKind::kServer, std::move(server), std::move(kpi)};
}

MetricId instance_metric(std::string instance, std::string kpi) {
  return {EntityKind::kInstance, std::move(instance), std::move(kpi)};
}

MetricId service_metric(std::string service, std::string kpi) {
  return {EntityKind::kService, std::move(service), std::move(kpi)};
}

}  // namespace funnel::tsdb
