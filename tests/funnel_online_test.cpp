// Tests for the streaming (online) assessor — the deployed FUNNEL of §5.
#include "funnel/online.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::core {
namespace {

constexpr MinuteTime kDay = kMinutesPerDay;

FunnelConfig test_config() {
  FunnelConfig cfg;
  cfg.baseline_days = 3;
  return cfg;
}

// Dark-launch scenario streamed minute-by-minute: history is materialized up
// to the change, the rest is appended live after watch().
struct OnlineScenario {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;
  MinuteTime tc = 4 * kDay + 300;
  changes::ChangeId change_id = 0;
  std::vector<std::pair<tsdb::MetricId, std::unique_ptr<workload::KpiStream>>>
      streams;

  explicit OnlineScenario(double effect) {
    const std::vector<std::string> servers{"s1", "s2", "s3", "s4"};
    for (const auto& s : servers) topo.add_server("svc", s);
    changes::SoftwareChange ch;
    ch.service = "svc";
    ch.time = tc;
    ch.mode = changes::LaunchMode::kDark;
    ch.servers = {"s1", "s2"};
    change_id = log.record(ch, topo);

    Rng rng(7);
    for (const auto& s : servers) {
      workload::StationaryParams p;
      p.level = 50.0;
      auto stream =
          std::make_unique<workload::KpiStream>(
              workload::make_stationary(p, rng.split()));
      if (effect != 0.0 && (s == "s1" || s == "s2")) {
        stream->add_effect(workload::LevelShift{tc, effect});
      }
      const tsdb::MetricId id = tsdb::server_metric(s, "mem");
      workload::materialize(*stream, store, id, 0, tc);
      streams.emplace_back(id, std::move(stream));
    }
  }

  void stream_minutes(MinuteTime from, MinuteTime to) {
    for (MinuteTime t = from; t < to; ++t) {
      for (auto& [id, stream] : streams) {
        store.append(id, t, stream->sample(t));
      }
    }
  }
};

TEST(FunnelOnline, DetectsAndAttributesWithinMinutes) {
  OnlineScenario sc(8.0);
  FunnelOnline online(test_config(), sc.topo, sc.log, sc.store);

  std::vector<std::pair<changes::ChangeId, ItemVerdict>> verdicts;
  std::vector<AssessmentReport> reports;
  online.on_verdict([&](changes::ChangeId id, const ItemVerdict& v) {
    verdicts.emplace_back(id, v);
  });
  online.on_report([&](const AssessmentReport& r) { reports.push_back(r); });

  online.watch(sc.change_id);
  EXPECT_EQ(online.active_watches(), 1u);

  sc.stream_minutes(sc.tc, sc.tc + 61);

  // Both treated KPIs page the operations team...
  ASSERT_GE(verdicts.size(), 2u);
  for (const auto& [id, v] : verdicts) {
    EXPECT_EQ(id, sc.change_id);
    EXPECT_EQ(v.cause, Cause::kSoftwareChange);
    ASSERT_TRUE(v.alarm.has_value());
    // ... and they do so within ~25 minutes of the change (the §5.2 case was
    // confirmed in ~10 minutes; the persistence rule alone costs 7).
    EXPECT_LE(v.alarm->minute, sc.tc + 25);
  }

  // The watch finalizes at the horizon.
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(online.active_watches(), 0u);
  EXPECT_TRUE(reports[0].change_has_impact());
  EXPECT_GE(reports[0].kpi_changes_caused(), 2u);
}

TEST(FunnelOnline, QuietChangeProducesCleanReport) {
  OnlineScenario sc(0.0);
  FunnelOnline online(test_config(), sc.topo, sc.log, sc.store);
  int verdict_count = 0;
  std::vector<AssessmentReport> reports;
  online.on_verdict(
      [&](changes::ChangeId, const ItemVerdict&) { ++verdict_count; });
  online.on_report([&](const AssessmentReport& r) { reports.push_back(r); });
  online.watch(sc.change_id);
  sc.stream_minutes(sc.tc, sc.tc + 61);
  EXPECT_EQ(verdict_count, 0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].change_has_impact());
}

TEST(FunnelOnline, AgreesWithBatchAssessment) {
  OnlineScenario sc(8.0);
  // Run online to completion.
  FunnelOnline online(test_config(), sc.topo, sc.log, sc.store);
  std::vector<AssessmentReport> reports;
  online.on_report([&](const AssessmentReport& r) { reports.push_back(r); });
  online.watch(sc.change_id);
  sc.stream_minutes(sc.tc, sc.tc + 61);
  ASSERT_EQ(reports.size(), 1u);

  // Batch assessment over the same (now complete) data.
  const Funnel funnel(test_config(), sc.topo, sc.log, sc.store);
  const AssessmentReport batch = funnel.assess(sc.change_id);

  ASSERT_EQ(reports[0].items.size(), batch.items.size());
  std::size_t online_caused = reports[0].kpi_changes_caused();
  EXPECT_EQ(online_caused, batch.kpi_changes_caused());
}

TEST(FunnelOnline, PrimingWithExistingPostChangeData) {
  // If the effect is already in the store when watch() is called (late
  // registration), priming must pick it up.
  OnlineScenario sc(8.0);
  sc.stream_minutes(sc.tc, sc.tc + 30);  // effect data lands pre-watch
  FunnelOnline online(test_config(), sc.topo, sc.log, sc.store);
  std::vector<std::pair<changes::ChangeId, ItemVerdict>> verdicts;
  online.on_verdict([&](changes::ChangeId id, const ItemVerdict& v) {
    verdicts.emplace_back(id, v);
  });
  online.watch(sc.change_id);
  sc.stream_minutes(sc.tc + 30, sc.tc + 61);
  EXPECT_GE(verdicts.size(), 2u);
}

TEST(FunnelOnline, UnsubscribesOnDestruction) {
  OnlineScenario sc(0.0);
  EXPECT_EQ(sc.store.subscriber_count(), 0u);
  {
    FunnelOnline online(test_config(), sc.topo, sc.log, sc.store);
    online.watch(sc.change_id);
    EXPECT_EQ(sc.store.subscriber_count(), 1u);
  }
  EXPECT_EQ(sc.store.subscriber_count(), 0u);
}

TEST(FunnelOnline, PreChangeShiftIsDiscarded) {
  // A level shift well BEFORE the change: the primed detector alarms on it,
  // is rearmed, and the report must not attribute anything to the change.
  OnlineScenario sc(0.0);
  // Overwrite one treated stream with a pre-change shift by appending a
  // synthetic shifted tail into the past window (use a fresh metric).
  workload::StationaryParams p;
  p.level = 50.0;
  workload::KpiStream early(workload::make_stationary(p, Rng(99)));
  early.add_effect(workload::LevelShift{sc.tc - 40, 8.0});
  workload::materialize(early, sc.store,
                        tsdb::server_metric("s1", "early_kpi"), 0, sc.tc);
  // Control servers need the same KPI for DiD; keep them quiet.
  for (const char* s : {"s2", "s3", "s4"}) {
    workload::KpiStream quiet(workload::make_stationary(p, Rng(100)));
    workload::materialize(quiet, sc.store,
                          tsdb::server_metric(s, "early_kpi"), 0, sc.tc);
  }

  FunnelOnline online(test_config(), sc.topo, sc.log, sc.store);
  std::vector<AssessmentReport> reports;
  online.on_report([&](const AssessmentReport& r) { reports.push_back(r); });
  online.watch(sc.change_id);
  // Stream the remaining minutes (early_kpi stays at its shifted level —
  // constant, no new change).
  for (MinuteTime t = sc.tc; t < sc.tc + 61; ++t) {
    for (auto& [id, stream] : sc.streams) {
      sc.store.append(id, t, stream->sample(t));
    }
    sc.store.append(tsdb::server_metric("s1", "early_kpi"), t,
                    50.0 + 8.0 + 0.1);
    for (const char* s : {"s2", "s3", "s4"}) {
      sc.store.append(tsdb::server_metric(s, "early_kpi"), t, 50.0 - 0.1);
    }
  }
  ASSERT_EQ(reports.size(), 1u);
  for (const auto& v : reports[0].items) {
    if (v.metric.kpi == "early_kpi") {
      EXPECT_NE(v.cause, Cause::kSoftwareChange) << v.metric.to_string();
    }
  }
}

}  // namespace
}  // namespace funnel::core
