// Tests for the service/server/instance model and impact-scope relations
// (§3.1, Fig. 4).
#include "topology/topology.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace funnel::topology {
namespace {

TEST(InstanceName, RoundTrip) {
  const std::string n = instance_name("search.web", "host-17");
  EXPECT_EQ(n, "search.web@host-17");
  const auto [svc, srv] = parse_instance_name(n);
  EXPECT_EQ(svc, "search.web");
  EXPECT_EQ(srv, "host-17");
}

TEST(InstanceName, ParseRejectsMalformed) {
  EXPECT_THROW((void)parse_instance_name("no-separator"), InvalidArgument);
  EXPECT_THROW((void)parse_instance_name("@host"), InvalidArgument);
  EXPECT_THROW((void)parse_instance_name("svc@"), InvalidArgument);
}

TEST(ServiceTopology, AddServiceIdempotent) {
  ServiceTopology t;
  t.add_service("a");
  t.add_service("a");
  EXPECT_EQ(t.service_count(), 1u);
  EXPECT_TRUE(t.has_service("a"));
  EXPECT_FALSE(t.has_service("b"));
  EXPECT_THROW(t.add_service(""), InvalidArgument);
}

TEST(ServiceTopology, ServersAndInstances) {
  ServiceTopology t;
  t.add_server("svc", "h1");
  t.add_server("svc", "h2");
  EXPECT_EQ(t.servers_of("svc"), (std::vector<std::string>{"h1", "h2"}));
  EXPECT_EQ(t.instances_of("svc"),
            (std::vector<std::string>{"svc@h1", "svc@h2"}));
  EXPECT_EQ(t.service_of_server("h1"), "svc");
  EXPECT_EQ(t.server_count(), 2u);
}

TEST(ServiceTopology, ServerDedicatedToOneService) {
  ServiceTopology t;
  t.add_server("a", "h1");
  t.add_server("a", "h1");  // same owner: fine
  EXPECT_EQ(t.servers_of("a").size(), 1u);
  EXPECT_THROW(t.add_server("b", "h1"), InvalidArgument);
}

TEST(ServiceTopology, LookupErrors) {
  ServiceTopology t;
  EXPECT_THROW((void)t.servers_of("none"), NotFound);
  EXPECT_THROW((void)t.service_of_server("none"), NotFound);
  EXPECT_THROW((void)t.related_to("none"), NotFound);
  EXPECT_THROW((void)t.affected_services("none"), InvalidArgument);
}

TEST(ServiceTopology, RelationsAreSymmetric) {
  ServiceTopology t;
  t.add_relation("a", "b");
  EXPECT_EQ(t.related_to("a"), (std::vector<std::string>{"b"}));
  EXPECT_EQ(t.related_to("b"), (std::vector<std::string>{"a"}));
  EXPECT_THROW(t.add_relation("a", "a"), InvalidArgument);
}

TEST(ServiceTopology, AffectedServicesIsFigure4Closure) {
  // Fig. 4: A related to B and D; B related to C
  // => affected services of a change on A are {B, C, D}.
  ServiceTopology t;
  t.add_relation("A", "B");
  t.add_relation("A", "D");
  t.add_relation("B", "C");
  EXPECT_EQ(t.affected_services("A"),
            (std::vector<std::string>{"B", "C", "D"}));
  // From C the closure reaches everything through B.
  EXPECT_EQ(t.affected_services("C"),
            (std::vector<std::string>{"A", "B", "D"}));
}

TEST(ServiceTopology, IsolatedServiceHasNoAffected) {
  ServiceTopology t;
  t.add_service("alone");
  EXPECT_TRUE(t.affected_services("alone").empty());
  EXPECT_TRUE(t.related_to("alone").empty());
}

TEST(ServiceTopology, DisconnectedComponentsStaySeparate) {
  ServiceTopology t;
  t.add_relation("a", "b");
  t.add_relation("x", "y");
  EXPECT_EQ(t.affected_services("a"), (std::vector<std::string>{"b"}));
  EXPECT_EQ(t.affected_services("x"), (std::vector<std::string>{"y"}));
}

TEST(ServiceTopology, DeriveRelationsFromNames) {
  // The paper: service names encode the hierarchy; FUNNEL derives the
  // relationships from the naming rules.
  ServiceTopology t;
  t.add_service("search");
  t.add_service("search.web");
  t.add_service("search.web.frontend");
  t.add_service("search.ads");
  t.add_service("mail");  // unrelated root
  t.derive_relations_from_names();
  EXPECT_EQ(t.related_to("search"),
            (std::vector<std::string>{"search.ads", "search.web"}));
  EXPECT_EQ(t.related_to("search.web"),
            (std::vector<std::string>{"search", "search.web.frontend"}));
  EXPECT_TRUE(t.related_to("mail").empty());
  // Closure from the leaf climbs to every search service.
  EXPECT_EQ(t.affected_services("search.web.frontend"),
            (std::vector<std::string>{"search", "search.ads", "search.web"}));
}

TEST(ServiceTopology, DeriveSkipsMissingParents) {
  ServiceTopology t;
  t.add_service("a.b.c");  // neither "a" nor "a.b" registered
  t.derive_relations_from_names();
  EXPECT_TRUE(t.related_to("a.b.c").empty());
}

TEST(ServiceTopology, ServicesListsAll) {
  ServiceTopology t;
  t.add_service("b");
  t.add_service("a");
  EXPECT_EQ(t.services(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace funnel::topology
