#include "obs/selfmon.h"

#include <cstdint>
#include <sstream>
#include <utility>

#include "detect/ika_sst.h"
#include "tsdb/metric.h"

namespace funnel::obs {
namespace {

double gauge_or(const Snapshot& snap, const std::string& name,
                double fallback) {
  auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? fallback : it->second;
}

/// depth/capacity for one bounded MPSC queue; returns false (check passes,
/// detail "n/a") when the subsystem never registered its gauges — sync
/// dispatch, no persistence, no journal.
bool queue_fraction(const Snapshot& snap, const std::string& depth_stat,
                    const std::string& capacity_stat, double* frac,
                    std::string* detail) {
  const double capacity = gauge_or(snap, capacity_stat, 0.0);
  if (capacity <= 0.0) {
    *frac = 0.0;
    *detail = "n/a";
    return false;
  }
  const double depth = gauge_or(snap, depth_stat, 0.0);
  *frac = depth / capacity;
  std::ostringstream os;
  os << "queue " << static_cast<std::uint64_t>(depth) << '/'
     << static_cast<std::uint64_t>(capacity);
  *detail = os.str();
  return true;
}

}  // namespace

std::string HealthReport::render() const {
  std::string out = healthy ? "healthy\n" : "unhealthy\n";
  for (const HealthCheck& c : checks) {
    out += c.ok ? "ok " : "FAIL ";
    out += c.name;
    out += ' ';
    out += c.detail;
    out += '\n';
  }
  return out;
}

HealthReport evaluate_health(const Snapshot& snap,
                             const SelfMonitorOptions& options) {
  HealthReport report;
  auto queue_check = [&](const char* name, const std::string& depth_stat,
                         const std::string& capacity_stat) {
    HealthCheck check{name, true, ""};
    double frac = 0.0;
    if (queue_fraction(snap, depth_stat, capacity_stat, &frac,
                       &check.detail)) {
      check.ok = frac < options.unhealthy_queue_frac;
    }
    report.healthy = report.healthy && check.ok;
    report.checks.push_back(std::move(check));
  };
  queue_check("ingest-dispatcher", "tsdb.store.queue_depth",
              "tsdb.store.queue_capacity");
  queue_check("wal-writer", "funnel.wal.queue_depth",
              "funnel.wal.queue_capacity");
  queue_check("journal-writer", "funnel.journal.queue_depth",
              "funnel.journal.queue_capacity");

  // Compaction: the background compactor cannot be probed directly from a
  // snapshot, but its work product can — a segment list far beyond the
  // compact threshold means it stopped keeping up.
  HealthCheck compact{"compaction", true, "n/a"};
  auto segs = snap.gauges.find("funnel.persist.segments");
  if (segs != snap.gauges.end() && options.compact_backlog_max > 0) {
    const auto count = static_cast<std::uint64_t>(segs->second);
    std::ostringstream os;
    os << "segments " << count << " (max " << options.compact_backlog_max
       << ')';
    compact.detail = os.str();
    compact.ok = count <= options.compact_backlog_max;
  }
  report.healthy = report.healthy && compact.ok;
  report.checks.push_back(std::move(compact));
  return report;
}

/// One sampled KPI: where its value comes from in the snapshot, its
/// `__funnel_self/` series identity, and its private detector.
struct SelfMonitor::Kpi {
  enum class Kind {
    kQueueFrac,     ///< depth gauge / capacity gauge (0 when unregistered)
    kHistDeltaMean  ///< mean of NEW histogram observations since last tick
  };

  std::string name;
  Kind kind = Kind::kQueueFrac;
  std::string depth_stat;     // kQueueFrac
  std::string capacity_stat;  // kQueueFrac
  std::string hist_stat;      // kHistDeltaMean
  std::string gauge_stat;     ///< "funnel.selfmon.<name>" mirror

  tsdb::MetricId metric;

  // Delta state for kHistDeltaMean. A tick with no new observations holds
  // the previous value instead of dropping to 0 — an idle assessor is not
  // a latency improvement, and the sawtooth would trip the detector.
  std::uint64_t prev_count = 0;
  double prev_sum = 0.0;
  double last_value = 0.0;

  std::unique_ptr<detect::IkaSst> scorer;
  std::unique_ptr<detect::OnlineDetector> detector;
  std::uint64_t last_alarm_tick = 0;
  bool ever_alarmed = false;

  double sample(const Snapshot& snap) {
    if (kind == Kind::kQueueFrac) {
      double frac = 0.0;
      std::string detail;
      queue_fraction(snap, depth_stat, capacity_stat, &frac, &detail);
      return frac;
    }
    auto it = snap.histograms.find(hist_stat);
    if (it != snap.histograms.end() && it->second.count > prev_count) {
      last_value =
          (it->second.sum - prev_sum) / double(it->second.count - prev_count);
      prev_count = it->second.count;
      prev_sum = it->second.sum;
    }
    return last_value;
  }
};

SelfMonitor::SelfMonitor(const Registry* watched, SelfMonitorOptions options)
    : watched_(watched), options_(std::move(options)) {
  auto add_kpi = [&](std::string name, Kpi::Kind kind, std::string a,
                     std::string b) {
    auto kpi = std::make_unique<Kpi>();
    kpi->name = name;
    kpi->kind = kind;
    if (kind == Kpi::Kind::kQueueFrac) {
      kpi->depth_stat = std::move(a);
      kpi->capacity_stat = std::move(b);
    } else {
      kpi->hist_stat = std::move(a);
    }
    kpi->gauge_stat = "funnel.selfmon." + name;
    kpi->metric = tsdb::service_metric(kSelfEntity, name);
    kpi->scorer = std::make_unique<detect::IkaSst>(
        detect::SstGeometry{.omega = options_.omega, .eta = 3});
    kpi->detector = std::make_unique<detect::OnlineDetector>(
        *kpi->scorer, options_.alarm, /*start_minute=*/0);
    kpi_names_.push_back(kpi->name);
    kpis_.push_back(std::move(kpi));
  };

  // The pipeline-health KPI schema (docs/OBSERVABILITY.md "Selfmon KPIs").
  add_kpi("dispatch_queue_frac", Kpi::Kind::kQueueFrac,
          "tsdb.store.queue_depth", "tsdb.store.queue_capacity");
  add_kpi("dispatch_lag_us", Kpi::Kind::kHistDeltaMean,
          "tsdb.store.dispatch_lag_us", "");
  add_kpi("wal_queue_frac", Kpi::Kind::kQueueFrac, "funnel.wal.queue_depth",
          "funnel.wal.queue_capacity");
  add_kpi("wal_commit_us", Kpi::Kind::kHistDeltaMean, "funnel.wal.commit_us",
          "");
  add_kpi("journal_queue_frac", Kpi::Kind::kQueueFrac,
          "funnel.journal.queue_depth", "funnel.journal.queue_capacity");
  add_kpi("sst_us", Kpi::Kind::kHistDeltaMean, "funnel.assess.sst_us", "");
  add_kpi("time_to_verdict_min", Kpi::Kind::kHistDeltaMean,
          "funnel.online.time_to_verdict_min", "");

  if (watched_ != nullptr) {
    watched_->declare_counter("funnel.selfmon.ticks");
    watched_->declare_counter("funnel.selfmon.alarms");
    for (const auto& kpi : kpis_) watched_->declare_gauge(kpi->gauge_stat);
  }
}

SelfMonitor::~SelfMonitor() { stop(); }

void SelfMonitor::set_journal(const Journal* journal) {
  std::lock_guard lock(mutex_);
  journal_ = journal;
}

void SelfMonitor::tick() {
  if (!kEnabled || watched_ == nullptr) return;
  std::lock_guard lock(mutex_);
  tick_locked();
}

void SelfMonitor::tick_locked() {
  const Snapshot snap = watched_->snapshot();
  const auto minute = static_cast<MinuteTime>(tick_count_);
  for (auto& kpi : kpis_) {
    const double value = kpi->sample(snap);
    store_.append(kpi->metric, minute, value);
    watched_->set(kpi->gauge_stat, value);
    if (auto alarm = kpi->detector->push(value)) {
      on_alarm_locked(*kpi, *alarm);
    }
  }
  ++tick_count_;
  watched_->add("funnel.selfmon.ticks");
}

void SelfMonitor::on_alarm_locked(Kpi& kpi, const detect::Alarm& alarm) {
  ++alarms_;
  kpi.last_alarm_tick = tick_count_;
  kpi.ever_alarmed = true;
  watched_->add("funnel.selfmon.alarms");
  if (journal_ != nullptr) {
    // Same provenance shape as a customer-KPI verdict, under the reserved
    // service, so triage tooling sees pipeline degradation in-stream.
    JournalEvent ev;
    ev.source = "selfmon";
    ev.service = kSelfEntity;
    ev.change_type = "pipeline";
    ev.metric = kpi.metric.to_string();
    ev.entity_kind = "service";
    ev.kpi = kpi.name;
    ev.cause = "pipeline-degradation";
    ev.detected = true;
    ev.alarm_minute = alarm.minute;
    ev.sst_peak = alarm.peak_score;
    ev.determined_at = static_cast<MinuteTime>(tick_count_);
    journal_->append(std::move(ev));
  }
  // Re-arm so a second, later degradation episode alarms again; health()
  // latches the episode for alarm_hold_ticks.
  kpi.detector->rearm();
}

bool SelfMonitor::start() {
  if (!kEnabled || watched_ == nullptr) return false;
  std::lock_guard lock(run_mutex_);
  if (thread_running_) return false;
  stop_requested_ = false;
  thread_ = std::thread([this] {
    std::unique_lock lk(run_mutex_);
    while (!stop_requested_) {
      lk.unlock();
      tick();
      lk.lock();
      run_cv_.wait_for(lk, options_.tick_period,
                       [this] { return stop_requested_; });
    }
  });
  thread_running_ = true;
  return true;
}

void SelfMonitor::stop() {
  std::thread joinme;
  {
    std::lock_guard lock(run_mutex_);
    if (!thread_running_) return;
    stop_requested_ = true;
    run_cv_.notify_all();
    joinme = std::move(thread_);
    thread_running_ = false;
  }
  joinme.join();
}

bool SelfMonitor::running() const {
  std::lock_guard lock(run_mutex_);
  return thread_running_;
}

HealthReport SelfMonitor::health() const {
  HealthReport report;
  if (watched_ != nullptr) {
    report = evaluate_health(watched_->snapshot(), options_);
  }
  HealthCheck selfmon{"selfmon", true, ""};
  {
    std::lock_guard lock(mutex_);
    std::string degraded;
    for (const auto& kpi : kpis_) {
      if (kpi->ever_alarmed &&
          tick_count_ - kpi->last_alarm_tick <= options_.alarm_hold_ticks) {
        if (!degraded.empty()) degraded += ',';
        degraded += kpi->name;
      }
    }
    if (degraded.empty()) {
      std::ostringstream os;
      os << "ticks " << tick_count_ << " alarms " << alarms_;
      selfmon.detail = os.str();
    } else {
      selfmon.ok = false;
      selfmon.detail = "degraded: " + degraded;
    }
  }
  report.healthy = report.healthy && selfmon.ok;
  report.checks.push_back(std::move(selfmon));
  return report;
}

const std::vector<std::string>& SelfMonitor::kpis() const {
  return kpi_names_;
}

const tsdb::MetricStore& SelfMonitor::store() const { return store_; }

std::uint64_t SelfMonitor::ticks() const {
  std::lock_guard lock(mutex_);
  return tick_count_;
}

std::uint64_t SelfMonitor::alarms_raised() const {
  std::lock_guard lock(mutex_);
  return alarms_;
}

}  // namespace funnel::obs
