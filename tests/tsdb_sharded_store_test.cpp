// Tests for the sharded metric store and its async ingest path: the
// byte-equivalence claim (reports identical for every shard count and for
// sync vs async dispatch), the flush() barrier, both backpressure policies,
// per-metric delivery order, the unsubscribe guarantee, and the
// append/insert contract. The stress tests here are the ones the
// FUNNEL_SANITIZE=thread job (scripts/tsan_concurrency.sh) runs under
// ThreadSanitizer; see docs/CONCURRENCY.md for the model they pin down.
#include "tsdb/store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "funnel/online.h"
#include "funnel/report_json.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::tsdb {
namespace {

constexpr MinuteTime kDay = kMinutesPerDay;

MetricId test_metric(const std::string& server, const std::string& kpi) {
  return server_metric(server, kpi);
}

// ---------------------------------------------------------------------------
// Byte-equivalence: the tentpole invariant. One dark-launch scenario run
// through the full online pipeline on stores configured with 1 shard
// synchronous (the legacy reference), and 1/4/16 shards asynchronous; every
// run must produce the exact same report JSON.

struct ScenarioResult {
  std::string online_json;
  std::string batch_json;
};

ScenarioResult run_scenario(const StoreOptions& options) {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  MetricStore store(options);
  const MinuteTime tc = 4 * kDay + 300;

  const std::vector<std::string> servers{"s1", "s2", "s3", "s4"};
  for (const auto& s : servers) topo.add_server("svc", s);
  changes::SoftwareChange ch;
  ch.service = "svc";
  ch.time = tc;
  ch.mode = changes::LaunchMode::kDark;
  ch.servers = {"s1", "s2"};
  const changes::ChangeId cid = log.record(ch, topo);

  Rng rng(7);
  std::vector<std::pair<MetricId, std::unique_ptr<workload::KpiStream>>>
      streams;
  for (const auto& s : servers) {
    workload::StationaryParams p;
    p.level = 50.0;
    auto stream = std::make_unique<workload::KpiStream>(
        workload::make_stationary(p, rng.split()));
    if (s == "s1" || s == "s2") {
      stream->add_effect(workload::LevelShift{tc, 8.0});
    }
    const MetricId id = test_metric(s, "mem");
    workload::materialize(*stream, store, id, 0, tc);
    streams.emplace_back(id, std::move(stream));
  }

  core::FunnelConfig cfg;
  cfg.baseline_days = 3;
  ScenarioResult result;
  {
    core::FunnelOnline online(cfg, topo, log, store);
    // The report callback runs on the dispatcher thread in async mode; the
    // flush() below is the barrier that makes reading `report` safe (and
    // guarantees the watch has finalized).
    core::AssessmentReport report;
    online.on_report([&](const core::AssessmentReport& r) { report = r; });
    online.watch(cid);
    for (MinuteTime t = tc; t < tc + 61; ++t) {
      for (auto& [id, stream] : streams) {
        store.append(id, t, stream->sample(t));
      }
    }
    store.flush();
    result.online_json = core::to_json(report);
  }
  const core::Funnel funnel(cfg, topo, log, store);
  result.batch_json = core::to_json(funnel.assess(cid));
  return result;
}

TEST(ShardedStore, ReportsByteIdenticalAcrossShardsAndDispatchModes) {
  const ScenarioResult reference =
      run_scenario({.num_shards = 1, .ingest_queue_capacity = 0});
  ASSERT_FALSE(reference.online_json.empty());
  EXPECT_NE(reference.online_json.find("\"items\""), std::string::npos);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    const ScenarioResult async_run = run_scenario(
        {.num_shards = shards, .ingest_queue_capacity = 64,
         .backpressure = Backpressure::kBlock});
    EXPECT_EQ(async_run.online_json, reference.online_json)
        << "online report diverged at num_shards=" << shards;
    EXPECT_EQ(async_run.batch_json, reference.batch_json)
        << "batch report diverged at num_shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Dispatcher semantics.

TEST(ShardedStore, FlushDeliversEverySampleSubmittedBeforeIt) {
  MetricStore store({.num_shards = 4, .ingest_queue_capacity = 8});
  std::atomic<int> delivered{0};
  store.subscribe({}, [&](const MetricId&, MinuteTime, double) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  const MetricId id = test_metric("s1", "kpi");
  for (MinuteTime t = 0; t < 200; ++t) store.append(id, t, 1.0);
  store.flush();
  EXPECT_EQ(delivered.load(), 200);
  EXPECT_EQ(store.dropped_samples(), 0u);
}

TEST(ShardedStore, BlockPolicyIsLosslessUnderConcurrentProducers) {
  // Tiny queue + several producers: every append must still be delivered.
  MetricStore store({.num_shards = 4, .ingest_queue_capacity = 2,
                     .backpressure = Backpressure::kBlock});
  std::atomic<int> delivered{0};
  store.subscribe({}, [&](const MetricId&, MinuteTime, double) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      const MetricId id = test_metric("s" + std::to_string(p), "kpi");
      for (MinuteTime t = 0; t < kPerProducer; ++t) store.append(id, t, 1.0);
    });
  }
  for (auto& th : producers) th.join();
  store.flush();
  EXPECT_EQ(delivered.load(), 4 * kPerProducer);
  EXPECT_EQ(store.dropped_samples(), 0u);
}

TEST(ShardedStore, DropOldestShedsExactlyTheOldestQueuedSamples) {
  // Deterministic shed sequence: stall the dispatcher inside the first
  // callback, fill the queue, then overflow it and check which minutes
  // survived. Capacity 4, one in flight (minute 0), minutes 1..4 queued,
  // minutes 5..7 each shed the oldest queued sample (1, 2, 3).
  MetricStore store({.num_shards = 1, .ingest_queue_capacity = 4,
                     .backpressure = Backpressure::kDropOldest});
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_f = release.get_future().share();
  std::atomic<bool> first{true};
  std::vector<MinuteTime> received;  // dispatcher thread only
  store.subscribe({}, [&](const MetricId&, MinuteTime t, double) {
    received.push_back(t);
    if (first.exchange(false)) {
      entered.set_value();
      release_f.wait();
    }
  });
  const MetricId id = test_metric("s1", "kpi");
  store.append(id, 0, 1.0);
  entered.get_future().wait();  // minute 0 is in the sink, queue is empty
  for (MinuteTime t = 1; t <= 7; ++t) store.append(id, t, 1.0);
  release.set_value();
  store.flush();
  EXPECT_EQ(store.dropped_samples(), 3u);
  EXPECT_EQ(received, (std::vector<MinuteTime>{0, 4, 5, 6, 7}));
  // The store itself is lossless either way — only notifications shed.
  EXPECT_EQ(store.query(id, 0, 8).size(), 8u);
}

TEST(ShardedStore, DropOldestAccountsEveryShedExactlyUnderConcurrentLoad) {
  // The service plane runs one store per tenant; a tenant configured with
  // kDropOldest must (a) account every shed sample in its own
  // dropped_samples() counter — delivered + dropped == submitted, exactly,
  // no matter how producers interleave — and (b) never leak drops into a
  // neighbouring store. Three "tenants": two overloaded kDropOldest stores
  // with deliberately stalled sinks and tiny queues, one kBlock store that
  // must stay lossless through the same storm.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  struct TenantSim {
    std::unique_ptr<MetricStore> store;
    std::atomic<int> delivered{0};
  };
  TenantSim drop_a, drop_b, block;
  const auto make = [](Backpressure policy, std::size_t capacity) {
    return std::make_unique<MetricStore>(
        StoreOptions{.num_shards = 2, .ingest_queue_capacity = capacity,
                     .backpressure = policy});
  };
  drop_a.store = make(Backpressure::kDropOldest, 8);
  drop_b.store = make(Backpressure::kDropOldest, 4);
  block.store = make(Backpressure::kBlock, 8);
  for (TenantSim* t : {&drop_a, &drop_b, &block}) {
    const bool stall = t != &block;
    t->store->subscribe({}, [t, stall](const MetricId&, MinuteTime, double) {
      t->delivered.fetch_add(1, std::memory_order_relaxed);
      // A slow sink (not a stuck one): keeps the queues brimming so the
      // overflow path runs constantly without serializing the producers.
      if (stall) std::this_thread::sleep_for(std::chrono::microseconds(20));
    });
  }

  std::vector<std::thread> producers;
  for (TenantSim* t : {&drop_a, &drop_b, &block}) {
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([t, p] {
        const MetricId id = test_metric("s" + std::to_string(p), "kpi");
        for (MinuteTime m = 0; m < kPerProducer; ++m) {
          t->store->append(id, m, 1.0);
        }
      });
    }
  }
  for (auto& th : producers) th.join();
  drop_a.store->flush();
  drop_b.store->flush();
  block.store->flush();

  constexpr int kTotal = kProducers * kPerProducer;
  // Exact conservation per tenant: nothing double-counted, nothing lost
  // without being counted.
  EXPECT_EQ(drop_a.delivered.load() +
                static_cast<int>(drop_a.store->dropped_samples()),
            kTotal);
  EXPECT_EQ(drop_b.delivered.load() +
                static_cast<int>(drop_b.store->dropped_samples()),
            kTotal);
  // The stalled sinks really did overflow (the test exercised the path)...
  EXPECT_GT(drop_a.store->dropped_samples(), 0u);
  EXPECT_GT(drop_b.store->dropped_samples(), 0u);
  // ...and none of it bled into the kBlock neighbour.
  EXPECT_EQ(block.delivered.load(), kTotal);
  EXPECT_EQ(block.store->dropped_samples(), 0u);
  // Shedding covers notifications only — every store stays lossless at rest.
  for (TenantSim* t : {&drop_a, &drop_b, &block}) {
    for (int p = 0; p < kProducers; ++p) {
      const MetricId id = test_metric("s" + std::to_string(p), "kpi");
      EXPECT_EQ(t->store->query(id, 0, kPerProducer).size(),
                static_cast<std::size_t>(kPerProducer));
    }
  }
}

TEST(ShardedStore, DeliveryIsInOrderPerMetric) {
  // Single dispatcher thread => FIFO delivery; with one writer per metric
  // that means strictly increasing minutes per metric, regardless of how
  // the producers interleave. Regression test for the ordering guarantee
  // FunnelOnline's detectors depend on.
  MetricStore store({.num_shards = 4, .ingest_queue_capacity = 64});
  std::map<std::string, std::vector<MinuteTime>> seen;  // dispatcher only
  store.subscribe({}, [&](const MetricId& id, MinuteTime t, double) {
    seen[id.entity].push_back(t);
  });
  constexpr MinuteTime kMinutes = 400;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      const MetricId id = test_metric("s" + std::to_string(p), "kpi");
      for (MinuteTime t = 0; t < kMinutes; ++t) store.append(id, t, 1.0);
    });
  }
  for (auto& th : producers) th.join();
  store.flush();
  ASSERT_EQ(seen.size(), 3u);
  for (const auto& [entity, minutes] : seen) {
    ASSERT_EQ(minutes.size(), static_cast<std::size_t>(kMinutes)) << entity;
    for (std::size_t i = 0; i < minutes.size(); ++i) {
      ASSERT_EQ(minutes[i], static_cast<MinuteTime>(i))
          << entity << " out of order at " << i;
    }
  }
}

TEST(ShardedStore, FlushFromInsideCallbackDoesNotDeadlock) {
  MetricStore store({.num_shards = 1, .ingest_queue_capacity = 4});
  std::atomic<int> delivered{0};
  store.subscribe({}, [&](const MetricId&, MinuteTime, double) {
    store.flush();  // no-op on the dispatcher thread, must not self-wait
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  const MetricId id = test_metric("s1", "kpi");
  for (MinuteTime t = 0; t < 10; ++t) store.append(id, t, 1.0);
  store.flush();
  EXPECT_EQ(delivered.load(), 10);
}

TEST(ShardedStore, UnsubscribeWaitsForInFlightCallback) {
  MetricStore store({.num_shards = 1, .ingest_queue_capacity = 4});
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_f = release.get_future().share();
  std::atomic<bool> first{true};
  std::atomic<int> delivered{0};
  const SubscriptionId sub =
      store.subscribe({}, [&](const MetricId&, MinuteTime, double) {
        if (first.exchange(false)) {
          entered.set_value();
          release_f.wait();
        }
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
  const MetricId id = test_metric("s1", "kpi");
  store.append(id, 0, 1.0);
  entered.get_future().wait();  // callback is now stalled in flight

  std::atomic<bool> unsubscribed{false};
  std::thread t([&] {
    store.unsubscribe(sub);  // must block until the callback completes
    unsubscribed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unsubscribed.load(std::memory_order_acquire));
  release.set_value();
  t.join();
  EXPECT_TRUE(unsubscribed.load());
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(store.subscriber_count(), 0u);

  // After unsubscribe() returned the callback never runs again.
  for (MinuteTime t2 = 1; t2 < 10; ++t2) store.append(id, t2, 1.0);
  store.flush();
  EXPECT_EQ(delivered.load(), 1);
}

// ---------------------------------------------------------------------------
// Concurrent readers against concurrent writers — the TSan workhorse.

TEST(ShardedStore, ConcurrentAppendAndQueryStress) {
  MetricStore store({.num_shards = 16, .ingest_queue_capacity = 256});
  std::atomic<int> delivered{0};
  store.subscribe({}, [&](const MetricId&, MinuteTime, double) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kWriters = 4;
  constexpr MinuteTime kMinutes = 500;
  std::atomic<bool> done{false};
  std::vector<MetricId> ids;
  for (int w = 0; w < kWriters; ++w) {
    ids.push_back(test_metric("w" + std::to_string(w), "kpi"));
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (MinuteTime t = 0; t < kMinutes; ++t) {
        store.append(ids[w], t, static_cast<double>(t));
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        (void)store.metric_count();
        (void)store.metrics();
        (void)store.subscriber_count();
        for (const auto& id : ids) {
          if (!store.has(id)) continue;
          store.read_if(id, [](const TimeSeries& s) {
            // Taking a bounded snapshot under the shard lock is the
            // supported concurrent-read idiom.
            if (!s.empty()) (void)s.slice(s.start_time(), s.end_time());
          });
        }
        (void)store.aggregate(ids, 0, kMinutes);
      }
    });
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  store.flush();

  EXPECT_EQ(store.metric_count(), static_cast<std::size_t>(kWriters));
  EXPECT_EQ(delivered.load(), kWriters * kMinutes);
  for (const auto& id : ids) {
    EXPECT_EQ(store.query(id, 0, kMinutes).size(),
              static_cast<std::size_t>(kMinutes));
  }
}

// ---------------------------------------------------------------------------
// Store contract details that the sharding must preserve.

TEST(ShardedStore, MetricsAreGloballySortedAcrossShards) {
  MetricStore store({.num_shards = 16});
  const std::vector<std::string> names{"zeta", "alpha", "mu", "beta", "nu",
                                       "kappa", "omega", "eta"};
  for (const auto& n : names) store.append(test_metric(n, "kpi"), 0, 1.0);
  const std::vector<MetricId> got = store.metrics();
  ASSERT_EQ(got.size(), names.size());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(store.metrics_of(EntityKind::kServer, "mu").size(), 1u);
}

TEST(ShardedStore, AppendAutoCreatesButCreateAndInsertThrowOnExisting) {
  // The documented asymmetry (store.h header): append is the agent hot path
  // and auto-creates; create/insert serve builder code and refuse to write
  // over an existing series.
  MetricStore store({.num_shards = 16});
  const MetricId id = test_metric("srv", "kpi");
  store.append(id, 100, 1.0);  // auto-created
  EXPECT_TRUE(store.has(id));
  EXPECT_THROW(store.create(id, 0), InvalidArgument);
  EXPECT_THROW(store.insert(id, TimeSeries(0)), InvalidArgument);
  store.append(id, 101, 2.0);  // appending to an existing series is fine
  EXPECT_EQ(store.query(id, 100, 102).size(), 2u);
}

TEST(ShardedStore, SubscriberCountIsSafeFromAnyThread) {
  MetricStore store({.num_shards = 4, .ingest_queue_capacity = 16});
  std::vector<SubscriptionId> subs;
  for (int i = 0; i < 8; ++i) {
    subs.push_back(
        store.subscribe({}, [](const MetricId&, MinuteTime, double) {}));
  }
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t n = store.subscriber_count();
      ASSERT_LE(n, 8u);
    }
  });
  for (const SubscriptionId s : subs) store.unsubscribe(s);
  done.store(true, std::memory_order_release);
  watcher.join();
  EXPECT_EQ(store.subscriber_count(), 0u);
}

TEST(ShardedStore, FilteredSubscriptionOnlySeesItsMetrics) {
  MetricStore store({.num_shards = 16, .ingest_queue_capacity = 16});
  const MetricId wanted = test_metric("s1", "mem");
  const MetricId other = test_metric("s2", "cpu");
  std::vector<MinuteTime> seen;  // dispatcher thread only
  store.subscribe({wanted},
                  [&](const MetricId& id, MinuteTime t, double) {
                    EXPECT_EQ(id, wanted);
                    seen.push_back(t);
                  });
  for (MinuteTime t = 0; t < 5; ++t) {
    store.append(wanted, t, 1.0);
    store.append(other, t, 2.0);
  }
  store.flush();
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ShardedStore, SyncModeKeepsLegacySemantics) {
  // ingest_queue_capacity = 0: callbacks run inside append on the producer
  // thread, flush() is a no-op, nothing is ever dropped.
  MetricStore store({.num_shards = 4});
  EXPECT_FALSE(store.async());
  std::thread::id cb_thread;
  int delivered = 0;
  store.subscribe({}, [&](const MetricId&, MinuteTime, double) {
    cb_thread = std::this_thread::get_id();
    ++delivered;
  });
  store.append(test_metric("s1", "kpi"), 0, 1.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(cb_thread, std::this_thread::get_id());
  store.flush();  // no-op, must not hang
  EXPECT_EQ(store.dropped_samples(), 0u);
}

}  // namespace
}  // namespace funnel::tsdb
