// Per-tenant admission control — the quota layer of the multi-tenant
// service mode (docs/SERVICE.md, "Quotas & admission").
//
// Two independent caps gate every ingest batch before a single sample is
// appended, so an abusive or runaway tenant is rejected at the door — with
// a 429 + Retry-After — instead of filling its queue and stalling an HTTP
// worker (head-of-line isolation; "IaaS Signature Change Detection with
// Performance Noise", arXiv:2110.03229, motivates exactly this per-workload
// noise/quota separation):
//   * TokenBucket: sustained sample rate + burst allowance. Time is passed
//     in explicitly (seconds on any monotonic clock), so the daemon drives
//     it from steady_clock while tests drive a virtual clock and assert the
//     refusal/retry arithmetic deterministically.
//   * Queue share (QuotaConfig::queue_share): an admitted batch must fit
//     into the tenant's own bounded ingest queue — depth + batch size may
//     not exceed share * capacity. Since each tenant owns its dispatcher
//     queue outright, this bounds how long an admitted batch can occupy an
//     HTTP worker under kBlock backpressure.
//
// Not thread-safe by itself: the owning Tenant serializes all quota calls
// under its tenant mutex (docs/CONCURRENCY.md, "Service plane").
#pragma once

#include <algorithm>

namespace funnel::service {

struct QuotaConfig {
  /// Sustained admission rate in samples/second; 0 (default) = unlimited.
  double rate_per_sec = 0.0;
  /// Bucket capacity in samples — the largest instantaneous burst. 0 picks
  /// one second's worth (rate_per_sec, floored at 1).
  double burst = 0.0;
  /// Max fraction of the tenant's ingest-queue capacity one admitted batch
  /// may occupy on top of the current depth (ignored for sync stores).
  double queue_share = 1.0;
};

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst) {
    configure(rate_per_sec, burst);
  }

  /// Replace rate/burst (the SIGHUP-reload path). The current fill is
  /// clamped into the new burst; an unlimited bucket stays full.
  void configure(double rate_per_sec, double burst) {
    rate_ = rate_per_sec > 0.0 ? rate_per_sec : 0.0;
    burst_ = burst > 0.0 ? burst : std::max(rate_, 1.0);
    if (!primed_) tokens_ = burst_;
    tokens_ = std::min(tokens_, burst_);
  }

  bool unlimited() const { return rate_ <= 0.0; }

  /// Take `n` tokens at monotonic time `now_s`; false when the bucket
  /// cannot cover them, with `*retry_after_s` (when non-null) set to the
  /// shortest wait after which the same request could succeed. Batches
  /// larger than the burst are admitted against a full bucket and drive the
  /// fill negative (debt), throttling the average rather than starving the
  /// request forever.
  bool try_acquire(double n, double now_s, double* retry_after_s = nullptr) {
    if (unlimited() || n <= 0.0) return true;
    refill(now_s);
    const double need = std::min(n, burst_);
    if (tokens_ >= need) {
      tokens_ -= n;
      return true;
    }
    if (retry_after_s != nullptr) *retry_after_s = (need - tokens_) / rate_;
    return false;
  }

  /// Current fill after refilling to `now_s` (test introspection).
  double available(double now_s) {
    refill(now_s);
    return unlimited() ? burst_ : tokens_;
  }

 private:
  void refill(double now_s) {
    if (!primed_) {
      primed_ = true;
      last_ = now_s;
      return;
    }
    if (now_s > last_) {
      tokens_ = std::min(burst_, tokens_ + (now_s - last_) * rate_);
      last_ = now_s;
    }
  }

  double rate_ = 0.0;
  double burst_ = 1.0;
  double tokens_ = 1.0;
  double last_ = 0.0;
  bool primed_ = false;
};

}  // namespace funnel::service
