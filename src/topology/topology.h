// Service / server / instance model (§2.2, Fig. 1) and the service
// relationship graph used for impact-set identification (§3.1, Fig. 4).
//
// Services carry hierarchical dot-separated names ("search.web.frontend");
// the paper notes the operations team names services by hierarchy and that
// FUNNEL "derives the relationship among services using the naming rules" —
// derive_relations_from_names() adds parent<->child edges automatically.
// Explicit request/response relations can be added on top.
//
// An instance is a process of one service on one server; its canonical name
// is "<service>@<server>".
//
// Thread-safety contract (audited for the parallel assessment engine): all
// const methods are pure reads over the three maps — no memoized
// reachability, no mutable members — so concurrent readers need no locks.
// The add_* mutators are not synchronized against readers.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace funnel::topology {

/// Canonical instance name: "<service>@<server>".
std::string instance_name(const std::string& service,
                          const std::string& server);

/// Inverse of instance_name; throws InvalidArgument on malformed input.
std::pair<std::string, std::string> parse_instance_name(
    const std::string& instance);

class ServiceTopology {
 public:
  /// Register a service; idempotent. Throws on empty names.
  void add_service(const std::string& service);

  /// Attach a server to a service (registering both as needed). A server is
  /// dedicated to one service in our context (§1); attaching the same server
  /// to a different service throws.
  void add_server(const std::string& service, const std::string& server);

  /// Declare that two services exchange requests/responses (symmetric).
  void add_relation(const std::string& a, const std::string& b);

  /// Add parent<->child relations implied by hierarchical names: for every
  /// pair of registered services where one's name is a dot-prefix of the
  /// other's at a name-segment boundary and exactly one segment deeper,
  /// add a relation.
  void derive_relations_from_names();

  bool has_service(const std::string& service) const;
  bool has_server(const std::string& server) const;

  std::vector<std::string> services() const;

  /// Servers of a service, in registration order. Throws NotFound.
  const std::vector<std::string>& servers_of(const std::string& service) const;

  /// Instance names of a service (one per server, same order).
  std::vector<std::string> instances_of(const std::string& service) const;

  /// Owning service of a server. Throws NotFound.
  const std::string& service_of_server(const std::string& server) const;

  /// Directly related services (excluding `service` itself), sorted.
  std::vector<std::string> related_to(const std::string& service) const;

  /// The affected services of a change on `changed`: every service reachable
  /// through the relation graph, excluding `changed` itself (Fig. 4: A
  /// related to B and D, B related to C => affected = {B, C, D}). Sorted.
  std::vector<std::string> affected_services(const std::string& changed) const;

  std::size_t service_count() const { return servers_.size(); }
  std::size_t server_count() const { return server_owner_.size(); }

 private:
  // service -> servers (registration order)
  std::map<std::string, std::vector<std::string>> servers_;
  // server -> owning service
  std::map<std::string, std::string> server_owner_;
  // symmetric adjacency
  std::map<std::string, std::set<std::string>> relations_;
};

}  // namespace funnel::topology
