#include "detect/sst_common.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace funnel::detect {

std::vector<double> standardize_window(std::span<const double> window,
                                       std::size_t baseline_len) {
  FUNNEL_REQUIRE(baseline_len >= 2 && baseline_len <= window.size(),
                 "baseline must be a non-trivial prefix of the window");
  if (!all_finite(window)) return {};
  const std::span<const double> baseline = window.subspan(0, baseline_len);
  const double center = median(baseline);
  double scale = mad_sigma(baseline);
  if (scale <= 0.0) scale = stddev(baseline);
  if (scale <= 0.0) scale = mad_sigma(window);
  if (scale <= 0.0) scale = stddev(window);
  if (scale <= 0.0) scale = 1.0;
  std::vector<double> out(window.begin(), window.end());
  for (double& x : out) x = (x - center) / scale;
  return out;
}

double robust_score_factor(std::span<const double> past,
                           std::span<const double> future, double slack) {
  const double med_a = median(past);
  const double med_b = median(future);
  const double mad_a = mad(past);
  const double mad_b = mad(future);
  const double level = std::max(std::abs(med_b - med_a) - slack, 0.0);
  return level * std::sqrt(std::abs(mad_b - mad_a));
}

}  // namespace funnel::detect
