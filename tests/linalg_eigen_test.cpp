// Tests for the symmetric Jacobi eigensolver and the tridiagonal QL solver.
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/svd.h"
#include "linalg/sym_eigen.h"
#include "linalg/tridiag.h"

namespace funnel::linalg {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

void expect_eigen_decomposition(const Matrix& a, const SymEigen& e,
                                double tol = 1e-9) {
  // A * q_j == lambda_j * q_j for every pair.
  for (std::size_t j = 0; j < e.values.size(); ++j) {
    const Vector q = e.vectors.col(j);
    const Vector aq = matvec(a, q);
    for (std::size_t i = 0; i < q.size(); ++i) {
      EXPECT_NEAR(aq[i], e.values[j] * q[i], tol) << "pair " << j;
    }
  }
}

TEST(SymEigen, DiagonalMatrix) {
  const Matrix a{{2.0, 0.0, 0.0}, {0.0, 5.0, 0.0}, {0.0, 0.0, -1.0}};
  const SymEigen e = sym_eigen(a);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 5.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], -1.0, 1e-12);
}

TEST(SymEigen, Known2x2) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const SymEigen e = sym_eigen(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  expect_eigen_decomposition(Matrix{{2.0, 1.0}, {1.0, 2.0}}, e);
}

TEST(SymEigen, RequiresSquare) {
  EXPECT_THROW((void)sym_eigen(Matrix(2, 3)), InvalidArgument);
}

TEST(SymEigen, TraceAndOrderingProperty) {
  Rng rng(5);
  for (int n : {2, 3, 5, 9, 16}) {
    const Matrix a = random_symmetric(static_cast<std::size_t>(n), rng);
    const SymEigen e = sym_eigen(a);
    double trace = 0.0, sum = 0.0;
    for (int i = 0; i < n; ++i) trace += a(static_cast<std::size_t>(i),
                                           static_cast<std::size_t>(i));
    for (double v : e.values) sum += v;
    EXPECT_NEAR(trace, sum, 1e-9);
    for (std::size_t i = 1; i < e.values.size(); ++i) {
      EXPECT_GE(e.values[i - 1], e.values[i]);
    }
    expect_eigen_decomposition(a, e);
  }
}

TEST(SymEigen, AgreesWithSvdOnGramMatrix) {
  Rng rng(7);
  Matrix a(6, 4);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.gaussian();
  }
  const Svd s = jacobi_svd(a);
  const SymEigen e = sym_eigen(gram_cols(a));  // AᵀA
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(e.values[i], s.singular_values[i] * s.singular_values[i],
                1e-8);
  }
}

TEST(Tridiagonal, ToDense) {
  const Tridiagonal t{{1.0, 2.0, 3.0}, {4.0, 5.0}};
  const Matrix d = t.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 0.0);
}

TEST(TridiagEigen, Known2x2) {
  const Tridiagonal t{{2.0, 2.0}, {1.0}};
  const SymEigen e = tridiag_eigen(t);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

TEST(TridiagEigen, SingleElement) {
  const Tridiagonal t{{42.0}, {}};
  const SymEigen e = tridiag_eigen(t);
  ASSERT_EQ(e.values.size(), 1u);
  EXPECT_DOUBLE_EQ(e.values[0], 42.0);
  EXPECT_DOUBLE_EQ(e.vectors(0, 0) * e.vectors(0, 0), 1.0);
}

TEST(TridiagEigen, RejectsBadSubdiagonal) {
  EXPECT_THROW((void)tridiag_eigen(Tridiagonal{{1.0, 2.0}, {1.0, 2.0}}),
               InvalidArgument);
}

// Property: QL on a random tridiagonal agrees with the dense Jacobi solver.
class TridiagVsJacobi : public ::testing::TestWithParam<int> {};

TEST_P(TridiagVsJacobi, EigenvaluesAndVectorsMatchDense) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  Tridiagonal t;
  t.diag.resize(static_cast<std::size_t>(n));
  t.subdiag.resize(static_cast<std::size_t>(n - 1));
  for (double& v : t.diag) v = rng.gaussian(0.0, 2.0);
  for (double& v : t.subdiag) v = rng.gaussian(0.0, 1.0);

  const SymEigen ql = tridiag_eigen(t);
  const SymEigen dense = sym_eigen(t.to_dense());
  for (std::size_t i = 0; i < ql.values.size(); ++i) {
    EXPECT_NEAR(ql.values[i], dense.values[i], 1e-9);
  }
  expect_eigen_decomposition(t.to_dense(), ql, 1e-8);

  const Vector values_only = tridiag_eigenvalues(t);
  for (std::size_t i = 0; i < values_only.size(); ++i) {
    EXPECT_NEAR(values_only[i], dense.values[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagVsJacobi,
                         ::testing::Values(2, 3, 5, 6, 9, 16, 33));

TEST(TridiagEigen, ZeroSubdiagonalIsDiagonal) {
  const Tridiagonal t{{3.0, 1.0, 2.0}, {0.0, 0.0}};
  const SymEigen e = tridiag_eigen(t);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

}  // namespace
}  // namespace funnel::linalg
