// ItemVerdict → JournalEvent: the bridge between the assessment pipeline
// and the verdict-event journal (obs/journal.h).
//
// obs is dependency-free, so it cannot see changes::SoftwareChange or
// core::ItemVerdict; this translation lives in core instead. One builder
// serves both emitters — Funnel::assess (source "batch") and
// FunnelOnline::finalize (source "online") — so the event schema cannot
// drift between the two paths. Fields only one path can know (the batch
// damp factor and cascade gate, the online determined_at) are left for the
// caller to fill in on the returned event.
#pragma once

#include <string_view>

#include "changes/change.h"
#include "funnel/report.h"
#include "obs/journal.h"

namespace funnel::core {

/// Build the journal event for one determination. Copies everything the
/// verdict itself carries: change metadata, KPI identity, cause +
/// inconclusive reason, alarm evidence, DiD fit + control kind, quality,
/// and — when the verdict has a determined_at stamp — time-to-verdict.
obs::JournalEvent journal_event(const changes::SoftwareChange& change,
                                const ItemVerdict& verdict,
                                std::string_view source);

}  // namespace funnel::core
