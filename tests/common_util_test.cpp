// Tests for Rng, string helpers, the table printer and the minute-time
// model.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/minute_time.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"

namespace funnel {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{1, 2, 3}));
}

TEST(Rng, GaussianMoments) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.gaussian(3.0, 2.0);
  EXPECT_NEAR(mean(xs), 3.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.exponential(0.5);
  EXPECT_NEAR(mean(xs), 2.0, 0.1);
}

TEST(Rng, HeavyTailedHasHeavierTailsThanGaussian) {
  Rng rng(9);
  int extreme_t = 0, extreme_g = 0;
  for (int i = 0; i < 20000; ++i) {
    if (std::abs(rng.heavy_tailed(3.0)) > 4.0) ++extreme_t;
    if (std::abs(rng.gaussian()) > 4.0) ++extreme_g;
  }
  EXPECT_GT(extreme_t, extreme_g * 3);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(10);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  // Children differ from each other.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.uniform() == c2.uniform()) ++same;
  }
  EXPECT_EQ(same, 0);
  // Split is deterministic: rebuilding the parent rebuilds the children.
  Rng parent2(10);
  Rng c1b = parent2.split();
  EXPECT_DOUBLE_EQ(Rng(10).split().uniform(), c1b.uniform());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Strings, SplitBasics) {
  EXPECT_EQ(split("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("abc", '.'), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(".a", '.'), (std::vector<std::string>{"", "a"}));
}

TEST(Strings, JoinInvertsSplit) {
  const std::string s = "search.web.frontend";
  EXPECT_EQ(join(split(s, '.'), "."), s);
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"x"}, "."), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("search.web", "search"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_FALSE(starts_with("xbc", "a"));
}

TEST(Strings, Formatting) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_percent(0.99884, 2), "99.88%");
  EXPECT_EQ(format_percent(1.0, 1), "100.0%");
}

TEST(Table, RendersAlignedRows) {
  Table t({"method", "value"});
  t.add_row({"funnel", "1"});
  t.add_row({"cusum", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| method |"), std::string::npos);
  EXPECT_NE(s.find("| funnel |"), std::string::npos);
  EXPECT_NE(s.find("| cusum  |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(Table(std::vector<std::string>{}), InvalidArgument);
}

TEST(MinuteTime, DayArithmetic) {
  EXPECT_EQ(minute_of_day(0), 0);
  EXPECT_EQ(minute_of_day(1439), 1439);
  EXPECT_EQ(minute_of_day(1440), 0);
  EXPECT_EQ(minute_of_day(1441), 1);
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(1439), 0);
  EXPECT_EQ(day_of(1440), 1);
  EXPECT_EQ(day_of_week(0), 0);
  EXPECT_EQ(day_of_week(7 * 1440), 0);
  EXPECT_EQ(day_of_week(8 * 1440 + 5), 1);
}

TEST(MinuteTime, NegativeTimes) {
  EXPECT_EQ(minute_of_day(-1), 1439);
  EXPECT_EQ(day_of(-1), -1);
  EXPECT_EQ(day_of_week(-1440), 6);
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    FUNNEL_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw NotFound("x"), Error);
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
}

}  // namespace
}  // namespace funnel
