// Lanczos tridiagonalization for the Implicit Krylov Approximation (§3.2.3).
//
// Given a symmetric operator C (FUNNEL uses C = B·Bᵀ of the past Hankel
// matrix, applied implicitly — see hankel.h) and a seed vector, k Lanczos
// steps produce a k x k tridiagonal T_k whose leading eigenpairs approximate
// the leading eigenpairs of C in the Krylov subspace spanned by
// {v, Cv, C²v, ...}. The change score only needs the first component of
// T_k's eigenvectors (the seed is e1 in the Krylov basis), which is what
// makes the per-window cost tiny.
#pragma once

#include <span>

#include "linalg/matrix.h"
#include "linalg/tridiag.h"

namespace funnel::linalg {

/// Abstract symmetric linear operator y = C x.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Dimension of the (square) operator.
  virtual std::size_t dim() const = 0;

  /// y = C x; `y` is pre-sized to dim() and must be fully overwritten.
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;
};

/// Dense symmetric operator backed by a Matrix (testing / reference).
class DenseOperator final : public LinearOperator {
 public:
  explicit DenseOperator(Matrix m);
  std::size_t dim() const override { return m_.rows(); }
  void apply(std::span<const double> x, std::span<double> y) const override;

 private:
  Matrix m_;
};

/// Result of a Lanczos run: the tridiagonal T_k and (optionally) the
/// orthonormal Krylov basis V (dim x k, columns are the Lanczos vectors).
struct LanczosResult {
  Tridiagonal t;
  Matrix basis;  // empty when want_basis = false

  /// Number of completed steps (may be < requested k when the Krylov space
  /// is exhausted, e.g. for low-rank C).
  std::size_t steps() const { return t.diag.size(); }
};

/// Run k steps of Lanczos with full reorthogonalization from seed vector
/// `v0` (need not be normalized; must be nonzero).
///
/// Full reorthogonalization is affordable because FUNNEL's k is 5 or 6, and
/// it removes the classic loss-of-orthogonality failure mode.
LanczosResult lanczos(const LinearOperator& op, std::span<const double> v0,
                      std::size_t k, bool want_basis = false);

}  // namespace funnel::linalg
