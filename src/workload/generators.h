// Synthetic KPI generators.
//
// Substitute for the paper's production KPIs. §4.2.1 divides every
// evaluation item into three statistical classes, which these generators
// reproduce:
//   * seasonal   — strong time-of-day / day-of-week pattern (page view
//                  count, advertisement clicks);
//   * stationary — flat level plus light noise (memory utilization);
//   * variable   — high-variance bursty behaviour with occasional spikes
//                  (CPU context switch count, NIC throughput).
// Generators are stateful (the variable class is an AR(1) process) and own
// their random stream, so two generators built from split Rngs are
// independent and each is reproducible.
#pragma once

#include <memory>

#include "common/minute_time.h"
#include "common/rng.h"
#include "tsdb/metric.h"

namespace funnel::workload {

/// A stateful sample source. `sample(t)` must be called with non-decreasing
/// minutes (the online simulation always advances time forward).
class KpiGenerator {
 public:
  virtual ~KpiGenerator() = default;
  virtual double sample(MinuteTime t) = 0;
  virtual tsdb::KpiClass kpi_class() const = 0;
};

/// Parameters of a seasonal KPI: a daily double-harmonic plus a day-of-week
/// modulation and Gaussian noise.
struct SeasonalParams {
  double base = 100.0;
  double daily_amplitude = 40.0;    ///< first daily harmonic
  double second_harmonic = 12.0;    ///< asymmetry of the daily shape
  double weekly_amplitude = 10.0;   ///< weekday/weekend swing
  double noise_sigma = 2.0;
  double phase_minutes = 0.0;       ///< shifts the daily peak
};

/// Parameters of a stationary KPI: constant level plus Gaussian noise.
struct StationaryParams {
  double level = 50.0;
  double noise_sigma = 1.0;
};

/// Parameters of a variable KPI: AR(1) excursions around a level, plus a
/// Poisson sprinkling of one-off spikes (the behaviour that makes MRLS
/// misfire, §4.2.1).
struct VariableParams {
  double level = 200.0;
  double ar_coefficient = 0.7;   ///< persistence of bursts, in [0, 1)
  double burst_sigma = 15.0;     ///< innovation scale
  double spike_rate = 0.01;      ///< per-minute probability of a spike
  double spike_scale = 80.0;     ///< mean spike magnitude
};

std::unique_ptr<KpiGenerator> make_seasonal(SeasonalParams p, Rng rng);
std::unique_ptr<KpiGenerator> make_stationary(StationaryParams p, Rng rng);
std::unique_ptr<KpiGenerator> make_variable(VariableParams p, Rng rng);

/// Default-parameter generator for a KPI class (used by scenario builders
/// when only the class matters).
std::unique_ptr<KpiGenerator> make_default(tsdb::KpiClass c, Rng rng);

}  // namespace funnel::workload
