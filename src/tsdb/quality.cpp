#include "tsdb/quality.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace funnel::tsdb {

QualityReport window_quality(const TimeSeries& series, MinuteTime t0,
                             MinuteTime t1) {
  FUNNEL_REQUIRE(t1 >= t0, "window_quality over negative range");
  QualityReport q;
  q.window_minutes = static_cast<std::size_t>(t1 - t0);
  if (q.window_minutes == 0) return q;

  std::size_t gap_run = 0;
  std::size_t flat_run = 0;
  double prev = 0.0;
  bool have_prev = false;
  for (MinuteTime t = t0; t < t1; ++t) {
    const double v = series.contains(t)
                         ? series.at(t)
                         : std::numeric_limits<double>::quiet_NaN();
    if (std::isfinite(v)) {
      ++q.clean_samples;
      gap_run = 0;
      if (have_prev && v == prev) {
        ++flat_run;
      } else {
        flat_run = 1;
      }
      if (flat_run > q.longest_flat_run) q.longest_flat_run = flat_run;
      prev = v;
      have_prev = true;
    } else {
      ++gap_run;
      flat_run = 0;
      have_prev = false;
      if (gap_run > q.longest_gap_run) q.longest_gap_run = gap_run;
    }
  }
  q.coverage = static_cast<double>(q.clean_samples) /
               static_cast<double>(q.window_minutes);
  return q;
}

}  // namespace funnel::tsdb
