# Docs link checker — ctest job `docs_link_check`.
#
# Scans the repo's markdown (README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md,
# PAPER.md, docs/*.md) for inline links `[text](target)` and verifies:
#   * relative file targets exist (so `docs/CONCURRENCY.md` can't go stale
#     when files move);
#   * intra-repo `#anchor` fragments match a real heading in the target file,
#     using GitHub's slug rules (lowercase, punctuation stripped, spaces to
#     dashes).
# External http(s) links are skipped — no network in the test environment.
#
# Invoked by ctest as:
#   cmake -DREPO_DIR=<source dir> -P check_doc_links.cmake
cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED REPO_DIR)
  message(FATAL_ERROR "missing -DREPO_DIR=")
endif()

file(GLOB doc_files
     "${REPO_DIR}/README.md" "${REPO_DIR}/DESIGN.md"
     "${REPO_DIR}/EXPERIMENTS.md" "${REPO_DIR}/ROADMAP.md"
     "${REPO_DIR}/PAPER.md" "${REPO_DIR}/docs/*.md")

# GitHub-style anchor slug: lowercase, drop everything but alphanumerics,
# spaces, hyphens and underscores, then spaces -> hyphens.
function(gh_slug heading out_var)
  string(TOLOWER "${heading}" s)
  string(REGEX REPLACE "[^a-z0-9 _-]" "" s "${s}")
  string(REPLACE " " "-" s "${s}")
  set(${out_var} "${s}" PARENT_SCOPE)
endfunction()

# All anchors one markdown file defines (code fences don't make headings).
function(collect_anchors file out_var)
  file(STRINGS "${file}" lines)
  set(anchors "")
  set(in_code FALSE)
  foreach(line IN LISTS lines)
    if(line MATCHES "^```")
      if(in_code)
        set(in_code FALSE)
      else()
        set(in_code TRUE)
      endif()
      continue()
    endif()
    if(NOT in_code AND line MATCHES "^#+ +(.*)$")
      gh_slug("${CMAKE_MATCH_1}" slug)
      list(APPEND anchors "${slug}")
    endif()
  endforeach()
  set(${out_var} "${anchors}" PARENT_SCOPE)
endfunction()

set(errors 0)
foreach(doc IN LISTS doc_files)
  get_filename_component(doc_dir "${doc}" DIRECTORY)
  file(RELATIVE_PATH doc_rel "${REPO_DIR}" "${doc}")
  file(STRINGS "${doc}" doc_lines)

  foreach(line IN LISTS doc_lines)
    # Hand-scan `](target)` occurrences: CMake's regex engine cannot
    # reliably exclude `)` inside a character class, so no REGEX MATCHALL.
    set(rest "${line}")
    while(TRUE)
      string(FIND "${rest}" "](" open)
      if(open EQUAL -1)
        break()
      endif()
      math(EXPR open "${open} + 2")
      string(SUBSTRING "${rest}" ${open} -1 rest)
      string(FIND "${rest}" ")" close)
      if(close EQUAL -1)
        break()
      endif()
      string(SUBSTRING "${rest}" 0 ${close} target)
      math(EXPR close "${close} + 1")
      string(SUBSTRING "${rest}" ${close} -1 rest)

      if(target STREQUAL "" OR target MATCHES "^https?://" OR
         target MATCHES "^mailto:")
        continue()
      endif()

      # Split off an optional #fragment.
      set(frag "")
      set(path_part "${target}")
      if(target MATCHES "^([^#]*)#(.*)$")
        set(path_part "${CMAKE_MATCH_1}")
        set(frag "${CMAKE_MATCH_2}")
      endif()

      # Resolve the file part relative to the doc that links it.
      if(path_part STREQUAL "")
        set(resolved "${doc}")  # same-file anchor
      else()
        get_filename_component(resolved "${doc_dir}/${path_part}" ABSOLUTE)
      endif()
      if(NOT EXISTS "${resolved}")
        message(SEND_ERROR "${doc_rel}: broken link target '${target}'")
        math(EXPR errors "${errors} + 1")
        continue()
      endif()

      # Anchors are only checkable inside markdown files.
      if(NOT frag STREQUAL "" AND resolved MATCHES "\\.md$")
        collect_anchors("${resolved}" anchors)
        list(FIND anchors "${frag}" found)
        if(found EQUAL -1)
          message(SEND_ERROR
                  "${doc_rel}: anchor '#${frag}' not found in "
                  "'${path_part}' (known: ${anchors})")
          math(EXPR errors "${errors} + 1")
        endif()
      endif()
    endwhile()
  endforeach()
endforeach()

list(LENGTH doc_files n_docs)
if(errors GREATER 0)
  message(FATAL_ERROR "docs link check: ${errors} broken link(s)")
endif()
message(STATUS "docs link check OK (${n_docs} files scanned)")
