// MRLS baseline — Multiscale Robust Local Subspace (PRISM, Mahimkar et al.
// CoNEXT'11).
//
// Faithful-in-spirit reconstruction (PRISM's full algorithm is proprietary;
// see DESIGN.md): the window is smoothed at several dyadic scales; at each
// scale the past half is embedded into a lag matrix whose robust low-rank
// subspace is estimated by iteratively-reweighted SVD (the l1-flavoured
// iteration that gives MRLS both its robustness to baseline contamination
// and its very high computational cost — §1 and Table 2); the score is the
// MAD-normalized residual of the future lag vectors against that subspace,
// averaged over scales. The average makes a persistent change need partial
// confirmation at the coarser (smoothed) scales — the source of MRLS's
// extra detection delay relative to FUNNEL (Fig. 5) — while still letting a
// single enormous fine-scale residual dominate the mean.
//
// That last property is MRLS's documented weakness: one large future spike
// at the finest scale produces a huge residual, which is why MRLS floods
// variable KPIs with false positives (Table 1).
#pragma once

#include <vector>

#include "detect/scorer.h"

namespace funnel::detect {

/// How MRLS estimates the robust local subspace.
enum class MrlsSubspaceEngine {
  /// Exact l1 recovery by inexact-ALM Robust PCA (the paper's reference
  /// [17]) — one full SVD per ALM iteration, tens of iterations per window
  /// per scale. This is the configuration whose cost Table 2 indicts.
  kIalmRobustPca,
  /// Cheap iteratively-reweighted-SVD approximation (a handful of SVDs).
  kIrls,
};

struct MrlsParams {
  std::size_t window = 32;            ///< W_MRLS in the paper's evaluation
  std::size_t lag = 8;                ///< lag-embedding dimension
  std::vector<std::size_t> scales = {2, 8, 16};  ///< boxcar smoothing widths
  std::size_t rank = 3;               ///< local subspace dimension
  MrlsSubspaceEngine engine = MrlsSubspaceEngine::kIalmRobustPca;
  int irls_iterations = 12;           ///< reweighted-SVD sweeps (kIrls)
  int alm_max_iterations = 80;        ///< ALM iteration cap (kIalmRobustPca)
  /// Remove a robust local linear trend (fit on the past half, extrapolated
  /// across the window) before embedding — PRISM's tolerance of slowly
  /// trending aggregates; without it every seasonal ramp alarms.
  bool detrend = true;
};

class Mrls final : public ChangeScorer {
 public:
  explicit Mrls(MrlsParams params = {});

  std::size_t window_size() const override { return params_.window; }
  std::size_t change_offset() const override { return params_.window / 2; }
  double score(std::span<const double> window) override;
  const char* name() const override { return "mrls"; }

  const MrlsParams& params() const { return params_; }

 private:
  double score_at_scale(std::span<const double> window, std::size_t scale);

  MrlsParams params_;
};

}  // namespace funnel::detect
