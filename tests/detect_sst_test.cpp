// Tests for the SST detector family: geometry, standardization, the robust
// damping factor, and detection behavior of classic / improved / IKA SST.
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

#include "common/rng.h"
#include "common/stats.h"
#include "detect/classic_sst.h"
#include "detect/ika_sst.h"
#include "detect/improved_sst.h"
#include "detect/sliding.h"
#include "detect/sst_common.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::detect {
namespace {

// A stationary series with an optional level shift at `tc`.
std::vector<double> stationary_series(std::uint64_t seed, MinuteTime len,
                                      double shift = 0.0, MinuteTime tc = 0,
                                      double noise = 1.0) {
  workload::StationaryParams p;
  p.level = 50.0;
  p.noise_sigma = noise;
  workload::KpiStream s(workload::make_stationary(p, Rng(seed)));
  if (shift != 0.0) s.add_effect(workload::LevelShift{tc, shift});
  return workload::render(s, 0, len);
}

TEST(SstGeometry, PaperWindowSizes) {
  const SstGeometry g9{.omega = 9, .eta = 3};
  EXPECT_EQ(g9.window(), 34u);  // W_FUNNEL = 34 in §4.1
  EXPECT_EQ(g9.half(), 17u);
  EXPECT_EQ(g9.krylov_k(), 5u);  // Eq. 14 with eta = 3 (odd): k = 2*3-1
  const SstGeometry g4{.omega = 9, .eta = 4};
  EXPECT_EQ(g4.krylov_k(), 8u);  // eta even: k = 2*eta
  const SstGeometry g5{.omega = 5, .eta = 3};
  EXPECT_EQ(g5.window(), 18u);
}

TEST(StandardizeWindow, CentersOnBaseline) {
  // Baseline (first 4) at 100, remainder at 110: after standardization the
  // baseline sits near 0 and the excursion is positive.
  const std::vector<double> w{100.0, 100.5, 99.5, 100.0,
                              110.0, 110.5, 109.5, 110.0};
  const std::vector<double> z = standardize_window(w, 4);
  ASSERT_EQ(z.size(), 8u);
  EXPECT_NEAR(z[0] + z[1] + z[2] + z[3], 0.0, 1.0);
  EXPECT_GT(z[4], 5.0);
}

TEST(StandardizeWindow, ConstantBaselineFallsBack) {
  const std::vector<double> w{5.0, 5.0, 5.0, 5.0, 9.0, 9.0};
  const std::vector<double> z = standardize_window(w, 4);
  ASSERT_FALSE(z.empty());
  EXPECT_TRUE(std::isfinite(z[4]));
  EXPECT_GT(z[4], 0.0);
}

TEST(StandardizeWindow, AllConstantPassesThroughCentered) {
  const std::vector<double> w(10, 7.0);
  const std::vector<double> z = standardize_window(w, 5);
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StandardizeWindow, NanWindowReturnsEmpty) {
  std::vector<double> w(10, 1.0);
  w[7] = std::nan("");
  EXPECT_TRUE(standardize_window(w, 5).empty());
}

TEST(RobustScoreFactor, ZeroWhenHalvesIdentical) {
  const std::vector<double> h{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(robust_score_factor(h, h), 0.0);
}

TEST(RobustScoreFactor, GrowsWithLevelDifference) {
  const std::vector<double> a{0.0, 0.1, -0.1, 0.05, -0.05};
  const std::vector<double> b{5.0, 5.1, 4.9, 5.05, 4.95};
  const std::vector<double> c{10.0, 10.1, 9.9, 10.05, 9.95};
  const double fb = robust_score_factor(a, b);
  const double fc = robust_score_factor(a, c);
  EXPECT_GT(fb, 0.0);
  EXPECT_GT(fc, fb);
}

template <typename Scorer>
class SstFamilyTest : public ::testing::Test {};

using SstFamily = ::testing::Types<ClassicSst, ImprovedSst, IkaSst>;
TYPED_TEST_SUITE(SstFamilyTest, SstFamily);

TYPED_TEST(SstFamilyTest, ValidatesGeometryAndWindowSize) {
  EXPECT_THROW(TypeParam(SstGeometry{.omega = 1, .eta = 1}),
               InvalidArgument);
  EXPECT_THROW(TypeParam(SstGeometry{.omega = 5, .eta = 5}),
               InvalidArgument);
  TypeParam s(SstGeometry{.omega = 5, .eta = 3});
  EXPECT_EQ(s.window_size(), 18u);
  EXPECT_EQ(s.change_offset(), 9u);
  std::vector<double> too_short(10, 1.0);
  EXPECT_THROW((void)s.score(too_short), InvalidArgument);
}

TYPED_TEST(SstFamilyTest, NanWindowScoresNan) {
  TypeParam s(SstGeometry{.omega = 5, .eta = 3});
  std::vector<double> w(18, 1.0);
  w[9] = std::nan("");
  EXPECT_TRUE(std::isnan(s.score(w)));
}

TYPED_TEST(SstFamilyTest, ConstantWindowScoresZeroOrFinite) {
  TypeParam s(SstGeometry{.omega = 5, .eta = 3});
  const std::vector<double> w(18, 42.0);
  const double v = s.score(w);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_LE(v, 0.5);
}

TYPED_TEST(SstFamilyTest, ShiftWindowScoresHigherThanQuiet) {
  // Median over several seeds: a 6-sigma shift centered in the window
  // scores above a quiet window. The improved variants separate by a wide
  // margin thanks to the Eq. 11 factor; classic SST separates only weakly
  // at omega = 9 — the noise fragility that motivated §3.2.2.
  const SstGeometry g{.omega = 9, .eta = 3};
  std::vector<double> quiet_scores, shift_scores;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    TypeParam sq(g);
    const auto quiet = stationary_series(seed, 34);
    quiet_scores.push_back(sq.score(quiet));
    TypeParam ss(g);
    const auto shifted = stationary_series(seed + 100, 34, 6.0, 17);
    shift_scores.push_back(ss.score(shifted));
  }
  const bool classic = std::is_same_v<TypeParam, ClassicSst>;
  const double factor = classic ? 1.0 : 2.0;
  EXPECT_GT(median(shift_scores), factor * median(quiet_scores));
}

// Improved and IKA must detect level shifts across magnitudes with the
// paper's alarm policy, and stay quiet on pure noise.
class SstDetectionSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(SstDetectionSweep, ImprovedAndIkaDetectShifts) {
  const auto [magnitude, seed] = GetParam();
  const SstGeometry g{.omega = 9, .eta = 3};
  const AlarmPolicy policy{.threshold = 0.35, .persistence = 7, .patience = 10};
  const MinuteTime tc = 120;
  const auto series = stationary_series(static_cast<std::uint64_t>(seed), 240,
                                        magnitude, tc);

  ImprovedSst imp(g);
  const auto imp_scores = score_series(imp, series);
  bool imp_hit = false;
  for (const Alarm& a : all_alarms(imp_scores, imp.window_size(), 0, policy)) {
    if (a.minute >= tc) imp_hit = true;
  }
  EXPECT_TRUE(imp_hit) << "improved-sst missed a " << magnitude
                       << "-sigma shift (seed " << seed << ")";

  IkaSst ika(g);
  const auto ika_scores = score_series(ika, series);
  bool ika_hit = false;
  for (const Alarm& a : all_alarms(ika_scores, ika.window_size(), 0, policy)) {
    if (a.minute >= tc) ika_hit = true;
  }
  EXPECT_TRUE(ika_hit) << "ika-sst missed a " << magnitude
                       << "-sigma shift (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Magnitudes, SstDetectionSweep,
    ::testing::Combine(::testing::Values(5.0, 8.0, 12.0),
                       ::testing::Values(1, 2, 3)));

TEST(ImprovedSst, DetectsRamps) {
  const SstGeometry g{.omega = 9, .eta = 3};
  const AlarmPolicy policy{.threshold = 0.35, .persistence = 7, .patience = 10};
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    workload::StationaryParams p;
    workload::KpiStream s(workload::make_stationary(p, Rng(seed)));
    s.add_effect(workload::Ramp{120, 140, 8.0});
    const auto series = workload::render(s, 0, 240);
    ImprovedSst imp(g);
    const auto scores = score_series(imp, series);
    for (const Alarm& a : all_alarms(scores, imp.window_size(), 0, policy)) {
      if (a.minute >= 120) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits, 5);
}

TEST(ImprovedSst, TransientSpikeDoesNotAlarmWithPersistence) {
  const SstGeometry g{.omega = 9, .eta = 3};
  const AlarmPolicy policy{.threshold = 0.35, .persistence = 7, .patience = 10};
  int alarms = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    workload::StationaryParams p;
    workload::KpiStream s(workload::make_stationary(p, Rng(seed + 40)));
    s.add_effect(workload::TransientSpike{120, 2, 10.0});
    const auto series = workload::render(s, 0, 240);
    ImprovedSst imp(g);
    const auto scores = score_series(imp, series);
    if (!all_alarms(scores, imp.window_size(), 0, policy).empty()) ++alarms;
  }
  // The 7-minute persistence rule exists precisely to ignore these; the
  // residual alarms are ambient false positives, not spike responses (the
  // quiet-series test below tolerates the same rate).
  EXPECT_LE(alarms, 2);
}

TEST(ImprovedSst, QuietStationaryRarelyAlarms) {
  const SstGeometry g{.omega = 9, .eta = 3};
  const AlarmPolicy policy{.threshold = 0.35, .persistence = 7, .patience = 10};
  int alarms = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto series = stationary_series(seed + 500, 240);
    ImprovedSst imp(g);
    const auto scores = score_series(imp, series);
    if (!all_alarms(scores, imp.window_size(), 0, policy).empty()) ++alarms;
  }
  EXPECT_LE(alarms, 3);
}

TEST(IkaSst, TracksImprovedSstScores) {
  // Fidelity of the Krylov approximation: on a long mixed series the IKA
  // scores correlate strongly with the exact improved-SST scores.
  const SstGeometry g{.omega = 9, .eta = 3};
  workload::KpiStream s(
      workload::make_default(tsdb::KpiClass::kStationary, Rng(77)));
  s.add_effect(workload::LevelShift{150, 6.0});
  s.add_effect(workload::Ramp{300, 330, -5.0});
  const auto series = workload::render(s, 0, 450);
  ImprovedSst imp(g);
  IkaSst ika(g);
  const auto si = score_series(imp, series);
  const auto sk = score_series(ika, series);
  ASSERT_EQ(si.size(), sk.size());
  EXPECT_GT(correlation(si, sk), 0.85);
}

TEST(IkaSst, ResetClearsWarmStart) {
  const SstGeometry g{.omega = 9, .eta = 3};
  IkaSst warm(g);
  IkaSst cold(g);
  const auto series = stationary_series(31, 100, 7.0, 50);
  // Warm scorer sees a sequence of windows; cold one is reset before the
  // final window. Scores must still agree closely (the iteration converges
  // either way).
  double warm_last = 0.0;
  for (std::size_t i = 0; i + 34 <= series.size(); ++i) {
    warm_last = warm.score(std::span<const double>(series).subspan(i, 34));
  }
  cold.reset();
  const double cold_last = cold.score(
      std::span<const double>(series).subspan(series.size() - 34, 34));
  EXPECT_NEAR(warm_last, cold_last, 0.2 * (std::abs(warm_last) + 0.1));
}

TEST(ClassicSst, ScoreStaysInUnitInterval) {
  ClassicSst s(SstGeometry{.omega = 9, .eta = 3});
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto series = stationary_series(seed, 34, seed % 2 ? 8.0 : 0.0, 17);
    const double v = s.score(series);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SstFamilyAblation, OmegaFiveIsFasterToAlarmThanFifteen) {
  // §3.2.3: omega = 5 favours quick mitigation, 15 more precise assessment.
  // A smaller window needs fewer post-change samples, so its alarm minute
  // comes no later on a clean large shift.
  const AlarmPolicy policy{.threshold = 0.35, .persistence = 7, .patience = 10};
  std::vector<double> d5, d15;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto series = stationary_series(seed + 900, 300, 10.0, 150);
    ImprovedSst s5(SstGeometry{.omega = 5, .eta = 3});
    ImprovedSst s15(SstGeometry{.omega = 15, .eta = 3});
    const auto a5 = all_alarms(score_series(s5, series), s5.window_size(), 0,
                               policy);
    const auto a15 = all_alarms(score_series(s15, series), s15.window_size(),
                                0, policy);
    for (const Alarm& a : a5) {
      if (a.minute >= 150) {
        d5.push_back(static_cast<double>(a.minute - 150));
        break;
      }
    }
    for (const Alarm& a : a15) {
      if (a.minute >= 150) {
        d15.push_back(static_cast<double>(a.minute - 150));
        break;
      }
    }
  }
  ASSERT_FALSE(d5.empty());
  ASSERT_FALSE(d15.empty());
  EXPECT_LE(median(d5), median(d15));
}

TEST(IkaSst, RetargetingWithoutResetCorruptsScores) {
  // The warm-start basis is per-KPI state: feeding a scorer a different
  // stream without reset() seeds the (short) warm iteration with the old
  // stream's eigen-directions and silently changes scores. This is the
  // hazard the assessment engine guards against by resetting per-slot
  // scorers between KPI streams.
  const SstGeometry g{.omega = 9, .eta = 3};
  const std::vector<double> a = stationary_series(7, 300, 10.0, 150);
  std::vector<double> b = stationary_series(8, 300);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] += 6.0 * std::sin(static_cast<double>(i) / 11.0);  // different shape
  }

  IkaSst fresh(g);
  const std::vector<double> b_fresh = score_series(fresh, b);

  IkaSst reused(g);
  score_series(reused, a);  // warm-started on stream A
  const std::vector<double> b_stale = score_series(reused, b);
  EXPECT_NE(b_stale, b_fresh)
      << "stale warm-start basis did not affect scores; the reset() "
         "guard in the assessment engine would be untestable";

  IkaSst reset_scorer(g);
  score_series(reset_scorer, a);
  reset_scorer.reset();  // the retargeting fix
  EXPECT_EQ(score_series(reset_scorer, b), b_fresh)
      << "reset() must restore exact fresh-scorer behavior";
}

}  // namespace
}  // namespace funnel::detect
