#include "funnel/assessor.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

#include "common/error.h"
#include "detect/ika_sst.h"
#include "detect/sst_common.h"
#include "did/groups.h"
#include "funnel/verdict_journal.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace funnel::core {
namespace {

void mark_inconclusive(ItemVerdict& verdict, InconclusiveReason reason) {
  verdict.cause = Cause::kInconclusive;
  verdict.inconclusive_reason = reason;
}

// Eq. 11 damp factor of the alarm's peak window, recomputed with the same
// standardization the scorer used. The stored peak is the *damped* IKA-SST
// score (raw subspace discordance times the |Δmedian|·√|ΔMAD| factor);
// exposing the factor separates "how novel was the trajectory" from "how
// hard was it damped" — exactly what an operator asks when challenging a
// verdict. Side channel only (trace attrs + journal events); never feeds
// back into scores.
double peak_damp_factor(const detect::SstGeometry& geometry,
                        const detect::Alarm& alarm,
                        const std::vector<double>& slice,
                        const std::vector<double>& scores) {
  const std::size_t half = geometry.half();
  const std::size_t window = geometry.window();
  std::size_t peak = alarm.first_window;
  for (std::size_t i = alarm.first_window; i < scores.size(); ++i) {
    if (scores[i] == alarm.peak_score) {
      peak = i;
      break;
    }
  }
  double factor = 0.0;
  if (peak + window <= slice.size()) {
    const std::vector<double> z = detect::standardize_window(
        std::span<const double>(slice.data() + peak, window), half);
    if (z.size() == window) {
      factor = detect::robust_score_factor(
          std::span<const double>(z.data(), half),
          std::span<const double>(z.data() + half, half));
    }
  }
  return factor;
}

// Append the batch-path journal event for one determination. The damp
// factor and the cascade gate decision exist only inside
// assess_metric_with, so they ride in as extras on top of the shared
// journal_event builder.
void emit_batch_event(const obs::Journal* journal,
                      const changes::SoftwareChange& change,
                      const ItemVerdict& verdict,
                      std::optional<double> damp_factor,
                      std::string_view gate_decision) {
  obs::JournalEvent event = journal_event(change, verdict, "batch");
  event.sst_damp_factor = damp_factor;
  event.gate_decision = std::string(gate_decision);
  journal->append(std::move(event));
}

}  // namespace

Funnel::Funnel(FunnelConfig config, const topology::ServiceTopology& topo,
               const changes::ChangeLog& log, const tsdb::MetricStore& store)
    : config_(config), topo_(topo), log_(log), store_(store) {
  if (ThreadPool::resolve_threads(config_.num_threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    pool_->set_stats(config_.stats);
  }
}

Funnel::~Funnel() = default;

AssessmentReport Funnel::assess(changes::ChangeId id) const {
  const obs::ScopedTimer total(config_.stats, "funnel.assess.total_us");
  const changes::SoftwareChange& change = log_.get(id);
  // Root of the assessment's span tree (child of the ambient span when
  // assess_window distributes changes over the pool). Every per-KPI span —
  // wherever its task runs — attaches under it via the ambient context.
  obs::Span trace_span(config_.tracer, "funnel.assess");
  if (trace_span.active()) {
    trace_span.attr("change.id", id);
    trace_span.attr("change.minute", change.time);
    trace_span.attr("change.service", std::string_view(change.service));
    trace_span.attr("change.mode", changes::to_string(change.mode));
  }
  AssessmentReport report;
  report.change_id = id;
  report.change_time = change.time;
  {
    const obs::ScopedTimer span(config_.stats,
                                "funnel.assess.impact_set_us");
    obs::Span trace("funnel.assess.impact_set");
    report.impact_set = identify_impact_set(change, topo_);
    if (trace.active()) {
      trace.attr("impact.tservers", report.impact_set.tservers.size());
      trace.attr("impact.cservers", report.impact_set.cservers.size());
      trace.attr("impact.affected_services",
                 report.impact_set.affected_services.size());
      trace.attr("impact.dark_launched",
                 static_cast<int>(report.impact_set.dark_launched));
    }
  }
  const std::vector<tsdb::MetricId> metrics =
      impact_metrics(report.impact_set, store_);
  if (trace_span.active()) trace_span.attr("impact.kpis", metrics.size());
  report.items.resize(metrics.size());
  if (pool_ == nullptr || metrics.size() < 2) {
    detect::IkaSst scorer(config_.geometry, sst_params(config_));
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      report.items[i] =
          assess_metric_with(scorer, change, report.impact_set, metrics[i]);
    }
  } else {
    // One scorer per execution slot: the warm-start basis stays
    // thread-local, and assess_metric_with resets it before every KPI so a
    // slot's previous stream never bleeds into the next score.
    std::vector<detect::IkaSst> scorers(
        pool_->slots(), detect::IkaSst(config_.geometry, sst_params(config_)));
    pool_->parallel_for(
        0, metrics.size(), [&](std::size_t i, std::size_t slot) {
          report.items[i] = assess_metric_with(scorers[slot], change,
                                               report.impact_set, metrics[i]);
        });
  }
  if (config_.stats != nullptr) {
    // Report assembly: tally the delivered verdicts into the pipeline
    // counters. Telemetry reads the report; it never writes into it.
    const obs::ScopedTimer span(config_.stats, "funnel.assess.assemble_us");
    config_.stats->add("funnel.assess.changes_assessed");
    config_.stats->add("funnel.assess.kpis_scored", report.items.size());
    for (const ItemVerdict& v : report.items) {
      if (v.kpi_change_detected) {
        config_.stats->add("funnel.assess.alarms_raised");
      }
      config_.stats->add(std::string("funnel.assess.verdicts.") +
                         to_string(v.cause));
    }
  }
  return report;
}

std::vector<AssessmentReport> Funnel::assess_window(MinuteTime t0,
                                                    MinuteTime t1) const {
  const obs::ScopedTimer total(config_.stats,
                               "funnel.assess_window.total_us");
  // One span tree per batch: each assess() root becomes a child of this
  // span (directly serial, via the captured ambient context when the pool
  // distributes changes).
  obs::Span trace_span(config_.tracer, "funnel.assess_window");
  const std::vector<changes::ChangeId> ids = log_.in_window(t0, t1);
  if (trace_span.active()) {
    trace_span.attr("window.t0", t0);
    trace_span.attr("window.t1", t1);
    trace_span.attr("window.changes", ids.size());
  }
  std::vector<AssessmentReport> out(ids.size());
  if (pool_ == nullptr || ids.size() < 2) {
    for (std::size_t i = 0; i < ids.size(); ++i) out[i] = assess(ids[i]);
  } else {
    pool_->parallel_for(0, ids.size(), [&](std::size_t i, std::size_t) {
      out[i] = assess(ids[i]);
    });
  }
  if (config_.stats != nullptr) {
    config_.stats->add("funnel.assess_window.batches");
  }
  return out;
}

ItemVerdict Funnel::assess_metric(const changes::SoftwareChange& change,
                                  const ImpactSet& set,
                                  const tsdb::MetricId& metric) const {
  detect::IkaSst scorer(config_.geometry, sst_params(config_));
  return assess_metric_with(scorer, change, set, metric);
}

ItemVerdict Funnel::assess_metric_with(detect::IkaSst& scorer,
                                       const changes::SoftwareChange& change,
                                       const ImpactSet& set,
                                       const tsdb::MetricId& metric) const {
  // The scorer may have been warm-started on a different KPI stream; a
  // stale basis would silently change scores (and with them verdicts).
  scorer.reset();

  ItemVerdict verdict;
  verdict.metric = metric;

  // Journal sink for this determination (null/inactive = zero cost). Like
  // stats and tracer it is a side channel: events describe the verdict, the
  // verdict never depends on them.
  const obs::Journal* journal = config_.journal;
  const bool journal_on = journal != nullptr && journal->active();

  // Per-KPI provenance span. Runs on a pool worker in the parallel path;
  // the ambient context installed by parallel_for parents it under the
  // assess() root regardless of which thread executes the task.
  obs::Span trace_span(config_.tracer, "funnel.assess.kpi");
  if (trace_span.active()) {
    trace_span.attr("kpi.metric", metric.to_string());
  }

  const MinuteTime tc = change.time;
  const auto w = static_cast<MinuteTime>(scorer.window_size());

  // Copy the assessment window under the shard's reader lock; scoring then
  // runs lock-free, and concurrent ingestion cannot tear the read. The
  // quality report is computed once here, under the same lock, and rides
  // on the verdict from then on.
  MinuteTime t0 = 0;
  std::vector<double> slice;
  store_.read(metric, [&](const tsdb::TimeSeries& series) {
    t0 = std::max(series.start_time(), tc - config_.lookback);
    const MinuteTime t1 = std::min(series.end_time(), tc + config_.horizon);
    verdict.quality =
        tsdb::window_quality(series, t0, std::max(t0, t1));
    if (t1 - t0 >= w) slice = series.slice(t0, t1);
  });
  if (trace_span.active() && verdict.quality) {
    trace_span.attr("kpi.coverage", verdict.quality->coverage);
    trace_span.attr("kpi.gap_run", verdict.quality->longest_gap_run);
    trace_span.attr("kpi.flat_run", verdict.quality->longest_flat_run);
  }
  if (slice.empty()) {
    // Not enough data to score even one window: the KPI cannot be cleared,
    // so say so instead of delivering a silent "no change".
    mark_inconclusive(verdict, InconclusiveReason::kInsufficientPreWindow);
    if (trace_span.active()) {
      trace_span.attr("kpi.cause", to_string(verdict.cause));
      trace_span.attr("kpi.inconclusive_reason",
                      to_string(verdict.inconclusive_reason));
    }
    if (journal_on) emit_batch_event(journal, change, verdict, std::nullopt, {});
    return verdict;
  }

  // Per-KPI detection stage (runs on a pool worker in the parallel path —
  // the shard-per-thread registry absorbs the concurrent recording). The
  // span covers scoring + alarm scan only; determination has its own span.
  std::vector<double> scores;
  std::vector<detect::Alarm> alarms;
  std::vector<detect::GateDecision> decisions;
  {
    const obs::ScopedTimer span(config_.stats, "funnel.assess.sst_us");
    // The scorer's restart/escalation counters are lifetime totals (pool
    // slots reuse scorers across KPIs); diff around this KPI's scoring to
    // attribute the events to the pipeline counters.
    const std::uint64_t restarts_before = scorer.cold_restarts();
    const std::uint64_t escalations_before = scorer.escalations();
    if (config_.sst_cascade) {
      // The gates must respect the live alarm policy: a window they
      // suppress has to be provably (stage 0) or plausibly (stage 1) unable
      // to exceed exactly this threshold.
      detect::CascadeConfig cc = config_.cascade;
      cc.sst_threshold = config_.alarm.threshold;
      detect::CascadeCounters counters;
      scores = detect::cascade_score_series(
          scorer, slice, cc, &counters,
          (trace_span.active() || journal_on) ? &decisions : nullptr);
      if (config_.stats != nullptr) {
        config_.stats->add("funnel.cascade.windows", counters.windows);
        config_.stats->add("funnel.cascade.scored", counters.scored);
        config_.stats->add("funnel.cascade.suppressed_variance",
                           counters.suppressed_variance);
        config_.stats->add("funnel.cascade.suppressed_cusum",
                           counters.suppressed_cusum);
        config_.stats->add("funnel.cascade.wow_forced", counters.wow_forced);
        config_.stats->add("funnel.cascade.dirty", counters.dirty);
      }
      if (trace_span.active()) {
        trace_span.attr("cascade.windows", counters.windows);
        trace_span.attr("cascade.scored", counters.scored);
        trace_span.attr("cascade.suppressed_variance",
                        counters.suppressed_variance);
        trace_span.attr("cascade.suppressed_cusum",
                        counters.suppressed_cusum);
        trace_span.attr("cascade.wow_forced", counters.wow_forced);
        trace_span.attr("cascade.dirty", counters.dirty);
      }
    } else {
      scores = detect::score_series(scorer, slice);
    }
    if (config_.stats != nullptr) {
      const std::uint64_t restarts = scorer.cold_restarts() - restarts_before;
      const std::uint64_t escalations =
          scorer.escalations() - escalations_before;
      if (restarts > 0) {
        config_.stats->add("funnel.sst.cold_restarts", restarts);
      }
      if (escalations > 0) {
        config_.stats->add("funnel.sst.escalations", escalations);
      }
    }
    alarms = detect::all_alarms(scores, scorer.window_size(), t0,
                                config_.alarm);
  }

  // Only alarms raised at/after the deployment minute are attributable.
  const auto it = std::find_if(
      alarms.begin(), alarms.end(),
      [tc](const detect::Alarm& a) { return a.minute >= tc; });
  if (it == alarms.end()) {
    // "No alarm" is only a clean bill of health when the window was clean
    // enough to have caught one: NaN-containing windows score NaN, so a
    // gap can swallow exactly the shift we're looking for.
    if (verdict.quality != std::nullopt &&
        !verdict.quality->acceptable(config_.quality.min_coverage,
                                     config_.quality.max_gap_run,
                                     config_.quality.max_flat_run)) {
      mark_inconclusive(verdict, InconclusiveReason::kGapInDetectionWindow);
    }
    if (trace_span.active()) {
      trace_span.attr("kpi.cause", to_string(verdict.cause));
      if (verdict.cause == Cause::kInconclusive) {
        trace_span.attr("kpi.inconclusive_reason",
                        to_string(verdict.inconclusive_reason));
      }
    }
    if (journal_on) emit_batch_event(journal, change, verdict, std::nullopt, {});
    return verdict;
  }

  verdict.kpi_change_detected = true;
  verdict.alarm = *it;
  if (trace_span.active()) {
    trace_sst_provenance(trace_span, *it, slice, scores, t0);
    if (it->first_window < decisions.size()) {
      trace_span.attr(
          "cascade.alarm_window_decision",
          std::string_view(detect::to_string(decisions[it->first_window])));
    }
  }
  determine_cause(change, set, metric, config_.did_window, verdict);
  if (trace_span.active()) {
    trace_span.attr("kpi.cause", to_string(verdict.cause));
    if (verdict.cause == Cause::kInconclusive) {
      trace_span.attr("kpi.inconclusive_reason",
                      to_string(verdict.inconclusive_reason));
    }
  }
  if (journal_on) {
    std::string_view gate;
    if (config_.sst_cascade && it->first_window < decisions.size()) {
      gate = detect::to_string(decisions[it->first_window]);
    }
    emit_batch_event(journal, change, verdict,
                     peak_damp_factor(config_.geometry, *it, slice, scores),
                     gate);
  }
  return verdict;
}

void Funnel::trace_sst_provenance(obs::Span& span, const detect::Alarm& alarm,
                                  const std::vector<double>& slice,
                                  const std::vector<double>& scores,
                                  MinuteTime t0) const {
  span.attr("sst.peak_score", alarm.peak_score);
  span.attr("sst.alarm_minute", alarm.minute);
  span.attr("sst.first_window_minute",
            t0 + static_cast<MinuteTime>(alarm.first_window));
  span.attr("sst.threshold", config_.alarm.threshold);
  span.attr("sst.persistence", config_.alarm.persistence);
  span.attr("sst.omega", config_.geometry.omega);
  span.attr("sst.eta", config_.geometry.eta);
  span.attr("sst.krylov_k", config_.geometry.krylov_k());

  const double factor =
      peak_damp_factor(config_.geometry, alarm, slice, scores);
  span.attr("sst.damp_factor", factor);
  span.attr("sst.raw_score",
            factor > 0.0 ? alarm.peak_score / factor : 0.0);
}

void Funnel::determine_cause(const changes::SoftwareChange& change,
                             const ImpactSet& set,
                             const tsdb::MetricId& metric,
                             MinuteTime post_window,
                             ItemVerdict& verdict) const {
  const obs::ScopedTimer span(config_.stats, "funnel.assess.did_us");
  const MinuteTime tc = change.time;
  const auto omega = static_cast<std::size_t>(
      std::min<MinuteTime>(config_.did_window, post_window));

  // Fig. 3 step 4/7: affected-service KPIs never have control entities, and
  // Full Launching leaves none either -> compare against the KPI's own
  // history (§3.2.5). Otherwise compare treated vs control entities
  // (§3.2.4).
  bool historical = is_affected_service_metric(set, metric) ||
                    !set.dark_launched;
  verdict.used_historical_control = historical;

  // Causality provenance: which control group the verdict rests on, and the
  // fitted DiD numbers against their thresholds. Child of the per-KPI span
  // in batch, of the watch's determination span online.
  obs::Span trace_span(config_.tracer, "funnel.assess.determine");
  if (trace_span.active()) {
    trace_span.attr("did.control_kind",
                    historical ? "seasonal-window" : "dark-launch-siblings");
    trace_span.attr("did.window_min", omega);
    trace_span.attr("did.alpha_threshold", config_.did.alpha_threshold);
    trace_span.attr("did.t_threshold", config_.did.t_threshold);
    trace_span.attr("did.require_significance",
                    static_cast<int>(config_.did.require_significance));
  }

  try {
    // Graceful-degradation chain (docs/ROBUSTNESS.md): dark-launch DiD →
    // (control empty) historical fallback → (quorum/coverage failure)
    // kInconclusive with the machine-readable reason. Never a throw, never
    // a silent skip.
    did::DiDOutcome outcome;
    if (!historical) {
      const auto treated = treated_group_for(set, metric);
      const auto control = control_group_for(set, metric);
      outcome = did::did_dark_launch(store_, treated, control, tc, omega);
      if (outcome.status == did::DiDStatus::kEmptyTreatedGroup) {
        // The watched KPI itself has no clean windows around the change —
        // no control group can fix that.
        mark_inconclusive(verdict,
                          InconclusiveReason::kGapInDetectionWindow);
      } else if (outcome.status == did::DiDStatus::kEmptyControlGroup) {
        // §3.2.5 fallback: no usable sibling survived the telemetry, so
        // compare the KPI against its own seasonal history instead.
        historical = true;
        verdict.used_historical_control = true;
        verdict.used_fallback_control = true;
        if (trace_span.active()) {
          trace_span.attr("did.fallback_control", 1);
        }
      }
    }
    if (historical && verdict.cause != Cause::kInconclusive) {
      // Reader-locked: the online assessor runs this on the dispatcher
      // thread while producers append (docs/CONCURRENCY.md).
      outcome = store_.read(metric, [&](const tsdb::TimeSeries& s) {
        return did::did_historical(s, tc, omega, config_.baseline_days,
                                   config_.quality.historical_quorum);
      });
      switch (outcome.status) {
        case did::DiDStatus::kOk:
          break;
        case did::DiDStatus::kNoPreWindow:
          mark_inconclusive(verdict,
                            InconclusiveReason::kInsufficientPreWindow);
          break;
        case did::DiDStatus::kNoPostWindow:
          mark_inconclusive(verdict,
                            InconclusiveReason::kGapInDetectionWindow);
          break;
        default:
          mark_inconclusive(verdict,
                            InconclusiveReason::kHistoricalQuorumUnmet);
          break;
      }
      if (verdict.used_fallback_control &&
          verdict.cause == Cause::kInconclusive) {
        // Both ends of the chain failed: report the primary defect (the
        // §3.2.4 control group was empty); the historical sub-status is on
        // the did.historical trace span.
        verdict.inconclusive_reason = InconclusiveReason::kControlGroupEmpty;
      }
    }
    if (verdict.cause != Cause::kInconclusive) {
      const did::DiDResult& fit = outcome.fit;
      verdict.did_fit = fit;
      if (trace_span.active()) {
        trace_span.attr("did.alpha", fit.alpha);
        trace_span.attr("did.alpha_scaled", fit.alpha_scaled);
        trace_span.attr("did.t_stat", fit.t_stat);
        trace_span.attr("did.n_treated", fit.n_treated);
        trace_span.attr("did.n_control", fit.n_control);
      }
      if (did::caused_by_change(fit, config_.did)) {
        verdict.cause = Cause::kSoftwareChange;
      } else {
        verdict.cause =
            historical ? Cause::kSeasonality : Cause::kOtherFactors;
      }
    }
  } catch (const Error& e) {
    // Unexpected DiD failure (numerical, not a telemetry status): the KPI
    // change cannot be ruled out, so it is delivered to the operations team
    // as change-induced (conservative; the paper always delivers dubious
    // cases, §2.2).
    if (trace_span.active()) {
      trace_span.attr("did.error", std::string_view(e.what()));
    }
    verdict.cause = Cause::kSoftwareChange;
    verdict.inconclusive_reason = InconclusiveReason::kNone;
  }
  if (trace_span.active()) {
    trace_span.attr("did.cause", to_string(verdict.cause));
    if (verdict.cause == Cause::kInconclusive) {
      trace_span.attr("did.inconclusive_reason",
                      to_string(verdict.inconclusive_reason));
    }
  }
}

}  // namespace funnel::core
