#include "linalg/sym_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace funnel::linalg {

SymEigen sym_eigen(const Matrix& a, double tol, int max_sweeps) {
  FUNNEL_REQUIRE(a.rows() == a.cols(), "sym_eigen requires a square matrix");
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix q = Matrix::identity(n);

  // Scale for the convergence test: Frobenius norm of the input.
  double fro = 0.0;
  for (double x : a.data()) fro += x * x;
  fro = std::sqrt(fro);
  const double stop = tol * (fro > 0.0 ? fro : 1.0);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    }
    off = std::sqrt(2.0 * off);
    if (off <= stop) break;
    if (sweep == max_sweeps - 1) {
      throw NumericalError("sym_eigen: sweep limit exceeded");
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t qq = p + 1; qq < n; ++qq) {
        const double apq = m(p, qq);
        if (std::abs(apq) <= stop / static_cast<double>(n * n)) continue;
        const double app = m(p, p);
        const double aqq = m(qq, qq);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : -1.0 / (-theta + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Apply the rotation J(p, q, theta) on both sides: M <- Jᵀ M J.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, qq);
          m(k, p) = c * mkp - s * mkq;
          m(k, qq) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(qq, k);
          m(p, k) = c * mpk - s * mqk;
          m(qq, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q(k, p);
          const double qkq = q(k, qq);
          q(k, p) = c * qkp - s * qkq;
          q(k, qq) = s * qkp + c * qkq;
        }
      }
    }
  }

  Vector values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = m(i, i);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return values[x] > values[y];
  });

  SymEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = values[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = q(i, order[j]);
  }
  return out;
}

}  // namespace funnel::linalg
