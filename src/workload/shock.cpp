#include "workload/shock.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace funnel::workload {

SharedShock make_event_shock(MinuteTime start, MinuteTime duration,
                             double amplitude) {
  FUNNEL_REQUIRE(duration > 0, "shock duration must be positive");
  std::vector<double> v(static_cast<std::size_t>(duration));
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double pos = static_cast<double>(i) / static_cast<double>(duration);
    v[i] = amplitude * 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * pos));
  }
  return std::make_shared<const ShockSeries>(start, std::move(v));
}

SharedShock make_attack_shock(MinuteTime start, MinuteTime duration,
                              double amplitude, Rng rng) {
  FUNNEL_REQUIRE(duration > 0, "shock duration must be positive");
  std::vector<double> v(static_cast<std::size_t>(duration));
  for (double& x : v) {
    x = amplitude * (0.8 + 0.4 * rng.uniform());
  }
  return std::make_shared<const ShockSeries>(start, std::move(v));
}

SharedShock make_drift_shock(MinuteTime start, MinuteTime duration,
                             double step_sigma, Rng rng) {
  FUNNEL_REQUIRE(duration > 0, "shock duration must be positive");
  std::vector<double> v(static_cast<std::size_t>(duration));
  double level = 0.0;
  for (double& x : v) {
    level += rng.gaussian(0.0, step_sigma);
    x = level;
  }
  return std::make_shared<const ShockSeries>(start, std::move(v));
}

}  // namespace funnel::workload
