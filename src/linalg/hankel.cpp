#include "linalg/hankel.h"

#include <algorithm>

#include "common/error.h"

namespace funnel::linalg {

Matrix hankel(std::span<const double> window, std::size_t omega,
              std::size_t count) {
  FUNNEL_REQUIRE(omega >= 1 && count >= 1, "hankel needs positive dimensions");
  FUNNEL_REQUIRE(window.size() == hankel_span(omega, count),
                 "hankel window length must be omega + count - 1");
  Matrix b(omega, count);
  for (std::size_t j = 0; j < count; ++j) {
    for (std::size_t i = 0; i < omega; ++i) b(i, j) = window[j + i];
  }
  return b;
}

HankelGramOperator::HankelGramOperator(std::span<const double> window,
                                       std::size_t omega, std::size_t count)
    : omega_(omega), count_(count), window_(window.begin(), window.end()) {
  FUNNEL_REQUIRE(omega >= 1 && count >= 1,
                 "HankelGramOperator needs positive dimensions");
  FUNNEL_REQUIRE(window_.size() == hankel_span(omega, count),
                 "HankelGramOperator window length must be omega + count - 1");
}

void HankelGramOperator::apply(std::span<const double> x,
                               std::span<double> y) const {
  // t = Bᵀ x : t[j] = sum_i window[j + i] * x[i]
  Vector t(count_, 0.0);
  for (std::size_t j = 0; j < count_; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < omega_; ++i) acc += window_[j + i] * x[i];
    t[j] = acc;
  }
  // y = B t : y[i] = sum_j window[j + i] * t[j]
  for (std::size_t i = 0; i < omega_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < count_; ++j) acc += window_[j + i] * t[j];
    y[i] = acc;
  }
}

void HankelGramOperator::apply_block_reference(std::span<const double> x,
                                               std::span<double> y,
                                               std::size_t cols) const {
  Vector xi(omega_), yi(omega_);
  for (std::size_t b = 0; b < cols; ++b) {
    for (std::size_t i = 0; i < omega_; ++i) xi[i] = x[i * cols + b];
    apply(xi, yi);
    for (std::size_t i = 0; i < omega_; ++i) y[i * cols + b] = yi[i];
  }
}

void HankelGramOperator::apply_block(std::span<const double> x,
                                     std::span<double> y, std::size_t cols,
                                     std::span<double> scratch) const {
#if defined(FUNNEL_SST_SCALAR_KERNELS)
  (void)scratch;
  apply_block_reference(x, y, cols);
#else
  FUNNEL_REQUIRE(x.size() >= omega_ * cols && y.size() >= omega_ * cols,
                 "apply_block operand too small");
  FUNNEL_REQUIRE(scratch.size() >= count_ * cols,
                 "apply_block scratch too small");
  // T = Bᵀ X : T(j,b) = sum_i window[j + i] * X(i,b). The i-loop is the
  // accumulation loop (same order as apply()), the b-loop is unit-stride.
  std::fill(scratch.begin(), scratch.begin() + count_ * cols, 0.0);
  for (std::size_t j = 0; j < count_; ++j) {
    double* trow = scratch.data() + j * cols;
    for (std::size_t i = 0; i < omega_; ++i) {
      const double w = window_[j + i];
      const double* xrow = x.data() + i * cols;
      for (std::size_t b = 0; b < cols; ++b) trow[b] += w * xrow[b];
    }
  }
  // Y = B T : Y(i,b) = sum_j window[j + i] * T(j,b), j is the accumulation
  // loop, again matching apply()'s summation order bit for bit.
  std::fill(y.begin(), y.begin() + omega_ * cols, 0.0);
  for (std::size_t i = 0; i < omega_; ++i) {
    double* yrow = y.data() + i * cols;
    for (std::size_t j = 0; j < count_; ++j) {
      const double w = window_[j + i];
      const double* trow = scratch.data() + j * cols;
      for (std::size_t b = 0; b < cols; ++b) yrow[b] += w * trow[b];
    }
  }
#endif
}

BatchHankelGram::BatchHankelGram(std::span<const double> windows,
                                 std::size_t kpis, std::size_t omega,
                                 std::size_t count)
    : kpis_(kpis),
      omega_(omega),
      count_(count),
      windows_(windows.begin(), windows.end()) {
  FUNNEL_REQUIRE(kpis >= 1 && omega >= 1 && count >= 1,
                 "BatchHankelGram needs positive dimensions");
  FUNNEL_REQUIRE(windows_.size() == kpis * hankel_span(omega, count),
                 "BatchHankelGram windows length must be K*(omega+count-1)");
}

void BatchHankelGram::apply_block(std::span<const double> x,
                                  std::span<double> y, std::size_t cols,
                                  std::span<double> scratch) const {
  FUNNEL_REQUIRE(
      x.size() >= omega_ * cols * kpis_ && y.size() >= omega_ * cols * kpis_,
      "BatchHankelGram operand too small");
  FUNNEL_REQUIRE(scratch.size() >= count_ * cols * kpis_,
                 "BatchHankelGram scratch too small");
  // Same two passes as HankelGramOperator::apply_block but with a KPI lane
  // as the innermost unit-stride dimension. Per (k,j,b) the accumulation
  // still runs over i (then j) in ascending order, so each lane's result is
  // bit-identical to a standalone HankelGramOperator on that lane.
  std::fill(scratch.begin(), scratch.begin() + count_ * cols * kpis_, 0.0);
  for (std::size_t j = 0; j < count_; ++j) {
    for (std::size_t i = 0; i < omega_; ++i) {
      const double* wrow = windows_.data() + (j + i) * kpis_;
      for (std::size_t b = 0; b < cols; ++b) {
        double* trow = scratch.data() + (j * cols + b) * kpis_;
        const double* xrow = x.data() + (i * cols + b) * kpis_;
        for (std::size_t k = 0; k < kpis_; ++k) trow[k] += wrow[k] * xrow[k];
      }
    }
  }
  std::fill(y.begin(), y.begin() + omega_ * cols * kpis_, 0.0);
  for (std::size_t i = 0; i < omega_; ++i) {
    for (std::size_t j = 0; j < count_; ++j) {
      const double* wrow = windows_.data() + (j + i) * kpis_;
      for (std::size_t b = 0; b < cols; ++b) {
        double* yrow = y.data() + (i * cols + b) * kpis_;
        const double* trow = scratch.data() + (j * cols + b) * kpis_;
        for (std::size_t k = 0; k < kpis_; ++k) yrow[k] += wrow[k] * trow[k];
      }
    }
  }
}

}  // namespace funnel::linalg
