// Persistent-store benchmark — the three costs docs/STORAGE.md asks a
// deployment to budget for:
//
//   1. WAL append throughput: records/s and MB/s through the group-commit
//      writer (the per-sample tax every persistent ingest pays).
//   2. Segment flush latency: one checkpoint() freezing the whole hot set
//      into an immutable columnar segment (the pause at a natural barrier).
//   3. Historical read cost, RAM vs mmap: the same day-long window queries
//      against the hydrated in-memory store and against a cold_reads store
//      that answers out-of-core from the mmap'd segment.
//
// The workload is synthetic but shaped like the assessor's: N server
// metrics, one sample per minute, appended in minute-major order (all
// metrics advance together, as a push feed delivers). Values are a
// deterministic function of (metric, minute) so runs are comparable.
//
// Writes BENCH_persist.json (--json FILE to relocate; --dir DIR for the
// scratch store). tests/persist_bench_smoke.cmake runs --quick and
// validates the JSON shape plus sanity bars (positive rates, every WAL
// record accounted for).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tsdb/store.h"

using namespace funnel;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double value_at(std::size_t metric, MinuteTime t) {
  return 50.0 + static_cast<double>(metric) +
         8.0 * std::sin(static_cast<double>(t) * 0.013);
}

struct ReadCost {
  double us_per_window = 0.0;
  double checksum = 0.0;  ///< keeps the reads from being optimized away
};

// Day-long window queries at deterministic offsets, round-robin over the
// metrics — the shape of a baseline-window read during determination.
ReadCost read_windows(const tsdb::MetricStore& store,
                      const std::vector<tsdb::MetricId>& metrics,
                      MinuteTime minutes, std::size_t windows,
                      MinuteTime window_minutes) {
  Rng rng(914);
  ReadCost cost;
  const double start = now_us();
  for (std::size_t w = 0; w < windows; ++w) {
    const tsdb::MetricId& id = metrics[w % metrics.size()];
    const MinuteTime t0 = rng.uniform_int(0, minutes - window_minutes - 1);
    const std::vector<double> win = store.query(id, t0, t0 + window_minutes);
    for (std::size_t i = 0; i < win.size(); i += 97) cost.checksum += win[i];
  }
  cost.us_per_window = (now_us() - start) / static_cast<double>(windows);
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* json_path = "BENCH_persist.json";
  std::string dir = "wal_bench.scratch";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[i + 1];
    }
  }

  const std::size_t n_metrics = quick ? 8 : 32;
  const MinuteTime minutes = quick ? 10'000 : 60'000;  // ~7 / ~42 days
  const std::size_t windows = quick ? 64 : 256;
  const MinuteTime window_minutes = kMinutesPerDay;

  std::vector<tsdb::MetricId> metrics;
  for (std::size_t m = 0; m < n_metrics; ++m) {
    std::string server = "s";
    server += std::to_string(m);
    metrics.push_back(tsdb::server_metric(server, "kpi"));
  }
  const std::size_t records = n_metrics * static_cast<std::size_t>(minutes);

  std::printf("\n================================================================\n");
  std::printf("Persistent segment store: WAL, flush, RAM-vs-mmap reads\n");
  std::printf("================================================================\n");
  std::printf("workload            %zu metrics x %lld minutes = %zu records\n",
              n_metrics, static_cast<long long>(minutes), records);

  std::filesystem::remove_all(dir);
  double append_us = 0.0, flush_ms = 0.0;
  std::uint64_t wal_records = 0, wal_bytes = 0;
  std::size_t segments = 0;
  ReadCost ram;
  {
    tsdb::StoreOptions options;
    options.data_dir = dir;
    tsdb::MetricStore store(options);

    const double t0 = now_us();
    for (MinuteTime t = 0; t < minutes; ++t) {
      for (std::size_t m = 0; m < n_metrics; ++m) {
        store.append(metrics[m], t, value_at(m, t));
      }
    }
    store.wal_flush();  // barrier: every record on disk
    append_us = now_us() - t0;
    wal_records = store.wal_records_written();
    wal_bytes = store.wal_bytes_written();

    const double t1 = now_us();
    store.checkpoint();
    flush_ms = (now_us() - t1) / 1000.0;
    segments = store.segment_count();

    ram = read_windows(store, metrics, minutes, windows, window_minutes);
  }

  // Reopen cold: history stays on the mmap'd segment, queries run
  // out-of-core and stitch with the (empty) hot tail.
  ReadCost mmap;
  {
    tsdb::StoreOptions options;
    options.data_dir = dir;
    options.cold_reads = true;
    tsdb::MetricStore store(options);
    mmap = read_windows(store, metrics, minutes, windows, window_minutes);
  }
  std::filesystem::remove_all(dir);

  const double secs = append_us / 1e6;
  const double records_per_s = static_cast<double>(records) / secs;
  const double mb_per_s =
      static_cast<double>(wal_bytes) / (1024.0 * 1024.0) / secs;
  std::printf("wal append          %.0f records/s, %.1f MB/s (%llu bytes)\n",
              records_per_s, mb_per_s,
              static_cast<unsigned long long>(wal_bytes));
  std::printf("segment flush       %.1f ms (%zu segment(s))\n", flush_ms,
              segments);
  std::printf("historical read     RAM %.1f us/window, mmap %.1f us/window "
              "(%zu windows of %lld min)\n",
              ram.us_per_window, mmap.us_per_window, windows,
              static_cast<long long>(window_minutes));
  if (ram.checksum != mmap.checksum) {
    std::fprintf(stderr, "error: RAM and mmap reads disagree (%f vs %f)\n",
                 ram.checksum, mmap.checksum);
    return 1;
  }

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  out << "{\"workload\":{\"quick\":" << (quick ? "true" : "false")
      << ",\"metrics\":" << n_metrics << ",\"minutes\":" << minutes
      << ",\"records\":" << records << "},\"wal\":{\"records_written\":"
      << wal_records << ",\"bytes\":" << wal_bytes
      << ",\"records_per_s\":" << records_per_s
      << ",\"mb_per_s\":" << mb_per_s << "},\"segment\":{\"flush_ms\":"
      << flush_ms << ",\"segments\":" << segments
      << "},\"read\":{\"windows\":" << windows
      << ",\"window_minutes\":" << window_minutes
      << ",\"ram_us_per_window\":" << ram.us_per_window
      << ",\"mmap_us_per_window\":" << mmap.us_per_window << "}}\n";
  out.close();
  std::fprintf(stderr, "# wrote %s\n", json_path);
  return 0;
}
