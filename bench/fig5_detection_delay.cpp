// Fig. 5 — CCDFs of detection delay for FUNNEL, CUSUM and MRLS.
//
// For every item whose KPI change was correctly attributed, the delay is
// the gap between the labeled change start and the alarm minute (§4.4; the
// computational cost is excluded — it is evaluated separately in Table 2).
// The bench prints gnuplot-ready CCDF columns plus the medians and the
// paper's headline reductions.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"

using namespace funnel;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  bench::print_header("Fig. 5: CCDF of detection delay (minutes)");

  std::printf("building the labeled dataset (%s)...\n",
              quick ? "quick" : "paper scale");
  const auto ds = evalkit::build_dataset(bench::paper_dataset_params(quick));

  std::printf("running the three methods...\n");
  const evalkit::MethodResult funnel_result =
      evalkit::evaluate_funnel(*ds, bench::funnel_config());
  const evalkit::MethodResult cusum_result =
      evalkit::evaluate_detector(*ds, bench::cusum_spec());
  const evalkit::MethodResult mrls_result =
      evalkit::evaluate_detector(*ds, bench::mrls_spec());

  struct Series {
    const char* name;
    const std::vector<double>* delays;
    double paper_median;
  };
  const Series series[3] = {{"FUNNEL", &funnel_result.delays, 13.2},
                            {"CUSUM", &cusum_result.delays, 37.7},
                            {"MRLS", &mrls_result.delays, 21.3}};

  // CCDF on a 0..60-minute grid (the assessment horizon).
  std::vector<double> grid;
  for (int m = 0; m <= 60; ++m) grid.push_back(static_cast<double>(m));

  std::printf("\n# delay_minute  ccdf_funnel  ccdf_cusum  ccdf_mrls\n");
  std::vector<std::vector<double>> ccdfs;
  for (const Series& s : series) ccdfs.push_back(ccdf(*s.delays, grid));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::printf("%5.0f  %.4f  %.4f  %.4f\n", grid[i], ccdfs[0][i],
                ccdfs[1][i], ccdfs[2][i]);
  }

  Table t({"method", "detections", "median delay", "p90 delay", "max delay",
           "paper median"});
  for (const Series& s : series) {
    if (s.delays->empty()) {
      t.add_row({s.name, "0", "-", "-", "-", format_fixed(s.paper_median, 1)});
      continue;
    }
    t.add_row({s.name, std::to_string(s.delays->size()),
               format_fixed(median(*s.delays), 1),
               format_fixed(quantile(*s.delays, 0.9), 1),
               format_fixed(max_value(*s.delays), 1),
               format_fixed(s.paper_median, 1)});
  }
  std::printf("\n%s\n", t.to_string().c_str());

  if (!funnel_result.delays.empty() && !cusum_result.delays.empty() &&
      !mrls_result.delays.empty()) {
    const double f = median(funnel_result.delays);
    const double c = median(cusum_result.delays);
    const double m = median(mrls_result.delays);
    std::printf("FUNNEL vs MRLS:  %+.2f%% median delay (paper: -38.02%%)\n",
                100.0 * (f - m) / m);
    std::printf("FUNNEL vs CUSUM: %+.2f%% median delay (paper: -64.99%%)\n",
                100.0 * (f - c) / c);
    std::printf(
        "concentration (p90 - median): FUNNEL %.1f, CUSUM %.1f, MRLS %.1f — "
        "the paper highlights FUNNEL's tighter distribution\n",
        quantile(funnel_result.delays, 0.9) - f,
        quantile(cusum_result.delays, 0.9) - c,
        quantile(mrls_result.delays, 0.9) - m);
  }
  return 0;
}
