// funnel_detect_csv — run a FUNNEL change detector on a CSV time series.
//
// Usage:
//   funnel_detect_csv <series.csv> [--method ika|improved|classic|cusum|mrls]
//                     [--threshold X] [--persistence N] [--patience N]
//                     [--omega N] [--scores]
//
// Input: `minute,value` rows (one sample per minute; empty value = gap).
// Output: alarm episodes (minute, peak score) on stdout; with --scores the
// full per-window score series is printed instead (gnuplot-ready).
//
// This is the "bring your own KPI" entry point: export any metric from your
// monitoring system and see what FUNNEL's detector family thinks of it.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/error.h"
#include "detect/classic_sst.h"
#include "detect/cusum.h"
#include "detect/ika_sst.h"
#include "detect/improved_sst.h"
#include "detect/mrls.h"
#include "detect/sliding.h"
#include "tsdb/io.h"

using namespace funnel;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <series.csv> [--method ika|improved|classic|cusum|mrls]\n"
      "          [--threshold X] [--persistence N] [--patience N]\n"
      "          [--omega N] [--scores]\n",
      argv0);
}

struct Options {
  std::string path;
  std::string method = "ika";
  double threshold = 0.35;
  bool threshold_set = false;
  std::size_t persistence = 7;
  std::size_t patience = 10;
  std::size_t omega = 9;
  bool print_scores = false;
};

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double* d, std::size_t* z) {
      if (++i >= argc) return false;
      if (d != nullptr) *d = std::atof(argv[i]);
      if (z != nullptr) *z = static_cast<std::size_t>(std::atoll(argv[i]));
      return true;
    };
    if (a == "--method") {
      if (++i >= argc) return false;
      opt.method = argv[i];
    } else if (a == "--threshold") {
      if (!next(&opt.threshold, nullptr)) return false;
      opt.threshold_set = true;
    } else if (a == "--persistence") {
      if (!next(nullptr, &opt.persistence)) return false;
    } else if (a == "--patience") {
      if (!next(nullptr, &opt.patience)) return false;
    } else if (a == "--omega") {
      if (!next(nullptr, &opt.omega)) return false;
    } else if (a == "--scores") {
      opt.print_scores = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<detect::ChangeScorer> make_scorer(const Options& opt,
                                                  double* default_thr) {
  const detect::SstGeometry g{.omega = opt.omega, .eta = 3};
  if (opt.method == "ika") {
    *default_thr = 0.35;
    return std::make_unique<detect::IkaSst>(g);
  }
  if (opt.method == "improved") {
    *default_thr = 0.4;
    return std::make_unique<detect::ImprovedSst>(g);
  }
  if (opt.method == "classic") {
    *default_thr = 0.95;
    return std::make_unique<detect::ClassicSst>(g);
  }
  if (opt.method == "cusum") {
    *default_thr = 70.0;
    return std::make_unique<detect::Cusum>(detect::CusumParams{});
  }
  if (opt.method == "mrls") {
    *default_thr = 7.0;
    return std::make_unique<detect::Mrls>(detect::MrlsParams{});
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  try {
    const tsdb::TimeSeries series = tsdb::load_series_csv(opt.path);
    if (series.empty()) {
      std::fprintf(stderr, "no samples in %s\n", opt.path.c_str());
      return 1;
    }
    double default_thr = 0.35;
    const auto scorer = make_scorer(opt, &default_thr);
    if (scorer == nullptr) {
      std::fprintf(stderr, "unknown method: %s\n", opt.method.c_str());
      return 2;
    }
    if (!opt.threshold_set) opt.threshold = default_thr;

    const auto scores = detect::score_series(*scorer, series.values());
    if (scores.empty()) {
      std::fprintf(stderr,
                   "series too short: %zu samples < window %zu\n",
                   series.size(), scorer->window_size());
      return 1;
    }

    if (opt.print_scores) {
      std::printf("# minute score  (method=%s window=%zu)\n",
                  scorer->name(), scorer->window_size());
      for (std::size_t i = 0; i < scores.size(); ++i) {
        std::printf("%lld %.6f\n",
                    static_cast<long long>(series.start_time()) +
                        static_cast<long long>(i + scorer->window_size() - 1),
                    scores[i]);
      }
      return 0;
    }

    const detect::AlarmPolicy policy{
        .threshold = opt.threshold,
        .persistence = opt.persistence,
        .patience = std::max(opt.patience, opt.persistence)};
    const auto alarms = detect::all_alarms(
        scores, scorer->window_size(), series.start_time(), policy);
    const auto episodes = detect::alarm_episodes(alarms, 30);
    std::printf("# %zu samples, method=%s, threshold=%.3f, "
                "persistence=%zu/%zu\n",
                series.size(), scorer->name(), opt.threshold,
                opt.persistence, std::max(opt.patience, opt.persistence));
    if (episodes.empty()) {
      std::printf("no behavior changes detected\n");
      return 0;
    }
    for (const auto& e : episodes) {
      std::printf("change episode at minute %lld (peak score %.3f)\n",
                  static_cast<long long>(e.minute), e.peak_score);
    }
    return 0;
  } catch (const funnel::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
