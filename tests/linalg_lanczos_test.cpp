// Tests for Lanczos tridiagonalization and the implicit Hankel Gram
// operator — the numerical heart of FUNNEL's IKA fast path.
#include "linalg/lanczos.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/hankel.h"
#include "linalg/sym_eigen.h"

namespace funnel::linalg {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 2 * n; ++j) a(i, j) = rng.gaussian();
  }
  return gram_rows(a);  // A·Aᵀ is SPD with probability 1
}

TEST(Hankel, BuildsLaggedColumns) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0, 5.0};
  const Matrix b = hankel(w, 3, 3);
  // column j = w[j..j+2]
  EXPECT_DOUBLE_EQ(b(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(b(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(b(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(b(2, 2), 5.0);
}

TEST(Hankel, ValidatesLength) {
  const std::vector<double> w{1.0, 2.0, 3.0};
  EXPECT_THROW((void)hankel(w, 3, 3), InvalidArgument);
  EXPECT_EQ(hankel_span(9, 9), 17u);
}

TEST(HankelGramOperator, MatchesExplicitGram) {
  Rng rng(1);
  for (const auto [omega, count] : {std::pair<std::size_t, std::size_t>{3, 4},
                                    {9, 9},
                                    {5, 2},
                                    {2, 8}}) {
    std::vector<double> w(hankel_span(omega, count));
    for (double& x : w) x = rng.gaussian();
    const Matrix b = hankel(w, omega, count);
    const Matrix g = gram_rows(b);
    const HankelGramOperator op(w, omega, count);
    EXPECT_EQ(op.dim(), omega);
    for (int rep = 0; rep < 3; ++rep) {
      Vector x(omega);
      for (double& v : x) v = rng.gaussian();
      Vector y(omega);
      op.apply(x, y);
      const Vector ref = matvec(g, x);
      for (std::size_t i = 0; i < omega; ++i) {
        EXPECT_NEAR(y[i], ref[i], 1e-9);
      }
    }
  }
}

TEST(HankelGramOperator, CopiesWindow) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0, 5.0};
  const HankelGramOperator op(w, 3, 3);
  w.assign(w.size(), 0.0);  // mutate the source after construction
  Vector y(3);
  op.apply(Vector{1.0, 0.0, 0.0}, y);
  EXPECT_NE(y[0], 0.0);
}

TEST(DenseOperator, AppliesMatrix) {
  const Matrix m{{2.0, 0.0}, {0.0, 3.0}};
  const DenseOperator op(m);
  Vector y(2);
  op.apply(Vector{1.0, 1.0}, y);
  EXPECT_EQ(y, (Vector{2.0, 3.0}));
  EXPECT_THROW(DenseOperator(Matrix(2, 3)), InvalidArgument);
}

TEST(Lanczos, FullDimensionIsExact) {
  // k = n Lanczos on an SPD matrix reproduces the full spectrum.
  Rng rng(2);
  const Matrix c = random_spd(6, rng);
  Vector seed(6);
  for (double& v : seed) v = rng.gaussian();
  const DenseOperator op(c);
  const LanczosResult r = lanczos(op, seed, 6, true);
  ASSERT_EQ(r.steps(), 6u);
  const Vector ritz = tridiag_eigenvalues(r.t);
  const SymEigen exact = sym_eigen(c);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(ritz[i], exact.values[i], 1e-7 * std::abs(exact.values[0]));
  }
}

TEST(Lanczos, BasisIsOrthonormal) {
  Rng rng(3);
  const Matrix c = random_spd(8, rng);
  Vector seed(8);
  for (double& v : seed) v = rng.gaussian();
  const DenseOperator op(c);
  const LanczosResult r = lanczos(op, seed, 5, true);
  ASSERT_EQ(r.basis.cols(), r.steps());
  for (std::size_t a = 0; a < r.basis.cols(); ++a) {
    for (std::size_t b = a; b < r.basis.cols(); ++b) {
      const double expected = a == b ? 1.0 : 0.0;
      EXPECT_NEAR(dot(r.basis.col(a), r.basis.col(b)), expected, 1e-10);
    }
  }
}

TEST(Lanczos, SeedNormalizationIrrelevant) {
  Rng rng(4);
  const Matrix c = random_spd(5, rng);
  Vector seed(5);
  for (double& v : seed) v = rng.gaussian();
  Vector scaled = seed;
  for (double& v : scaled) v *= 1e6;
  const DenseOperator op(c);
  const Vector r1 = tridiag_eigenvalues(lanczos(op, seed, 4).t);
  const Vector r2 = tridiag_eigenvalues(lanczos(op, scaled, 4).t);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r1[i], r2[i], 1e-8 * std::abs(r1[0]));
  }
}

TEST(Lanczos, BreaksDownGracefullyOnLowRank) {
  // Rank-1 operator: the Krylov space is 1-dimensional.
  Matrix a(4, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(2, 0) = 3.0;
  a(3, 0) = 4.0;
  const Matrix c = gram_rows(a);
  const DenseOperator op(c);
  const LanczosResult r = lanczos(op, Vector{1.0, 2.0, 3.0, 4.0}, 4);
  EXPECT_EQ(r.steps(), 1u);
  EXPECT_NEAR(r.t.diag[0], 30.0, 1e-9);  // lambda = ||u||² = 30
}

TEST(Lanczos, RejectsZeroSeedAndBadSizes) {
  const DenseOperator op(Matrix::identity(3));
  EXPECT_THROW((void)lanczos(op, Vector{0.0, 0.0, 0.0}, 2), InvalidArgument);
  EXPECT_THROW((void)lanczos(op, Vector{1.0, 0.0}, 2), InvalidArgument);
  EXPECT_THROW((void)lanczos(op, Vector{1.0, 0.0, 0.0}, 0), InvalidArgument);
}

// Property: the top Ritz value after k << n steps is a tight lower bound on
// the true top eigenvalue, and the projection estimate used by Eq. 13
// matches the exact projection for the FUNNEL geometry (omega = 9, k = 5).
class LanczosRitzProperty : public ::testing::TestWithParam<int> {};

TEST_P(LanczosRitzProperty, TopRitzApproximatesTopEigenvalue) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Matrix c = random_spd(9, rng);
  Vector seed(9);
  for (double& v : seed) v = rng.gaussian();
  const DenseOperator op(c);
  const Vector ritz = tridiag_eigenvalues(lanczos(op, seed, 5).t);
  const SymEigen exact = sym_eigen(c);
  EXPECT_LE(ritz[0], exact.values[0] * (1.0 + 1e-9));
  EXPECT_GT(ritz[0], exact.values[0] * 0.8);
}

TEST_P(LanczosRitzProperty, Eq13MatchesExactProjection) {
  // phi = 1 - sum_j (betaᵀ u_j)² (exact, j over top eta eigenvectors of C)
  // vs 1 - sum_j x_j[0]² (Lanczos + QL approximation).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77u + 5u);
  std::vector<double> w(hankel_span(9, 9));
  for (double& x : w) x = rng.gaussian();
  const HankelGramOperator op(w, 9, 9);
  Vector beta(9);
  for (double& v : beta) v = rng.gaussian();
  normalize(beta);

  const Matrix b = hankel(w, 9, 9);
  const SymEigen exact = sym_eigen(gram_rows(b));
  double exact_proj2 = 0.0;
  for (std::size_t j = 0; j < 3; ++j) {
    const double p = dot(beta, exact.vectors.col(j));
    exact_proj2 += p * p;
  }

  const LanczosResult lr = lanczos(op, beta, 5);
  const SymEigen tk = tridiag_eigen(lr.t);
  double approx_proj2 = 0.0;
  for (std::size_t j = 0; j < 3 && j < tk.values.size(); ++j) {
    approx_proj2 += tk.vectors(0, j) * tk.vectors(0, j);
  }
  // The k = 5 Krylov space from a random seed captures the top-3 projection
  // approximately; occasional poorly-aligned seeds deviate more.
  EXPECT_NEAR(approx_proj2, exact_proj2, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LanczosRitzProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace funnel::linalg
