#include "did/did.h"

#include <array>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace funnel::did {
namespace {

// Solve the 4x4 symmetric positive-definite system Ax = b by Gaussian
// elimination with partial pivoting, returning x and (via `inv_diag`) the
// requested diagonal entry of A⁻¹ needed for the coefficient SE.
std::array<double, 4> solve4(std::array<std::array<double, 4>, 4> a,
                             std::array<double, 4> b) {
  for (int col = 0; col < 4; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 4; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    FUNNEL_REQUIRE(std::abs(a[pivot][col]) > 1e-12,
                   "DiD design matrix is singular");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (int r = 0; r < 4; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < 4; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::array<double, 4> x{};
  for (int i = 0; i < 4; ++i) x[i] = b[i] / a[i][i];
  return x;
}

// (XᵀX)⁻¹ last diagonal entry via solving with the unit vector.
double xtx_inverse_last_diagonal(std::array<std::array<double, 4>, 4> xtx) {
  const std::array<double, 4> e3 = solve4(xtx, {0.0, 0.0, 0.0, 1.0});
  return e3[3];
}

}  // namespace

DiDResult did_panel(std::span<const PanelObservation> observations) {
  // Cell counts: [treated][post].
  std::size_t counts[2][2] = {{0, 0}, {0, 0}};
  for (const auto& o : observations) {
    ++counts[o.treated ? 1 : 0][o.post ? 1 : 0];
  }
  FUNNEL_REQUIRE(counts[0][0] > 0 && counts[0][1] > 0 && counts[1][0] > 0 &&
                     counts[1][1] > 0,
                 "DiD needs observations in all four (group, period) cells");

  // Regressors: x = (1, post, treated, post*treated).
  std::array<std::array<double, 4>, 4> xtx{};
  std::array<double, 4> xty{};
  for (const auto& o : observations) {
    const double x[4] = {1.0, o.post ? 1.0 : 0.0, o.treated ? 1.0 : 0.0,
                         (o.post && o.treated) ? 1.0 : 0.0};
    for (int i = 0; i < 4; ++i) {
      xty[i] += x[i] * o.y;
      for (int j = 0; j < 4; ++j) xtx[i][j] += x[i] * x[j];
    }
  }
  const std::array<double, 4> beta = solve4(xtx, xty);

  // Residual variance (homoskedastic OLS).
  double rss = 0.0;
  for (const auto& o : observations) {
    const double x[4] = {1.0, o.post ? 1.0 : 0.0, o.treated ? 1.0 : 0.0,
                         (o.post && o.treated) ? 1.0 : 0.0};
    double fit = 0.0;
    for (int i = 0; i < 4; ++i) fit += beta[i] * x[i];
    const double r = o.y - fit;
    rss += r * r;
  }
  const std::size_t n = observations.size();
  const double dof = static_cast<double>(n > 4 ? n - 4 : 1);
  const double sigma2 = rss / dof;
  const double var_alpha = sigma2 * xtx_inverse_last_diagonal(xtx);

  // Robust scale of the control group's pre-period for unit normalization.
  std::vector<double> control_pre;
  for (const auto& o : observations) {
    if (!o.treated && !o.post) control_pre.push_back(o.y);
  }
  double scale = mad_sigma(control_pre);
  if (scale <= 0.0) scale = stddev(control_pre);
  if (scale <= 0.0) scale = std::abs(median(control_pre)) * 0.01;
  if (scale <= 0.0) scale = 1.0;

  DiDResult out;
  out.alpha = beta[3];
  out.alpha_scaled = beta[3] / scale;
  out.std_error = std::sqrt(std::max(var_alpha, 0.0));
  out.t_stat = out.std_error > 0.0 ? out.alpha / out.std_error : 0.0;
  out.n_treated = counts[1][0];
  out.n_control = counts[0][0];
  return out;
}

DiDResult did_from_groups(std::span<const double> treated_pre,
                          std::span<const double> treated_post,
                          std::span<const double> control_pre,
                          std::span<const double> control_post,
                          double scale_hint) {
  FUNNEL_REQUIRE(treated_pre.size() == treated_post.size(),
                 "treated pre/post must describe the same KPIs");
  FUNNEL_REQUIRE(control_pre.size() == control_post.size(),
                 "control pre/post must describe the same KPIs");
  std::vector<PanelObservation> obs;
  obs.reserve(2 * (treated_pre.size() + control_pre.size()));
  for (std::size_t i = 0; i < treated_pre.size(); ++i) {
    obs.push_back({true, false, treated_pre[i]});
    obs.push_back({true, true, treated_post[i]});
  }
  for (std::size_t i = 0; i < control_pre.size(); ++i) {
    obs.push_back({false, false, control_pre[i]});
    obs.push_back({false, true, control_post[i]});
  }
  DiDResult out = did_panel(obs);

  // Eq. 15 contains the KPI-specific effect xi(i). With paired pre/post
  // observations the within (first-difference) estimator removes xi(i)
  // exactly: alpha = center(treated diffs) - center(control diffs) — but
  // its standard error comes from the *diff* spreads, so persistent
  // unit-level heterogeneity (e.g. day-of-week level differences in the
  // historical control group) no longer inflates it. Centers and spreads
  // are median/MAD (§3.2.2's robustness argument): a historical control
  // day contaminated by an *earlier* software change is an outlier diff
  // that must not drag the estimate — the 30-day baseline exists precisely
  // to ride out such contamination (§1).
  std::vector<double> td(treated_pre.size());
  for (std::size_t i = 0; i < td.size(); ++i) {
    td[i] = treated_post[i] - treated_pre[i];
  }
  std::vector<double> cd(control_pre.size());
  for (std::size_t i = 0; i < cd.size(); ++i) {
    cd[i] = control_post[i] - control_pre[i];
  }
  auto robust_var = [](const std::vector<double>& xs) {
    double s = mad_sigma(xs);
    if (s <= 0.0) s = stddev(xs);
    return s * s;
  };
  const double var_c = robust_var(cd);
  // A single treated unit has no diff spread of its own; borrow the
  // control group's (the standard singleton-treated convention).
  const double var_t = td.size() >= 2 ? robust_var(td) : var_c;
  const double se =
      std::sqrt(var_t / static_cast<double>(td.size()) +
                var_c / static_cast<double>(cd.size()));
  out.alpha = median(td) - median(cd);
  out.std_error = se;
  out.t_stat = se > 0.0 ? out.alpha / se : 0.0;

  if (scale_hint > 0.0) {
    out.alpha_scaled = out.alpha / scale_hint;
  } else {
    // Rescale with the within-estimator alpha (identical to the OLS alpha
    // up to rounding, but keep them consistent).
    double scale = mad_sigma(cd);
    if (scale <= 0.0) scale = stddev(cd);
    if (scale <= 0.0) scale = 1.0;
    out.alpha_scaled = out.alpha / scale;
  }
  return out;
}

bool caused_by_change(const DiDResult& fit, const DiDConfig& config) {
  if (std::abs(fit.alpha_scaled) <= config.alpha_threshold) return false;
  if (config.require_significance &&
      std::abs(fit.t_stat) <= config.t_threshold) {
    return false;
  }
  return true;
}

}  // namespace funnel::did
