// Cross-module property sweeps: randomized topologies and panels must
// satisfy structural invariants regardless of the draw.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <span>
#include <vector>

#include "common/rng.h"
#include "detect/cascade.h"
#include "detect/ika_sst.h"
#include "detect/sliding.h"
#include "did/did.h"
#include "funnel/impact_set.h"
#include "tsdb/series.h"
#include "workload/faults.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel {
namespace {

// ---- Impact-set invariants over random topologies and changes. ----

struct RandomDeployment {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  std::vector<changes::ChangeId> ids;
};

RandomDeployment random_deployment(std::uint64_t seed) {
  Rng rng(seed);
  RandomDeployment d;
  const int services = static_cast<int>(rng.uniform_int(2, 6));
  for (int s = 0; s < services; ++s) {
    const std::string svc = "s" + std::to_string(s);
    const int servers = static_cast<int>(rng.uniform_int(2, 7));
    for (int v = 0; v < servers; ++v) {
      d.topo.add_server(svc, svc + "-h" + std::to_string(v));
    }
  }
  // Random sparse relations.
  for (int a = 0; a < services; ++a) {
    for (int b = a + 1; b < services; ++b) {
      if (rng.bernoulli(0.3)) {
        d.topo.add_relation("s" + std::to_string(a), "s" + std::to_string(b));
      }
    }
  }
  // One change per service, dark or full.
  for (int s = 0; s < services; ++s) {
    const std::string svc = "s" + std::to_string(s);
    const auto& servers = d.topo.servers_of(svc);
    changes::SoftwareChange ch;
    ch.service = svc;
    ch.time = 1000 + 200 * s;
    if (servers.size() >= 2 && rng.bernoulli(0.7)) {
      ch.mode = changes::LaunchMode::kDark;
      const auto treated = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(servers.size()) - 1));
      ch.servers.assign(servers.begin(),
                        servers.begin() + static_cast<std::ptrdiff_t>(treated));
    } else {
      ch.mode = changes::LaunchMode::kFull;
      ch.servers = servers;
    }
    d.ids.push_back(d.log.record(ch, d.topo));
  }
  return d;
}

class ImpactSetInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ImpactSetInvariants, PartitionAndClosureProperties) {
  const RandomDeployment d =
      random_deployment(static_cast<std::uint64_t>(GetParam()));
  for (changes::ChangeId id : d.ids) {
    const auto& ch = d.log.get(id);
    const core::ImpactSet set = core::identify_impact_set(ch, d.topo);

    // tservers + cservers partition the service's servers exactly.
    std::set<std::string> all(set.tservers.begin(), set.tservers.end());
    for (const auto& s : set.cservers) {
      EXPECT_TRUE(all.insert(s).second) << "server in both groups: " << s;
    }
    const auto& owned = d.topo.servers_of(ch.service);
    EXPECT_EQ(all.size(), owned.size());

    // Instances mirror servers 1:1 in both groups.
    EXPECT_EQ(set.tinstances.size(), set.tservers.size());
    EXPECT_EQ(set.cinstances.size(), set.cservers.size());
    for (const auto& inst : set.tinstances) {
      EXPECT_EQ(topology::parse_instance_name(inst).first, ch.service);
    }

    // Affected services: never contains the changed service; every member
    // is reachable, and membership is symmetric (if A affects B, a change
    // on B affects A).
    for (const auto& svc : set.affected_services) {
      EXPECT_NE(svc, ch.service);
      const auto back = d.topo.affected_services(svc);
      EXPECT_TRUE(std::find(back.begin(), back.end(), ch.service) !=
                  back.end())
          << svc << " not symmetric with " << ch.service;
    }

    // Launch-mode consistency.
    EXPECT_EQ(set.dark_launched, ch.dark_launched());
    EXPECT_EQ(set.has_control_group(), ch.dark_launched());

    // Group derivation: treated/control metric lists are disjoint and stay
    // within the changed service's entities.
    const tsdb::MetricId probe =
        tsdb::server_metric(set.tservers.front(), "cpu");
    const auto treated = core::treated_group_for(set, probe);
    const auto control = core::control_group_for(set, probe);
    std::set<tsdb::MetricId> seen(treated.begin(), treated.end());
    for (const auto& m : control) {
      EXPECT_TRUE(seen.insert(m).second);
    }
    EXPECT_EQ(treated.size() + control.size(), owned.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImpactSetInvariants, ::testing::Range(1, 13));

// ---- DiD estimator properties over random panels. ----

class DidProperties : public ::testing::TestWithParam<int> {};

TEST_P(DidProperties, EstimatorInvariances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131u);
  const auto nt = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const auto nc = static_cast<std::size_t>(rng.uniform_int(2, 12));
  const double effect = rng.uniform(-10.0, 10.0);

  std::vector<double> tp(nt), to(nt), cp(nc), co(nc);
  for (std::size_t i = 0; i < nt; ++i) {
    tp[i] = rng.gaussian(50.0, 2.0);
    to[i] = tp[i] + effect + rng.gaussian(0.0, 0.5);
  }
  for (std::size_t i = 0; i < nc; ++i) {
    cp[i] = rng.gaussian(50.0, 2.0);
    co[i] = cp[i] + rng.gaussian(0.0, 0.5);
  }
  const did::DiDResult base = did::did_from_groups(tp, to, cp, co);
  EXPECT_NEAR(base.alpha, effect, 2.0);
  EXPECT_EQ(base.n_treated, nt);
  EXPECT_EQ(base.n_control, nc);

  // Location invariance: adding a constant to every observation leaves
  // alpha unchanged.
  auto shifted = [&](const std::vector<double>& v) {
    std::vector<double> out = v;
    for (double& x : out) x += 1000.0;
    return out;
  };
  const did::DiDResult moved = did::did_from_groups(
      shifted(tp), shifted(to), shifted(cp), shifted(co));
  EXPECT_NEAR(moved.alpha, base.alpha, 1e-9);
  EXPECT_NEAR(moved.std_error, base.std_error, 1e-9);

  // Scale equivariance: scaling all data by c scales alpha by c and leaves
  // the t statistic unchanged.
  auto scaled = [&](const std::vector<double>& v) {
    std::vector<double> out = v;
    for (double& x : out) x *= 3.0;
    return out;
  };
  const did::DiDResult sc =
      did::did_from_groups(scaled(tp), scaled(to), scaled(cp), scaled(co));
  EXPECT_NEAR(sc.alpha, 3.0 * base.alpha, 1e-9);
  if (base.std_error > 0.0) {
    EXPECT_NEAR(sc.t_stat, base.t_stat, 1e-6);
  }

  // A common post-period shock on both groups cancels exactly.
  auto bumped = [&](const std::vector<double>& v) {
    std::vector<double> out = v;
    for (double& x : out) x += 77.0;
    return out;
  };
  const did::DiDResult common =
      did::did_from_groups(tp, bumped(to), cp, bumped(co));
  EXPECT_NEAR(common.alpha, base.alpha, 1e-9);

  // Swapping the roles negates alpha.
  const did::DiDResult swapped = did::did_from_groups(cp, co, tp, to);
  EXPECT_NEAR(swapped.alpha, -base.alpha, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DidProperties, ::testing::Range(1, 16));

// ---- Cascade soundness over workload classes × fault specs. ----
//
// The pre-filter gates in front of IKA-SST may only *skip* work, never
// drop alarms: a window the full IKA path scores above the alarm threshold
// must never be suppressed by the window-local gates. The variance gate is
// sound by construction (the Eq. 11 factor upper-bounds the score); the
// CUSUM gate is empirical — this sweep is what keeps it conservative as
// its floor or the workload generators evolve. gate_window is
// state-independent, so per-window checking covers every access pattern
// (batch, online, and the WoW force gate, which only ever adds work).

struct CascadeCase {
  tsdb::KpiClass cls;
  const char* fault_spec;  ///< empty = clean telemetry
};

class CascadeSoundness : public ::testing::TestWithParam<CascadeCase> {};

TEST_P(CascadeSoundness, GatesNeverSuppressAlarmingWindows) {
  const CascadeCase c = GetParam();
  constexpr detect::SstGeometry geom{.omega = 9, .eta = 3};
  const detect::CascadeConfig config;  // threshold 0.22, default floors

  // An 8-sigma shift plus a ramp back guarantees genuinely alarming
  // windows in every class; faults then chew holes in the telemetry.
  workload::KpiStream s(workload::make_default(c.cls, Rng(427)));
  s.add_effect(workload::LevelShift{300, 8.0});
  s.add_effect(workload::Ramp{420, 460, -5.0});
  std::vector<double> series = workload::render(s, 0, 520);
  if (c.fault_spec[0] != '\0') {
    tsdb::TimeSeries ts(0, series);
    workload::FaultInjector inj(workload::parse_fault_spec(c.fault_spec), 19);
    const tsdb::TimeSeries dirty = workload::apply_faults(ts, inj);
    const auto dv = dirty.values();
    series.assign(dv.begin(), dv.end());
  }

  // Full IKA path: the exact per-direction scorer and the warm fast path
  // both count as "the full path" — the gates sit in front of either.
  detect::IkaSst exact(geom);
  detect::IkaParams fast_params;
  fast_params.warm_past = true;
  detect::IkaSst fast(geom, fast_params);
  const auto se = detect::score_series(exact, series);
  const auto sf = detect::score_series(fast, series);

  const std::size_t w = geom.window();
  const std::span<const double> sp(series);
  std::size_t alarming = 0;
  for (std::size_t i = 0; i + w <= series.size(); ++i) {
    const auto decision = detect::gate_window(sp.subspan(i, w), geom, config);

    // Dirty windows are exactly the NaN-scoring ones.
    ASSERT_EQ(decision == detect::GateDecision::kDirty, std::isnan(se[i]))
        << "window " << i;
    if (std::isnan(se[i])) continue;

    const bool exceeds = se[i] > config.sst_threshold ||
                         sf[i] > config.sst_threshold;
    if (exceeds) {
      ++alarming;
      EXPECT_EQ(decision, detect::GateDecision::kScored)
          << "window " << i << " scores " << se[i] << "/" << sf[i]
          << " but the cascade suppressed it";
    }
  }
  // The sweep is vacuous unless the workload actually alarms.
  EXPECT_GT(alarming, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ClassesByFaults, CascadeSoundness,
    ::testing::Values(
        CascadeCase{tsdb::KpiClass::kStationary, ""},
        CascadeCase{tsdb::KpiClass::kSeasonal, ""},
        CascadeCase{tsdb::KpiClass::kVariable, ""},
        CascadeCase{tsdb::KpiClass::kStationary, "nan=0.02x4"},
        CascadeCase{tsdb::KpiClass::kSeasonal, "nan=0.02x4"},
        CascadeCase{tsdb::KpiClass::kVariable, "nan=0.02x4"},
        CascadeCase{tsdb::KpiClass::kStationary, "drop=0.05"},
        CascadeCase{tsdb::KpiClass::kSeasonal, "drop=0.05"},
        CascadeCase{tsdb::KpiClass::kVariable, "drop=0.05"},
        CascadeCase{tsdb::KpiClass::kStationary, "stuck=0.01x8"},
        CascadeCase{tsdb::KpiClass::kSeasonal, "stuck=0.01x8"},
        CascadeCase{tsdb::KpiClass::kVariable, "stuck=0.01x8"},
        CascadeCase{tsdb::KpiClass::kStationary,
                    "drop=0.03,nan=0.01x4,stuck=0.005x8"},
        CascadeCase{tsdb::KpiClass::kSeasonal,
                    "drop=0.03,nan=0.01x4,stuck=0.005x8"},
        CascadeCase{tsdb::KpiClass::kVariable,
                    "drop=0.03,nan=0.01x4,stuck=0.005x8"}));

}  // namespace
}  // namespace funnel
