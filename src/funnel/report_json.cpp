#include "funnel/report_json.h"

#include <cmath>
#include <sstream>

namespace funnel::core {
namespace {

void escape_to(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void number_to(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

std::string to_json(const ItemVerdict& verdict) {
  std::ostringstream os;
  os << "{\"metric\":";
  escape_to(os, verdict.metric.to_string());
  os << ",\"kpi_change_detected\":"
     << (verdict.kpi_change_detected ? "true" : "false");
  os << ",\"cause\":";
  escape_to(os, to_string(verdict.cause));
  if (verdict.determined_at) {
    os << ",\"determined_at\":" << *verdict.determined_at;
  }
  if (verdict.alarm) {
    os << ",\"alarm\":{\"minute\":" << verdict.alarm->minute
       << ",\"peak_score\":";
    number_to(os, verdict.alarm->peak_score);
    os << "}";
  }
  if (verdict.did_fit) {
    os << ",\"did\":{\"alpha\":";
    number_to(os, verdict.did_fit->alpha);
    os << ",\"alpha_scaled\":";
    number_to(os, verdict.did_fit->alpha_scaled);
    os << ",\"t_stat\":";
    number_to(os, verdict.did_fit->t_stat);
    os << ",\"n_treated\":" << verdict.did_fit->n_treated
       << ",\"n_control\":" << verdict.did_fit->n_control
       << ",\"historical_control\":"
       << (verdict.used_historical_control ? "true" : "false") << "}";
  }
  os << "}";
  return os.str();
}

std::string to_json(const AssessmentReport& report) {
  std::ostringstream os;
  os << "{\"change_id\":" << report.change_id
     << ",\"change_time\":" << report.change_time << ",\"changed_service\":";
  escape_to(os, report.impact_set.changed_service);
  os << ",\"dark_launched\":"
     << (report.impact_set.dark_launched ? "true" : "false")
     << ",\"kpis_examined\":" << report.kpis_examined()
     << ",\"kpi_changes_detected\":" << report.kpi_changes_detected()
     << ",\"kpi_changes_caused\":" << report.kpi_changes_caused()
     << ",\"change_has_impact\":"
     << (report.change_has_impact() ? "true" : "false") << ",\"items\":[";
  bool first = true;
  for (const ItemVerdict& v : report.items) {
    if (!first) os << ',';
    first = false;
    os << to_json(v);
  }
  os << "]}";
  return os.str();
}

}  // namespace funnel::core
