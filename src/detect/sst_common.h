// Shared pieces of the SST detector family.
//
// Geometry (§3.2.1 with the §3.2.2 parameter policy rho = 0, gamma = delta =
// omega): the window holds 2*omega-1 "past" samples followed by 2*omega-1
// "future" samples, W = 4*omega-2 — for omega = 9 this gives W = 34, the
// paper's W_FUNNEL. The candidate change point is the first future sample.
//
// All SST variants standardize the window robustly before embedding so that
// one threshold works across KPIs with arbitrary units: the center and scale
// come from the *past* half (median / MAD) — the pre-change baseline — so a
// post-change excursion is expressed in baseline-noise units instead of
// being compressed by its own magnitude. The improved variants additionally
// damp the raw score by the |Δmedian|·√|ΔMAD| factor of Eq. 11.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace funnel::detect {

/// Window layout shared by the SST variants.
struct SstGeometry {
  std::size_t omega = 9;  ///< lagged-window size ω (5 = fast, 15 = precise)
  std::size_t eta = 3;    ///< subspace dimension η (3-4 works for ω ~ 100)

  /// Floor on the subspace-discordance term x̂ of Eq. 9 in the improved
  /// variants. Mid-way through a ramp (or a few minutes after a shift) the
  /// change direction has already entered the *past* trajectory subspace,
  /// so x̂ collapses even though the level difference between the halves is
  /// blatant; the Eq. 11 level factor then gets a minimum weight instead of
  /// being annihilated. Windows with no level difference still score ~0
  /// because the Eq. 11 factor itself vanishes.
  double novelty_floor = 0.25;

  std::size_t half() const { return 2 * omega - 1; }
  std::size_t window() const { return 4 * omega - 2; }

  /// Krylov dimension k of Eq. 14.
  std::size_t krylov_k() const { return eta % 2 == 0 ? 2 * eta : 2 * eta - 1; }
};

/// Robustly standardized copy of a window: (x - center) / scale where center
/// is the median of the first `baseline_len` samples (the pre-change
/// baseline) and scale its MAD-sigma, falling back to the baseline stddev,
/// then to the whole-window MAD-sigma/stddev, then to 1 (constant windows
/// pass through centered). Returns empty when the window contains
/// non-finite samples.
std::vector<double> standardize_window(std::span<const double> window,
                                       std::size_t baseline_len);

/// Eq. 11's damping factor computed on the standardized window:
/// max(|median_b - median_a| - slack, 0) * sqrt(|MAD_b - MAD_a|) over the
/// past (`a`) and future (`b`) halves. Near zero when the local level and
/// spread are unchanged — exactly when raw SST scores are dominated by
/// noise. The slack (in robust-sigma units, the data is standardized)
/// suppresses sub-noise median wobble, including the small median drag a
/// one-off spike exerts — the persistence rule's first line of defence.
double robust_score_factor(std::span<const double> past,
                           std::span<const double> future,
                           double slack = 0.5);

}  // namespace funnel::detect
