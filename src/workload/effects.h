// Injectable KPI effects.
//
// The paper's KPI changes are level shifts and ramp up/downs persisting
// longer than 7 minutes (§2.3, Fig. 2); transient spikes must NOT be flagged.
// Effects are additive deltas layered on a generator; the scenario builder
// records every injected effect as ground truth.
#pragma once

#include <variant>
#include <vector>

#include "common/minute_time.h"

namespace funnel::workload {

/// Permanent step of `delta` starting at `start`.
struct LevelShift {
  MinuteTime start = 0;
  double delta = 0.0;
};

/// Linear drift from 0 to `delta` over [start, end), holding `delta` after.
struct Ramp {
  MinuteTime start = 0;
  MinuteTime end = 0;
  double delta = 0.0;
};

/// One-off excursion of `delta` over [start, start + duration); returns to
/// baseline afterwards. Below the 7-minute persistence rule this must not be
/// reported as a KPI change.
struct TransientSpike {
  MinuteTime start = 0;
  MinuteTime duration = 1;
  double delta = 0.0;
};

using Effect = std::variant<LevelShift, Ramp, TransientSpike>;

/// Additive contribution of one effect at minute t.
double effect_value(const Effect& e, MinuteTime t);

/// Minute the effect begins.
MinuteTime effect_start(const Effect& e);

/// True for effects a correct detector should report (shift/ramp), false
/// for transients.
bool is_persistent(const Effect& e);

/// An ordered collection of effects with a summed contribution.
class EffectTimeline {
 public:
  void add(Effect e) { effects_.push_back(e); }
  double value_at(MinuteTime t) const;
  const std::vector<Effect>& effects() const { return effects_; }
  bool empty() const { return effects_.empty(); }

 private:
  std::vector<Effect> effects_;
};

}  // namespace funnel::workload
