// funnel_detect_csv — run a FUNNEL change detector on CSV time series.
//
// Usage:
//   funnel_detect_csv <series.csv> [more.csv ...]
//                     [--method ika|improved|classic|cusum|mrls]
//                     [--threshold X] [--persistence N] [--patience N]
//                     [--omega N] [--scores] [--threads N]
//
// Input: `minute,value` rows (one sample per minute; empty value = gap).
// Output: alarm episodes (minute, peak score) on stdout; with --scores the
// full per-window score series is printed instead (gnuplot-ready).
//
// Several CSV files are scored concurrently on a thread pool (--threads 0 =
// one per hardware thread, 1 = serial); output is buffered per file and
// printed in argument order, so it is byte-identical for every thread
// count.
//
// This is the "bring your own KPI" entry point: export any metric from your
// monitoring system and see what FUNNEL's detector family thinks of it.
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "detect/classic_sst.h"
#include "detect/cusum.h"
#include "detect/ika_sst.h"
#include "detect/improved_sst.h"
#include "detect/mrls.h"
#include "detect/sliding.h"
#include "tsdb/io.h"

using namespace funnel;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <series.csv> [more.csv ...]\n"
      "          [--method ika|improved|classic|cusum|mrls]\n"
      "          [--threshold X] [--persistence N] [--patience N]\n"
      "          [--omega N] [--scores] [--threads N]\n",
      argv0);
}

struct Options {
  std::vector<std::string> paths;
  std::string method = "ika";
  double threshold = 0.35;
  bool threshold_set = false;
  std::size_t persistence = 7;
  std::size_t patience = 10;
  std::size_t omega = 9;
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool print_scores = false;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double* d, std::size_t* z) {
      if (++i >= argc) return false;
      if (d != nullptr) *d = std::atof(argv[i]);
      if (z != nullptr) *z = static_cast<std::size_t>(std::atoll(argv[i]));
      return true;
    };
    if (a == "--method") {
      if (++i >= argc) return false;
      opt.method = argv[i];
    } else if (a == "--threshold") {
      if (!next(&opt.threshold, nullptr)) return false;
      opt.threshold_set = true;
    } else if (a == "--persistence") {
      if (!next(nullptr, &opt.persistence)) return false;
    } else if (a == "--patience") {
      if (!next(nullptr, &opt.patience)) return false;
    } else if (a == "--omega") {
      if (!next(nullptr, &opt.omega)) return false;
    } else if (a == "--threads") {
      if (!next(nullptr, &opt.threads)) return false;
    } else if (a == "--scores") {
      opt.print_scores = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    } else {
      opt.paths.push_back(a);
    }
  }
  return !opt.paths.empty();
}

std::unique_ptr<detect::ChangeScorer> make_scorer(const Options& opt,
                                                  double* default_thr) {
  const detect::SstGeometry g{.omega = opt.omega, .eta = 3};
  if (opt.method == "ika") {
    *default_thr = 0.35;
    return std::make_unique<detect::IkaSst>(g);
  }
  if (opt.method == "improved") {
    *default_thr = 0.4;
    return std::make_unique<detect::ImprovedSst>(g);
  }
  if (opt.method == "classic") {
    *default_thr = 0.95;
    return std::make_unique<detect::ClassicSst>(g);
  }
  if (opt.method == "cusum") {
    *default_thr = 70.0;
    return std::make_unique<detect::Cusum>(detect::CusumParams{});
  }
  if (opt.method == "mrls") {
    *default_thr = 7.0;
    return std::make_unique<detect::Mrls>(detect::MrlsParams{});
  }
  return nullptr;
}

struct FileResult {
  int code = 0;
  std::string out;  ///< stdout payload, printed in argument order
  std::string err;  ///< stderr payload
};

// Score one file with a scorer of its own (the SST scorers are stateful —
// warm starts must never cross files). All output is buffered so the
// parallel path can preserve argument order exactly.
FileResult process_file(const std::string& path, const Options& opt) {
  FileResult res;
  std::ostringstream out;
  try {
    const tsdb::TimeSeries series = tsdb::load_series_csv(path);
    if (series.empty()) {
      res.err = "no samples in " + path + "\n";
      res.code = 1;
      return res;
    }
    double default_thr = 0.35;
    const auto scorer = make_scorer(opt, &default_thr);
    const double threshold = opt.threshold_set ? opt.threshold : default_thr;

    const auto scores = detect::score_series(*scorer, series.values());
    if (scores.empty()) {
      res.err = "series too short: " + std::to_string(series.size()) +
                " samples < window " +
                std::to_string(scorer->window_size()) + "\n";
      res.code = 1;
      return res;
    }

    if (opt.print_scores) {
      char line[128];
      std::snprintf(line, sizeof(line), "# minute score  (method=%s window=%zu)\n",
                    scorer->name(), scorer->window_size());
      out << line;
      for (std::size_t i = 0; i < scores.size(); ++i) {
        std::snprintf(line, sizeof(line), "%lld %.6f\n",
                      static_cast<long long>(series.start_time()) +
                          static_cast<long long>(i + scorer->window_size() - 1),
                      scores[i]);
        out << line;
      }
      res.out = out.str();
      return res;
    }

    const detect::AlarmPolicy policy{
        .threshold = threshold,
        .persistence = opt.persistence,
        .patience = std::max(opt.patience, opt.persistence)};
    const auto alarms = detect::all_alarms(
        scores, scorer->window_size(), series.start_time(), policy);
    const auto episodes = detect::alarm_episodes(alarms, 30);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "# %zu samples, method=%s, threshold=%.3f, "
                  "persistence=%zu/%zu\n",
                  series.size(), scorer->name(), threshold, opt.persistence,
                  std::max(opt.patience, opt.persistence));
    out << line;
    if (episodes.empty()) {
      out << "no behavior changes detected\n";
    } else {
      for (const auto& e : episodes) {
        std::snprintf(line, sizeof(line),
                      "change episode at minute %lld (peak score %.3f)\n",
                      static_cast<long long>(e.minute), e.peak_score);
        out << line;
      }
    }
    res.out = out.str();
    return res;
  } catch (const funnel::Error& e) {
    res.err = std::string("error: ") + e.what() + "\n";
    res.code = 1;
    return res;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  {
    double default_thr = 0.0;
    if (make_scorer(opt, &default_thr) == nullptr) {
      std::fprintf(stderr, "unknown method: %s\n", opt.method.c_str());
      return 2;
    }
  }

  std::vector<FileResult> results(opt.paths.size());
  const std::size_t threads = ThreadPool::resolve_threads(opt.threads);
  if (threads > 1 && opt.paths.size() > 1) {
    ThreadPool pool(opt.threads);
    pool.parallel_for(0, opt.paths.size(), [&](std::size_t i, std::size_t) {
      results[i] = process_file(opt.paths[i], opt);
    });
  } else {
    for (std::size_t i = 0; i < opt.paths.size(); ++i) {
      results[i] = process_file(opt.paths[i], opt);
    }
  }

  int code = 0;
  for (std::size_t i = 0; i < opt.paths.size(); ++i) {
    if (opt.paths.size() > 1) {
      std::printf("== %s ==\n", opt.paths[i].c_str());
    }
    std::fputs(results[i].out.c_str(), stdout);
    std::fputs(results[i].err.c_str(), stderr);
    if (results[i].code != 0) code = results[i].code;
  }
  return code;
}
