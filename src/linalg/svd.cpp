#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace funnel::linalg {
namespace {

// One-sided Jacobi on a tall (m >= n) matrix: repeatedly rotate column pairs
// of W (a working copy of A) to orthogonality while accumulating the same
// rotations into V. Afterwards the column norms of W are the singular values
// and the normalized columns are U.
Svd jacobi_tall(const Matrix& a, double tol, int max_sweeps) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix w = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta) || gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0)
                             ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
                             : -1.0 / (-zeta + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
    if (sweep == max_sweeps - 1) {
      throw NumericalError("jacobi_svd: sweep limit exceeded");
    }
  }

  // Extract singular values and U, then order non-increasing.
  Vector sigma(n);
  Matrix u(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double nrm = 0.0;
    for (std::size_t i = 0; i < m; ++i) nrm += w(i, j) * w(i, j);
    nrm = std::sqrt(nrm);
    sigma[j] = nrm;
    if (nrm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) u(i, j) = w(i, j) / nrm;
    } else {
      // Null direction: leave the column zero; callers treat sigma=0 columns
      // as an orthogonal complement they do not consume.
      for (std::size_t i = 0; i < m; ++i) u(i, j) = 0.0;
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  Svd out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.singular_values.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.singular_values[j] = sigma[src];
    for (std::size_t i = 0; i < m; ++i) out.u(i, j) = u(i, src);
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  return out;
}

}  // namespace

Svd jacobi_svd(const Matrix& a, double tol, int max_sweeps) {
  FUNNEL_REQUIRE(!a.empty(), "jacobi_svd of empty matrix");
  if (a.rows() >= a.cols()) return jacobi_tall(a, tol, max_sweeps);
  // Wide matrix: decompose the transpose and swap factors.
  Svd t = jacobi_tall(transpose(a), tol, max_sweeps);
  Svd out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.singular_values = std::move(t.singular_values);
  return out;
}

Matrix reconstruct(const Svd& svd) {
  const std::size_t m = svd.u.rows();
  const std::size_t n = svd.v.rows();
  const std::size_t p = svd.singular_values.size();
  Matrix out(m, n);
  for (std::size_t k = 0; k < p; ++k) {
    const double s = svd.singular_values[k];
    if (s == 0.0) continue;
    for (std::size_t i = 0; i < m; ++i) {
      const double us = svd.u(i, k) * s;
      for (std::size_t j = 0; j < n; ++j) out(i, j) += us * svd.v(j, k);
    }
  }
  return out;
}

}  // namespace funnel::linalg
