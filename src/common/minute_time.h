// Time model shared across the repository.
//
// The paper bins every KPI into 1-minute samples (§3.1), so the whole system
// indexes time in integer minutes. MinuteTime is an absolute minute index
// from an arbitrary epoch; a simulated day is 1440 minutes and a week 10080.
#pragma once

#include <cstdint>

namespace funnel {

using MinuteTime = std::int64_t;

inline constexpr MinuteTime kMinutesPerHour = 60;
inline constexpr MinuteTime kMinutesPerDay = 1440;
inline constexpr MinuteTime kMinutesPerWeek = 7 * kMinutesPerDay;

/// Minute-of-day in [0, 1440).
constexpr MinuteTime minute_of_day(MinuteTime t) {
  const MinuteTime m = t % kMinutesPerDay;
  return m < 0 ? m + kMinutesPerDay : m;
}

/// Day index (floor division by 1440).
constexpr MinuteTime day_of(MinuteTime t) {
  MinuteTime d = t / kMinutesPerDay;
  if (t % kMinutesPerDay < 0) --d;
  return d;
}

/// Day-of-week in [0, 7).
constexpr MinuteTime day_of_week(MinuteTime t) {
  const MinuteTime d = day_of(t) % 7;
  return d < 0 ? d + 7 : d;
}

}  // namespace funnel
