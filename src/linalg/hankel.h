// Hankel (trajectory) matrices over sliding KPI windows.
//
// SST compares the dynamics before and after a candidate change point by
// embedding the raw series into Hankel matrices (Eq. 1 and 3):
//   B(t) = [q(t-δ), ..., q(t-1)],  q(t) = [x(t-ω+1), ..., x(t)]ᵀ
// Both the past matrix B and the future matrix A are built by `hankel` from
// the corresponding window slice. The Gram operator C = B·Bᵀ is applied
// implicitly (never materialized) — the paper's "matrix compression and
// implicit inner product calculation".
#pragma once

#include <span>

#include "linalg/lanczos.h"
#include "linalg/matrix.h"

namespace funnel::linalg {

/// Build an omega x count Hankel matrix whose column j is
/// window[j .. j+omega-1]. The window must contain exactly
/// omega + count - 1 samples.
Matrix hankel(std::span<const double> window, std::size_t omega,
              std::size_t count);

/// Number of raw samples a Hankel embedding of `count` lagged windows of
/// size `omega` consumes.
constexpr std::size_t hankel_span(std::size_t omega, std::size_t count) {
  return omega + count - 1;
}

/// Implicit Gram operator y = B·(Bᵀ·x) for a Hankel matrix B defined by a
/// raw window, computed directly from the samples without forming B or
/// B·Bᵀ. Cost per apply is O(omega * count) multiply-adds.
///
/// The window is copied (it is at most a few dozen samples), so the operator
/// remains valid after the source buffer changes — important for the online
/// sliding-window detector.
class HankelGramOperator final : public LinearOperator {
 public:
  HankelGramOperator(std::span<const double> window, std::size_t omega,
                     std::size_t count);

  std::size_t dim() const override { return omega_; }
  void apply(std::span<const double> x, std::span<double> y) const override;

  std::size_t count() const { return count_; }

 private:
  std::size_t omega_;
  std::size_t count_;
  Vector window_;
};

}  // namespace funnel::linalg
