#include "tsdb/store.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "common/error.h"
#include "obs/timer.h"
#include "tsdb/persist/backend.h"

namespace funnel::tsdb {

MetricStore::MetricStore(const StoreOptions& options) {
  FUNNEL_REQUIRE(options.num_shards >= 1, "store needs at least one shard");
  shards_.reserve(options.num_shards);
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    shards_.push_back(std::make_unique<StoreShard>());
  }
  if (options.ingest_queue_capacity > 0) {
    dispatcher_ = std::make_unique<IngestDispatcher>(
        options.ingest_queue_capacity, options.backpressure,
        [this](const Sample& s) { deliver(s); });
  }
  if (!options.data_dir.empty()) {
    persist::BackendOptions bopts;
    bopts.dir = options.data_dir;
    bopts.wal_queue_capacity = options.wal_queue_capacity;
    bopts.durability = options.durability;
    bopts.compact_threshold = options.compact_threshold;
    backend_ = std::make_unique<persist::PersistBackend>(bopts);
    cold_ = options.cold_reads;
    if (!cold_) {
      // Full hydration: rebuild every series from the segments so the store
      // is indistinguishable from one that never restarted. No locks: the
      // constructor is single-threaded by definition.
      for (const MetricId& id : backend_->cold_metrics()) {
        shard(id).series.emplace(id, backend_->materialize(id, nullptr));
      }
    }
    if (!options.hand_off_tail) {
      // Replay the WAL tail in arrival order. No subscriber can exist yet,
      // so this is pure state reconstruction; hand_off_tail callers replay
      // explicitly after attaching their subscribers instead.
      for (const persist::WalRecord& rec : backend_->recovered_tail()) {
        replay(rec);
      }
    }
  }
}

MetricStore::~MetricStore() {
  // Stop delivering before the shards (and their subscription lists) die.
  dispatcher_.reset();
}

std::size_t MetricStore::shard_index(const MetricId& id) const {
  if (shards_.size() == 1) return 0;
  std::size_t h = std::hash<std::string>{}(id.entity);
  h ^= std::hash<std::string>{}(id.kpi) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  h ^= static_cast<std::size_t>(id.kind) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  return h % shards_.size();
}

void MetricStore::create(const MetricId& id, MinuteTime start) {
  // In cold mode a segment-resident metric has no shard entry; creating it
  // "again" would fork a hot series that shadows flushed history.
  FUNNEL_REQUIRE(!cold_ || !backend_->has_cold(id),
                 "metric already exists: " + id.to_string());
  StoreShard& sh = shard(id);
  const std::unique_lock<std::shared_mutex> lock(sh.data_mutex);
  const auto [it, inserted] = sh.series.emplace(id, TimeSeries(start));
  FUNNEL_REQUIRE(inserted, "metric already exists: " + id.to_string());
  (void)it;
}

bool MetricStore::has(const MetricId& id) const {
  {
    const StoreShard& sh = shard(id);
    const std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
    if (sh.series.contains(id)) return true;
  }
  return cold_ && backend_->has_cold(id);
}

void MetricStore::append(const MetricId& id, MinuteTime t, double value) {
  // Write-ahead: the record is queued for the WAL before the in-memory
  // apply, so any state a crash preserves is replayable from disk.
  if (backend_ != nullptr) backend_->log_sample(id, t, value);
  append_impl(id, t, value);
}

void MetricStore::replay(const persist::WalRecord& record) {
  if (record.type != persist::WalRecordType::kSample) return;
  append_impl(record.metric, record.minute, record.value);
}

void MetricStore::append_impl(const MetricId& id, MinuteTime t, double value) {
  StoreShard& sh = shard(id);
  TimeSeries::Upsert outcome;
  {
    const std::unique_lock<std::shared_mutex> lock(sh.data_mutex);
    auto it = sh.series.find(id);
    if (it == sh.series.end()) {
      it = sh.series.emplace(id, TimeSeries(t)).first;
    }
    outcome = it->second.upsert_at(t, value);
  }
  // A late fill may land below the flush frontier; mark it so the next
  // checkpoint re-flushes from there (the source of overlapping segments).
  if (backend_ != nullptr && outcome == TimeSeries::Upsert::kFilled) {
    backend_->note_dirty(id, t);
  }
  const obs::Registry* stats = stats_.load(std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->add("tsdb.store.appends");
    switch (outcome) {
      case TimeSeries::Upsert::kAppended:
        break;
      case TimeSeries::Upsert::kFilled:
        stats->add("tsdb.store.late_fills");
        break;
      case TimeSeries::Upsert::kDuplicate:
        stats->add("tsdb.store.duplicates_ignored");
        break;
      case TimeSeries::Upsert::kTooOld:
        stats->add("tsdb.store.too_old_dropped");
        break;
    }
  }
  // A too-old sample never landed in the store; notifying subscribers about
  // data they can't read back would break the visibility guarantee below.
  if (outcome == TimeSeries::Upsert::kTooOld) return;
  // The sample is visible in the shard before any notification is queued or
  // delivered, so a callback reading the store always sees its sample.
  if (sub_count_.load(std::memory_order_acquire) == 0) return;
  if (dispatcher_ != nullptr) {
    dispatcher_->submit(Sample{id, t, value, {}});
  } else {
    deliver(Sample{id, t, value, {}});
  }
}

void MetricStore::insert(const MetricId& id, TimeSeries series) {
  FUNNEL_REQUIRE(!cold_ || !backend_->has_cold(id),
                 "metric already exists: " + id.to_string());
  StoreShard& sh = shard(id);
  const std::unique_lock<std::shared_mutex> lock(sh.data_mutex);
  const auto [it, inserted] = sh.series.emplace(id, std::move(series));
  FUNNEL_REQUIRE(inserted, "metric already exists: " + id.to_string());
  (void)it;
  // Inserted history is not WAL-logged (it can be huge); it becomes durable
  // at the next checkpoint, which flushes from the series start because no
  // flush frontier exists for a brand-new metric.
}

const TimeSeries& MetricStore::series(const MetricId& id) const {
  const StoreShard& sh = shard(id);
  const std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
  const auto it = sh.series.find(id);
  if (it == sh.series.end()) {
    throw NotFound("no such metric: " + id.to_string());
  }
  return it->second;
}

std::size_t MetricStore::metric_count() const {
  if (cold_) return metrics().size();
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    const std::shared_lock<std::shared_mutex> lock(sh->data_mutex);
    n += sh->series.size();
  }
  return n;
}

std::vector<MetricId> MetricStore::metrics() const {
  std::vector<MetricId> out;
  for (const auto& sh : shards_) {
    const std::shared_lock<std::shared_mutex> lock(sh->data_mutex);
    for (const auto& [id, s] : sh->series) {
      (void)s;
      out.push_back(id);
    }
  }
  if (cold_) {
    // Segment-resident metrics may have no hot entry yet.
    const std::vector<MetricId> cold = backend_->cold_metrics();
    out.insert(out.end(), cold.begin(), cold.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  // Each shard map is ordered; the concatenation is not. Global order keeps
  // downstream iteration (impact_metrics, report items) shard-count
  // independent.
  if (shards_.size() > 1) std::sort(out.begin(), out.end());
  return out;
}

std::vector<MetricId> MetricStore::metrics_of(EntityKind kind,
                                              const std::string& entity) const {
  if (cold_) {
    std::vector<MetricId> out;
    for (const MetricId& id : metrics()) {
      if (id.kind == kind && id.entity == entity) out.push_back(id);
    }
    return out;
  }
  std::vector<MetricId> out;
  for (const auto& sh : shards_) {
    const std::shared_lock<std::shared_mutex> lock(sh->data_mutex);
    for (const auto& [id, s] : sh->series) {
      (void)s;
      if (id.kind == kind && id.entity == entity) out.push_back(id);
    }
  }
  if (shards_.size() > 1) std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> MetricStore::query(const MetricId& id, MinuteTime t0,
                                       MinuteTime t1) const {
  if (cold_) {
    // Out-of-core window read: only the segment pages holding [t0, t1) plus
    // the hot tail's intersection are touched — no full materialization.
    const auto seg = backend_->cold_bounds(id);
    bool found = false;
    MinuteTime h0 = 0, h1 = 0;
    std::vector<double> hot_win;
    MinuteTime hot_win_start = 0;
    {
      const StoreShard& sh = shard(id);
      const std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
      const auto it = sh.series.find(id);
      if (it != sh.series.end() && !it->second.empty()) {
        found = true;
        h0 = it->second.start_time();
        h1 = it->second.end_time();
        const MinuteTime a = std::max(t0, h0);
        const MinuteTime b = std::min(t1, h1);
        if (a < b) {
          hot_win_start = a;
          hot_win = it->second.slice(a, b);
        }
      }
    }
    if (!seg.has_value() && !found) {
      throw NotFound("no such metric: " + id.to_string());
    }
    MinuteTime lo = seg.has_value() ? seg->first : h0;
    MinuteTime hi = seg.has_value() ? seg->second : h1;
    if (found) {
      lo = std::min(lo, h0);
      hi = std::max(hi, h1);
    }
    FUNNEL_REQUIRE(t0 >= lo && t1 <= hi && t0 <= t1,
                   "TimeSeries::view range not covered");
    std::vector<double> out(static_cast<std::size_t>(t1 - t0),
                            std::numeric_limits<double>::quiet_NaN());
    if (seg.has_value()) backend_->fill_window(id, t0, t1, out);
    for (std::size_t i = 0; i < hot_win.size(); ++i) {
      if (!std::isnan(hot_win[i])) {
        out[static_cast<std::size_t>(hot_win_start - t0) + i] = hot_win[i];
      }
    }
    return out;
  }
  return read(id,
              [&](const TimeSeries& s) { return s.slice(t0, t1); });
}

TimeSeries MetricStore::aggregate(std::span<const MetricId> ids, MinuteTime t0,
                                  MinuteTime t1) const {
  // Copy each covering window under its shard lock, then aggregate the
  // local snapshots — aggregate_mean drops non-covering series anyway, so
  // trimming to [t0, t1) here changes nothing in the result.
  std::vector<TimeSeries> local;
  local.reserve(ids.size());
  for (const MetricId& id : ids) {
    read_if(id, [&](const TimeSeries& s) {
      if (s.covers(t0, t1)) local.emplace_back(t0, s.slice(t0, t1));
    });
  }
  std::vector<const TimeSeries*> ptrs;
  ptrs.reserve(local.size());
  for (const TimeSeries& s : local) ptrs.push_back(&s);
  return aggregate_mean(ptrs, t0, t1);
}

SubscriptionId MetricStore::subscribe(std::vector<MetricId> filter,
                                      Callback cb) {
  FUNNEL_REQUIRE(static_cast<bool>(cb), "subscription needs a callback");
  std::sort(filter.begin(), filter.end());
  filter.erase(std::unique(filter.begin(), filter.end()), filter.end());

  auto sub = std::make_shared<Subscription>();
  sub->filter = std::move(filter);
  sub->callback = std::move(cb);

  // Register on every shard that can own a matching metric, so dispatch
  // scans only the owning shard's list.
  std::vector<std::size_t> targets;
  if (sub->filter.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) targets.push_back(i);
  } else {
    for (const MetricId& id : sub->filter) {
      targets.push_back(shard_index(id));
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  }
  for (const std::size_t i : targets) {
    const std::lock_guard<std::mutex> lock(shards_[i]->subs_mutex);
    shards_[i]->subs.push_back(sub);
  }

  SubscriptionId id = 0;
  {
    const std::lock_guard<std::mutex> lock(sub_index_mutex_);
    id = next_sub_++;
    sub_index_.emplace(id, std::move(sub));
  }
  sub_count_.fetch_add(1, std::memory_order_release);
  return id;
}

void MetricStore::unsubscribe(SubscriptionId id) {
  std::shared_ptr<Subscription> sub;
  {
    const std::lock_guard<std::mutex> lock(sub_index_mutex_);
    const auto it = sub_index_.find(id);
    if (it == sub_index_.end()) return;
    sub = std::move(it->second);
    sub_index_.erase(it);
  }
  sub->active.store(false, std::memory_order_release);
  for (const auto& sh : shards_) {
    const std::lock_guard<std::mutex> lock(sh->subs_mutex);
    std::erase(sh->subs, sub);
  }
  sub_count_.fetch_sub(1, std::memory_order_release);
  // A delivery snapshot taken before the removal may still hold this
  // subscription; wait out the in-flight callback so that after return the
  // callback is guaranteed dead (FunnelOnline's destructor relies on this).
  if (dispatcher_ != nullptr) dispatcher_->await_inflight();
}

void MetricStore::flush() {
  if (dispatcher_ != nullptr) dispatcher_->flush();
}

void MetricStore::set_stats(const obs::Registry* stats) {
  stats_.store(stats, std::memory_order_relaxed);
  if (dispatcher_ != nullptr) dispatcher_->set_stats(stats);
  if (backend_ != nullptr) backend_->set_stats(stats);
}

// ---------------------------------------------------------------------------
// Persistence.

const std::vector<persist::WalRecord>& MetricStore::recovered_tail() const {
  static const std::vector<persist::WalRecord> kEmpty;
  return backend_ != nullptr ? backend_->recovered_tail() : kEmpty;
}

std::uint64_t MetricStore::recovered_seq() const {
  if (backend_ == nullptr) return 0;
  std::uint64_t seq = backend_->checkpoint_seq();
  if (!backend_->recovered_tail().empty()) {
    seq = std::max(seq, backend_->recovered_tail().back().seq);
  }
  return seq;
}

const std::string& MetricStore::recovered_watch_state() const {
  static const std::string kEmpty;
  return backend_ != nullptr ? backend_->recovered_watch_state() : kEmpty;
}

std::uint64_t MetricStore::recovered_journal_events() const {
  return backend_ != nullptr ? backend_->recovered_journal_events() : 0;
}

std::uint64_t MetricStore::recovered_wal_skipped_bytes() const {
  return backend_ != nullptr ? backend_->recovered_wal_skipped_bytes() : 0;
}

std::uint64_t MetricStore::log_watch_marker(std::uint64_t change_id) {
  return backend_ != nullptr ? backend_->log_watch(change_id) : 0;
}

void MetricStore::wal_flush() {
  if (backend_ != nullptr) backend_->flush_wal();
}

void MetricStore::checkpoint(std::string watch_state,
                             std::uint64_t journal_events) {
  if (backend_ == nullptr) return;
  // Cut every series at its flush frontier (lowered by dirty marks) and
  // sparsify: finite samples only, the [lo, hi) range carries the gaps.
  std::vector<persist::SegmentColumn> columns;
  for (const auto& sh : shards_) {
    const std::shared_lock<std::shared_mutex> lock(sh->data_mutex);
    for (const auto& [id, s] : sh->series) {
      const MinuteTime lo = backend_->flush_cut(id, s.start_time());
      const MinuteTime hi = s.end_time();
      if (lo >= hi) continue;
      persist::SegmentColumn col;
      col.metric = id;
      col.lo = lo;
      col.hi = hi;
      const std::span<const double> values = s.values();
      for (MinuteTime t = lo; t < hi; ++t) {
        const double v = values[static_cast<std::size_t>(t - s.start_time())];
        if (!std::isnan(v)) {
          col.minutes.push_back(t);
          col.values.push_back(v);
        }
      }
      columns.push_back(std::move(col));
    }
  }
  // Shard concatenation is not globally ordered; the segment footer (and
  // its binary search) requires metric order.
  std::sort(columns.begin(), columns.end(),
            [](const persist::SegmentColumn& a,
               const persist::SegmentColumn& b) { return a.metric < b.metric; });
  backend_->commit_checkpoint(std::move(columns), std::move(watch_state),
                              journal_events);
}

void MetricStore::crash_for_testing() {
  if (backend_ != nullptr) backend_->crash_for_testing();
}

std::uint64_t MetricStore::wal_records_written() const {
  return backend_ != nullptr ? backend_->wal_records_written() : 0;
}

std::uint64_t MetricStore::wal_bytes_written() const {
  return backend_ != nullptr ? backend_->wal_bytes_written() : 0;
}

std::size_t MetricStore::segment_count() const {
  return backend_ != nullptr ? backend_->segment_count() : 0;
}

std::uint64_t MetricStore::compactions() const {
  return backend_ != nullptr ? backend_->compactions() : 0;
}

bool MetricStore::materialize_cold(const MetricId& id, TimeSeries& out) const {
  TimeSeries hot;
  bool found = false;
  {
    const StoreShard& sh = shard(id);
    const std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
    const auto it = sh.series.find(id);
    if (it != sh.series.end()) {
      found = true;
      hot = it->second;  // copy; the stitch runs without the lock
    }
  }
  TimeSeries stitched =
      backend_->materialize(id, found && !hot.empty() ? &hot : nullptr);
  if (found) {
    // A created-but-empty hot series keeps its start_time semantics.
    out = stitched.empty() ? std::move(hot) : std::move(stitched);
    return true;
  }
  if (stitched.empty()) return false;
  out = std::move(stitched);
  return true;
}

void MetricStore::deliver(const Sample& s) const {
  const StoreShard& sh = shard(s.id);
  std::vector<std::shared_ptr<Subscription>> hit;
  {
    const std::lock_guard<std::mutex> lock(sh.subs_mutex);
    for (const auto& sub : sh.subs) {
      if (!sub->active.load(std::memory_order_acquire)) continue;
      if (sub->filter.empty() ||
          std::binary_search(sub->filter.begin(), sub->filter.end(), s.id)) {
        hit.push_back(sub);
      }
    }
  }
  if (hit.empty()) return;
  const obs::Registry* stats = stats_.load(std::memory_order_relaxed);
  // Time the dispatch as one span per sample: synchronously this is the
  // latency a producing agent pays for slow consumers; on the dispatcher
  // thread it is the per-sample consumer cost the queue absorbs.
  const obs::ScopedTimer dispatch(stats, "tsdb.store.dispatch_us");
  std::uint64_t notified = 0;
  for (const auto& sub : hit) {
    if (!sub->active.load(std::memory_order_acquire)) continue;
    sub->callback(s.id, s.t, s.value);
    ++notified;
  }
  if (stats != nullptr && notified > 0) {
    stats->add("tsdb.store.notifications", notified);
  }
}

}  // namespace funnel::tsdb
