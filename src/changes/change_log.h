// Deployment change log.
//
// The substitute for the production change-management system: FUNNEL reads
// the set of tservers of a change directly from this log (§3.1) and the
// scenario builders record every injected change here.
#pragma once

#include <optional>
#include <vector>

#include "changes/change.h"
#include "topology/topology.h"

namespace funnel::changes {

class ChangeLog {
 public:
  /// Record a change, validating it against the topology: the service must
  /// exist, every listed server must belong to it, and the server list must
  /// be non-empty. The launch mode must be consistent: kFull means the list
  /// covers every server of the service. Assigns and returns the id.
  ChangeId record(SoftwareChange change,
                  const topology::ServiceTopology& topo);

  const SoftwareChange& get(ChangeId id) const;

  const std::vector<SoftwareChange>& all() const { return changes_; }
  std::size_t size() const { return changes_.size(); }

  /// Changes on one service, time-ordered.
  std::vector<ChangeId> for_service(const std::string& service) const;

  /// Changes whose deployment minute lies in [t0, t1).
  std::vector<ChangeId> in_window(MinuteTime t0, MinuteTime t1) const;

  /// Most recent change on `service` strictly before minute `t`.
  std::optional<ChangeId> last_before(const std::string& service,
                                      MinuteTime t) const;

 private:
  std::vector<SoftwareChange> changes_;  // index == id
};

}  // namespace funnel::changes
