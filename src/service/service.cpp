#include "service/service.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "service/json.h"

namespace funnel::service {
namespace {

obs::HttpResponse json_response(int status, std::string body) {
  obs::HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

obs::HttpResponse error_response(int status, std::string_view error,
                                 std::string_view detail = {}) {
  std::ostringstream body;
  body << "{\"error\":\"" << json_escape(error) << "\"";
  if (!detail.empty()) body << ",\"detail\":\"" << json_escape(detail) << "\"";
  body << "}";
  return json_response(status, body.str());
}

/// Retry-After is an integral number of seconds; round up so the client
/// never retries early.
std::string retry_after_header(double seconds) {
  const double ceiled = std::ceil(seconds);
  const long long s = ceiled < 1.0 ? 1 : static_cast<long long>(ceiled);
  return std::to_string(s);
}

/// "/v1/ingest/acme" with prefix "/v1/ingest/" -> "acme".
std::string tail_of(const std::string& path, std::string_view prefix) {
  return path.size() > prefix.size() ? path.substr(prefix.size())
                                     : std::string();
}

bool parse_query_minute(const std::string& query, std::string_view key,
                        MinuteTime* out) {
  std::size_t start = 0;
  while (start <= query.size()) {
    const std::size_t end = query.find('&', start);
    const std::string_view pair =
        end == std::string::npos
            ? std::string_view(query).substr(start)
            : std::string_view(query).substr(start, end - start);
    start = end == std::string::npos ? query.size() + 1 : end + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || pair.substr(0, eq) != key) continue;
    const std::string_view value = pair.substr(eq + 1);
    MinuteTime parsed = 0;
    bool negative = false;
    std::size_t i = 0;
    if (!value.empty() && value[0] == '-') {
      negative = true;
      i = 1;
    }
    if (i >= value.size()) return false;
    for (; i < value.size(); ++i) {
      if (value[i] < '0' || value[i] > '9') return false;
      parsed = parsed * 10 + (value[i] - '0');
    }
    *out = negative ? -parsed : parsed;
    return true;
  }
  return false;
}

}  // namespace

FunnelService::FunnelService(ServiceOptions options)
    : options_(std::move(options)),
      plane_(options_.stats, options_.plane),
      epoch_(std::chrono::steady_clock::now()) {
  const auto route = [this](const obs::HttpRequest& req) {
    return dispatch(req);
  };
  plane_.handle_prefix("/v1/ingest/", route, /*post=*/true);
  plane_.handle_prefix("/v1/changes/", route, /*post=*/true);
  plane_.handle_prefix("/v1/checkpoint/", route, /*post=*/true);
  plane_.handle_prefix("/v1/maintenance/", route, /*post=*/true);
  plane_.handle_prefix("/v1/quarantine/", route, /*post=*/true);
  plane_.handle_prefix("/v1/report/", route);
  plane_.handle_prefix("/v1/status/", route);
  plane_.handle_prefix("/v1/seq/", route);
  plane_.handle("/v1/tenants", route);
  plane_.add_health([this] {
    std::vector<obs::HealthCheck> checks;
    std::lock_guard<std::mutex> guard(tenants_mutex_);
    checks.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) {
      obs::HealthCheck check;
      check.name = "tenant:" + name;
      check.ok = !tenant->quarantined();
      check.detail = tenant->quarantined() ? tenant->quarantine_reason()
                                           : "serving";
      checks.push_back(std::move(check));
    }
    return checks;
  });
}

FunnelService::~FunnelService() { stop(); }

TenantOptions FunnelService::options_for(const std::string& name) const {
  TenantOptions topts = options_.tenant_defaults;
  topts.name = name;
  if (!options_.data_root.empty()) {
    topts.data_dir = options_.data_root + "/" + name;
  }
  return topts;
}

Tenant& FunnelService::add_tenant(const std::string& name) {
  return add_tenant(options_for(name));
}

Tenant& FunnelService::add_tenant(TenantOptions topts) {
  if (topts.name.empty() || topts.name.find('/') != std::string::npos) {
    throw InvalidArgument("tenant name must be non-empty and slash-free: '" +
                          topts.name + "'");
  }
  // Construct (and possibly crash-recover) outside the registry lock so a
  // slow recovery never blocks lookups for serving tenants.
  auto tenant = std::make_unique<Tenant>(std::move(topts), options_.stats);
  std::lock_guard<std::mutex> guard(tenants_mutex_);
  auto [it, inserted] =
      tenants_.emplace(tenant->name(), std::move(tenant));
  if (!inserted) {
    throw InvalidArgument("duplicate tenant: " + it->first);
  }
  return *it->second;
}

Tenant* FunnelService::find_tenant(const std::string& name) {
  std::lock_guard<std::mutex> guard(tenants_mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

Tenant* FunnelService::resolve(const std::string& name,
                               bool create_if_dynamic) {
  if (Tenant* t = find_tenant(name)) return t;
  if (!create_if_dynamic || !options_.allow_dynamic_tenants || name.empty() ||
      name.find('/') != std::string::npos) {
    return nullptr;
  }
  try {
    return &add_tenant(name);
  } catch (const InvalidArgument&) {
    return find_tenant(name);  // lost a creation race: use the winner
  }
}

bool FunnelService::start(std::string* error) {
  if (plane_.start()) {
    plane_.set_ready(true);
    return true;
  }
  if (error != nullptr) *error = plane_.error();
  return false;
}

void FunnelService::stop() { plane_.stop(); }

void FunnelService::checkpoint_all() {
  std::vector<Tenant*> all;
  {
    std::lock_guard<std::mutex> guard(tenants_mutex_);
    all.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) all.push_back(tenant.get());
  }
  for (Tenant* tenant : all) {
    std::lock_guard<std::mutex> guard(tenant->mutex());
    try {
      tenant->checkpoint();
    } catch (const tsdb::persist::StorageError&) {
      // Shutdown best-effort: a failing disk must not abort the sweep.
    }
  }
}

void FunnelService::reload_quotas(const QuotaConfig& quota) {
  std::vector<Tenant*> all;
  {
    std::lock_guard<std::mutex> guard(tenants_mutex_);
    all.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) all.push_back(tenant.get());
  }
  for (Tenant* tenant : all) {
    std::lock_guard<std::mutex> guard(tenant->mutex());
    tenant->update_quota(quota);
  }
}

int FunnelService::port() const { return plane_.port(); }

std::size_t FunnelService::tenant_count() {
  std::lock_guard<std::mutex> guard(tenants_mutex_);
  return tenants_.size();
}

double FunnelService::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

obs::HttpResponse FunnelService::dispatch(const obs::HttpRequest& req) {
  // /v1/tenants: registry-wide status, no tenant resolution.
  if (req.path == "/v1/tenants") {
    std::vector<Tenant*> all;
    {
      std::lock_guard<std::mutex> guard(tenants_mutex_);
      all.reserve(tenants_.size());
      for (const auto& [name, tenant] : tenants_) all.push_back(tenant.get());
    }
    std::ostringstream body;
    body << "[";
    bool first = true;
    for (Tenant* tenant : all) {
      if (!first) body << ',';
      first = false;
      body << "{\"tenant\":\"" << json_escape(tenant->name())
           << "\",\"quarantined\":"
           << (tenant->quarantined() ? "true" : "false") << "}";
    }
    body << "]";
    return json_response(200, body.str());
  }

  static constexpr std::string_view kPrefixes[] = {
      "/v1/ingest/",     "/v1/changes/",     "/v1/report/",
      "/v1/status/",     "/v1/seq/",         "/v1/checkpoint/",
      "/v1/maintenance/", "/v1/quarantine/",
  };
  std::string_view verb;
  std::string name;
  for (const std::string_view prefix : kPrefixes) {
    if (req.path.rfind(prefix, 0) == 0) {
      verb = prefix.substr(4, prefix.size() - 5);  // "/v1/X/" -> "X"
      name = tail_of(req.path, prefix);
      break;
    }
  }
  if (verb.empty() || name.empty()) {
    return error_response(404, "not-found", req.path);
  }

  const bool is_post = req.method == "POST";
  Tenant* tenant = resolve(name, /*create_if_dynamic=*/is_post &&
                                     (verb == "ingest" || verb == "changes"));
  if (tenant == nullptr) {
    return error_response(404, "unknown-tenant", name);
  }

  // Reads of immutable-per-tenant flags (quarantine is sticky) are safe
  // pre-lock and let quarantined tenants answer without contending.
  if ((verb == "ingest" || verb == "changes") && tenant->quarantined()) {
    return error_response(503, "quarantined", tenant->quarantine_reason());
  }

  std::unique_lock<std::mutex> lock(tenant->mutex(), std::try_to_lock);
  if (!lock.owns_lock()) {
    tenant->count_busy_rejection();
    obs::HttpResponse resp =
        error_response(429, "busy", "tenant mutex contended");
    resp.headers.emplace_back("Retry-After", "1");
    return resp;
  }

  if (verb == "ingest") {
    if (tenant->quarantined()) {
      return error_response(503, "quarantined", tenant->quarantine_reason());
    }
    const std::size_t lines =
        static_cast<std::size_t>(
            std::count(req.body.begin(), req.body.end(), '\n')) +
        (!req.body.empty() && req.body.back() != '\n' ? 1 : 0);
    double retry_after = 1.0;
    if (!tenant->admit(lines, now_s(), &retry_after)) {
      tenant->count_quota_rejection();
      obs::HttpResponse resp = error_response(429, "over-quota");
      resp.headers.emplace_back("Retry-After", retry_after_header(retry_after));
      return resp;
    }
    const IngestResult res = tenant->ingest(req.body);
    std::ostringstream body;
    body << "{\"accepted\":" << res.accepted
         << ",\"malformed\":" << res.malformed
         << ",\"quarantined\":" << (res.quarantined ? "true" : "false")
         << ",\"applied_seq\":" << tenant->applied_seq() << "}";
    return json_response(res.quarantined ? 503 : 200, body.str());
  }
  if (verb == "changes") {
    if (tenant->quarantined()) {
      return error_response(503, "quarantined", tenant->quarantine_reason());
    }
    std::size_t malformed = 0;
    const std::vector<changes::ChangeId> ids =
        tenant->register_changes(req.body, &malformed);
    std::ostringstream body;
    body << "{\"registered\":[";
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) body << ',';
      body << ids[i];
    }
    body << "],\"malformed\":" << malformed
         << ",\"applied_seq\":" << tenant->applied_seq() << "}";
    return json_response(200, body.str());
  }
  if (verb == "report") {
    return json_response(200, tenant->report_json());
  }
  if (verb == "status") {
    return json_response(200, tenant->status_json());
  }
  if (verb == "seq") {
    std::ostringstream body;
    body << "{\"recovered_seq\":" << tenant->recovered_seq()
         << ",\"applied_seq\":" << tenant->applied_seq()
         << ",\"quarantined\":" << (tenant->quarantined() ? "true" : "false")
         << "}";
    return json_response(200, body.str());
  }
  if (verb == "checkpoint") {
    try {
      tenant->checkpoint();
    } catch (const tsdb::persist::StorageError& e) {
      return error_response(503, "checkpoint-failed", e.what());
    }
    return json_response(200, "{\"checkpointed\":true}");
  }
  if (verb == "maintenance") {
    MinuteTime now = 0;
    if (!parse_query_minute(req.query, "now", &now)) {
      return error_response(400, "bad-request", "missing ?now=<minute>");
    }
    const std::size_t expired = tenant->maintenance(now);
    std::ostringstream body;
    body << "{\"expired\":" << expired << "}";
    return json_response(200, body.str());
  }
  if (verb == "quarantine") {
    std::string reason = req.body.empty() ? "operator-request" : req.body;
    while (!reason.empty() &&
           (reason.back() == '\n' || reason.back() == '\r')) {
      reason.pop_back();
    }
    tenant->quarantine(std::move(reason));
    return json_response(200, "{\"quarantined\":true}");
  }
  return error_response(404, "not-found", req.path);
}

}  // namespace funnel::service
