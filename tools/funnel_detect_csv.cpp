// funnel_detect_csv — run a FUNNEL change detector on CSV time series.
//
// Usage:
//   funnel_detect_csv <series.csv> [more.csv ...]
//                     [--method ika|improved|classic|cusum|mrls]
//                     [--threshold X] [--persistence N] [--patience N]
//                     [--omega N] [--scores] [--threads N]
//                     [--sst-fast] [--no-cascade]
//                     [--change-minute T] [--shards N] [--ingest-queue N]
//                     [--data-dir DIR]
//                     [--stats] [--stats-json FILE] [--trace FILE]
//                     [--journal FILE]
//                     [--http-port P|auto] [--port-file FILE] [--selfmon]
//                     [--selfmon-tick-ms N] [--serve] [--serve-seconds S]
//
// --sst-fast (--method ika only) switches the scorer to the SST hot path:
// warm-started past subspace with deterministic cold restarts, plus the
// pre-filter cascade (variance + raw-CUSUM gates) in front of the full
// score. --no-cascade keeps the fast scorer but disables the gates. Scores
// are approximations of the exact path (fidelity ≥ 0.92 correlation,
// guarded by ctest); omit both flags for the original bit-exact behavior.
//
// Input: `minute,value` rows (one sample per minute; empty value = gap).
// Output: alarm episodes (minute, peak score) on stdout; with --scores the
// full per-window score series is printed instead (gnuplot-ready).
//
// With --change-minute T each CSV is treated as the KPI of a service that
// deployed a software change at minute T: history before T primes the
// online assessor, the rest is streamed sample-by-sample through the full
// FUNNEL pipeline (IKA-SST detection, persistence rule, causality
// determination), and the verdict — including the confirming minute and
// time-to-verdict — is printed. This exercises every pipeline stage, so the
// telemetry dump below covers detection, DiD, the store and the online
// assessor. The store behind that pipeline is hash-sharded (--shards,
// default 4) and pushes samples through the async ingest queue
// (--ingest-queue capacity, default 1024; 0 = legacy synchronous dispatch);
// output is byte-identical for every combination — the run ends with a
// flush() barrier (see docs/CONCURRENCY.md).
//
// --data-dir DIR (pipeline mode, single CSV) backs the store with the
// persistent segment store (docs/STORAGE.md): every streamed sample is
// write-ahead-logged into DIR, and the run ends with a checkpoint that
// freezes the history into an mmap'd columnar segment plus the watch
// snapshot and journal event count. If DIR already holds the metric (a
// previous run, or funnel_generate --data-dir), the CSV history is not
// re-inserted — the recovered store provides it. A fresh DIR produces
// output byte-identical to the in-memory pipeline; a re-run over a store
// that already holds the post-change tail instead primes the watch through
// the stored data, so the verdict lands at the horizon (the assessor saw
// everything at watch time) rather than mid-stream. An unopenable or
// corrupt-beyond-the-WAL directory exits 3, like the other output files;
// a torn WAL tail is NOT corruption (recovery truncates it silently).
//
// --stats prints the run's self-telemetry (Prometheus text) to stderr;
// --stats-json FILE writes the JSON snapshot. --trace FILE enables decision
// tracing (obs/trace.h) and writes the run's span tree as Chrome
// trace-event JSON — load it in chrome://tracing or ui.perfetto.dev to see
// each assessment's SST/DiD provenance laid out across threads. Per-CSV
// wall clock always goes to stderr, as do "# wrote ..." notices naming the
// emitted files. --journal FILE appends every determination of the
// --change-minute pipeline as one JSONL verdict event (obs/journal.h) for
// the triage layer — pipe the file into `funnel_triage` for scorecards,
// blame ranking and mined rules (docs/TRIAGE.md); the event count is noted
// on stderr. Stats, traces and the journal are side channels: stdout is
// byte-identical with them on or off, and for every --threads value.
//
// --http-port P starts the live telemetry plane (obs/plane.h) on
// 127.0.0.1:P for the duration of the run: GET /metrics, /stats.json,
// /healthz, /readyz, /statusz, /tracez. P = `auto` binds an ephemeral port
// (announced on stderr; --port-file FILE writes the bound port for test
// harnesses). 0 — the default — keeps the plane off; output is
// byte-identical either way. --selfmon additionally starts the
// self-surveillance loop (obs/selfmon.h): the pipeline's own KPIs are
// sampled every --selfmon-tick-ms (default 1000) under the reserved
// `__funnel_self/` topology and watched by the online detectors; pipeline
// degradation flips /healthz and — with --journal — appends
// "pipeline-degradation" verdict events. --serve holds the process open
// after the CSV work finishes so the endpoints stay scrapeable: until
// SIGINT/SIGTERM, or at most --serve-seconds S. --serve requires a
// listening plane (--http-port) and is incompatible with the one-shot
// --scores dump. SIGHUP is a documented no-op while serving (ignored, the
// process keeps serving): this tool has no reloadable config — the
// multi-tenant daemon (tools/funnel_serve) is the one that reloads quotas
// on SIGHUP.
//
// Exit codes: 0 success; 1 a file failed to load/parse/assess; 2 bad
// usage; 3 an output file (--stats-json/--trace/--journal) could not be
// opened, the --data-dir store could not be opened/recovered, or the
// telemetry plane could not bind its port (already in use).
//
// Several CSV files are scored concurrently on a thread pool (--threads 0 =
// one per hardware thread, 1 = serial); output is buffered per file and
// printed in argument order. A CSV that fails to load or parse is reported
// on stderr and makes the exit status non-zero; the remaining files are
// still processed.
//
// This is the "bring your own KPI" entry point: export any metric from your
// monitoring system and see what FUNNEL's detector family thinks of it.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "changes/change_log.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "detect/cascade.h"
#include "detect/classic_sst.h"
#include "detect/cusum.h"
#include "detect/ika_sst.h"
#include "detect/improved_sst.h"
#include "detect/mrls.h"
#include "detect/sliding.h"
#include "funnel/online.h"
#include "funnel/report.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/plane.h"
#include "obs/registry.h"
#include "obs/selfmon.h"
#include "obs/trace.h"
#include "topology/topology.h"
#include "tsdb/io.h"
#include "tsdb/persist/format.h"

using namespace funnel;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <series.csv> [more.csv ...]\n"
      "          [--method ika|improved|classic|cusum|mrls]\n"
      "          [--threshold X] [--persistence N] [--patience N]\n"
      "          [--omega N] [--scores] [--threads N]\n"
      "          [--sst-fast] [--no-cascade]\n"
      "          [--change-minute T] [--shards N] [--ingest-queue N]\n"
      "          [--data-dir DIR]\n"
      "          [--stats] [--stats-json FILE] [--trace FILE]\n"
      "          [--journal FILE]\n"
      "          [--http-port P|auto] [--port-file FILE] [--selfmon]\n"
      "          [--selfmon-tick-ms N] [--serve] [--serve-seconds S]\n",
      argv0);
}

struct Options {
  std::vector<std::string> paths;
  std::string method = "ika";
  double threshold = 0.35;
  bool threshold_set = false;
  std::size_t persistence = 7;
  std::size_t patience = 10;
  std::size_t omega = 9;
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool print_scores = false;
  bool sst_fast = false;    // warm-past IKA + cascade (ika only)
  bool no_cascade = false;  // keep the fast scorer, drop the gates
  MinuteTime change_minute = -1;  // >= 0 switches to the pipeline mode
  std::size_t shards = 4;         // store hash-shard count (pipeline mode)
  std::size_t ingest_queue = 1024;  // async ingest capacity; 0 = sync
  std::string data_dir;  // non-empty makes the pipeline store persistent
  bool print_stats = false;
  std::string stats_json_path;
  std::string trace_path;    // non-empty enables tracing
  std::string journal_path;  // non-empty enables the verdict journal
  int http_port = 0;         // 0 = plane off; -1 = ephemeral (--http-port auto)
  std::string port_file;     // write the bound port here (harness handshake)
  bool selfmon = false;      // start the self-surveillance loop
  std::size_t selfmon_tick_ms = 1000;
  bool serve = false;        // hold the process open, keep serving
  std::size_t serve_seconds = 0;  // 0 = until SIGINT/SIGTERM
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double* d, std::size_t* z) {
      if (++i >= argc) return false;
      if (d != nullptr) *d = std::atof(argv[i]);
      if (z != nullptr) *z = static_cast<std::size_t>(std::atoll(argv[i]));
      return true;
    };
    if (a == "--method") {
      if (++i >= argc) return false;
      opt.method = argv[i];
    } else if (a == "--threshold") {
      if (!next(&opt.threshold, nullptr)) return false;
      opt.threshold_set = true;
    } else if (a == "--persistence") {
      if (!next(nullptr, &opt.persistence)) return false;
    } else if (a == "--patience") {
      if (!next(nullptr, &opt.patience)) return false;
    } else if (a == "--omega") {
      if (!next(nullptr, &opt.omega)) return false;
    } else if (a == "--threads") {
      if (!next(nullptr, &opt.threads)) return false;
    } else if (a == "--change-minute") {
      if (++i >= argc) return false;
      opt.change_minute = std::atoll(argv[i]);
      if (opt.change_minute < 0) return false;
    } else if (a == "--shards") {
      if (!next(nullptr, &opt.shards)) return false;
      if (opt.shards == 0) return false;
    } else if (a == "--ingest-queue") {
      if (!next(nullptr, &opt.ingest_queue)) return false;
    } else if (a == "--data-dir") {
      if (++i >= argc) return false;
      opt.data_dir = argv[i];
    } else if (a == "--stats") {
      opt.print_stats = true;
    } else if (a == "--stats-json") {
      if (++i >= argc) return false;
      opt.stats_json_path = argv[i];
    } else if (a == "--trace") {
      if (++i >= argc) return false;
      opt.trace_path = argv[i];
    } else if (a == "--journal") {
      if (++i >= argc) return false;
      opt.journal_path = argv[i];
    } else if (a == "--http-port") {
      if (++i >= argc) return false;
      if (std::strcmp(argv[i], "auto") == 0) {
        opt.http_port = -1;
      } else {
        opt.http_port = std::atoi(argv[i]);
        if (opt.http_port < 0 || opt.http_port > 65535) return false;
      }
    } else if (a == "--port-file") {
      if (++i >= argc) return false;
      opt.port_file = argv[i];
    } else if (a == "--selfmon") {
      opt.selfmon = true;
    } else if (a == "--selfmon-tick-ms") {
      if (!next(nullptr, &opt.selfmon_tick_ms)) return false;
      if (opt.selfmon_tick_ms == 0) return false;
    } else if (a == "--serve") {
      opt.serve = true;
    } else if (a == "--serve-seconds") {
      if (!next(nullptr, &opt.serve_seconds)) return false;
    } else if (a == "--sst-fast") {
      opt.sst_fast = true;
    } else if (a == "--no-cascade") {
      opt.no_cascade = true;
    } else if (a == "--scores") {
      opt.print_scores = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    } else {
      opt.paths.push_back(a);
    }
  }
  return !opt.paths.empty();
}

std::unique_ptr<detect::ChangeScorer> make_scorer(const Options& opt,
                                                  double* default_thr) {
  const detect::SstGeometry g{.omega = opt.omega, .eta = 3};
  if (opt.method == "ika") {
    *default_thr = 0.35;
    detect::IkaParams p;
    p.warm_past = opt.sst_fast;
    return std::make_unique<detect::IkaSst>(g, p);
  }
  if (opt.method == "improved") {
    *default_thr = 0.4;
    return std::make_unique<detect::ImprovedSst>(g);
  }
  if (opt.method == "classic") {
    *default_thr = 0.95;
    return std::make_unique<detect::ClassicSst>(g);
  }
  if (opt.method == "cusum") {
    *default_thr = 70.0;
    return std::make_unique<detect::Cusum>(detect::CusumParams{});
  }
  if (opt.method == "mrls") {
    *default_thr = 7.0;
    return std::make_unique<detect::Mrls>(detect::MrlsParams{});
  }
  return nullptr;
}

struct FileResult {
  int code = 0;
  std::string out;  ///< stdout payload, printed in argument order
  std::string err;  ///< stderr payload
};

// Score one file with a scorer of its own (the SST scorers are stateful —
// warm starts must never cross files). All output is buffered so the
// parallel path can preserve argument order exactly.
FileResult score_file(const std::string& path, const Options& opt) {
  FileResult res;
  std::ostringstream out;
  const tsdb::TimeSeries series = tsdb::load_series_csv(path);
  if (series.empty()) {
    res.err = "no samples in " + path + "\n";
    res.code = 1;
    return res;
  }
  double default_thr = 0.35;
  const auto scorer = make_scorer(opt, &default_thr);
  const double threshold = opt.threshold_set ? opt.threshold : default_thr;

  std::vector<double> scores;
  if (opt.sst_fast && !opt.no_cascade) {
    // Gate windows against the live threshold before the full score runs.
    auto* ika = dynamic_cast<detect::IkaSst*>(scorer.get());
    detect::CascadeConfig cc;
    cc.sst_threshold = threshold;
    scores =
        detect::cascade_score_series(*ika, series.values(), cc, nullptr,
                                     nullptr);
  } else {
    scores = detect::score_series(*scorer, series.values());
  }
  if (scores.empty()) {
    res.err = "series too short: " + std::to_string(series.size()) +
              " samples < window " +
              std::to_string(scorer->window_size()) + "\n";
    res.code = 1;
    return res;
  }

  if (opt.print_scores) {
    char line[128];
    std::snprintf(line, sizeof(line), "# minute score  (method=%s window=%zu)\n",
                  scorer->name(), scorer->window_size());
    out << line;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      std::snprintf(line, sizeof(line), "%lld %.6f\n",
                    static_cast<long long>(series.start_time()) +
                        static_cast<long long>(i + scorer->window_size() - 1),
                    scores[i]);
      out << line;
    }
    res.out = out.str();
    return res;
  }

  const detect::AlarmPolicy policy{
      .threshold = threshold,
      .persistence = opt.persistence,
      .patience = std::max(opt.patience, opt.persistence)};
  const auto alarms = detect::all_alarms(
      scores, scorer->window_size(), series.start_time(), policy);
  const auto episodes = detect::alarm_episodes(alarms, 30);
  char line[160];
  std::snprintf(line, sizeof(line),
                "# %zu samples, method=%s, threshold=%.3f, "
                "persistence=%zu/%zu\n",
                series.size(), scorer->name(), threshold, opt.persistence,
                std::max(opt.patience, opt.persistence));
  out << line;
  if (episodes.empty()) {
    out << "no behavior changes detected\n";
  } else {
    for (const auto& e : episodes) {
      std::snprintf(line, sizeof(line),
                    "change episode at minute %lld (peak score %.3f)\n",
                    static_cast<long long>(e.minute), e.peak_score);
      out << line;
    }
  }
  res.out = out.str();
  return res;
}

// --change-minute mode: treat the CSV as the KPI of a one-service world
// whose change deployed at minute T, and stream it through the full online
// assessor. History before T primes the detector; the remainder arrives
// sample-by-sample exactly like the production push feed.
FileResult assess_file(const std::string& path, const Options& opt,
                       const obs::Registry* stats, const obs::Tracer* tracer,
                       const obs::Journal* journal) {
  FileResult res;
  std::ostringstream out;
  const tsdb::TimeSeries series = tsdb::load_series_csv(path);
  const MinuteTime tc = opt.change_minute;
  if (series.empty()) {
    res.err = "no samples in " + path + "\n";
    res.code = 1;
    return res;
  }
  if (tc <= series.start_time() || tc + 2 > series.end_time()) {
    res.err = "change minute " + std::to_string(tc) +
              " needs history before it and at least 2 post-change samples "
              "(series covers [" + std::to_string(series.start_time()) +
              ", " + std::to_string(series.end_time()) + "))\n";
    res.code = 1;
    return res;
  }

  topology::ServiceTopology topo;
  topo.add_server("csv", "host");
  changes::ChangeLog log;
  changes::SoftwareChange ch;
  ch.service = "csv";
  ch.servers = {"host"};
  ch.time = tc;
  ch.mode = changes::LaunchMode::kFull;
  ch.description = path;
  const changes::ChangeId cid = log.record(ch, topo);

  // Sharded store with (by default) async subscriber dispatch: appends below
  // hand samples to the ingest queue, the dispatcher thread drives the
  // online assessor, and flush() below is the barrier that makes the output
  // byte-identical to the synchronous path.
  tsdb::MetricStore store(tsdb::StoreOptions{
      .num_shards = opt.shards,
      .ingest_queue_capacity = opt.ingest_queue,
      .backpressure = tsdb::Backpressure::kBlock,
      .data_dir = opt.data_dir});
  store.set_stats(stats);
  const tsdb::MetricId metric = tsdb::server_metric("host", "kpi");
  // A recovered --data-dir store already holds the metric (seeded by a
  // previous run or funnel_generate --data-dir); the CSV history is only
  // inserted into a store that has never seen it.
  if (!store.has(metric)) {
    tsdb::TimeSeries history(series.start_time());
    for (MinuteTime t = series.start_time(); t < tc; ++t) {
      history.append(series.at(t));
    }
    store.insert(metric, std::move(history));
  }

  core::FunnelConfig cfg;
  cfg.geometry.omega = opt.omega;
  if (opt.threshold_set) cfg.alarm.threshold = opt.threshold;
  cfg.alarm.persistence = opt.persistence;
  cfg.alarm.patience = std::max(opt.patience, opt.persistence);
  // A hand-exported CSV rarely carries the 30-day baseline; with less
  // history the seasonality exclusion degrades conservatively (dubious
  // changes are still delivered, §2.2). Require at least 2 clean baseline
  // days, though: a verdict resting on a single day's window is reported as
  // inconclusive rather than trusted (docs/ROBUSTNESS.md).
  cfg.baseline_days = 3;
  cfg.quality.historical_quorum = 2;
  cfg.horizon = std::min<MinuteTime>(cfg.horizon, series.end_time() - tc - 1);
  cfg.num_shards = opt.shards;
  cfg.ingest_queue_capacity = opt.ingest_queue;
  cfg.num_threads = 1;
  cfg.sst_fast = opt.sst_fast;
  cfg.sst_cascade = opt.sst_fast && !opt.no_cascade;
  cfg.stats = stats;
  cfg.tracer = tracer;
  cfg.journal = journal;
  // The plane/selfmon knobs are process-level (main owns the server and the
  // monitor); recorded on the config so a service-mode host embedding this
  // flow sees the same shape.
  cfg.obs_http_port = opt.http_port;
  cfg.selfmon = opt.selfmon;
  cfg.selfmon_tick_ms = opt.selfmon_tick_ms;

  core::FunnelOnline online(cfg, topo, log, store);
  core::AssessmentReport report;
  bool finalized = false;
  online.on_report([&](const core::AssessmentReport& r) {
    report = r;
    finalized = true;
  });
  online.watch(cid);
  for (MinuteTime t = tc; t < series.end_time(); ++t) {
    store.append(metric, t, series.at(t));
  }
  // Barrier: wait until the dispatcher has delivered every queued sample
  // (no-op for a synchronous store) before reading the report.
  store.flush();
  if (store.persistent()) {
    // End-of-run checkpoint: freeze the streamed history into a segment and
    // record the watch snapshot + journal event count, so a process killed
    // right here resumes from this exact state (docs/STORAGE.md §5).
    if (journal != nullptr) journal->flush();
    store.checkpoint(online.snapshot_state(),
                     journal != nullptr ? journal->written() : 0);
  }

  char line[160];
  std::snprintf(line, sizeof(line),
                "# change at minute %lld, online FUNNEL pipeline "
                "(ika-sst, omega=%zu, horizon=%lld)\n",
                static_cast<long long>(tc), opt.omega,
                static_cast<long long>(cfg.horizon));
  out << line;
  if (!finalized) {
    res.err = "watch did not finalize within the series\n";
    res.code = 1;
    return res;
  }
  out << report.summary();
  out << (report.change_has_impact() ? "verdict: change has impact\n"
                                     : "verdict: no impact attributed\n");
  res.out = out.str();
  return res;
}

FileResult process_file(const std::string& path, const Options& opt,
                        const obs::Registry* stats, const obs::Tracer* tracer,
                        const obs::Journal* journal) {
  try {
    return opt.change_minute >= 0
               ? assess_file(path, opt, stats, tracer, journal)
               : score_file(path, opt);
  } catch (const tsdb::persist::StorageError& e) {
    // The --data-dir store could not be opened or recovered (corruption
    // beyond what WAL-tail truncation repairs). Same exit code as an
    // unopenable output file.
    FileResult res;
    res.err = std::string("error: ") + e.what() + "\n";
    res.code = 3;
    return res;
  } catch (const std::exception& e) {
    // Parse/load failures are per-file: report, keep going, exit non-zero.
    FileResult res;
    res.err = "error: failed to process " + path + ": " + e.what() + "\n";
    res.code = 1;
    return res;
  }
}

void declare_core_keys(const obs::Registry& reg) {
  // A stable key set for dashboards and the ctest smoke check, present
  // even before (or without) the first event of each kind. The WAL /
  // persistence / journal-backlog family is declared here too so
  // --stats-json and /metrics expose the same keys whether or not the run
  // was persistent — zeros, not absences, when a subsystem never ran.
  for (const char* c :
       {"funnel.assess.changes_assessed", "funnel.assess.kpis_scored",
        "funnel.assess.alarms_raised", "funnel.online.samples_ingested",
        "funnel.online.verdicts_confirmed", "pool.tasks_executed",
        "tsdb.store.appends", "tsdb.store.notifications",
        "tsdb.store.late_fills", "tsdb.store.duplicates_ignored",
        "tsdb.store.too_old_dropped", "csv.files_processed",
        "csv.files_failed", "funnel.cascade.windows",
        "funnel.cascade.scored", "funnel.cascade.suppressed_variance",
        "funnel.cascade.suppressed_cusum", "funnel.cascade.wow_forced",
        "funnel.cascade.dirty", "funnel.sst.cold_restarts",
        "funnel.sst.escalations", "funnel.journal.events",
        "funnel.journal.bytes", "funnel.journal.dropped",
        "funnel.wal.records", "funnel.wal.bytes", "funnel.wal.batches",
        "funnel.persist.segments_written", "funnel.persist.segment_bytes",
        "funnel.persist.checkpoints", "funnel.persist.compactions"}) {
    reg.declare_counter(c);
  }
  for (const char* h :
       {"funnel.assess.sst_us", "funnel.assess.did_us",
        "funnel.assess.total_us", "funnel.online.time_to_verdict_min",
        "pool.queue_wait_us", "csv.process_us", "funnel.wal.commit_us"}) {
    reg.declare_histogram(h);
  }
  for (const char* g :
       {"funnel.online.active_watches", "funnel.cascade.suppression_ratio",
        "funnel.journal.queue_depth", "funnel.wal.queue_depth",
        "funnel.persist.segments"}) {
    reg.declare_gauge(g);
  }
}

// Derived gauge: fraction of scored-candidate windows the PR 6 cascade
// suppressed without running the full IKA score. Computed from the
// counters at dump time — suppression is a property of the whole run.
void set_suppression_ratio(const obs::Registry& reg) {
  const obs::Snapshot snap = reg.snapshot();
  if (!snap.enabled) return;
  const auto counter = [&](const char* key) -> double {
    const auto it = snap.counters.find(key);
    return it == snap.counters.end() ? 0.0 : static_cast<double>(it->second);
  };
  const double windows = counter("funnel.cascade.windows");
  const double suppressed = counter("funnel.cascade.suppressed_variance") +
                            counter("funnel.cascade.suppressed_cusum");
  reg.set("funnel.cascade.suppression_ratio",
          windows > 0.0 ? suppressed / windows : 0.0);
}

volatile std::sig_atomic_t g_stop_serving = 0;

void handle_stop_signal(int) { g_stop_serving = 1; }

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  {
    double default_thr = 0.0;
    if (make_scorer(opt, &default_thr) == nullptr) {
      std::fprintf(stderr, "unknown method: %s\n", opt.method.c_str());
      return 2;
    }
  }
  if (opt.sst_fast && opt.method != "ika") {
    std::fprintf(stderr, "--sst-fast applies to --method ika only\n");
    return 2;
  }
  if (!opt.data_dir.empty() &&
      (opt.change_minute < 0 || opt.paths.size() != 1)) {
    std::fprintf(stderr,
                 "--data-dir requires --change-minute and exactly one CSV "
                 "(one store directory per assessed series)\n");
    return 2;
  }
  if (opt.serve && opt.http_port == 0) {
    std::fprintf(stderr,
                 "--serve holds the process open to keep serving telemetry; "
                 "it requires --http-port P (or --http-port auto)\n");
    return 2;
  }
  if (opt.serve && opt.print_scores) {
    std::fprintf(stderr,
                 "--serve is incompatible with the one-shot --scores dump "
                 "(scores are printed once; there is nothing to serve)\n");
    return 2;
  }
  if (!opt.port_file.empty() && opt.http_port == 0) {
    std::fprintf(stderr, "--port-file requires --http-port\n");
    return 2;
  }

  obs::Registry reg;
  declare_core_keys(reg);
  obs::Tracer tracer;
  const obs::Tracer* tracer_ptr =
      opt.trace_path.empty() ? nullptr : &tracer;

  // The journal opens up front (events stream during the run, unlike the
  // end-of-run stats/trace dumps), so the unopenable-path exit happens
  // before any work — same code 3 as the other output files.
  std::unique_ptr<obs::Journal> journal;
  if (!opt.journal_path.empty()) {
    journal = std::make_unique<obs::Journal>(opt.journal_path);
    if (!journal->ok()) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.journal_path.c_str());
      return 3;
    }
    journal->set_stats(&reg);
  }

  // Live telemetry plane + self-surveillance. The plane binds before any
  // CSV work so a taken port fails fast (exit 3, like an unopenable output
  // file). Destruction order matters: `plane` is declared after `selfmon`
  // so its handlers (which consult the monitor) die first.
  std::unique_ptr<obs::SelfMonitor> selfmon;
  if (opt.selfmon) {
    obs::SelfMonitorOptions smopt;
    smopt.tick_period = std::chrono::milliseconds(opt.selfmon_tick_ms);
    selfmon = std::make_unique<obs::SelfMonitor>(&reg, smopt);
    selfmon->set_journal(journal.get());
  }
  std::unique_ptr<obs::TelemetryPlane> plane;
  if (opt.http_port != 0) {
    obs::PlaneOptions popt;
    popt.http.port =
        opt.http_port < 0 ? 0 : static_cast<std::uint16_t>(opt.http_port);
    popt.build_info = "funnel_detect_csv";
    popt.config_summary =
        "method=" + opt.method + " omega=" + std::to_string(opt.omega) +
        (opt.change_minute >= 0 ? " mode=pipeline" : " mode=score");
    plane = std::make_unique<obs::TelemetryPlane>(&reg, popt);
    plane->set_selfmon(selfmon.get());
    if (!plane->start()) {
      std::fprintf(stderr, "error: cannot start telemetry plane: %s\n",
                   plane->error().c_str());
      return 3;
    }
    std::fprintf(stderr, "# serving telemetry on 127.0.0.1:%u\n",
                 static_cast<unsigned>(plane->port()));
    if (!opt.port_file.empty()) {
      std::ofstream pf(opt.port_file);
      if (!pf) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opt.port_file.c_str());
        return 3;
      }
      pf << plane->port() << '\n';
    }
  }
  if (opt.serve && plane != nullptr) {
    // Installed here, not at the hold loop: the port-file handshake above
    // invites a supervisor to SIGTERM at any point from now on, and between
    // here and the hold loop sits the whole assessment — the default signal
    // action would kill the process instead of stopping the serve cleanly.
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    // SIGHUP is a deliberate no-op: nothing here is reloadable, and a
    // supervisor's hangup (e.g. a closed controlling terminal) must not
    // kill a --serve process mid-scrape. funnel_serve, which does have
    // reloadable quota config, handles SIGHUP as a reload instead.
    std::signal(SIGHUP, SIG_IGN);
  }
  if (selfmon != nullptr) selfmon->start();
  if (plane != nullptr) plane->set_ready(true);

  std::vector<FileResult> results(opt.paths.size());
  const auto run_one = [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    // Per-file root span: the assessment's whole tree (watch, per-KPI
    // scoring, DiD) hangs under it, one track per participating thread.
    obs::Span file_span(tracer_ptr, "csv.file");
    if (file_span.active()) {
      file_span.attr("csv.path", std::string_view(opt.paths[i]));
    }
    results[i] = process_file(opt.paths[i], opt, &reg, tracer_ptr,
                              journal.get());
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    char line[512];
    std::snprintf(line, sizeof(line), "# %s: %.1f ms\n",
                  opt.paths[i].c_str(), ms);
    results[i].err += line;
    reg.observe("csv.process_us", ms * 1000.0);
    reg.add(results[i].code == 0 ? "csv.files_processed"
                                 : "csv.files_failed");
  };
  const std::size_t threads = ThreadPool::resolve_threads(opt.threads);
  if (threads > 1 && opt.paths.size() > 1) {
    ThreadPool pool(opt.threads);
    pool.set_stats(&reg);
    pool.parallel_for(0, opt.paths.size(),
                      [&](std::size_t i, std::size_t) { run_one(i); });
  } else {
    for (std::size_t i = 0; i < opt.paths.size(); ++i) run_one(i);
  }

  int code = 0;
  for (std::size_t i = 0; i < opt.paths.size(); ++i) {
    if (opt.paths.size() > 1) {
      std::printf("== %s ==\n", opt.paths[i].c_str());
    }
    std::fputs(results[i].out.c_str(), stdout);
    std::fputs(results[i].err.c_str(), stderr);
    // 3 (environment: store/output unusable) outranks 1 (per-file failure).
    code = std::max(code, results[i].code);
  }

  if (journal != nullptr) {
    // Barrier: every appended event is on disk before the count is
    // reported (and before a consumer launched next reads the file).
    journal->flush();
    std::fprintf(stderr, "# wrote journal: %s (%llu events)\n",
                 opt.journal_path.c_str(),
                 static_cast<unsigned long long>(journal->written()));
  }

  if (opt.print_stats || !opt.stats_json_path.empty()) {
    set_suppression_ratio(reg);
    const obs::Snapshot snap = reg.snapshot();
    if (opt.print_stats) {
      std::fputs(obs::prometheus_text(snap).c_str(), stderr);
    }
    if (!opt.stats_json_path.empty()) {
      std::ofstream out(opt.stats_json_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opt.stats_json_path.c_str());
        return 3;
      }
      out << obs::snapshot_json(snap) << '\n';
      std::fprintf(stderr, "# wrote stats: %s\n",
                   opt.stats_json_path.c_str());
    }
  }
  if (!opt.trace_path.empty()) {
    // Quiesced: the pool (if any) was joined and every store flushed, so
    // collect() sees every recorded span.
    std::ofstream out(opt.trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.trace_path.c_str());
      return 3;
    }
    out << obs::chrome_trace_json(tracer.collect()) << '\n';
    std::fprintf(stderr, "# wrote trace: %s\n", opt.trace_path.c_str());
  }

  if (plane != nullptr && tracer_ptr != nullptr) {
    // Same quiesce point as the --trace dump: publish the run's span tree
    // so /tracez serves it for the rest of the process lifetime.
    plane->publish_trace(tracer.collect());
  }
  if (opt.serve && plane != nullptr) {
    std::fprintf(stderr,
                 "# holding open: GET /metrics /stats.json /healthz /readyz "
                 "/statusz /tracez (SIGINT/SIGTERM to stop%s)\n",
                 opt.serve_seconds > 0 ? ", bounded by --serve-seconds" : "");
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(opt.serve_seconds);
    while (g_stop_serving == 0 &&
           (opt.serve_seconds == 0 ||
            std::chrono::steady_clock::now() < deadline)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "# serve loop done (%llu requests)\n",
                 static_cast<unsigned long long>(plane->requests_served()));
  }
  return code;
}
