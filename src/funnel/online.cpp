#include "funnel/online.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "funnel/verdict_journal.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/timer.h"

namespace funnel::core {
namespace {

// The internal batch engine only serves per-metric determine_cause calls
// from inside store callbacks — it never runs the batch fan-outs, so it
// must not spawn a pool of idle workers.
FunnelConfig serial(FunnelConfig config) {
  config.num_threads = 1;
  return config;
}

}  // namespace

FunnelOnline::FunnelOnline(FunnelConfig config,
                           const topology::ServiceTopology& topo,
                           const changes::ChangeLog& log,
                           tsdb::MetricStore& store)
    : config_(config),
      topo_(topo),
      log_(log),
      store_(store),
      batch_(serial(config), topo, log, store) {}

FunnelOnline::~FunnelOnline() {
  if (subscribed_) store_.unsubscribe(subscription_);
}

void FunnelOnline::watch(changes::ChangeId id) {
  const changes::SoftwareChange& change = log_.get(id);
  ChangeWatch watch;
  watch.change_id = id;
  watch.set = identify_impact_set(change, topo_);
  watch.deadline = change.time + config_.horizon;
  watch.trace = obs::DetachedSpan(config_.tracer, "funnel.watch");
  if (watch.trace.active()) {
    watch.trace.attr("change.id", id);
    watch.trace.attr("change.minute", change.time);
    watch.trace.attr("change.service", std::string_view(change.service));
    watch.trace.attr("watch.deadline", watch.deadline);
  }

  // Priming runs on the control thread; its span parents under the watch
  // root explicitly (the root never installs itself as ambient context).
  obs::Span prime_span(watch.trace.context(), "funnel.online.prime");
  for (const tsdb::MetricId& metric : impact_metrics(watch.set, store_)) {
    MetricWatch mw;
    mw.metric = metric;
    mw.verdict.metric = metric;
    auto scorer = std::make_unique<detect::IkaSst>(config_.geometry,
                                                   sst_params(config_));
    detect::ChangeScorer* active = nullptr;
    if (config_.sst_cascade) {
      detect::CascadeConfig cc = config_.cascade;
      cc.sst_threshold = config_.alarm.threshold;
      mw.gate = std::make_unique<detect::CascadeGate>(std::move(scorer), cc);
      active = mw.gate.get();
    } else {
      mw.scorer = std::move(scorer);
      active = mw.scorer.get();
    }
    // Copy the priming window under the shard's reader lock — watch() runs
    // on the control thread and must not race a store that is already
    // ingesting (docs/CONCURRENCY.md, "Online assessor").
    MinuteTime prime_start = 0;
    std::vector<double> prime;
    store_.read(metric, [&](const tsdb::TimeSeries& series) {
      prime_start =
          std::max(series.start_time(), change.time - config_.lookback);
      prime = series.slice(prime_start, series.end_time());
    });
    mw.detector = std::make_unique<detect::OnlineDetector>(
        *active, config_.alarm, prime_start);
    mw.quality.start = prime_start;
    // Prime with whatever history is already in the store; pre-change
    // alarms are discarded (rearmed) — only post-deployment behavior
    // changes are attributable.
    for (double v : prime) feed_detector(change, mw, v);
    watch.metrics.emplace(metric, std::move(mw));
  }
  if (prime_span.active()) {
    prime_span.attr("watch.kpis", watch.metrics.size());
  }
  watches_.emplace(id, std::move(watch));
  if (config_.stats != nullptr) {
    config_.stats->add("funnel.online.watches_started");
    config_.stats->set("funnel.online.active_watches",
                       static_cast<double>(watches_.size()));
  }

  if (!subscribed_) {
    subscription_ = store_.subscribe(
        {}, [this](const tsdb::MetricId& m, MinuteTime t, double v) {
          handle_sample(m, t, v);
        });
    subscribed_ = true;
  }
}

void FunnelOnline::feed_detector(const changes::SoftwareChange& change,
                                 MetricWatch& mw, double value) {
  mw.quality.on_sample(value);
  const auto alarm = mw.detector->push(value);
  if (!alarm) return;
  if (alarm->minute < change.time) {
    mw.detector->rearm();
  } else if (!mw.verdict.kpi_change_detected) {
    mw.verdict.kpi_change_detected = true;
    mw.verdict.alarm = *alarm;
    mw.pending_determination = true;
  }
}

void FunnelOnline::handle_sample(const tsdb::MetricId& id, MinuteTime t,
                                 double value) {
  const obs::ScopedTimer span(config_.stats, "funnel.online.sample_us");
  if (config_.stats != nullptr) {
    config_.stats->add("funnel.online.samples_ingested");
  }
  std::vector<changes::ChangeId> finished;
  for (auto& [cid, watch] : watches_) {
    const changes::SoftwareChange& change = log_.get(cid);
    const auto it = watch.metrics.find(id);
    if (it != watch.metrics.end()) {
      MetricWatch& mw = it->second;
      // The detector consumes exactly one sample per minute. A dirty feed
      // delivers duplicates, reordered and late samples: align by the
      // detector's clock — skipped minutes are scored as the NaN gaps they
      // were at delivery time, and anything at/before an already-scored
      // minute is dropped here (the store has reconciled it via upsert,
      // but detection cannot rewind).
      const MinuteTime expected = mw.detector->next_minute();
      if (t >= expected) {
        for (MinuteTime m = expected; m < t; ++m) {
          feed_detector(change, mw,
                        std::numeric_limits<double>::quiet_NaN());
          if (config_.stats != nullptr) {
            config_.stats->add("funnel.online.gap_minutes_scored");
          }
        }
        feed_detector(change, mw, value);
        if (mw.pending_determination) try_determination(watch, mw, t);
      } else if (config_.stats != nullptr) {
        config_.stats->add("funnel.online.stale_samples_skipped");
      }
    }
    if (t >= watch.deadline) finished.push_back(cid);
  }
  for (changes::ChangeId cid : finished) finalize(cid);
}

std::size_t FunnelOnline::expire(MinuteTime now) {
  std::vector<changes::ChangeId> expired;
  for (const auto& [cid, watch] : watches_) {
    if (now >= watch.deadline + config_.watch_timeout) expired.push_back(cid);
  }
  for (changes::ChangeId cid : expired) finalize(cid, /*timed_out=*/true);
  if (config_.stats != nullptr && !expired.empty()) {
    config_.stats->add("funnel.online.watches_expired", expired.size());
  }
  return expired.size();
}

void FunnelOnline::try_determination(ChangeWatch& watch, MetricWatch& mw,
                                     MinuteTime now) {
  const changes::SoftwareChange& change = log_.get(watch.change_id);
  // Use only fully-delivered minutes: samples for `now` are still arriving
  // metric by metric, so the post period ends at `now` (exclusive) —
  // otherwise sibling/control series would be judged "not covering" and
  // dropped from the DiD groups.
  const MinuteTime post = now - change.time;
  if (post < config_.min_did_window) return;  // wait for more post data
  // Runs on the dispatcher thread for an async store. Parenting under the
  // watch root (not the ambient context) keeps one tree per watch; the span
  // installs itself as ambient, so determine_cause's own spans nest inside.
  obs::Span trace_span(watch.trace.context(), "funnel.online.determine");
  if (trace_span.active()) {
    trace_span.attr("kpi.metric", mw.metric.to_string());
    trace_span.attr("kpi.minute", now);
    trace_span.attr("kpi.post_window", post);
  }
  batch_.determine_cause(change, watch.set, mw.metric, post, mw.verdict);
  mw.pending_determination = false;
  note_determined(change, mw, now);
  if (mw.verdict.caused_by_software_change() && verdict_cb_) {
    verdict_cb_(watch.change_id, mw.verdict);
  }
}

void FunnelOnline::note_determined(const changes::SoftwareChange& change,
                                   MetricWatch& mw, MinuteTime minute) {
  mw.verdict.determined_at = minute;
  if (config_.stats == nullptr) return;
  config_.stats->add(std::string("funnel.online.verdicts.") +
                     to_string(mw.verdict.cause));
  if (mw.verdict.caused_by_software_change()) {
    config_.stats->add("funnel.online.verdicts_confirmed");
    // The headline series: minutes from change deployment to a confirmed
    // verdict (§5.2 was ~10 against 1.5 h of manual assessment).
    config_.stats->observe("funnel.online.time_to_verdict_min",
                           static_cast<double>(minute - change.time));
  }
}

void FunnelOnline::FeedQuality::on_sample(double v) {
  if (std::isfinite(v)) {
    ++clean;
    gap_run = 0;
    flat_run = (have_prev && v == prev) ? flat_run + 1 : 1;
    if (flat_run > longest_flat) longest_flat = flat_run;
    prev = v;
    have_prev = true;
  } else {
    ++gap_run;
    flat_run = 0;
    have_prev = false;
    if (gap_run > longest_gap) longest_gap = gap_run;
  }
}

tsdb::QualityReport FunnelOnline::FeedQuality::report(MinuteTime frontier,
                                                      MinuteTime end) const {
  tsdb::QualityReport q;
  q.window_minutes =
      end > start ? static_cast<std::size_t>(end - start) : clean;
  q.clean_samples = clean;
  // Minutes the feed never reached before the window closed are one
  // trailing gap, merged with any open gap run at the frontier.
  std::size_t tail = gap_run;
  if (end > frontier) tail += static_cast<std::size_t>(end - frontier);
  q.longest_gap_run = std::max(longest_gap, tail);
  q.longest_flat_run = longest_flat;
  q.coverage =
      q.window_minutes == 0
          ? 0.0
          : std::min(1.0, static_cast<double>(q.clean_samples) /
                              static_cast<double>(q.window_minutes));
  return q;
}

void FunnelOnline::finalize(changes::ChangeId id, bool timed_out) {
  const auto wit = watches_.find(id);
  if (wit == watches_.end()) return;
  ChangeWatch& watch = wit->second;
  const changes::SoftwareChange& change = log_.get(id);

  AssessmentReport report;
  report.change_id = id;
  report.change_time = change.time;
  report.impact_set = watch.set;
  const obs::Journal* journal = config_.journal;
  const bool journal_on = journal != nullptr && journal->active();
  {
    obs::Span trace_span(watch.trace.context(), "funnel.online.finalize");
    if (trace_span.active() && timed_out) {
      trace_span.attr("watch.timed_out", 1);
    }
    for (auto& [metric, mw] : watch.metrics) {
      (void)metric;
      mw.verdict.quality =
          mw.quality.report(mw.detector->next_minute(), watch.deadline);
      if (mw.pending_determination) {
        if (timed_out) {
          // The feed starved before DiD ever became possible; a verdict
          // now would rest on data we know never arrived.
          mw.verdict.cause = Cause::kInconclusive;
          mw.verdict.inconclusive_reason =
              InconclusiveReason::kWatchTimedOut;
          mw.pending_determination = false;
          note_determined(change, mw, watch.deadline);
        } else {
          // Horizon reached with a still-undetermined alarm: run with the
          // full observed window.
          batch_.determine_cause(change, watch.set, mw.metric,
                                 watch.deadline - change.time, mw.verdict);
          mw.pending_determination = false;
          note_determined(change, mw, watch.deadline);
          if (mw.verdict.caused_by_software_change() && verdict_cb_) {
            verdict_cb_(id, mw.verdict);
          }
        }
      } else if (!mw.verdict.kpi_change_detected &&
                 mw.verdict.cause == Cause::kNoKpiChange &&
                 !mw.verdict.quality->acceptable(
                     config_.quality.min_coverage, config_.quality.max_gap_run,
                     config_.quality.max_flat_run)) {
        // No alarm, but the feed was too holey to have caught one: degrade
        // instead of delivering a silent "no change".
        mw.verdict.cause = Cause::kInconclusive;
        mw.verdict.inconclusive_reason =
            InconclusiveReason::kGapInDetectionWindow;
      }
      report.items.push_back(mw.verdict);
      // Journal the finalized determination. Online events carry the
      // determined_at stamp and time-to-verdict (the paper's rapidity
      // metric); the batch-only extras (damp factor, gate decision) stay
      // absent — the streaming detector never materializes them.
      if (journal_on) {
        journal->append(journal_event(change, mw.verdict, "online"));
      }
      if (config_.stats != nullptr) {
        // Per-metric scorers live exactly as long as their watch and are
        // never reset, so lifetime totals are this watch's totals.
        const detect::IkaSst& scorer =
            mw.gate != nullptr ? mw.gate->inner() : *mw.scorer;
        if (scorer.cold_restarts() > 0) {
          config_.stats->add("funnel.sst.cold_restarts",
                             scorer.cold_restarts());
        }
        if (scorer.escalations() > 0) {
          config_.stats->add("funnel.sst.escalations", scorer.escalations());
        }
      }
    }
  }
  if (watch.trace.active()) {
    watch.trace.attr("watch.kpis", report.items.size());
    watch.trace.attr("watch.detected", report.kpi_changes_detected());
    watch.trace.attr("watch.caused", report.kpi_changes_caused());
    watch.trace.end();  // lands in this (possibly dispatcher) thread's ring
  }
  watches_.erase(wit);
  if (config_.stats != nullptr) {
    config_.stats->add("funnel.online.reports_finalized");
    config_.stats->set("funnel.online.active_watches",
                       static_cast<double>(watches_.size()));
  }
  if (report_cb_) report_cb_(report);
}

}  // namespace funnel::core
