// Embedded HTTP/1.1 exposition server — the live window into a running
// FUNNEL (docs/OBSERVABILITY.md, "Live endpoints").
//
// The paper's funnel runs as an always-on service; operators judge whether
// assessment is still "rapid" from the pipeline's own KPIs (ingest lag,
// time-to-verdict, detector throughput). Until now those were reachable
// only through one-shot CLI dumps (--stats / --stats-json). This server
// makes the same exporters reachable while the pipeline runs: a handful of
// GET endpoints (/metrics, /stats.json, /healthz, /readyz, /statusz,
// /tracez — wired by obs::TelemetryPlane in obs/plane.h) served from the
// live Registry.
//
// Design:
//   * Dependency-free: POSIX sockets only, no third-party HTTP stack. The
//     threat model is an operator's curl / a Prometheus scraper / the
//     multi-tenant ingest plane (src/service) inside the deployment
//     perimeter, so the parser accepts exactly "METHOD SP target SP
//     HTTP/1.x" plus headers, bounds the request head at max_request_bytes
//     and the body at max_body_bytes (413 beyond it; a routed POST without
//     a Content-Length answers 411), and answers everything else with 400.
//     Routing resolves before the body ladder, so 404/405 never wait on —
//     or require — a payload.
//   * One blocking accept thread + a bounded worker pool (the
//     common::ThreadPool idiom scaled down: fixed threads, one mutex +
//     condvar, bounded queue). A full queue answers 503 from the accept
//     thread instead of queueing unboundedly — scrape storms shed, they
//     never stall the pipeline.
//   * Handlers run on worker threads, concurrently with the pipeline's hot
//     path — they must only touch thread-safe state. Registry::snapshot()
//     is built for exactly this (lock-free recorders, merge on the reader);
//     obs_server_test hammers /metrics against hot-path increments under
//     TSan to keep it that way.
//   * Clean shutdown: stop() (or the destructor) wakes the accept loop via
//     its poll timeout, drains nothing — queued connections are closed, the
//     in-flight response finishes — and joins every thread.
//   * port 0 binds an ephemeral port; port() reports the bound one (test
//     harnesses and --port-file use this). A bind/listen failure is NOT
//     fatal to the caller: start() returns false and error() carries the
//     errno text — the CLI turns that into exit 3 with a diagnostic.
//   * -DFUNNEL_OBS=OFF compiles the server to a stub whose start() always
//     fails with a "compiled out" error; callers keep their flag plumbing
//     with zero #ifdefs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace funnel::obs {

/// One parsed request. Headers beyond Content-Length are consumed and
/// discarded (the exposition endpoints need none).
struct HttpRequest {
  std::string method;  ///< "GET" / "HEAD" / "POST" (others answer 405)
  std::string target;  ///< raw request target, e.g. "/metrics?x=1"
  std::string path;    ///< target with the query string stripped
  std::string query;   ///< bytes after '?' (empty when none)
  std::string body;    ///< Content-Length-bounded request body (may be empty)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers, e.g. {"Retry-After", "2"} on a 429. Names and
  /// values are emitted verbatim; keep them token/CRLF-clean.
  std::vector<std::pair<std::string, std::string>> headers;
};

struct HttpServerOptions {
  /// Loopback by default: the exposition plane is an operator/scraper
  /// surface, not a public API.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Worker threads running handlers (clamped to >= 1).
  std::size_t num_workers = 2;
  /// Accepted connections waiting for a worker; beyond this the accept
  /// thread answers 503 and closes (clamped to >= 1).
  std::size_t queue_capacity = 32;
  /// Request-head size bound; longer heads are answered 400.
  std::size_t max_request_bytes = 8192;
  /// Request-body size bound (Content-Length); bigger bodies answer 413
  /// without reading the payload.
  std::size_t max_body_bytes = 1 << 20;
};

#ifdef FUNNEL_OBS_OFF

/// FUNNEL_OBS=OFF: the server compiles to a stub that never binds.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions = {}) {}
  ~HttpServer() = default;

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void handle(std::string, Handler) {}
  void handle_post(std::string, Handler) {}
  void handle_prefix(std::string, Handler, bool = false) {}
  bool start() { return false; }
  void stop() {}
  bool running() const { return false; }
  std::uint16_t port() const { return 0; }
  const std::string& error() const {
    static const std::string kErr =
        "obs http server compiled out (FUNNEL_OBS=OFF)";
    return kErr;
  }
  std::uint64_t requests_served() const { return 0; }
  void set_stats(const Registry*) {}
};

#else  // FUNNEL_OBS_OFF

class HttpServer {
 public:
  /// Invoked on a worker thread; must be thread-safe and must not block
  /// indefinitely (it occupies one of num_workers slots while it runs).
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});

  /// stop()s if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register `handler` for GET/HEAD on exact path `path` (e.g.
  /// "/metrics"). Register everything before start(); HEAD suppresses the
  /// body, methods with no handler on a known path answer 405, unknown
  /// paths 404.
  void handle(std::string path, Handler handler);

  /// Register `handler` for POST on exact path `path`. The request body is
  /// already read (Content-Length-bounded) when the handler runs.
  void handle_post(std::string path, Handler handler);

  /// Register `handler` for every path starting with `prefix` (e.g.
  /// "/v1/ingest/"), for POST when `post` is true, GET/HEAD otherwise.
  /// Exact routes win over prefixes; among prefixes the longest match wins.
  void handle_prefix(std::string prefix, Handler handler, bool post = false);

  /// Bind + listen + spawn the accept thread and worker pool. Returns false
  /// (with error() set) when the socket cannot be created, bound — the
  /// port-already-taken case — or listened on. Calling start() on a running
  /// server is an error (returns false).
  bool start();

  /// Idempotent: close the listen socket, join every thread, close queued
  /// connections. After stop() the server can be start()ed again.
  void stop();

  bool running() const;

  /// Bound port (the ephemeral one when options.port was 0); 0 before
  /// start().
  std::uint16_t port() const;

  /// Human-readable reason the last start() failed.
  const std::string& error() const { return error_; }

  /// Requests answered so far (any status).
  std::uint64_t requests_served() const;

  /// Attach a telemetry registry (null detaches): `obs.server.requests` /
  /// `obs.server.http_errors` counters and an `obs.server.request_us`
  /// histogram — the server shows up in its own /metrics. The registry
  /// must outlive this server.
  void set_stats(const Registry* stats);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string error_;
};

#endif  // FUNNEL_OBS_OFF

}  // namespace funnel::obs
