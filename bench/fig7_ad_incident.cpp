// Fig. 7 — the advertising-system incident (§5.2).
//
// A software upgrade breaks the anti-cheating JSON check on iPhone
// browsers: every iPhone click is misclassified as a cheat and the
// "effective clicks" KPI — strongly seasonal — drops sharply. The
// operations team found it manually after 1.5 hours; FUNNEL's online
// assessor must attribute it within ~10 minutes. When the team remedies
// the bug 90 minutes later, the KPI recovers with a positive level shift.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "funnel/online.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

int main(int, char**) {
  bench::print_header("Fig. 7: unexpected drop in effective ad clicks");

  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;

  const std::string svc = "ads.serving";
  const int n_servers = 8;
  std::vector<std::string> servers;
  for (int i = 0; i < n_servers; ++i) {
    servers.push_back("ads-" + std::to_string(i));
    topo.add_server(svc, servers.back());
  }
  // The anti-cheating service is related to ads (it inspects every click).
  topo.add_server("ads.anticheat", "ac-0");
  topo.add_server("ads.anticheat", "ac-1");
  topo.add_relation(svc, "ads.anticheat");

  const int history_days = 31;
  const MinuteTime tc = history_days * kMinutesPerDay + 660;
  const MinuteTime recovery = tc + 90;
  const MinuteTime horizon_end = tc + 121;

  changes::SoftwareChange ch;
  ch.service = svc;
  ch.servers = servers;
  ch.time = tc;
  ch.mode = changes::LaunchMode::kFull;
  ch.type = changes::ChangeType::kSoftwareUpgrade;
  ch.description = "ad-serving performance upgrade (breaks iPhone JSON check)";
  const changes::ChangeId id = log.record(ch, topo);

  // Effective clicks per instance: strongly seasonal. The bug wipes out the
  // iPhone share (~40%) of effective clicks; remediation restores it.
  Rng rng(71);
  std::vector<std::pair<tsdb::MetricId,
                        std::unique_ptr<workload::KpiStream>>> streams;
  for (const auto& s : servers) {
    workload::SeasonalParams p;
    p.base = 100.0;
    p.daily_amplitude = 45.0;
    p.second_harmonic = 15.0;
    p.noise_sigma = 2.5;
    auto stream = std::make_unique<workload::KpiStream>(
        workload::make_seasonal(p, rng.split()));
    stream->add_effect(workload::LevelShift{tc, -40.0});
    stream->add_effect(workload::LevelShift{recovery, +40.0});
    const tsdb::MetricId m =
        tsdb::instance_metric(topology::instance_name(svc, s),
                              "effective_clicks");
    // History up to the change is in the store before the watch begins.
    tsdb::TimeSeries series(0);
    for (MinuteTime t = 0; t < tc; ++t) series.append(stream->sample(t));
    store.insert(m, std::move(series));
    streams.emplace_back(m, std::move(stream));
  }

  core::FunnelOnline online(bench::funnel_config(), topo, log, store);
  MinuteTime first_attribution = -1;
  std::size_t attributed = 0;
  online.on_verdict([&](changes::ChangeId, const core::ItemVerdict& v) {
    ++attributed;
    if (first_attribution < 0 && v.alarm) {
      first_attribution = v.alarm->minute;
    }
  });
  std::vector<core::AssessmentReport> reports;
  online.on_report(
      [&](const core::AssessmentReport& r) { reports.push_back(r); });

  online.watch(id);
  std::printf("watching %zu KPIs in the impact set "
              "(the paper's incident had 36752)...\n",
              reports.empty() ? online.active_watches() : 0);

  for (MinuteTime t = tc; t < horizon_end; ++t) {
    for (auto& [m, stream] : streams) store.append(m, t, stream->sample(t));
  }

  std::printf("\nincident timeline (change at minute %lld):\n",
              static_cast<long long>(tc));
  if (first_attribution >= 0) {
    std::printf("  FUNNEL attributed the KPI drop at minute %lld — "
                "%lld minutes after the upgrade (paper: ~10 minutes)\n",
                static_cast<long long>(first_attribution),
                static_cast<long long>(first_attribution - tc));
  } else {
    std::printf("  FUNNEL did NOT attribute the drop — reproduction failed\n");
  }
  std::printf("  manual assessment took 1.5 h (90 minutes) in production\n");
  std::printf("  KPI changes attributed: %zu of %d effective-clicks KPIs "
              "(paper: 1141 of 36752 KPIs)\n",
              attributed, n_servers);
  if (!reports.empty()) {
    std::printf("\n%s\n", reports[0].summary().c_str());
  }

  std::printf("# Fig. 7 series: one instance's effective clicks "
              "(minute offset; change at 360)\n");
  const auto series =
      store.series(streams.front().first).slice(tc - 360, tc + 120);
  std::printf("# offset  effective_clicks\n");
  for (std::size_t i = 0; i < series.size(); i += 4) {
    std::printf("%4zu %.2f\n", i, series[i]);
  }
  return 0;
}
